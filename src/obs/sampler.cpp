#include "obs/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace gaia::obs {

namespace {

thread_local int t_progress_rank = -1;

/// The single registered sampler (guarded: register/unregister happen on
/// the owning thread, reads from failure paths may race a destructor —
/// keep it a plain atomic pointer and never dereference after stop()).
std::atomic<TelemetrySampler*> g_active{nullptr};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

// ---------------------------------------------------------------------------
// ProgressBoard
// ---------------------------------------------------------------------------

void ProgressBoard::begin(int rank, std::int64_t max_iterations,
                          std::string phase) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[rank];
  slot.row = Row{};
  slot.row.rank = rank;
  slot.row.max_iterations = max_iterations;
  slot.row.phase = std::move(phase);
  slot.start = std::chrono::steady_clock::now();
}

void ProgressBoard::update(int rank, std::int64_t iteration, double rnorm,
                           double arnorm) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(rank);
  if (it == slots_.end()) return;
  it->second.row.iteration = iteration;
  it->second.row.rnorm = rnorm;
  it->second.row.arnorm = arnorm;
}

void ProgressBoard::set_phase(int rank, std::string phase) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(rank);
  if (it == slots_.end()) return;
  it->second.row.phase = std::move(phase);
}

void ProgressBoard::end(int rank) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.erase(rank);
}

std::vector<ProgressBoard::Row> ProgressBoard::snapshot() const {
  std::vector<Row> rows;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  rows.reserve(slots_.size());
  for (const auto& [rank, slot] : slots_) {
    Row row = slot.row;
    row.elapsed_s =
        std::chrono::duration<double>(now - slot.start).count();
    rows.push_back(std::move(row));
  }
  return rows;
}

void ProgressBoard::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
}

int ProgressBoard::thread_rank() { return t_progress_rank; }
void ProgressBoard::set_thread_rank(int rank) { t_progress_rank = rank; }

ProgressBoard& ProgressBoard::global() {
  static ProgressBoard board;
  return board;
}

// ---------------------------------------------------------------------------
// TelemetrySampler
// ---------------------------------------------------------------------------

TelemetrySampler::TelemetrySampler(SamplerConfig config)
    : config_(std::move(config)),
      start_(std::chrono::steady_clock::now()),
      last_snapshot_flush_(start_) {
  config_.period_ms = std::max(config_.period_ms, 1);
  config_.ring_capacity = std::max<std::size_t>(config_.ring_capacity, 1);
  if (!config_.path.empty()) {
    // Truncate up front so a crash mid-run leaves a coherent (possibly
    // short) series, never an interleave with a previous run's tail.
    std::ofstream f(config_.path, std::ios::trunc);
    if (!f.good())
      std::cerr << "telemetry: cannot open " << config_.path
                << " (stream disabled, ring only)\n";
  }
  ProgressBoard::global().set_enabled(true);
  TelemetrySampler* expected = nullptr;
  g_active.compare_exchange_strong(expected, this);
  thread_ = std::thread([this] { run(); });
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (stopped_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopped_ = true;
  }
  TelemetrySampler* self = this;
  // Only the registered sampler tears down the shared state — a second
  // (never-registered) sampler stopping must not disable the board under
  // the first one.
  if (g_active.compare_exchange_strong(self, nullptr))
    ProgressBoard::global().set_enabled(false);
}

std::vector<std::string> TelemetrySampler::ring_tail(
    std::size_t max_lines) const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  const std::size_t n = std::min(max_lines, ring_.size());
  return {ring_.end() - static_cast<std::ptrdiff_t>(n), ring_.end()};
}

TelemetrySampler* TelemetrySampler::active() {
  return g_active.load(std::memory_order_acquire);
}

void TelemetrySampler::run() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  while (!stopping_) {
    wake_.wait_for(lock, std::chrono::milliseconds(config_.period_ms),
                   [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    tick(/*final_tick=*/false);
    lock.lock();
  }
  lock.unlock();
  tick(/*final_tick=*/true);
}

void TelemetrySampler::tick(bool final_tick) {
  const double t_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  const std::uint64_t seq = samples_.fetch_add(1, std::memory_order_relaxed);

  const std::vector<ProgressBoard::Row> progress =
      ProgressBoard::global().snapshot();

  std::ostringstream os;
  os.precision(12);
  os << "{\"t_s\":" << t_s << ",\"sample\":" << seq << ",\"progress\":[";
  // The rank whose solve lags furthest drives the ETA (a dist solve is
  // done when its slowest rank is).
  double eta_s = -1;
  const ProgressBoard::Row* lead = nullptr;
  bool first = true;
  for (const ProgressBoard::Row& row : progress) {
    if (!first) os << ',';
    first = false;
    double row_eta = -1;
    if (row.iteration > 0 && row.max_iterations > row.iteration &&
        row.elapsed_s > 0)
      row_eta = row.elapsed_s / static_cast<double>(row.iteration) *
                static_cast<double>(row.max_iterations - row.iteration);
    os << "{\"rank\":" << row.rank << ",\"phase\":\""
       << json_escape(row.phase) << "\",\"iteration\":" << row.iteration
       << ",\"max_iterations\":" << row.max_iterations
       << ",\"rnorm\":" << finite_or_zero(row.rnorm)
       << ",\"arnorm\":" << finite_or_zero(row.arnorm)
       << ",\"elapsed_s\":" << row.elapsed_s << ",\"eta_s\":" << row_eta
       << '}';
    if (row_eta > eta_s) {
      eta_s = row_eta;
      lead = &row;
    }
    if (!lead) lead = &row;
  }
  os << ']';
  auto& reg = MetricsRegistry::global();
  if (reg.enabled()) {
    os << ",\"metrics\":{";
    bool first_m = true;
    for (const MetricRow& m : reg.snapshot()) {
      if (!first_m) os << ',';
      first_m = false;
      const double value = m.type == "counter" ? m.sum
                           : m.type == "gauge" ? m.last
                                               : m.p50;
      os << '"' << json_escape(m.name) << "\":" << finite_or_zero(value);
    }
    os << '}';
  }
  os << '}';
  std::string line = std::move(os).str();

  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    ring_.push_back(line);
    while (ring_.size() > config_.ring_capacity) {
      ring_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!config_.path.empty()) {
    std::ofstream f(config_.path, std::ios::app);
    if (f.good()) f << line << '\n';
  }

  if (config_.progress_stderr && !progress.empty() && lead) {
    std::ostringstream ps;
    ps.precision(3);
    ps << "\r[gaia] " << lead->phase;
    if (lead->rank >= 0) ps << " rank " << lead->rank;
    if (lead->max_iterations > 0) {
      ps << ' ' << lead->iteration << '/' << lead->max_iterations << " ("
         << (100 * lead->iteration / std::max<std::int64_t>(
                                         lead->max_iterations, 1))
         << "%)";
    }
    ps << " |r|=" << finite_or_zero(lead->rnorm);
    if (eta_s >= 0) ps << " eta " << eta_s << "s";
    ps << "   ";
    if (final_tick) ps << '\n';
    std::cerr << ps.str() << std::flush;
  }

  if (config_.snapshot_every_s > 0) {
    const auto now = std::chrono::steady_clock::now();
    const double since =
        std::chrono::duration<double>(now - last_snapshot_flush_).count();
    if (since >= config_.snapshot_every_s) {
      last_snapshot_flush_ = now;
      flush_global_snapshot();
    }
  }
}

}  // namespace gaia::obs
