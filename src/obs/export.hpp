/// \file export.hpp
/// \brief Metrics exporters: OpenMetrics text exposition + sealed JSON
/// snapshots.
///
/// Two ways the registry's data leaves the process:
///
///  * **OpenMetrics** (`to_openmetrics`) — the Prometheus text format a
///    scraper or CI artifact viewer expects. `kernel.*` series from the
///    PerfCounters layer become properly labelled families
///    (`gaia_kernel_bytes_total{kernel=...,backend=...,strategy=...}`);
///    everything else maps to a sanitized flat name with a `gaia_`
///    prefix. Counters get the `_total` suffix, histograms export as
///    summaries (quantile samples + `_count`/`_sum`), and the exposition
///    ends with the mandatory `# EOF`.
///  * **Snapshot JSON** (`write_snapshot_file`) — a versioned snapshot of
///    every MetricRow, sealed with the util/framed_file CRC32 footer so
///    a half-written or bit-rotted snapshot is rejected on read, not
///    silently half-parsed. Written at solver exit and alongside every
///    checkpoint; the distributed solver stamps it with the cluster meta
///    (rank = -1, ranks = N) after cross-rank aggregation.
///
/// The *global snapshot sink* decouples writers from the Session that
/// owns the path: `obs::Session` arms it, `CheckpointManager::write` and
/// `dist_lsqr` call `flush_global_snapshot()` without knowing where (or
/// whether) the snapshot goes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace gaia::obs {

// ---------------------------------------------------------------------------
// OpenMetrics text exposition
// ---------------------------------------------------------------------------

/// Renders `rows` in the OpenMetrics text format (families sorted and
/// contiguous, `# TYPE` per family, terminated by `# EOF`).
[[nodiscard]] std::string to_openmetrics(const std::vector<MetricRow>& rows);

/// One parsed sample line (the round-trip check CI and tests run).
struct OpenMetricsSample {
  std::string name;  ///< full sample name, e.g. "gaia_kernel_bytes_total"
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;

  [[nodiscard]] const std::string* label(const std::string& key) const;
};

/// Parses an exposition produced by `to_openmetrics`. nullopt when the
/// text is malformed (bad label syntax, unparsable value, missing
/// `# EOF`).
[[nodiscard]] std::optional<std::vector<OpenMetricsSample>> parse_openmetrics(
    const std::string& text);

// ---------------------------------------------------------------------------
// Sealed JSON snapshots
// ---------------------------------------------------------------------------

inline constexpr int kSnapshotVersion = 1;

/// Provenance carried in the snapshot header. `rank` is -1 for a
/// process-wide (or cluster-aggregated) snapshot; `complete` is false
/// when a cross-rank aggregation degraded to rank-local data because a
/// peer died mid-reduce.
struct SnapshotMeta {
  int rank = -1;
  int ranks = 1;
  bool complete = true;
};

/// The snapshot payload (before framing): versioned JSON of every row.
[[nodiscard]] std::string snapshot_json(const std::vector<MetricRow>& rows,
                                        const SnapshotMeta& meta);

/// Strict parse of `snapshot_json` output. nullopt on malformed input or
/// a version mismatch; `meta` (optional) receives the header.
[[nodiscard]] std::optional<std::vector<MetricRow>> parse_snapshot_json(
    const std::string& text, SnapshotMeta* meta = nullptr);

/// Seals rows + meta into a CRC32-framed snapshot file (atomic
/// write-tmp-rename). Throws gaia::Error on I/O failure.
void write_snapshot_file(const std::string& path,
                         const std::vector<MetricRow>& rows,
                         const SnapshotMeta& meta);

/// Reads a sealed snapshot back; throws gaia::Error on a missing file,
/// framing/CRC failure, or malformed/mismatched JSON.
[[nodiscard]] std::vector<MetricRow> read_snapshot_file(
    const std::string& path, SnapshotMeta* meta = nullptr);

// ---------------------------------------------------------------------------
// Global snapshot sink
// ---------------------------------------------------------------------------

/// Arms/disarms the process-wide snapshot path (empty = off). Owned by
/// obs::Session; exposed so the solver can report where the snapshot
/// went.
void set_global_snapshot_path(const std::string& path);
[[nodiscard]] std::string global_snapshot_path();

/// Overrides the meta stamped on subsequent global-snapshot flushes
/// (the distributed solver sets ranks/completeness after aggregating).
void set_global_snapshot_meta(const SnapshotMeta& meta);
[[nodiscard]] SnapshotMeta global_snapshot_meta();

/// Writes the current registry snapshot to the armed path. No-op when
/// no path is armed; errors go to stderr, never throw (runs from
/// checkpoint/exit paths).
void flush_global_snapshot();

}  // namespace gaia::obs
