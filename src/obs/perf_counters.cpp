#include "obs/perf_counters.hpp"

#include <string_view>

#include "obs/metrics.hpp"

namespace gaia::obs {

std::string kernel_series_name(const std::string& kernel,
                               const std::string& backend,
                               const std::string& strategy,
                               const std::string& field) {
  std::string name;
  name.reserve(7 + kernel.size() + backend.size() + strategy.size() +
               field.size() + 4);
  name += "kernel.";
  name += kernel;
  name += '.';
  name += backend;
  name += '.';
  name += strategy;
  name += '.';
  name += field;
  return name;
}

bool parse_kernel_series(const std::string& name, KernelSeriesName& out) {
  // kernel.<k>.<b>.<s>.<field> — exactly five dot-separated segments,
  // the first being the literal "kernel" (none of the label values
  // contain dots).
  constexpr std::string_view kPrefix = "kernel.";
  if (name.rfind(kPrefix, 0) != 0) return false;
  const std::size_t k0 = kPrefix.size();
  const std::size_t d1 = name.find('.', k0);
  if (d1 == std::string::npos) return false;
  const std::size_t d2 = name.find('.', d1 + 1);
  if (d2 == std::string::npos) return false;
  const std::size_t d3 = name.find('.', d2 + 1);
  if (d3 == std::string::npos || name.find('.', d3 + 1) != std::string::npos)
    return false;
  out.kernel = name.substr(k0, d1 - k0);
  out.backend = name.substr(d1 + 1, d2 - d1 - 1);
  out.strategy = name.substr(d2 + 1, d3 - d2 - 1);
  out.field = name.substr(d3 + 1);
  return !out.kernel.empty() && !out.backend.empty() &&
         !out.strategy.empty() && !out.field.empty();
}

void record_kernel_sample(const KernelSample& s) {
  auto& reg = MetricsRegistry::global();
  if (!reg.enabled()) return;
  const auto field = [&](const char* f) {
    return kernel_series_name(s.kernel, s.backend, s.strategy, f);
  };
  reg.counter(field("launches")).add(1);
  reg.counter(field("bytes")).add(s.bytes);
  reg.counter(field("flops")).add(s.flops);
  reg.counter(field("atomic_updates")).add(s.atomic_updates);
  reg.histogram(field("time_seconds")).record(s.seconds);
  if (s.seconds > 0)
    reg.gauge(field("bandwidth_bytes_per_s"))
        .set(static_cast<double>(s.bytes) / s.seconds);
}

void record_kernel_time(const std::string& kernel, const std::string& backend,
                        const std::string& strategy, double seconds) {
  auto& reg = MetricsRegistry::global();
  if (!reg.enabled()) return;
  reg.histogram(kernel_series_name(kernel, backend, strategy, "time_seconds"))
      .record(seconds);
}

void record_stream_overlap(double kernel_seconds_sum, double pass_seconds) {
  auto& reg = MetricsRegistry::global();
  if (!reg.enabled() || pass_seconds <= 0) return;
  const double ratio = kernel_seconds_sum / pass_seconds;
  reg.gauge("aprod2.stream_overlap_ratio").set(ratio);
  reg.histogram("aprod2.stream_overlap_ratio_hist").record(ratio);
}

}  // namespace gaia::obs
