/// \file trace.hpp
/// \brief Kernel-level trace recorder (the nsys/rocprof timeline analog).
///
/// The paper's evidence is timeline-shaped: nsys/rocprof screenshots
/// showing that aprod1/aprod2 dominate the iteration and that the four
/// aprod2 scatter kernels overlap in concurrent streams (SIV, SV-A).
/// This recorder produces the same artifact for our host backends: every
/// kernel launch, transfer and iteration becomes a span in a Chrome
/// trace-event JSON file (`chrome://tracing` / Perfetto loadable), with
/// stream ids mapped to timeline tracks and the launch configuration
/// attached as span arguments.
///
/// Distributed runs add a second dimension: each simulated MPI rank
/// owns its *own* recorder (installed as the rank thread's
/// thread-recorder, inherited by the streams it spawns), stamped with a
/// rank identity (`set_rank`) that becomes the `pid` of every emitted
/// event, and a clock-alignment offset against the World's shared epoch
/// (`set_epoch_offset_us`) that the trace merger (obs/trace_merge)
/// applies to place all ranks on one timeline. Instrumentation sites
/// record through `TraceRecorder::current()` — the thread-local
/// override when one is installed, the process-global recorder
/// otherwise — so single-process behaviour is unchanged.
///
/// Memory is bounded: past `capacity()` events the recorder drops the
/// oldest event per insertion (`dropped_events()` counts them, also
/// surfaced as the `trace.dropped_events` registry counter), so a
/// long-running traced solve degrades to a sliding window instead of
/// growing without bound.
///
/// Cost contract: while disabled (the default), every instrumentation
/// site pays one relaxed atomic load plus one thread-local read — the
/// same discipline as `util::Profiler`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gaia::obs {

/// One key/value annotation on a span ("args" in the trace-event
/// format). Values are stored pre-rendered as JSON fragments so the
/// writer needs no type dispatch.
class TraceArg {
 public:
  TraceArg(std::string key, const std::string& value);
  TraceArg(std::string key, const char* value);
  TraceArg(std::string key, double value);
  TraceArg(std::string key, std::int64_t value);
  TraceArg(std::string key, std::int32_t value)
      : TraceArg(std::move(key), static_cast<std::int64_t>(value)) {}
  TraceArg(std::string key, std::uint64_t value);

  [[nodiscard]] const std::string& key() const { return key_; }
  /// Value as a ready-to-emit JSON fragment (quoted iff string).
  [[nodiscard]] const std::string& json_value() const { return json_value_; }

 private:
  std::string key_;
  std::string json_value_;
};

/// One trace-event record. Phases used: 'X' (complete span), 'i'
/// (instant), 'C' (counter), 'M' (metadata, e.g. thread names).
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';
  double ts_us = 0;   ///< steady-clock microseconds since reset()
  double dur_us = 0;  ///< span duration ('X' only)
  std::int32_t tid = 0;
  std::vector<TraceArg> args;
};

/// Thread-safe append-only recorder for trace events.
class TraceRecorder {
 public:
  /// Track id of spans emitted from the caller's thread context (the
  /// LSQR driver loop); streams use their own ids (see Stream::id()).
  static constexpr std::int32_t kMainTrack = 0;
  /// Default event-capacity cap (see set_capacity).
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Enabling also (re-)stamps the main-track thread name so an empty
  /// trace is still a valid, labelled timeline.
  void set_enabled(bool enabled);

  /// Microseconds since construction/reset — the trace time base.
  [[nodiscard]] double now_us() const;
  /// The time base itself (clock-alignment anchor for the merger).
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const;

  /// Stamp the recorder with a rank identity: `rank` becomes the pid of
  /// every emitted event and a `process_name` metadata record is added
  /// ("rank <r>"), so a merged multi-rank timeline shows one process
  /// group per rank. The default identity is pid 1, rank -1 (a plain
  /// single-process trace).
  void set_rank(int rank, int n_ranks);
  [[nodiscard]] int rank() const;
  [[nodiscard]] int n_ranks() const;

  /// Clock alignment against a shared epoch: microseconds to *add* to
  /// this recorder's timestamps to express them on the reference clock
  /// (the World construction epoch for distributed runs). Recorded in
  /// the trace header, applied by the merger — never by the recorder.
  void set_epoch_offset_us(double offset_us);
  [[nodiscard]] double epoch_offset_us() const;

  /// Bound the event buffer: beyond `max_events` each insertion drops
  /// the oldest event (metadata records included — re-announced track
  /// names are re-emitted on demand). 0 is invalid and ignored.
  void set_capacity(std::size_t max_events);
  [[nodiscard]] std::size_t capacity() const;
  /// Events dropped since construction/reset by the capacity cap.
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// Record a completed span (no-op while disabled).
  void complete(std::string name, std::string cat, double ts_us,
                double dur_us, std::int32_t tid,
                std::vector<TraceArg> args = {});
  /// Record an instant event.
  void instant(std::string name, std::string cat, std::int32_t tid,
               std::vector<TraceArg> args = {});
  /// Record a counter sample (Perfetto renders these as counter tracks;
  /// used for per-iteration convergence telemetry).
  void counter(std::string name, double ts_us, double value);
  /// Name a track (trace-event "thread_name" metadata).
  void name_track(std::int32_t tid, const std::string& name);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Drop all events, zero the drop counter and restart the time base
  /// (enabled state, capacity and rank identity kept).
  void reset();

  /// The full trace as a JSON document (Chrome trace-event format:
  /// {"displayTimeUnit": "ms", "otherData": {...}, "traceEvents":
  /// [...]}; otherData carries rank/ranks/epoch_offset_us/
  /// dropped_events for the merger).
  [[nodiscard]] std::string json() const;
  void write(std::ostream& os) const;
  void write(const std::string& path) const;

  /// Process-wide recorder used by the library's instrumentation.
  static TraceRecorder& global();

  /// Recorder instrumentation on *this thread* records into: the
  /// thread-local override when installed (dist rank threads and the
  /// streams they spawn), `global()` otherwise.
  static TraceRecorder& current();
  /// The raw thread-local override (nullptr = none). Exposed so thread
  /// spawners (Stream workers) can propagate the spawning thread's
  /// recorder into the threads they create.
  static TraceRecorder* thread_recorder();
  static void set_thread_recorder(TraceRecorder* recorder);

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::deque<TraceEvent> events_;
  std::set<std::int32_t> named_tracks_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;
  std::int32_t pid_ = 1;
  int rank_ = -1;
  int n_ranks_ = 1;
  double epoch_offset_us_ = 0;

  /// Caller holds mutex_. Applies the capacity cap.
  void push_locked(TraceEvent event);
};

/// RAII install/restore of the thread-local recorder override. The
/// distributed solver places one at the top of each rank body; Stream
/// workers construct one from the recorder captured at Stream creation.
class ThreadRecorderScope {
 public:
  explicit ThreadRecorderScope(TraceRecorder* recorder)
      : previous_(TraceRecorder::thread_recorder()) {
    TraceRecorder::set_thread_recorder(recorder);
  }
  ~ThreadRecorderScope() { TraceRecorder::set_thread_recorder(previous_); }

  ThreadRecorderScope(const ThreadRecorderScope&) = delete;
  ThreadRecorderScope& operator=(const ThreadRecorderScope&) = delete;

 private:
  TraceRecorder* previous_;
};

/// RAII span against the current (thread-resolved) recorder. Args are
/// only materialized by the caller when tracing is on (check `armed()` /
/// use the two-phase pattern below); the disabled path is one relaxed
/// atomic load plus a thread-local read.
class ScopedTrace {
 public:
  ScopedTrace(const char* name, const char* cat,
              std::int32_t tid = TraceRecorder::kMainTrack)
      : rec_(&TraceRecorder::current()),
        name_(rec_->enabled() ? name : nullptr),
        cat_(cat),
        tid_(tid),
        start_us_(name_ ? rec_->now_us() : 0) {}

  ScopedTrace(const char* name, const char* cat, std::int32_t tid,
              std::vector<TraceArg> args)
      : ScopedTrace(name, cat, tid) {
    if (name_) args_ = std::move(args);
  }

  /// True when the span will actually be recorded — gate any expensive
  /// argument construction on this.
  [[nodiscard]] bool armed() const { return name_ != nullptr; }

  /// Attach/extend args after construction (e.g. values only known at
  /// scope end, like the iteration's residual norm).
  void add_arg(TraceArg arg) {
    if (name_) args_.push_back(std::move(arg));
  }

  ~ScopedTrace() {
    if (!name_) return;
    const double end = rec_->now_us();
    rec_->complete(name_, cat_, start_us_, end - start_us_, tid_,
                   std::move(args_));
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceRecorder* rec_;
  const char* name_;
  const char* cat_;
  std::int32_t tid_;
  double start_us_;
  std::vector<TraceArg> args_;
};

}  // namespace gaia::obs
