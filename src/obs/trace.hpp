/// \file trace.hpp
/// \brief Kernel-level trace recorder (the nsys/rocprof timeline analog).
///
/// The paper's evidence is timeline-shaped: nsys/rocprof screenshots
/// showing that aprod1/aprod2 dominate the iteration and that the four
/// aprod2 scatter kernels overlap in concurrent streams (SIV, SV-A).
/// This recorder produces the same artifact for our host backends: every
/// kernel launch, transfer and iteration becomes a span in a Chrome
/// trace-event JSON file (`chrome://tracing` / Perfetto loadable), with
/// stream ids mapped to timeline tracks and the launch configuration
/// attached as span arguments.
///
/// Cost contract: while disabled (the default), every instrumentation
/// site pays exactly one relaxed atomic load — the same discipline as
/// `util::Profiler`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gaia::obs {

/// One key/value annotation on a span ("args" in the trace-event
/// format). Values are stored pre-rendered as JSON fragments so the
/// writer needs no type dispatch.
class TraceArg {
 public:
  TraceArg(std::string key, const std::string& value);
  TraceArg(std::string key, const char* value);
  TraceArg(std::string key, double value);
  TraceArg(std::string key, std::int64_t value);
  TraceArg(std::string key, std::int32_t value)
      : TraceArg(std::move(key), static_cast<std::int64_t>(value)) {}
  TraceArg(std::string key, std::uint64_t value);

  [[nodiscard]] const std::string& key() const { return key_; }
  /// Value as a ready-to-emit JSON fragment (quoted iff string).
  [[nodiscard]] const std::string& json_value() const { return json_value_; }

 private:
  std::string key_;
  std::string json_value_;
};

/// One trace-event record. Phases used: 'X' (complete span), 'i'
/// (instant), 'C' (counter), 'M' (metadata, e.g. thread names).
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';
  double ts_us = 0;   ///< steady-clock microseconds since reset()
  double dur_us = 0;  ///< span duration ('X' only)
  std::int32_t tid = 0;
  std::vector<TraceArg> args;
};

/// Thread-safe append-only recorder for trace events.
class TraceRecorder {
 public:
  /// Track id of spans emitted from the caller's thread context (the
  /// LSQR driver loop); streams use their own ids (see Stream::id()).
  static constexpr std::int32_t kMainTrack = 0;

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Enabling also (re-)stamps the main-track thread name so an empty
  /// trace is still a valid, labelled timeline.
  void set_enabled(bool enabled);

  /// Microseconds since construction/reset — the trace time base.
  [[nodiscard]] double now_us() const;

  /// Record a completed span (no-op while disabled).
  void complete(std::string name, std::string cat, double ts_us,
                double dur_us, std::int32_t tid,
                std::vector<TraceArg> args = {});
  /// Record an instant event.
  void instant(std::string name, std::string cat, std::int32_t tid,
               std::vector<TraceArg> args = {});
  /// Record a counter sample (Perfetto renders these as counter tracks;
  /// used for per-iteration convergence telemetry).
  void counter(std::string name, double ts_us, double value);
  /// Name a track (trace-event "thread_name" metadata).
  void name_track(std::int32_t tid, const std::string& name);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Drop all events and restart the time base (enabled state kept).
  void reset();

  /// The full trace as a JSON document (Chrome trace-event format:
  /// {"traceEvents": [...], "displayTimeUnit": "ms"}).
  [[nodiscard]] std::string json() const;
  void write(std::ostream& os) const;
  void write(const std::string& path) const;

  /// Process-wide recorder used by the library's instrumentation.
  static TraceRecorder& global();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::set<std::int32_t> named_tracks_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// RAII span against the global recorder. Args are only materialized by
/// the caller when tracing is on (check `armed()` / use the two-phase
/// pattern below); the disabled path is one relaxed atomic load.
class ScopedTrace {
 public:
  ScopedTrace(const char* name, const char* cat,
              std::int32_t tid = TraceRecorder::kMainTrack)
      : name_(TraceRecorder::global().enabled() ? name : nullptr),
        cat_(cat),
        tid_(tid),
        start_us_(name_ ? TraceRecorder::global().now_us() : 0) {}

  ScopedTrace(const char* name, const char* cat, std::int32_t tid,
              std::vector<TraceArg> args)
      : ScopedTrace(name, cat, tid) {
    if (name_) args_ = std::move(args);
  }

  /// True when the span will actually be recorded — gate any expensive
  /// argument construction on this.
  [[nodiscard]] bool armed() const { return name_ != nullptr; }

  /// Attach/extend args after construction (e.g. values only known at
  /// scope end, like the iteration's residual norm).
  void add_arg(TraceArg arg) {
    if (name_) args_.push_back(std::move(arg));
  }

  ~ScopedTrace() {
    if (!name_) return;
    auto& rec = TraceRecorder::global();
    const double end = rec.now_us();
    rec.complete(name_, cat_, start_us_, end - start_us_, tid_,
                 std::move(args_));
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::int32_t tid_;
  double start_us_;
  std::vector<TraceArg> args_;
};

}  // namespace gaia::obs
