#include "obs/export.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>

#include "obs/perf_counters.hpp"
#include "util/error.hpp"
#include "util/framed_file.hpp"

namespace gaia::obs {

namespace {

/// OpenMetrics metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names
/// use dots as separators; everything else collapses to '_'.
std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// OpenMetrics label-value escaping: backslash, double-quote and
/// line-feed must be escaped inside the quoted value (the spec's three
/// mandatory escapes); everything else passes through verbatim.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string labels_of(const KernelSeriesName& k) {
  return "kernel=\"" + escape_label_value(k.kernel) + "\",backend=\"" +
         escape_label_value(k.backend) + "\",strategy=\"" +
         escape_label_value(k.strategy) + "\"";
}

/// One exposition family: the `# TYPE` header plus its sample lines
/// (OpenMetrics requires all samples of a family to be contiguous, so
/// rows are bucketed by family before rendering).
struct Family {
  std::string type;  ///< "counter" | "gauge" | "summary"
  std::vector<std::string> samples;
};

void add_row(std::map<std::string, Family>& families, const MetricRow& row) {
  KernelSeriesName k;
  const bool kernel_series = parse_kernel_series(row.name, k);
  const std::string labels = kernel_series ? labels_of(k) : std::string();
  const std::string family_name =
      kernel_series ? "gaia_kernel_" + sanitize(k.field)
                    : "gaia_" + sanitize(row.name);
  Family& fam = families[family_name];
  const auto sample = [&](const std::string& suffix,
                          const std::string& extra_labels, double value) {
    std::string line = family_name + suffix;
    std::string all = labels;
    if (!extra_labels.empty()) {
      if (!all.empty()) all += ',';
      all += extra_labels;
    }
    if (!all.empty()) line += '{' + all + '}';
    line += ' ' + fmt(value);
    fam.samples.push_back(std::move(line));
  };
  if (row.type == "counter") {
    fam.type = "counter";
    sample("_total", "", row.sum);
  } else if (row.type == "gauge") {
    fam.type = "gauge";
    sample("", "", row.last);
  } else {  // histogram -> OpenMetrics summary
    fam.type = "summary";
    sample("", "quantile=\"0.5\"", row.p50);
    sample("", "quantile=\"0.95\"", row.p95);
    sample("", "quantile=\"0.99\"", row.p99);
    sample("_count", "", static_cast<double>(row.count));
    sample("_sum", "", row.sum);
  }
}

}  // namespace

std::string to_openmetrics(const std::vector<MetricRow>& rows) {
  std::map<std::string, Family> families;
  for (const MetricRow& row : rows) add_row(families, row);
  std::ostringstream os;
  for (const auto& [name, fam] : families) {
    os << "# TYPE " << name << ' ' << fam.type << '\n';
    for (const std::string& line : fam.samples) os << line << '\n';
  }
  os << "# EOF\n";
  return os.str();
}

std::string MetricsRegistry::openmetrics() const {
  return to_openmetrics(snapshot());
}

void MetricsRegistry::write_openmetrics(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  GAIA_CHECK(f.good(), "cannot open metrics output: " + path);
  f << openmetrics();
  GAIA_CHECK(f.good(), "metrics write failed: " + path);
}

const std::string* OpenMetricsSample::label(const std::string& key) const {
  for (const auto& [k, v] : labels)
    if (k == key) return &v;
  return nullptr;
}

std::optional<std::vector<OpenMetricsSample>> parse_openmetrics(
    const std::string& text) {
  std::vector<OpenMetricsSample> out;
  std::istringstream is(text);
  std::string line;
  bool saw_eof = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == "# EOF") saw_eof = true;
      continue;
    }
    if (saw_eof) return std::nullopt;  // samples after the terminator
    OpenMetricsSample sample;
    std::size_t pos = line.find_first_of("{ ");
    if (pos == std::string::npos) return std::nullopt;
    sample.name = line.substr(0, pos);
    if (line[pos] == '{') {
      // Locate the closing brace outside any quoted label value ('}'
      // and ',' are legal inside values, and '"' may appear escaped).
      std::size_t close = std::string::npos;
      bool in_quotes = false;
      for (std::size_t c = pos + 1; c < line.size(); ++c) {
        const char ch = line[c];
        if (in_quotes) {
          if (ch == '\\')
            ++c;  // skip the escaped character
          else if (ch == '"')
            in_quotes = false;
        } else if (ch == '"') {
          in_quotes = true;
        } else if (ch == '}') {
          close = c;
          break;
        }
      }
      if (close == std::string::npos) return std::nullopt;
      std::string body = line.substr(pos + 1, close - pos - 1);
      std::size_t i = 0;
      while (i < body.size()) {
        const std::size_t eq = body.find("=\"", i);
        if (eq == std::string::npos) return std::nullopt;
        // Scan the quoted value unescaping \\, \" and \n (the label
        // escapes to_openmetrics emits); an unknown escape or an
        // unterminated value is malformed.
        std::string value;
        std::size_t j = eq + 2;
        bool closed = false;
        while (j < body.size()) {
          const char c = body[j];
          if (c == '"') {
            closed = true;
            ++j;
            break;
          }
          if (c == '\\') {
            if (j + 1 >= body.size()) return std::nullopt;
            const char esc = body[j + 1];
            if (esc == '\\')
              value.push_back('\\');
            else if (esc == '"')
              value.push_back('"');
            else if (esc == 'n')
              value.push_back('\n');
            else
              return std::nullopt;
            j += 2;
            continue;
          }
          value.push_back(c);
          ++j;
        }
        if (!closed) return std::nullopt;
        sample.labels.emplace_back(body.substr(i, eq - i), std::move(value));
        i = j;
        if (i < body.size()) {
          if (body[i] != ',') return std::nullopt;
          ++i;
        }
      }
      pos = close + 1;
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) return std::nullopt;
    char* parse_end = nullptr;
    sample.value = std::strtod(line.c_str() + pos, &parse_end);
    if (parse_end == line.c_str() + pos) return std::nullopt;
    out.push_back(std::move(sample));
  }
  if (!saw_eof) return std::nullopt;
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot JSON
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Strict cursor over the snapshot's own JSON subset (the framing
/// already guarantees the bytes are what we wrote; this guards logical
/// corruption and version skew) — the tuning-cache parser's idiom with
/// doubles added.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }
  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        c = text_[pos_++];
        if (c != '"' && c != '\\') return false;
      }
      out.push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool parse_number(double& out) {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }
  bool parse_bool(bool& out) {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      out = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out = false;
      pos_ += 5;
      return true;
    }
    return false;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

bool parse_metric_object(JsonCursor& cur, MetricRow& row) {
  if (!cur.consume('{')) return false;
  bool first = true;
  while (!cur.peek('}')) {
    if (!first && !cur.consume(',')) return false;
    first = false;
    std::string key;
    if (!cur.parse_string(key) || !cur.consume(':')) return false;
    double num = 0;
    if (key == "name") {
      if (!cur.parse_string(row.name)) return false;
    } else if (key == "type") {
      if (!cur.parse_string(row.type)) return false;
    } else if (key == "count") {
      if (!cur.parse_number(num) || num < 0) return false;
      row.count = static_cast<std::uint64_t>(num);
    } else if (key == "sum") {
      if (!cur.parse_number(row.sum)) return false;
    } else if (key == "min") {
      if (!cur.parse_number(row.min)) return false;
    } else if (key == "max") {
      if (!cur.parse_number(row.max)) return false;
    } else if (key == "last") {
      if (!cur.parse_number(row.last)) return false;
    } else if (key == "p50") {
      if (!cur.parse_number(row.p50)) return false;
    } else if (key == "p95") {
      if (!cur.parse_number(row.p95)) return false;
    } else if (key == "p99") {
      if (!cur.parse_number(row.p99)) return false;
    } else {
      return false;  // unknown key: strict
    }
  }
  return cur.consume('}') && !row.name.empty() && !row.type.empty();
}

constexpr const char* kSnapshotKind = "metrics snapshot";

struct GlobalSink {
  std::mutex mutex;
  std::string path;
  SnapshotMeta meta;
};

GlobalSink& sink() {
  static GlobalSink s;
  return s;
}

}  // namespace

std::string snapshot_json(const std::vector<MetricRow>& rows,
                          const SnapshotMeta& meta) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"version\":" << kSnapshotVersion << ",\"rank\":" << meta.rank
     << ",\"ranks\":" << meta.ranks << ",\"complete\":"
     << (meta.complete ? "true" : "false") << ",\"metrics\":[";
  bool first = true;
  for (const MetricRow& r : rows) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(r.name) << "\",\"type\":\"" << r.type
       << "\",\"count\":" << r.count << ",\"sum\":" << r.sum
       << ",\"min\":" << r.min << ",\"max\":" << r.max
       << ",\"last\":" << r.last << ",\"p50\":" << r.p50
       << ",\"p95\":" << r.p95 << ",\"p99\":" << r.p99 << '}';
  }
  os << "]}";
  return os.str();
}

std::optional<std::vector<MetricRow>> parse_snapshot_json(
    const std::string& text, SnapshotMeta* meta) {
  JsonCursor cur(text);
  if (!cur.consume('{')) return std::nullopt;
  std::optional<double> version;
  SnapshotMeta parsed_meta;
  std::vector<MetricRow> rows;
  bool saw_metrics = false;
  bool first = true;
  while (!cur.peek('}')) {
    if (!first && !cur.consume(',')) return std::nullopt;
    first = false;
    std::string key;
    if (!cur.parse_string(key) || !cur.consume(':')) return std::nullopt;
    double num = 0;
    if (key == "version") {
      if (!cur.parse_number(num)) return std::nullopt;
      version = num;
    } else if (key == "rank") {
      if (!cur.parse_number(num)) return std::nullopt;
      parsed_meta.rank = static_cast<int>(num);
    } else if (key == "ranks") {
      if (!cur.parse_number(num)) return std::nullopt;
      parsed_meta.ranks = static_cast<int>(num);
    } else if (key == "complete") {
      if (!cur.parse_bool(parsed_meta.complete)) return std::nullopt;
    } else if (key == "metrics") {
      if (!cur.consume('[')) return std::nullopt;
      saw_metrics = true;
      bool first_row = true;
      while (!cur.peek(']')) {
        if (!first_row && !cur.consume(',')) return std::nullopt;
        first_row = false;
        MetricRow row;
        if (!parse_metric_object(cur, row)) return std::nullopt;
        rows.push_back(std::move(row));
      }
      if (!cur.consume(']')) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (!cur.consume('}') || !cur.at_end()) return std::nullopt;
  if (!version || static_cast<int>(*version) != kSnapshotVersion ||
      !saw_metrics)
    return std::nullopt;
  if (meta) *meta = parsed_meta;
  return rows;
}

void write_snapshot_file(const std::string& path,
                         const std::vector<MetricRow>& rows,
                         const SnapshotMeta& meta) {
  util::write_framed_file(path, snapshot_json(rows, meta), kSnapshotKind);
}

std::vector<MetricRow> read_snapshot_file(const std::string& path,
                                          SnapshotMeta* meta) {
  const std::string payload = util::read_framed_file(path, kSnapshotKind);
  auto rows = parse_snapshot_json(payload, meta);
  GAIA_CHECK(rows.has_value(), "corrupt metrics snapshot '" + path +
                                   "': framed payload is not a version-" +
                                   std::to_string(kSnapshotVersion) +
                                   " snapshot");
  return std::move(*rows);
}

void set_global_snapshot_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(sink().mutex);
  sink().path = path;
  sink().meta = SnapshotMeta{};
}

std::string global_snapshot_path() {
  std::lock_guard<std::mutex> lock(sink().mutex);
  return sink().path;
}

void set_global_snapshot_meta(const SnapshotMeta& meta) {
  std::lock_guard<std::mutex> lock(sink().mutex);
  sink().meta = meta;
}

SnapshotMeta global_snapshot_meta() {
  std::lock_guard<std::mutex> lock(sink().mutex);
  return sink().meta;
}

void flush_global_snapshot() {
  std::string path;
  SnapshotMeta meta;
  {
    std::lock_guard<std::mutex> lock(sink().mutex);
    if (sink().path.empty()) return;
    path = sink().path;
    meta = sink().meta;
  }
  try {
    write_snapshot_file(path, MetricsRegistry::global().snapshot(), meta);
  } catch (const std::exception& e) {
    std::cerr << "metrics snapshot flush failed: " << e.what() << '\n';
  }
}

}  // namespace gaia::obs
