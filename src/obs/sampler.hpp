/// \file sampler.hpp
/// \brief Live telemetry: solver progress board + background sampler.
///
/// The metrics stack (obs/metrics, obs/export) is post-hoc — snapshots
/// are sealed at exit and at checkpoints, so a long solve is a black box
/// until it finishes. This file adds the *in-run* view:
///
///  * `ProgressBoard` — a tiny rank-keyed table of live solver state
///    (phase, iteration, residual norms) updated by the LSQR loops at
///    iteration granularity. Disabled it costs one relaxed atomic load
///    per update, the same contract as MetricsRegistry.
///  * `TelemetrySampler` — a background thread that every N ms snapshots
///    the board plus the MetricsRegistry into a bounded ring and streams
///    each sample as one JSONL object (`--telemetry-file` /
///    `GAIA_TELEMETRY`). The ring tail survives into postmortem bundles
///    (obs/flight_recorder), and the same cadence machinery drives the
///    periodic snapshot re-seal (`--metrics-every-s` /
///    `GAIA_METRICS_EVERY_S`) and the live stderr progress/ETA line.
///
/// One JSONL sample:
///   {"t_s":1.25,"sample":5,"progress":[{"rank":-1,"phase":"solve",
///    "iteration":42,"max_iterations":100,"rnorm":0.12,"arnorm":3e-4,
///    "elapsed_s":1.1,"eta_s":1.5}],"metrics":{"lsqr.iterations":42,...}}
///
/// `progress` carries one rank-tagged row per active solve (rank -1 =
/// single-process; the distributed solver registers one row per rank
/// thread). `metrics` maps each registry row to its headline scalar
/// (counter -> sum, gauge -> last, histogram -> p50) and is present only
/// while the registry is enabled.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gaia::obs {

/// Live per-rank solver state. Writers are the LSQR iteration loops
/// (single-process rank -1, one row per rank thread in dist_lsqr); the
/// reader is the sampler thread. Updates are mutex-protected — at
/// iteration granularity (>= tens of microseconds) the lock is noise,
/// and the disabled path never takes it.
class ProgressBoard {
 public:
  struct Row {
    int rank = -1;
    std::string phase;  ///< "generate"|"autotune"|"solve"|"refine"|...
    std::int64_t iteration = 0;
    std::int64_t max_iterations = 0;
    double rnorm = 0;
    double arnorm = 0;
    double elapsed_s = 0;  ///< since begin(rank); stamped by snapshot()
  };

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Registers (or restarts) the row for `rank`. No-op while disabled.
  void begin(int rank, std::int64_t max_iterations, std::string phase);
  /// Per-iteration update. No-op while disabled or before begin(rank).
  void update(int rank, std::int64_t iteration, double rnorm, double arnorm);
  /// Phase transition ("solve" -> "refine" -> "done", ...).
  void set_phase(int rank, std::string phase);
  /// Drops the row (a finished or dead rank disappears from samples).
  void end(int rank);

  [[nodiscard]] std::vector<Row> snapshot() const;
  void reset();

  /// The rank LSQR instrumentation attributes its updates to: -1 by
  /// default, overridden per thread by `ThreadRankScope` (the dist rank
  /// bodies install one, exactly like ThreadRecorderScope for traces).
  [[nodiscard]] static int thread_rank();
  static void set_thread_rank(int rank);

  static ProgressBoard& global();

 private:
  struct Slot {
    Row row;
    std::chrono::steady_clock::time_point start;
  };
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<int, Slot> slots_;
};

/// RAII attribution of this thread's progress updates to a rank.
class ThreadRankScope {
 public:
  explicit ThreadRankScope(int rank) : previous_(ProgressBoard::thread_rank()) {
    ProgressBoard::set_thread_rank(rank);
  }
  ~ThreadRankScope() { ProgressBoard::set_thread_rank(previous_); }

  ThreadRankScope(const ThreadRankScope&) = delete;
  ThreadRankScope& operator=(const ThreadRankScope&) = delete;

 private:
  int previous_;
};

struct SamplerConfig {
  /// JSONL stream destination; empty = ring only (samples are still
  /// taken and retained for postmortem bundles).
  std::string path;
  /// Sampling period. Clamped to >= 1.
  int period_ms = 250;
  /// Samples retained in the ring (oldest dropped beyond it).
  std::size_t ring_capacity = 4096;
  /// Render a live progress/ETA line to stderr each tick (\r-rewritten).
  bool progress_stderr = false;
  /// Re-seal the armed global metrics snapshot every this many seconds
  /// (0 = off) — the `--metrics-every-s` satellite rides the same timer.
  double snapshot_every_s = 0;
};

/// The background sampling thread. Construction starts it; destruction
/// (or stop()) joins it after one final sample and stream flush. At most
/// one sampler is registered as `active()` at a time — the postmortem
/// writer reads the ring tail from there.
class TelemetrySampler {
 public:
  explicit TelemetrySampler(SamplerConfig config);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Final sample + flush, then joins the thread. Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const SamplerConfig& config() const { return config_; }

  /// Newest `max_lines` ring entries, oldest first.
  [[nodiscard]] std::vector<std::string> ring_tail(
      std::size_t max_lines) const;

  /// The process-wide sampler, when one is running (nullptr otherwise).
  static TelemetrySampler* active();

 private:
  void run();
  /// Takes one sample: renders the JSONL line, pushes it into the ring
  /// and streams it. `final_tick` forces the progress line to newline.
  void tick(bool final_tick);

  SamplerConfig config_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_snapshot_flush_;
  mutable std::mutex ring_mutex_;
  std::deque<std::string> ring_;
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace gaia::obs
