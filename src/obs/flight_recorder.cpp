#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <utility>

#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/framed_file.hpp"
#include "util/json.hpp"

namespace fs = std::filesystem;

namespace gaia::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_number(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) v = 0;  // JSON has no inf/nan
  os << v;
}

/// Postmortem arming state (process-wide, mutex-protected — flushes run
/// from failure paths on arbitrary threads).
struct PostmortemState {
  std::mutex mutex;
  std::string dir;
  std::map<std::string, std::string> context;
};

PostmortemState& postmortem_state() {
  static PostmortemState state;
  return state;
}

std::string expect_string(const util::JsonValue& obj, const std::string& key,
                          const std::string& what) {
  const util::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string())
    throw Error("postmortem bundle: missing string '" + key + "' in " + what);
  return v->string;
}

}  // namespace

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

void FlightRecorder::record(std::string category, std::string name,
                            std::string detail, std::int64_t iteration,
                            int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  FlightEvent event;
  event.t_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            epoch_)
                  .count();
  event.seq = seq_++;
  event.rank = rank;
  event.iteration = iteration;
  event.category = std::move(category);
  event.name = std::move(name);
  event.detail = std::move(detail);
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {events_.begin(), events_.end()};
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void FlightRecorder::set_capacity(std::size_t max_events) {
  if (max_events == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = max_events;
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void FlightRecorder::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  seq_ = 0;
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void flight_event(const char* category, const char* name,
                  const std::string& detail, std::int64_t iteration,
                  int rank) {
  FlightRecorder::global().record(category, name, detail, iteration, rank);
}

// ---------------------------------------------------------------------------
// Postmortem arming
// ---------------------------------------------------------------------------

void set_postmortem_dir(const std::string& dir) {
  PostmortemState& state = postmortem_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.dir = dir;
}

std::string postmortem_dir() {
  PostmortemState& state = postmortem_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.dir;
}

void set_postmortem_context(const std::string& key, const std::string& value) {
  PostmortemState& state = postmortem_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (value.empty())
    state.context.erase(key);
  else
    state.context[key] = value;
}

void clear_postmortem_context() {
  PostmortemState& state = postmortem_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.context.clear();
}

std::map<std::string, std::string> postmortem_context() {
  PostmortemState& state = postmortem_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.context;
}

// ---------------------------------------------------------------------------
// Bundle collection
// ---------------------------------------------------------------------------

PostmortemBundle collect_postmortem(const PostmortemInfo& info,
                                    std::size_t trace_tail_events) {
  PostmortemBundle bundle;
  bundle.info = info;
  bundle.context = postmortem_context();

  FlightRecorder& flight = FlightRecorder::global();
  bundle.events = flight.events();
  bundle.events_dropped = flight.dropped();

  bundle.metrics = MetricsRegistry::global().snapshot();

  TraceRecorder& trace = TraceRecorder::current();
  bundle.trace_dropped = trace.dropped_events();
  std::vector<TraceEvent> trace_events = trace.events();
  const std::size_t n =
      std::min(trace_tail_events, trace_events.size());
  bundle.trace_tail.reserve(n);
  for (std::size_t i = trace_events.size() - n; i < trace_events.size();
       ++i) {
    const TraceEvent& e = trace_events[i];
    PostmortemTraceEvent t;
    t.name = e.name;
    t.cat = e.cat;
    t.phase = e.phase;
    t.ts_us = e.ts_us;
    t.dur_us = e.dur_us;
    bundle.trace_tail.push_back(std::move(t));
  }

  if (TelemetrySampler* sampler = TelemetrySampler::active())
    bundle.telemetry_tail = sampler->ring_tail(64);

  return bundle;
}

// ---------------------------------------------------------------------------
// Bundle JSON
// ---------------------------------------------------------------------------

std::string postmortem_json(const PostmortemBundle& bundle) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"version\":" << bundle.version << ",\"kind\":\"postmortem\"";
  os << ",\"info\":{\"reason\":\"" << json_escape(bundle.info.reason)
     << "\",\"detail\":\"" << json_escape(bundle.info.detail)
     << "\",\"rank\":" << bundle.info.rank
     << ",\"ranks\":" << bundle.info.ranks << '}';

  os << ",\"context\":{";
  bool first = true;
  for (const auto& [key, value] : bundle.context) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
  }
  os << '}';

  os << ",\"events_dropped\":" << bundle.events_dropped << ",\"events\":[";
  first = true;
  for (const FlightEvent& e : bundle.events) {
    if (!first) os << ',';
    first = false;
    os << "{\"t_s\":";
    append_number(os, e.t_s);
    os << ",\"seq\":" << e.seq << ",\"rank\":" << e.rank
       << ",\"iteration\":" << e.iteration << ",\"category\":\""
       << json_escape(e.category) << "\",\"name\":\"" << json_escape(e.name)
       << "\",\"detail\":\"" << json_escape(e.detail) << "\"}";
  }
  os << ']';

  os << ",\"metrics\":[";
  first = true;
  for (const MetricRow& m : bundle.metrics) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(m.name) << "\",\"type\":\""
       << json_escape(m.type) << "\",\"count\":" << m.count << ",\"sum\":";
    append_number(os, m.sum);
    os << ",\"min\":";
    append_number(os, m.min);
    os << ",\"max\":";
    append_number(os, m.max);
    os << ",\"last\":";
    append_number(os, m.last);
    os << ",\"p50\":";
    append_number(os, m.p50);
    os << ",\"p95\":";
    append_number(os, m.p95);
    os << ",\"p99\":";
    append_number(os, m.p99);
    os << '}';
  }
  os << ']';

  os << ",\"trace_dropped\":" << bundle.trace_dropped << ",\"trace_tail\":[";
  first = true;
  for (const PostmortemTraceEvent& t : bundle.trace_tail) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(t.name) << "\",\"cat\":\""
       << json_escape(t.cat) << "\",\"ph\":\"" << t.phase << "\",\"ts\":";
    append_number(os, t.ts_us);
    os << ",\"dur\":";
    append_number(os, t.dur_us);
    os << '}';
  }
  os << ']';

  os << ",\"telemetry_tail\":[";
  first = true;
  for (const std::string& line : bundle.telemetry_tail) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(line) << '"';
  }
  os << "]}";
  return std::move(os).str();
}

PostmortemBundle parse_postmortem_json(const std::string& text) {
  const util::JsonValue doc = util::parse_json(text);
  if (!doc.is_object())
    throw Error("postmortem bundle: top-level value is not an object");
  const int version =
      static_cast<int>(doc.number_or("version", -1));
  if (version != kPostmortemVersion)
    throw Error("postmortem bundle: unsupported version " +
                std::to_string(version));

  PostmortemBundle bundle;
  bundle.version = version;

  const util::JsonValue* info = doc.find("info");
  if (info == nullptr || !info->is_object())
    throw Error("postmortem bundle: missing 'info' object");
  bundle.info.reason = expect_string(*info, "reason", "info");
  bundle.info.detail = expect_string(*info, "detail", "info");
  bundle.info.rank = static_cast<int>(info->number_or("rank", -1));
  bundle.info.ranks = static_cast<int>(info->number_or("ranks", 1));

  if (const util::JsonValue* ctx = doc.find("context");
      ctx != nullptr && ctx->is_object()) {
    for (const auto& [key, value] : ctx->object) {
      if (!value.is_string())
        throw Error("postmortem bundle: context value for '" + key +
                    "' is not a string");
      bundle.context[key] = value.string;
    }
  }

  bundle.events_dropped =
      static_cast<std::uint64_t>(doc.number_or("events_dropped", 0));
  if (const util::JsonValue* events = doc.find("events");
      events != nullptr && events->is_array()) {
    bundle.events.reserve(events->array.size());
    for (const util::JsonValue& e : events->array) {
      if (!e.is_object())
        throw Error("postmortem bundle: event is not an object");
      FlightEvent event;
      event.t_s = e.number_or("t_s", 0);
      event.seq = static_cast<std::uint64_t>(e.number_or("seq", 0));
      event.rank = static_cast<int>(e.number_or("rank", -1));
      event.iteration =
          static_cast<std::int64_t>(e.number_or("iteration", -1));
      event.category = expect_string(e, "category", "event");
      event.name = expect_string(e, "name", "event");
      event.detail = expect_string(e, "detail", "event");
      bundle.events.push_back(std::move(event));
    }
  }

  if (const util::JsonValue* metrics = doc.find("metrics");
      metrics != nullptr && metrics->is_array()) {
    bundle.metrics.reserve(metrics->array.size());
    for (const util::JsonValue& m : metrics->array) {
      if (!m.is_object())
        throw Error("postmortem bundle: metric row is not an object");
      MetricRow row;
      row.name = expect_string(m, "name", "metric row");
      row.type = expect_string(m, "type", "metric row");
      row.count = static_cast<std::uint64_t>(m.number_or("count", 0));
      row.sum = m.number_or("sum", 0);
      row.min = m.number_or("min", 0);
      row.max = m.number_or("max", 0);
      row.last = m.number_or("last", 0);
      row.p50 = m.number_or("p50", 0);
      row.p95 = m.number_or("p95", 0);
      row.p99 = m.number_or("p99", 0);
      bundle.metrics.push_back(std::move(row));
    }
  }

  bundle.trace_dropped =
      static_cast<std::uint64_t>(doc.number_or("trace_dropped", 0));
  if (const util::JsonValue* tail = doc.find("trace_tail");
      tail != nullptr && tail->is_array()) {
    bundle.trace_tail.reserve(tail->array.size());
    for (const util::JsonValue& t : tail->array) {
      if (!t.is_object())
        throw Error("postmortem bundle: trace event is not an object");
      PostmortemTraceEvent event;
      event.name = expect_string(t, "name", "trace event");
      event.cat = expect_string(t, "cat", "trace event");
      const std::string phase = expect_string(t, "ph", "trace event");
      event.phase = phase.empty() ? 'X' : phase[0];
      event.ts_us = t.number_or("ts", 0);
      event.dur_us = t.number_or("dur", 0);
      bundle.trace_tail.push_back(std::move(event));
    }
  }

  if (const util::JsonValue* tail = doc.find("telemetry_tail");
      tail != nullptr && tail->is_array()) {
    bundle.telemetry_tail.reserve(tail->array.size());
    for (const util::JsonValue& line : tail->array) {
      if (!line.is_string())
        throw Error("postmortem bundle: telemetry line is not a string");
      bundle.telemetry_tail.push_back(line.string);
    }
  }

  return bundle;
}

// ---------------------------------------------------------------------------
// Bundle files
// ---------------------------------------------------------------------------

void write_postmortem_file(const std::string& path,
                           const PostmortemBundle& bundle) {
  util::write_framed_file(path, postmortem_json(bundle),
                          "postmortem bundle");
}

PostmortemBundle read_postmortem_file(const std::string& path) {
  return parse_postmortem_json(
      util::read_framed_file(path, "postmortem bundle"));
}

std::string flush_postmortem(const PostmortemInfo& info,
                             const std::string& filename) {
  const std::string dir = postmortem_dir();
  if (dir.empty()) return "";
  try {
    std::string name = filename;
    if (name.empty()) {
      name = info.rank >= 0
                 ? "postmortem.rank" + std::to_string(info.rank) + ".json"
                 : "postmortem.json";
    }
    fs::create_directories(dir);
    const std::string path = (fs::path(dir) / name).string();
    write_postmortem_file(path, collect_postmortem(info));
    std::cerr << "[gaia] postmortem bundle sealed: " << path << " (reason "
              << info.reason << ")\n";
    return path;
  } catch (const std::exception& e) {
    std::cerr << "[gaia] postmortem flush failed: " << e.what() << '\n';
    return "";
  }
}

}  // namespace gaia::obs
