/// \file flight_recorder.hpp
/// \brief Always-on structured event ring + postmortem bundles.
///
/// The trace recorder answers "where did the time go"; this ring answers
/// "what happened before it died". It keeps the last few thousand
/// *structured* events — state transitions, faults, retries, health
/// verdicts, failovers, checkpoint and comm lifecycle — at a cost low
/// enough to stay enabled in production (events are rare: a mutexed
/// push per state change, nothing per iteration).
///
/// Every failure path flushes a **postmortem bundle**: the event tail,
/// the sealed metrics snapshot rows, the trace tail, the telemetry ring
/// tail (obs/sampler) and a config/tuning fingerprint, CRC32-framed
/// (util/framed_file) so a torn bundle is rejected loudly. The paths:
///
///  * `run_solver` — any exception unwinding out (SdcError, failover
///    exhaustion, anything) flushes `postmortem.json`;
///  * `dist_lsqr` — each rank body flushes `postmortem.rank<N>.json` on
///    RankDeath / WorldPoisoned / any escape, and the driver flushes the
///    cluster bundle when SdcError or an unrecovered death escapes;
///  * `gaia-chaos` — flushes one bundle per campaign so every injected
///    failure mode leaves a diagnosable artifact.
///
/// Arming is explicit (`--postmortem-dir` / `GAIA_POSTMORTEM`); while
/// disarmed the flush is a no-op and the ring still serves tests.
/// `tools/gaia-postmortem` loads a bundle and prints timeline +
/// diagnosis under the shared 0/1/2 exit contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace gaia::obs {

/// One black-box event. `category` is a small closed-ish vocabulary
/// ("state", "resilience", "health", "failover", "comm", "fault");
/// `name` the specific transition ("checkpoint.written", "sdc.detected",
/// "rank_death.recovered", ...).
struct FlightEvent {
  double t_s = 0;  ///< seconds since recorder construction/reset
  std::uint64_t seq = 0;
  int rank = -1;
  std::int64_t iteration = -1;
  std::string category;
  std::string name;
  std::string detail;
};

/// Bounded, thread-safe, always-enabled event ring.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 2048;

  void record(std::string category, std::string name,
              std::string detail = "", std::int64_t iteration = -1,
              int rank = -1);

  /// Oldest-to-newest events currently retained.
  [[nodiscard]] std::vector<FlightEvent> events() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const;
  /// 0 is invalid and ignored; shrinking drops oldest immediately.
  void set_capacity(std::size_t max_events);
  /// Drop everything, zero the counters, restart the time base.
  void reset();

  static FlightRecorder& global();

 private:
  mutable std::mutex mutex_;
  std::deque<FlightEvent> events_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Convenience shim for instrumentation sites (records into global()).
void flight_event(const char* category, const char* name,
                  const std::string& detail = "",
                  std::int64_t iteration = -1, int rank = -1);

// ---------------------------------------------------------------------------
// Postmortem bundles
// ---------------------------------------------------------------------------

inline constexpr int kPostmortemVersion = 1;

/// What failed. `reason` is a short machine-matchable class
/// ("sdc-unrepaired", "rank-death", "world-poisoned", "exception",
/// chaos campaign statuses, ...); `detail` the human string (usually
/// the exception's what()).
struct PostmortemInfo {
  std::string reason;
  std::string detail;
  int rank = -1;  ///< -1 = process/cluster-level bundle
  int ranks = 1;
};

/// Compact copy of one trace event carried in the bundle tail.
struct PostmortemTraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';
  double ts_us = 0;
  double dur_us = 0;
};

/// A parsed bundle (see read_postmortem_file).
struct PostmortemBundle {
  int version = kPostmortemVersion;
  PostmortemInfo info;
  /// Config/tuning fingerprint key -> value (set_postmortem_context).
  std::map<std::string, std::string> context;
  std::vector<FlightEvent> events;
  std::uint64_t events_dropped = 0;
  std::vector<MetricRow> metrics;
  std::vector<PostmortemTraceEvent> trace_tail;
  std::uint64_t trace_dropped = 0;
  /// Raw telemetry JSONL lines (newest samples of the sampler ring).
  std::vector<std::string> telemetry_tail;
};

/// Arms/disarms the process-wide bundle directory (empty = off,
/// created on first flush).
void set_postmortem_dir(const std::string& dir);
[[nodiscard]] std::string postmortem_dir();

/// Records one key of the config/tuning fingerprint stamped into every
/// subsequent bundle (empty value erases the key).
void set_postmortem_context(const std::string& key,
                            const std::string& value);
void clear_postmortem_context();
[[nodiscard]] std::map<std::string, std::string> postmortem_context();

/// Assembles the bundle from the live recorders. `trace_tail_events`
/// bounds the trace tail (taken from TraceRecorder::current()).
[[nodiscard]] PostmortemBundle collect_postmortem(
    const PostmortemInfo& info, std::size_t trace_tail_events = 64);

/// Bundle payload as JSON (before framing) and its strict inverse.
[[nodiscard]] std::string postmortem_json(const PostmortemBundle& bundle);
[[nodiscard]] PostmortemBundle parse_postmortem_json(
    const std::string& text);  ///< throws gaia::Error when malformed

/// Seals a bundle to `path` (CRC-framed, atomic replace). Throws on I/O
/// failure.
void write_postmortem_file(const std::string& path,
                           const PostmortemBundle& bundle);
/// Reads and verifies a bundle; throws gaia::Error on a missing file, a
/// torn/bit-rotted frame, or malformed/version-mismatched JSON.
[[nodiscard]] PostmortemBundle read_postmortem_file(const std::string& path);

/// The failure-path entry point: collects and seals a bundle into the
/// armed directory as `filename` (default: `postmortem.json`, or
/// `postmortem.rank<N>.json` when info.rank >= 0). No-op returning ""
/// while disarmed; errors go to stderr, never throw (runs from catch
/// blocks and unwind paths). Returns the path written.
std::string flush_postmortem(const PostmortemInfo& info,
                             const std::string& filename = "");

}  // namespace gaia::obs
