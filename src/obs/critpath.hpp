/// \file critpath.hpp
/// \brief Critical-path / comm-exposure analysis over merged traces.
///
/// The paper's scaling argument (SIV) hinges on how much of each LSQR
/// iteration is communication that the compute cannot hide: the
/// per-iteration allreduce is the serial term that caps multi-GPU/rank
/// speedup. This analyzer turns a merged multi-rank trace
/// (obs/trace_merge) into those numbers, per iteration:
///
///  * **critical path** — the cluster-wide iteration wall window,
///    `max_r end(r) - min_r start(r)`;
///  * **comm exposure** — collective time *not* overlapped by compute
///    (spans of category "kernel"/"transfer") on the same rank; the
///    fraction of the critical path this represents is the headline
///    `comm.exposure_fraction` metric;
///  * **skew** — spread of per-rank iteration starts (load imbalance
///    showing up as barrier wait);
///  * **imbalance** — `1 - mean/max` of per-rank compute time;
///  * **overlap headroom** — how much exposed comm could be hidden by
///    the compute that already exists (`min(exposed, compute)`, max
///    over ranks);
///  * **wait p50/p95** — entry-barrier wait across all collectives and
///    ranks (the `*.wait` child spans).
///
/// `check_gates` applies perfgate-style thresholds so CI can fail a
/// regression in comm exposure or skew the same way it fails a slowdown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_merge.hpp"

namespace gaia::obs {

/// Per-iteration cross-rank timing digest. All times are microseconds
/// on the merged (world-epoch) clock.
struct IterationStats {
  std::int64_t itn = 0;
  int ranks_seen = 0;       ///< ranks contributing an iteration span
  double start_us = 0;      ///< min over ranks of iteration start
  double end_us = 0;        ///< max over ranks of iteration end
  double critical_path_us = 0;
  double skew_us = 0;       ///< max - min of per-rank iteration starts
  double comm_us_max = 0;   ///< max over ranks: collective time in iter
  double exposed_us_max = 0;  ///< max over ranks: comm not overlapped
  double exposure_fraction = 0;  ///< exposed_us_max / critical_path_us
  double imbalance = 0;     ///< 1 - mean/max of per-rank compute time
  double overlap_headroom_us = 0;  ///< max over ranks: min(exposed, compute)
  double wait_p50_us = 0;   ///< entry-wait median across collectives/ranks
  double wait_p95_us = 0;
};

/// Whole-trace analysis result.
struct CritpathReport {
  int n_ranks = 1;
  std::vector<int> ranks_present;
  bool complete = false;  ///< every iteration saw every rank
  std::uint64_t dropped_events = 0;
  std::vector<IterationStats> iterations;
  double total_critical_path_us = 0;  ///< sum of per-iteration paths
  double total_exposed_us = 0;        ///< sum of per-iteration exposed max
  double exposure_fraction = 0;       ///< total_exposed / total_path
  double max_skew_us = 0;             ///< worst iteration skew
  double wait_p50_us = 0;             ///< global entry-wait percentiles
  double wait_p95_us = 0;
};

/// Gate thresholds (negative = gate disabled), perfgate-style.
struct CritpathOptions {
  double max_exposure_fraction = -1;  ///< fail if overall exposure exceeds
  double max_skew_us = -1;            ///< fail if any iteration's skew exceeds
  bool allow_partial = false;  ///< accept traces where ranks are missing
};

/// Analyzes a (merged) trace document. Requires at least one
/// "lsqr.iteration" span; throws gaia::Error otherwise, or when the
/// document is torn in a way validate_trace would reject (callers are
/// expected to have validated first).
[[nodiscard]] CritpathReport analyze_critpath(const TraceDoc& doc);

/// Applies the thresholds; returns human-readable violations (empty =
/// all gates pass). An incomplete trace is itself a violation unless
/// `allow_partial` is set.
[[nodiscard]] std::vector<std::string> check_gates(
    const CritpathReport& report, const CritpathOptions& options);

/// Fixed-width per-iteration table plus a summary block.
[[nodiscard]] std::string to_string(const CritpathReport& report);

/// Machine-readable form of the report.
[[nodiscard]] std::string to_json(const CritpathReport& report);

}  // namespace gaia::obs
