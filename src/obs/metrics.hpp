/// \file metrics.hpp
/// \brief Metrics registry: counters, gauges and latency histograms.
///
/// Complements the trace recorder with aggregate accounting the paper's
/// analysis needs but a timeline does not surface well: H2D/D2H transfer
/// totals (the "copy once, iterate device-resident" contract, SIV-a),
/// CAS-loop retry counts (the MI250X `-munsafe-fp-atomics` story, SV-B),
/// allreduce traffic, and LSQR per-iteration latency quantiles.
///
/// Concurrency and cost contract:
///  * while disabled (default), instrumentation sites pay one relaxed
///    atomic load;
///  * while enabled, counters are single relaxed fetch-adds and
///    histograms take a short mutex;
///  * metric objects are created once and never invalidated — call sites
///    may cache `Counter&` across `reset()` (reset zeroes, not deletes).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gaia::obs {

/// Monotonic event/byte counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (e.g. the current residual norm).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Sample distribution with exact quantiles. Samples are kept verbatim
/// up to a cap (the workloads here record at most thousands of
/// iterations); beyond the cap new samples still update count/sum/
/// min/max/last but no longer refine the quantiles.
class Histogram {
 public:
  static constexpr std::size_t kMaxSamples = 1 << 20;

  void record(double v);

  struct Summary {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double last = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };
  /// Zero-sample contract: with no samples recorded (fresh or reset),
  /// every field is exactly 0 — the +/-inf min/max sentinels used
  /// internally never leak into a Summary, a snapshot row or the CSV.
  [[nodiscard]] Summary summary() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double last_ = 0;
};

/// One row of a registry snapshot (and of the CSV export).
struct MetricRow {
  std::string name;
  std::string type;  ///< "counter" | "gauge" | "histogram"
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double last = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Named metric store. Lookup is mutex-protected (cache the returned
/// reference at hot sites); metric identities are stable for the
/// registry's lifetime.
class MetricsRegistry {
 public:
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Find-or-create. Throws gaia::Error if `name` already exists with a
  /// different metric type.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// All metrics, sorted by name.
  [[nodiscard]] std::vector<MetricRow> snapshot() const;

  /// CSV export: name,type,count,sum,min,max,last,p50,p95,p99.
  [[nodiscard]] std::string csv() const;
  void write_csv(const std::string& path) const;

  /// OpenMetrics text exposition of the current snapshot (see
  /// obs/export.hpp for the name/label mapping).
  [[nodiscard]] std::string openmetrics() const;
  void write_openmetrics(const std::string& path) const;

  /// Zero every metric (identities survive; cached references stay
  /// valid). Does not change the enabled flag.
  void reset();

  /// The session-boundary reset: zeroes every metric regardless of
  /// whether any output is armed. obs::Session calls this at
  /// construction *unconditionally*, so gauges published by an earlier
  /// run in the same process (e.g. `scratch.arena.*`) never leak into a
  /// later run's export when metrics get enabled mid-process.
  void reset_all();

  /// Process-wide registry used by the library's instrumentation.
  static MetricsRegistry& global();

 private:
  struct Entry {
    // Exactly one is non-null; tag implied.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

// ---------------------------------------------------------------------------
// Well-known instrumentation hooks (cached lookups, enabled-gated)
// ---------------------------------------------------------------------------

/// Transfer accounting — incremented at the exact points where
/// DeviceContext counts bytes, so the CSV totals match the device
/// accounting bit for bit.
void count_h2d(std::uint64_t bytes);
void count_d2h(std::uint64_t bytes);

/// CAS-loop retry accounting for the aprod2 scatter atomics.
void count_cas(std::uint64_t attempts, std::uint64_t retries);

}  // namespace gaia::obs
