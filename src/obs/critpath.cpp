#include "obs/critpath.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace gaia::obs {

namespace {

struct Interval {
  double lo, hi;
};

/// Clips `iv` to [lo, hi]; empty intervals come back with lo >= hi.
Interval clip(Interval iv, double lo, double hi) {
  return {std::max(iv.lo, lo), std::min(iv.hi, hi)};
}

/// Sorts and merges overlapping intervals in place.
void normalize(std::vector<Interval>& ivs) {
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::size_t out = 0;
  for (const Interval& iv : ivs) {
    if (iv.hi <= iv.lo) continue;
    if (out > 0 && iv.lo <= ivs[out - 1].hi)
      ivs[out - 1].hi = std::max(ivs[out - 1].hi, iv.hi);
    else
      ivs[out++] = iv;
  }
  ivs.resize(out);
}

double total_length(const std::vector<Interval>& ivs) {
  double sum = 0;
  for (const Interval& iv : ivs) sum += iv.hi - iv.lo;
  return sum;
}

/// Length of `ivs` not covered by the normalized `cover` set.
double uncovered_length(const std::vector<Interval>& ivs,
                        const std::vector<Interval>& cover) {
  double exposed = 0;
  for (const Interval& iv : ivs) {
    double cursor = iv.lo;
    for (const Interval& c : cover) {
      if (c.hi <= cursor) continue;
      if (c.lo >= iv.hi) break;
      exposed += std::max(0.0, std::min(c.lo, iv.hi) - cursor);
      cursor = std::max(cursor, c.hi);
      if (cursor >= iv.hi) break;
    }
    exposed += std::max(0.0, iv.hi - cursor);
  }
  return exposed;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

/// Top-level collective spans carry bare names ("allreduce", "bcast",
/// "barrier"); their wait/exchange children are dotted.
bool is_comm_parent(const ParsedEvent& e) {
  return e.phase == 'X' && e.cat == "comm" &&
         e.name.find('.') == std::string::npos;
}

bool is_wait_child(const ParsedEvent& e) {
  return e.phase == 'X' && e.cat == "comm" && e.name.size() > 5 &&
         e.name.compare(e.name.size() - 5, 5, ".wait") == 0;
}

bool is_compute(const ParsedEvent& e) {
  return e.phase == 'X' && (e.cat == "kernel" || e.cat == "transfer");
}

std::int64_t iteration_number(const ParsedEvent& e) {
  if (const util::JsonValue* itn = e.args.find("itn");
      itn != nullptr && itn->is_number())
    return static_cast<std::int64_t>(itn->number);
  return -1;
}

}  // namespace

CritpathReport analyze_critpath(const TraceDoc& doc) {
  // Pass 1: per-rank iteration windows, keyed by iteration number.
  struct RankIteration {
    double start = 0, end = 0;
  };
  std::map<std::int64_t, std::map<std::int64_t, RankIteration>> iterations;
  std::set<std::int64_t> pids;
  for (const ParsedEvent& e : doc.events) {
    if (e.phase != 'X') continue;
    pids.insert(e.pid);
    if (e.name == "lsqr.iteration" && e.cat == "lsqr") {
      const std::int64_t itn = iteration_number(e);
      if (itn < 0) throw Error("critpath: lsqr.iteration span without itn arg");
      iterations[itn][e.pid] = {e.ts_us, e.ts_us + e.dur_us};
    }
  }
  if (iterations.empty())
    throw Error(
        "critpath: no lsqr.iteration spans in trace (was the run traced "
        "with iteration instrumentation?)");

  CritpathReport report;
  report.n_ranks = doc.n_ranks;
  report.dropped_events = doc.dropped_events;
  if (doc.merged) {
    report.ranks_present = doc.source_ranks;
  } else {
    for (const std::int64_t pid : pids)
      report.ranks_present.push_back(static_cast<int>(pid));
  }
  const int expected =
      doc.merged ? doc.n_ranks : static_cast<int>(report.ranks_present.size());

  std::vector<double> all_waits;
  report.complete = true;
  for (const auto& [itn, by_rank] : iterations) {
    IterationStats s;
    s.itn = itn;
    s.ranks_seen = static_cast<int>(by_rank.size());
    if (s.ranks_seen < expected) report.complete = false;

    double min_start = 0, max_start = 0, max_end = 0;
    bool first = true;
    for (const auto& [pid, window] : by_rank) {
      if (first) {
        min_start = max_start = window.start;
        max_end = window.end;
        first = false;
      } else {
        min_start = std::min(min_start, window.start);
        max_start = std::max(max_start, window.start);
        max_end = std::max(max_end, window.end);
      }
    }
    s.start_us = min_start;
    s.end_us = max_end;
    s.critical_path_us = max_end - min_start;
    s.skew_us = max_start - min_start;

    // Pass 2 per iteration: clip each rank's comm and compute spans to
    // its iteration window, then subtract compute cover from comm.
    double compute_sum = 0, compute_max = 0;
    std::vector<double> iter_waits;
    for (const auto& [pid, window] : by_rank) {
      std::vector<Interval> comm, compute;
      for (const ParsedEvent& e : doc.events) {
        if (e.pid != pid) continue;
        const Interval iv =
            clip({e.ts_us, e.ts_us + e.dur_us}, window.start, window.end);
        if (iv.hi <= iv.lo) continue;
        if (is_comm_parent(e)) comm.push_back(iv);
        else if (is_compute(e)) compute.push_back(iv);
        if (is_wait_child(e)) {
          iter_waits.push_back(e.dur_us);
          all_waits.push_back(e.dur_us);
        }
      }
      normalize(comm);
      normalize(compute);
      const double comm_len = total_length(comm);
      const double compute_len = total_length(compute);
      const double exposed = uncovered_length(comm, compute);
      s.comm_us_max = std::max(s.comm_us_max, comm_len);
      s.exposed_us_max = std::max(s.exposed_us_max, exposed);
      s.overlap_headroom_us =
          std::max(s.overlap_headroom_us, std::min(exposed, compute_len));
      compute_sum += compute_len;
      compute_max = std::max(compute_max, compute_len);
    }
    if (s.critical_path_us > 0)
      s.exposure_fraction = s.exposed_us_max / s.critical_path_us;
    if (compute_max > 0 && s.ranks_seen > 0)
      s.imbalance =
          1.0 - compute_sum / (static_cast<double>(s.ranks_seen) * compute_max);
    s.wait_p50_us = percentile(iter_waits, 0.50);
    s.wait_p95_us = percentile(iter_waits, 0.95);

    report.total_critical_path_us += s.critical_path_us;
    report.total_exposed_us += s.exposed_us_max;
    report.max_skew_us = std::max(report.max_skew_us, s.skew_us);
    report.iterations.push_back(s);
  }
  if (report.total_critical_path_us > 0)
    report.exposure_fraction =
        report.total_exposed_us / report.total_critical_path_us;
  report.wait_p50_us = percentile(all_waits, 0.50);
  report.wait_p95_us = percentile(all_waits, 0.95);
  return report;
}

std::vector<std::string> check_gates(const CritpathReport& report,
                                     const CritpathOptions& options) {
  std::vector<std::string> violations;
  char buf[160];
  if (!report.complete && !options.allow_partial)
    violations.emplace_back(
        "trace is partial: not every iteration has spans from all ranks "
        "(pass --allow-partial to accept)");
  if (options.max_exposure_fraction >= 0 &&
      report.exposure_fraction > options.max_exposure_fraction) {
    std::snprintf(buf, sizeof(buf),
                  "comm exposure %.4f exceeds gate %.4f",
                  report.exposure_fraction, options.max_exposure_fraction);
    violations.emplace_back(buf);
  }
  if (options.max_skew_us >= 0 && report.max_skew_us > options.max_skew_us) {
    std::snprintf(buf, sizeof(buf),
                  "iteration start skew %.1f us exceeds gate %.1f us",
                  report.max_skew_us, options.max_skew_us);
    violations.emplace_back(buf);
  }
  return violations;
}

std::string to_string(const CritpathReport& report) {
  std::ostringstream os;
  char line[256];
  os << "critical-path report: " << report.ranks_present.size() << "/"
     << report.n_ranks << " ranks, " << report.iterations.size()
     << " iterations" << (report.complete ? "" : " [PARTIAL]");
  if (report.dropped_events > 0)
    os << ", " << report.dropped_events << " dropped events";
  os << "\n";
  std::snprintf(line, sizeof(line), "%5s %12s %10s %10s %10s %8s %9s %9s\n",
                "itn", "critpath_us", "comm_us", "exposed_us", "skew_us",
                "imbal", "waitp50", "waitp95");
  os << line;
  for (const IterationStats& s : report.iterations) {
    std::snprintf(line, sizeof(line),
                  "%5lld %12.1f %10.1f %10.1f %10.1f %8.3f %9.1f %9.1f\n",
                  static_cast<long long>(s.itn), s.critical_path_us,
                  s.comm_us_max, s.exposed_us_max, s.skew_us, s.imbalance,
                  s.wait_p50_us, s.wait_p95_us);
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "total critical path %.1f us, exposed comm %.1f us "
                "(exposure %.4f), max skew %.1f us, wait p50/p95 %.1f/%.1f "
                "us\n",
                report.total_critical_path_us, report.total_exposed_us,
                report.exposure_fraction, report.max_skew_us,
                report.wait_p50_us, report.wait_p95_us);
  os << line;
  return os.str();
}

std::string to_json(const CritpathReport& report) {
  auto num = [](double v) {
    util::JsonValue j;
    j.kind = util::JsonValue::Kind::kNumber;
    j.number = v;
    return j.dump();
  };
  std::ostringstream os;
  os << "{\"ranks\":" << report.n_ranks << ",\"ranks_present\":[";
  for (std::size_t i = 0; i < report.ranks_present.size(); ++i) {
    if (i) os << ',';
    os << report.ranks_present[i];
  }
  os << "],\"complete\":" << (report.complete ? "true" : "false")
     << ",\"dropped_events\":" << report.dropped_events
     << ",\"total_critical_path_us\":" << num(report.total_critical_path_us)
     << ",\"total_exposed_us\":" << num(report.total_exposed_us)
     << ",\"exposure_fraction\":" << num(report.exposure_fraction)
     << ",\"max_skew_us\":" << num(report.max_skew_us)
     << ",\"wait_p50_us\":" << num(report.wait_p50_us)
     << ",\"wait_p95_us\":" << num(report.wait_p95_us) << ",\"iterations\":[";
  for (std::size_t i = 0; i < report.iterations.size(); ++i) {
    const IterationStats& s = report.iterations[i];
    if (i) os << ',';
    os << "{\"itn\":" << s.itn << ",\"ranks_seen\":" << s.ranks_seen
       << ",\"start_us\":" << num(s.start_us)
       << ",\"end_us\":" << num(s.end_us)
       << ",\"critical_path_us\":" << num(s.critical_path_us)
       << ",\"skew_us\":" << num(s.skew_us)
       << ",\"comm_us_max\":" << num(s.comm_us_max)
       << ",\"exposed_us_max\":" << num(s.exposed_us_max)
       << ",\"exposure_fraction\":" << num(s.exposure_fraction)
       << ",\"imbalance\":" << num(s.imbalance)
       << ",\"overlap_headroom_us\":" << num(s.overlap_headroom_us)
       << ",\"wait_p50_us\":" << num(s.wait_p50_us)
       << ",\"wait_p95_us\":" << num(s.wait_p95_us) << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace gaia::obs
