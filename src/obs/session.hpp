/// \file session.hpp
/// \brief One-line enablement of tracing/metrics for binaries.
///
/// The paper's measurement flow is "run the solver under nsys, open the
/// timeline". Ours is:
///
///   $ GAIA_TRACE=trace.json GAIA_METRICS=metrics.csv ./gaia_solver ...
///
/// A `Session` placed at the top of main() reads the environment (or
/// explicit CLI-provided paths), arms the global recorder/registry, and
/// writes the output files when it goes out of scope.
#pragma once

#include <string>

namespace gaia::obs {

/// Environment variables honored by `Session::from_env()`.
inline constexpr const char* kTraceEnv = "GAIA_TRACE";
inline constexpr const char* kMetricsEnv = "GAIA_METRICS";

/// RAII enablement + flush of the global TraceRecorder/MetricsRegistry.
/// Empty paths leave the corresponding subsystem untouched, so an
/// un-instrumented run stays at the one-relaxed-load cost.
class Session {
 public:
  /// Explicit paths (CLI flags). Empty string = off.
  Session(std::string trace_path, std::string metrics_path);

  /// Paths from GAIA_TRACE / GAIA_METRICS (unset/empty = off). Explicit
  /// paths passed here override the environment.
  static Session from_env(std::string trace_override = "",
                          std::string metrics_override = "");

  /// Writes the outputs and disables collection. Errors are reported to
  /// stderr, never thrown (runs from destructors).
  ~Session();

  /// Write/refresh the output files now (outputs stay armed).
  void flush();

  [[nodiscard]] bool tracing() const { return !trace_path_.empty(); }
  [[nodiscard]] bool metrics() const { return !metrics_path_.empty(); }
  [[nodiscard]] const std::string& trace_path() const { return trace_path_; }
  [[nodiscard]] const std::string& metrics_path() const {
    return metrics_path_;
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&& other) noexcept;

 private:
  std::string trace_path_;
  std::string metrics_path_;
  bool armed_ = false;
};

}  // namespace gaia::obs
