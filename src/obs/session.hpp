/// \file session.hpp
/// \brief One-line enablement of tracing/metrics for binaries.
///
/// The paper's measurement flow is "run the solver under nsys, open the
/// timeline". Ours is:
///
///   $ GAIA_TRACE=trace.json GAIA_METRICS=metrics.csv ./gaia_solver ...
///
/// A `Session` placed at the top of main() reads the environment (or
/// explicit CLI-provided paths), arms the global recorder/registry, and
/// writes the output files when it goes out of scope. Four metric
/// outputs exist: the CSV (`GAIA_METRICS`, whose format can be switched
/// with `GAIA_METRICS_FMT=csv|openmetrics|json`), a dedicated
/// OpenMetrics exposition (`--metrics-openmetrics` /
/// `GAIA_METRICS_OPENMETRICS`), and a CRC-sealed JSON snapshot
/// (`--metrics-snapshot` / `GAIA_METRICS_SNAPSHOT`) that is also
/// re-sealed on every checkpoint via the global snapshot sink.
#pragma once

#include <memory>
#include <string>

namespace gaia::obs {

class TelemetrySampler;

/// Environment variables honored by `Session::from_env()`.
inline constexpr const char* kTraceEnv = "GAIA_TRACE";
inline constexpr const char* kTraceCapacityEnv = "GAIA_TRACE_CAPACITY";
inline constexpr const char* kMetricsEnv = "GAIA_METRICS";
inline constexpr const char* kMetricsFmtEnv = "GAIA_METRICS_FMT";
inline constexpr const char* kOpenMetricsEnv = "GAIA_METRICS_OPENMETRICS";
inline constexpr const char* kSnapshotEnv = "GAIA_METRICS_SNAPSHOT";
inline constexpr const char* kTelemetryEnv = "GAIA_TELEMETRY";
inline constexpr const char* kTelemetryEveryMsEnv = "GAIA_TELEMETRY_EVERY_MS";
inline constexpr const char* kProgressEnv = "GAIA_PROGRESS";
inline constexpr const char* kMetricsEverySEnv = "GAIA_METRICS_EVERY_S";
inline constexpr const char* kPostmortemEnv = "GAIA_POSTMORTEM";

/// The continuous-telemetry half of a session (PR 10): live JSONL
/// sampling, the stderr progress line, periodic snapshot re-sealing and
/// the postmortem bundle directory. All off by default; the sampler
/// thread starts only when one of the first four is requested.
struct SessionExtras {
  std::string telemetry_path;   ///< JSONL stream (--telemetry-file)
  int telemetry_every_ms = 0;   ///< 0 = env/default (250 ms)
  bool progress_stderr = false; ///< live \r progress/ETA line
  double metrics_every_s = 0;   ///< periodic snapshot seal (0 = off)
  std::string postmortem_dir;   ///< arm obs::flush_postmortem ("" = off)
};

/// Format of the `GAIA_METRICS` output file.
enum class MetricsFormat { kCsv, kOpenMetrics, kJson };

/// RAII enablement + flush of the global TraceRecorder/MetricsRegistry.
/// Empty paths leave the corresponding subsystem untouched, so an
/// un-instrumented run stays at the one-relaxed-load cost. Construction
/// always calls MetricsRegistry::reset_all(): a later solver run in the
/// same process must not inherit stale gauges (`scratch.arena.*`, ...)
/// from a previous one.
class Session {
 public:
  /// Explicit paths (CLI flags). Empty string = off.
  Session(std::string trace_path, std::string metrics_path,
          std::string openmetrics_path = "", std::string snapshot_path = "",
          MetricsFormat metrics_format = MetricsFormat::kCsv,
          SessionExtras extras = {});

  /// Paths from GAIA_TRACE / GAIA_METRICS / GAIA_METRICS_OPENMETRICS /
  /// GAIA_METRICS_SNAPSHOT (unset/empty = off), format from
  /// GAIA_METRICS_FMT (unknown value throws), telemetry/postmortem from
  /// GAIA_TELEMETRY / GAIA_TELEMETRY_EVERY_MS / GAIA_PROGRESS /
  /// GAIA_METRICS_EVERY_S / GAIA_POSTMORTEM. Explicit paths/extras
  /// passed here override the environment.
  static Session from_env(std::string trace_override = "",
                          std::string metrics_override = "",
                          std::string openmetrics_override = "",
                          std::string snapshot_override = "",
                          SessionExtras extras_override = {});

  /// Writes the outputs and disables collection. Errors are reported to
  /// stderr, never thrown (runs from destructors).
  ~Session();

  /// Write/refresh the output files now (outputs stay armed).
  void flush();

  [[nodiscard]] bool tracing() const { return !trace_path_.empty(); }
  /// True when any metrics output (CSV, OpenMetrics or snapshot) is
  /// armed — i.e. the registry is collecting.
  [[nodiscard]] bool metrics() const {
    return !metrics_path_.empty() || !openmetrics_path_.empty() ||
           !snapshot_path_.empty();
  }
  [[nodiscard]] const std::string& trace_path() const { return trace_path_; }
  [[nodiscard]] const std::string& metrics_path() const {
    return metrics_path_;
  }
  [[nodiscard]] const std::string& openmetrics_path() const {
    return openmetrics_path_;
  }
  [[nodiscard]] const std::string& snapshot_path() const {
    return snapshot_path_;
  }
  [[nodiscard]] MetricsFormat metrics_format() const {
    return metrics_format_;
  }
  [[nodiscard]] const SessionExtras& extras() const { return extras_; }
  /// The sampler thread this session owns (nullptr when no telemetry,
  /// progress line or periodic seal was requested).
  [[nodiscard]] TelemetrySampler* sampler() const { return sampler_.get(); }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&& other) noexcept;

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string openmetrics_path_;
  std::string snapshot_path_;
  MetricsFormat metrics_format_ = MetricsFormat::kCsv;
  SessionExtras extras_;
  std::unique_ptr<TelemetrySampler> sampler_;
  bool armed_ = false;
};

}  // namespace gaia::obs
