#include "obs/session.hpp"

#include <cstdlib>
#include <exception>
#include <iostream>
#include <utility>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace gaia::obs {

Session::Session(std::string trace_path, std::string metrics_path,
                 std::string openmetrics_path, std::string snapshot_path,
                 MetricsFormat metrics_format, SessionExtras extras)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)),
      openmetrics_path_(std::move(openmetrics_path)),
      snapshot_path_(std::move(snapshot_path)),
      metrics_format_(metrics_format),
      extras_(std::move(extras)),
      armed_(true) {
  // Unconditional, like the registry reset below: a fresh session must
  // restart the trace time base even when tracing stays off — otherwise
  // a later session that *does* trace inherits events and a clock epoch
  // from before this one.
  TraceRecorder::global().reset();
  if (const char* cap = std::getenv(kTraceCapacityEnv); cap && *cap) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cap, &end, 10);
    if (end == cap || *end != '\0' || v == 0)
      throw Error("invalid " + std::string(kTraceCapacityEnv) + " value '" +
                  std::string(cap) + "' (expected a positive event count)");
    TraceRecorder::global().set_capacity(static_cast<std::size_t>(v));
  }
  if (tracing()) TraceRecorder::global().set_enabled(true);
  // Unconditional: a fresh session never inherits metric values from a
  // previous run in this process, even when no output is armed yet.
  MetricsRegistry::global().reset_all();
  if (metrics()) MetricsRegistry::global().set_enabled(true);
  // Arm the process-wide snapshot sink so checkpoint writes (and the
  // distributed solver's cluster aggregation) can re-seal the snapshot
  // without a reference to this session.
  set_global_snapshot_path(snapshot_path_);
  // Session boundary for the black box too: the flight ring, the
  // postmortem fingerprint and the progress board all restart here so
  // a bundle never mixes two runs' histories.
  FlightRecorder::global().reset();
  clear_postmortem_context();
  ProgressBoard::global().reset();
  set_postmortem_dir(extras_.postmortem_dir);
  // A metrics re-seal cadence only makes sense with a snapshot armed.
  if (extras_.metrics_every_s > 0 && snapshot_path_.empty())
    std::cerr << "[gaia] --metrics-every-s armed without a snapshot path; "
                 "periodic seals will be no-ops\n";
  const bool wants_sampler = !extras_.telemetry_path.empty() ||
                             extras_.progress_stderr ||
                             extras_.metrics_every_s > 0;
  if (wants_sampler) {
    SamplerConfig cfg;
    cfg.path = extras_.telemetry_path;
    cfg.period_ms = extras_.telemetry_every_ms > 0 ? extras_.telemetry_every_ms
                                                   : 250;
    cfg.progress_stderr = extras_.progress_stderr;
    cfg.snapshot_every_s = extras_.metrics_every_s;
    sampler_ = std::make_unique<TelemetrySampler>(cfg);
  }
}

namespace {

/// Strictly-positive numeric env value; throws naming the variable on
/// garbage (the kTraceCapacityEnv discipline).
double positive_env_number(const char* var) {
  const char* v = std::getenv(var);
  if (!v || !*v) return 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || !(parsed > 0))
    throw Error("invalid " + std::string(var) + " value '" + std::string(v) +
                "' (expected a positive number)");
  return parsed;
}

}  // namespace

Session Session::from_env(std::string trace_override,
                          std::string metrics_override,
                          std::string openmetrics_override,
                          std::string snapshot_override,
                          SessionExtras extras_override) {
  auto env_or = [](const char* var, std::string explicit_path) {
    if (!explicit_path.empty()) return explicit_path;
    const char* v = std::getenv(var);
    return std::string(v ? v : "");
  };
  SessionExtras extras = std::move(extras_override);
  extras.telemetry_path =
      env_or(kTelemetryEnv, std::move(extras.telemetry_path));
  if (extras.telemetry_every_ms <= 0)
    extras.telemetry_every_ms =
        static_cast<int>(positive_env_number(kTelemetryEveryMsEnv));
  if (!extras.progress_stderr) {
    const char* v = std::getenv(kProgressEnv);
    extras.progress_stderr = v && *v && std::string(v) != "0";
  }
  if (extras.metrics_every_s <= 0)
    extras.metrics_every_s = positive_env_number(kMetricsEverySEnv);
  extras.postmortem_dir =
      env_or(kPostmortemEnv, std::move(extras.postmortem_dir));
  MetricsFormat format = MetricsFormat::kCsv;
  if (const char* fmt = std::getenv(kMetricsFmtEnv); fmt && *fmt) {
    const std::string f(fmt);
    if (f == "csv")
      format = MetricsFormat::kCsv;
    else if (f == "openmetrics")
      format = MetricsFormat::kOpenMetrics;
    else if (f == "json")
      format = MetricsFormat::kJson;
    else
      throw Error("unknown " + std::string(kMetricsFmtEnv) + " value '" + f +
                  "' (expected csv | openmetrics | json)");
  }
  return Session(env_or(kTraceEnv, std::move(trace_override)),
                 env_or(kMetricsEnv, std::move(metrics_override)),
                 env_or(kOpenMetricsEnv, std::move(openmetrics_override)),
                 env_or(kSnapshotEnv, std::move(snapshot_override)), format,
                 std::move(extras));
}

Session::Session(Session&& other) noexcept
    : trace_path_(std::move(other.trace_path_)),
      metrics_path_(std::move(other.metrics_path_)),
      openmetrics_path_(std::move(other.openmetrics_path_)),
      snapshot_path_(std::move(other.snapshot_path_)),
      metrics_format_(other.metrics_format_),
      extras_(std::move(other.extras_)),
      sampler_(std::move(other.sampler_)),
      armed_(other.armed_) {
  other.armed_ = false;
}

void Session::flush() {
  if (!armed_) return;
  try {
    if (tracing()) TraceRecorder::global().write(trace_path_);
    auto& reg = MetricsRegistry::global();
    if (!metrics_path_.empty()) {
      switch (metrics_format_) {
        case MetricsFormat::kCsv:
          reg.write_csv(metrics_path_);
          break;
        case MetricsFormat::kOpenMetrics:
          reg.write_openmetrics(metrics_path_);
          break;
        case MetricsFormat::kJson:
          write_snapshot_file(metrics_path_, reg.snapshot(),
                              global_snapshot_meta());
          break;
      }
    }
    if (!openmetrics_path_.empty()) reg.write_openmetrics(openmetrics_path_);
    if (!snapshot_path_.empty()) flush_global_snapshot();
  } catch (const std::exception& e) {
    std::cerr << "observability flush failed: " << e.what() << '\n';
  }
}

Session::~Session() {
  if (!armed_) return;
  // Stop the sampler first: its final tick must still see an enabled
  // registry, and the outputs below should include its last seal.
  sampler_.reset();
  flush();
  if (tracing()) TraceRecorder::global().set_enabled(false);
  if (metrics()) MetricsRegistry::global().set_enabled(false);
  set_global_snapshot_path("");
  set_postmortem_dir("");
  armed_ = false;
}

}  // namespace gaia::obs
