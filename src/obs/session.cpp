#include "obs/session.hpp"

#include <cstdlib>
#include <exception>
#include <iostream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gaia::obs {

Session::Session(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)),
      armed_(true) {
  if (tracing()) {
    TraceRecorder::global().reset();
    TraceRecorder::global().set_enabled(true);
  }
  if (metrics()) {
    MetricsRegistry::global().reset();
    MetricsRegistry::global().set_enabled(true);
  }
}

Session Session::from_env(std::string trace_override,
                          std::string metrics_override) {
  auto env_or = [](const char* var, std::string explicit_path) {
    if (!explicit_path.empty()) return explicit_path;
    const char* v = std::getenv(var);
    return std::string(v ? v : "");
  };
  return Session(env_or(kTraceEnv, std::move(trace_override)),
                 env_or(kMetricsEnv, std::move(metrics_override)));
}

Session::Session(Session&& other) noexcept
    : trace_path_(std::move(other.trace_path_)),
      metrics_path_(std::move(other.metrics_path_)),
      armed_(other.armed_) {
  other.armed_ = false;
}

void Session::flush() {
  if (!armed_) return;
  try {
    if (tracing()) TraceRecorder::global().write(trace_path_);
    if (metrics()) MetricsRegistry::global().write_csv(metrics_path_);
  } catch (const std::exception& e) {
    std::cerr << "observability flush failed: " << e.what() << '\n';
  }
}

Session::~Session() {
  if (!armed_) return;
  flush();
  if (tracing()) TraceRecorder::global().set_enabled(false);
  if (metrics()) MetricsRegistry::global().set_enabled(false);
  armed_ = false;
}

}  // namespace gaia::obs
