/// \file trace_merge.hpp
/// \brief Per-rank trace parsing, validation and multi-rank merging.
///
/// A distributed run emits one Chrome trace-event JSON file per rank
/// (`trace.rank<N>.json`), each on its own clock (microseconds since the
/// rank recorder's creation) but carrying an `epoch_offset_us` header —
/// the offset onto the World's shared construction epoch, the in-process
/// stand-in for the startup clock exchange a real MPI launcher performs.
/// The merger applies those offsets and concatenates the ranks into one
/// multi-process timeline (`pid` = rank) that Perfetto renders with one
/// process group per rank — the artifact behind the paper's nsys/rocprof
/// overlap screenshots, extended across ranks.
///
/// Parsing is *strict*: a torn or malformed file throws `gaia::Error`
/// instead of yielding a silently truncated timeline, and
/// `validate_trace` enforces the structural invariants downstream
/// analysis (obs/critpath) relies on — spans nest or are disjoint per
/// track, durations are non-negative, instants/counters are
/// time-ordered per track.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace gaia::obs {

/// One parsed trace event (mirror of the emitted record; `args` keeps
/// the raw JSON tree so arbitrary annotations round-trip).
struct ParsedEvent {
  std::string name;
  std::string cat;
  char phase = 'X';
  double ts_us = 0;
  double dur_us = 0;
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  util::JsonValue args;  ///< object when present, null otherwise
};

/// One trace document: the header fields the recorder writes into
/// `otherData` plus the event list in file order.
struct TraceDoc {
  int rank = -1;    ///< -1 for plain single-process or merged documents
  int n_ranks = 1;  ///< world size claimed by the header
  double epoch_offset_us = 0;
  std::uint64_t dropped_events = 0;
  bool merged = false;             ///< document produced by merge_traces
  std::vector<int> source_ranks;   ///< ranks folded in (merged only)
  std::vector<ParsedEvent> events;
};

/// Parses one trace document. Throws gaia::Error on malformed JSON,
/// missing `traceEvents`, events missing required fields, or phases
/// outside the set this recorder emits ('X','i','I','C','M') — a 'B'
/// without its 'E' can't slip through because begin/end phases are
/// rejected outright.
[[nodiscard]] TraceDoc parse_trace_json(const std::string& text);

/// Reads and parses a trace file (throws on I/O failure too).
[[nodiscard]] TraceDoc parse_trace_file(const std::string& path);

/// Structural validation: finite timestamps, non-negative durations,
/// 'X' spans nest-or-disjoint per (pid,tid), 'i'/'C' events time-ordered
/// per (pid,tid) in file order. Throws gaia::Error naming the first
/// violating event.
void validate_trace(const TraceDoc& doc);

/// Folds per-rank documents into one timeline: every event's timestamp
/// is shifted by its document's `epoch_offset_us` and its pid forced to
/// the document's rank. Requires at least one document, a rank id on
/// every document, distinct ranks, and an agreed world size; throws
/// otherwise. The result's `dropped_events` is the sum over ranks and
/// `source_ranks` lists what was folded in (callers decide whether a
/// partial merge — fewer documents than `n_ranks` — is acceptable).
[[nodiscard]] TraceDoc merge_traces(const std::vector<TraceDoc>& docs);

/// Renders a (typically merged) document back to Chrome trace-event
/// JSON, header included.
[[nodiscard]] std::string trace_json(const TraceDoc& doc);

/// trace_json to a file.
void write_trace(const TraceDoc& doc, const std::string& path);

}  // namespace gaia::obs
