#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace gaia::obs {

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  last_ = v;
  if (samples_.size() < kMaxSamples) samples_.push_back(v);
}

namespace {
double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  // Nearest-rank on the sorted sample set.
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}
}  // namespace

Histogram::Summary Histogram::summary() const {
  std::vector<double> samples;
  Summary s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Zero-sample case: return the default all-zero Summary before
    // touching min_/max_, whose +/-inf sentinels must never escape.
    if (count_ == 0) return s;
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.last = last_;
    samples = samples_;
  }
  std::sort(samples.begin(), samples.end());
  s.p50 = percentile(samples, 0.50);
  s.p95 = percentile(samples, 0.95);
  s.p99 = percentile(samples, 0.99);
  return s;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  last_ = 0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[name];
  if (!e.counter) {
    GAIA_CHECK(!e.gauge && !e.histogram,
               "metric '" + name + "' already registered with another type");
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[name];
  if (!e.gauge) {
    GAIA_CHECK(!e.counter && !e.histogram,
               "metric '" + name + "' already registered with another type");
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[name];
  if (!e.histogram) {
    GAIA_CHECK(!e.counter && !e.gauge,
               "metric '" + name + "' already registered with another type");
    e.histogram = std::make_unique<Histogram>();
  }
  return *e.histogram;
}

std::vector<MetricRow> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricRow> rows;
  rows.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricRow row;
    row.name = name;
    if (e.counter) {
      row.type = "counter";
      row.count = e.counter->value();
      row.sum = static_cast<double>(e.counter->value());
      row.last = row.sum;
    } else if (e.gauge) {
      row.type = "gauge";
      row.count = 1;
      row.last = e.gauge->value();
      row.sum = row.last;
    } else if (e.histogram) {
      // summary() already guarantees all-zero fields at count == 0, so
      // the row needs no sentinel guard of its own.
      const auto s = e.histogram->summary();
      row.type = "histogram";
      row.count = s.count;
      row.sum = s.sum;
      row.min = s.min;
      row.max = s.max;
      row.last = s.last;
      row.p50 = s.p50;
      row.p95 = s.p95;
      row.p99 = s.p99;
    }
    rows.push_back(std::move(row));
  }
  return rows;  // std::map iteration is already name-sorted
}

std::string MetricsRegistry::csv() const {
  std::ostringstream os;
  os << "name,type,count,sum,min,max,last,p50,p95,p99\n";
  os.precision(17);
  for (const MetricRow& r : snapshot()) {
    os << r.name << ',' << r.type << ',' << r.count << ',' << r.sum << ','
       << r.min << ',' << r.max << ',' << r.last << ',' << r.p50 << ','
       << r.p95 << ',' << r.p99 << '\n';
  }
  return os.str();
}

void MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  GAIA_CHECK(f.good(), "cannot open metrics output: " + path);
  f << csv();
  GAIA_CHECK(f.good(), "metrics write failed: " + path);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

void MetricsRegistry::reset_all() { reset(); }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void count_h2d(std::uint64_t bytes) {
  auto& reg = MetricsRegistry::global();
  if (!reg.enabled()) return;
  static Counter& total = reg.counter("transfer.h2d_bytes");
  static Counter& calls = reg.counter("transfer.h2d_count");
  total.add(bytes);
  calls.add(1);
}

void count_d2h(std::uint64_t bytes) {
  auto& reg = MetricsRegistry::global();
  if (!reg.enabled()) return;
  static Counter& total = reg.counter("transfer.d2h_bytes");
  static Counter& calls = reg.counter("transfer.d2h_count");
  total.add(bytes);
  calls.add(1);
}

void count_cas(std::uint64_t attempts, std::uint64_t retries) {
  auto& reg = MetricsRegistry::global();
  if (!reg.enabled()) return;
  static Counter& ops = reg.counter("atomic.cas_ops");
  static Counter& retry = reg.counter("atomic.cas_retries");
  ops.add(attempts);
  retry.add(retries);
}

}  // namespace gaia::obs
