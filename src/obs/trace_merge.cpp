#include "obs/trace_merge.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace gaia::obs {

namespace {

using util::JsonValue;

[[noreturn]] void fail(const std::string& what) {
  throw Error("trace: " + what);
}

double require_number(const JsonValue& obj, const char* key,
                      const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number())
    fail(where + ": missing or non-numeric \"" + key + "\"");
  return v->number;
}

std::string require_string(const JsonValue& obj, const char* key,
                           const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string())
    fail(where + ": missing or non-string \"" + key + "\"");
  return v->string;
}

ParsedEvent parse_event(const JsonValue& v, std::size_t index) {
  const std::string where = "event #" + std::to_string(index);
  if (!v.is_object()) fail(where + ": not an object");
  ParsedEvent e;
  e.name = require_string(v, "name", where);
  e.cat = require_string(v, "cat", where);
  const std::string ph = require_string(v, "ph", where);
  if (ph.size() != 1) fail(where + ": phase must be a single character");
  e.phase = ph[0];
  // The recorder emits only complete spans, instants, counters and
  // metadata. Anything else — notably unmatched 'B'/'E' begin/end pairs
  // from a torn writer — is rejected.
  if (e.phase != 'X' && e.phase != 'i' && e.phase != 'I' &&
      e.phase != 'C' && e.phase != 'M')
    fail(where + ": unsupported phase '" + ph + "'");
  e.ts_us = require_number(v, "ts", where);
  e.pid = static_cast<std::int64_t>(require_number(v, "pid", where));
  e.tid = static_cast<std::int64_t>(require_number(v, "tid", where));
  if (e.phase == 'X') e.dur_us = require_number(v, "dur", where);
  if (const JsonValue* args = v.find("args")) {
    if (!args->is_object()) fail(where + ": \"args\" is not an object");
    e.args = *args;
  }
  return e;
}

}  // namespace

TraceDoc parse_trace_json(const std::string& text) {
  const JsonValue root = util::parse_json(text);
  if (!root.is_object()) fail("document root is not an object");
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array())
    fail("missing \"traceEvents\" array");

  TraceDoc doc;
  if (const JsonValue* other = root.find("otherData")) {
    if (!other->is_object()) fail("\"otherData\" is not an object");
    doc.rank = static_cast<int>(other->number_or("rank", -1));
    doc.n_ranks = static_cast<int>(other->number_or("ranks", 1));
    doc.epoch_offset_us = other->number_or("epoch_offset_us", 0);
    doc.dropped_events =
        static_cast<std::uint64_t>(other->number_or("dropped_events", 0));
    if (const JsonValue* merged = other->find("merged"))
      doc.merged = merged->is_bool() && merged->boolean;
    if (const JsonValue* ranks = other->find("source_ranks");
        ranks != nullptr && ranks->is_array()) {
      for (const JsonValue& r : ranks->array)
        if (r.is_number()) doc.source_ranks.push_back(static_cast<int>(r.number));
    }
  }
  doc.events.reserve(events->array.size());
  for (std::size_t i = 0; i < events->array.size(); ++i)
    doc.events.push_back(parse_event(events->array[i], i));
  return doc;
}

TraceDoc parse_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) fail("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  if (f.bad()) fail("read failed for " + path);
  try {
    return parse_trace_json(buf.str());
  } catch (const Error& e) {
    fail(path + ": " + e.what());
  }
}

void validate_trace(const TraceDoc& doc) {
  // Per-track state: a stack of open-span end times (nest check) and the
  // last instant/counter timestamp (order check).
  struct TrackState {
    std::vector<double> span_ends;
    double last_point_ts = -1;
  };
  // Boundary ties are legitimate (the wait child of a collective ends
  // exactly where the exchange child begins), so comparisons get a
  // half-microsecond grace.
  constexpr double kTolUs = 0.5;

  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<const ParsedEvent*>>
      spans_by_track;
  std::map<std::pair<std::int64_t, std::int64_t>, TrackState> tracks;

  for (std::size_t i = 0; i < doc.events.size(); ++i) {
    const ParsedEvent& e = doc.events[i];
    const std::string where =
        "event #" + std::to_string(i) + " (\"" + e.name + "\")";
    if (!std::isfinite(e.ts_us)) fail(where + ": non-finite timestamp");
    if (e.phase == 'X') {
      if (!std::isfinite(e.dur_us) || e.dur_us < 0)
        fail(where + ": negative or non-finite duration");
      spans_by_track[{e.pid, e.tid}].push_back(&e);
    } else if (e.phase == 'i' || e.phase == 'I' || e.phase == 'C') {
      TrackState& t = tracks[{e.pid, e.tid}];
      if (e.ts_us + kTolUs < t.last_point_ts)
        fail(where + ": timestamp moves backwards on its track");
      t.last_point_ts = std::max(t.last_point_ts, e.ts_us);
    }
  }

  // Spans on one track must nest or be disjoint — a partially
  // overlapping pair means interleaved writers or a corrupted file.
  for (auto& [track, spans] : spans_by_track) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const ParsedEvent* a, const ParsedEvent* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;  // parents first
                     });
    std::vector<double> open;  // end times of enclosing spans
    for (const ParsedEvent* s : spans) {
      while (!open.empty() && open.back() <= s->ts_us + kTolUs)
        open.pop_back();
      const double end = s->ts_us + s->dur_us;
      if (!open.empty() && end > open.back() + kTolUs)
        fail("span \"" + s->name + "\" on pid " + std::to_string(track.first) +
             " tid " + std::to_string(track.second) +
             " partially overlaps an enclosing span");
      open.push_back(end);
    }
  }
}

TraceDoc merge_traces(const std::vector<TraceDoc>& docs) {
  if (docs.empty()) fail("merge: no input documents");
  TraceDoc out;
  out.merged = true;
  out.rank = -1;
  out.n_ranks = docs.front().n_ranks;
  std::set<int> seen;
  std::size_t total = 0;
  for (const TraceDoc& d : docs) total += d.events.size();
  out.events.reserve(total);
  for (const TraceDoc& d : docs) {
    if (d.rank < 0) fail("merge: input document has no rank identity");
    if (d.n_ranks != out.n_ranks)
      fail("merge: world-size mismatch (" + std::to_string(d.n_ranks) +
           " vs " + std::to_string(out.n_ranks) + ")");
    if (!seen.insert(d.rank).second)
      fail("merge: duplicate rank " + std::to_string(d.rank));
    out.source_ranks.push_back(d.rank);
    out.dropped_events += d.dropped_events;
    for (const ParsedEvent& e : d.events) {
      ParsedEvent shifted = e;
      shifted.pid = d.rank;
      shifted.ts_us += d.epoch_offset_us;
      out.events.push_back(std::move(shifted));
    }
  }
  std::sort(out.source_ranks.begin(), out.source_ranks.end());
  return out;
}

std::string trace_json(const TraceDoc& doc) {
  // Reuse the JSON value renderer for string escaping and number
  // formatting so merged files obey the same conventions as the
  // per-rank writer.
  auto str = [](const std::string& s) {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.string = s;
    return v.dump();
  };
  auto num = [](double v) {
    JsonValue j;
    j.kind = JsonValue::Kind::kNumber;
    j.number = v;
    return j.dump();
  };
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"rank\":" << doc.rank
     << ",\"ranks\":" << doc.n_ranks
     << ",\"epoch_offset_us\":" << num(doc.epoch_offset_us)
     << ",\"dropped_events\":" << doc.dropped_events;
  if (doc.merged) {
    os << ",\"merged\":true,\"source_ranks\":[";
    for (std::size_t i = 0; i < doc.source_ranks.size(); ++i) {
      if (i) os << ',';
      os << doc.source_ranks[i];
    }
    os << ']';
  }
  os << "},\"traceEvents\":[";
  for (std::size_t i = 0; i < doc.events.size(); ++i) {
    const ParsedEvent& e = doc.events[i];
    if (i) os << ',';
    os << "{\"name\":" << str(e.name) << ",\"cat\":" << str(e.cat)
       << ",\"ph\":\"" << e.phase << "\",\"ts\":" << num(e.ts_us)
       << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (e.phase == 'X') os << ",\"dur\":" << num(e.dur_us);
    if (e.args.is_object()) os << ",\"args\":" << e.args.dump();
    os << '}';
  }
  os << "]}";
  return os.str();
}

void write_trace(const TraceDoc& doc, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f.good()) fail("cannot open output: " + path);
  f << trace_json(doc);
  f.flush();
  if (!f.good()) fail("write failed: " + path);
}

}  // namespace gaia::obs
