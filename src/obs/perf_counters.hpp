/// \file perf_counters.hpp
/// \brief Derived hardware-style counters per (kernel, backend, strategy).
///
/// A vendor profiler reports bytes moved, FLOPs, atomic traffic and
/// achieved bandwidth per kernel; this layer derives the same numbers
/// for every registry-dispatched launch from the cost-model shapes
/// (rows x nnz structure of the live system) plus the measured wall
/// time, and records them into the global MetricsRegistry under a
/// structured name scheme the exporters understand:
///
///   kernel.<kernel>.<backend>.<strategy>.launches        counter
///   kernel.<kernel>.<backend>.<strategy>.bytes           counter
///   kernel.<kernel>.<backend>.<strategy>.flops           counter
///   kernel.<kernel>.<backend>.<strategy>.atomic_updates  counter
///   kernel.<kernel>.<backend>.<strategy>.time_seconds    histogram
///   kernel.<kernel>.<backend>.<strategy>.bandwidth_bytes_per_s  gauge
///
/// `strategy` is "atomic"/"privatized" for the scatter kernels and
/// "none" for the gathers. Every entry point is enabled-gated: with the
/// registry off the cost is one relaxed load at the call site.
#pragma once

#include <cstdint>
#include <string>

namespace gaia::obs {

/// One executed kernel launch with its derived counters.
struct KernelSample {
  std::string kernel;    ///< region name, e.g. "aprod2_att"
  std::string backend;   ///< e.g. "gpusim"
  std::string strategy;  ///< "atomic" | "privatized" | "none"
  std::uint64_t bytes = 0;           ///< HBM traffic estimate
  std::uint64_t flops = 0;           ///< FP operations
  std::uint64_t atomic_updates = 0;  ///< hardware atomic RMWs issued
  double seconds = 0;                ///< measured wall time
};

/// Records a launch: bumps the counters, records the time histogram and
/// refreshes the effective-bandwidth gauge (bytes / seconds). No-op
/// while the registry is disabled.
void record_kernel_sample(const KernelSample& sample);

/// Wall time only — autotuner trial launches feed the same per-kernel
/// time histograms without contributing traffic counters (a trial's
/// shape is not the shape the solve runs, but its timing is a real
/// launch of the real kernel).
void record_kernel_time(const std::string& kernel, const std::string& backend,
                        const std::string& strategy, double seconds);

/// Stream-overlap ratio of one aprod2 pass: sum of the per-kernel wall
/// times over the pass wall time (≈1 serialized, →4 perfectly
/// overlapped). Recorded as gauge `aprod2.stream_overlap_ratio` plus
/// histogram `aprod2.stream_overlap_ratio_hist`.
void record_stream_overlap(double kernel_seconds_sum, double pass_seconds);

/// Structured decomposition of a `kernel.*` metric name.
struct KernelSeriesName {
  std::string kernel;
  std::string backend;
  std::string strategy;
  std::string field;  ///< "bytes", "time_seconds", ...
};

/// Splits "kernel.<k>.<b>.<s>.<field>" into its labels; false when
/// `name` is not a kernel series (exporters then fall back to the
/// generic flat-name mapping).
bool parse_kernel_series(const std::string& name, KernelSeriesName& out);

/// The registry name of one kernel series field.
std::string kernel_series_name(const std::string& kernel,
                               const std::string& backend,
                               const std::string& strategy,
                               const std::string& field);

}  // namespace gaia::obs
