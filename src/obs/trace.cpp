#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace gaia::obs {

namespace {

/// JSON string escaping (control characters, quotes, backslash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  // JSON has no inf/nan; clamp non-finite values to 0.
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

thread_local TraceRecorder* t_thread_recorder = nullptr;

}  // namespace

TraceArg::TraceArg(std::string key, const std::string& value)
    : key_(std::move(key)), json_value_('"' + json_escape(value) + '"') {}
TraceArg::TraceArg(std::string key, const char* value)
    : TraceArg(std::move(key), std::string(value)) {}
TraceArg::TraceArg(std::string key, double value)
    : key_(std::move(key)), json_value_(json_number(value)) {}
TraceArg::TraceArg(std::string key, std::int64_t value)
    : key_(std::move(key)), json_value_(std::to_string(value)) {}
TraceArg::TraceArg(std::string key, std::uint64_t value)
    : key_(std::move(key)), json_value_(std::to_string(value)) {}

void TraceRecorder::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
  if (enabled) name_track(kMainTrack, "main");
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::chrono::steady_clock::time_point TraceRecorder::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

void TraceRecorder::set_rank(int rank, int n_ranks) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rank_ = rank;
    n_ranks_ = n_ranks;
    pid_ = rank;
  }
  if (!enabled()) return;
  TraceEvent e;
  e.name = "process_name";
  e.cat = "__metadata";
  e.phase = 'M';
  e.ts_us = 0;
  e.tid = kMainTrack;
  e.args.emplace_back("name", "rank " + std::to_string(rank));
  std::lock_guard<std::mutex> lock(mutex_);
  push_locked(std::move(e));
}

int TraceRecorder::rank() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rank_;
}

int TraceRecorder::n_ranks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return n_ranks_;
}

void TraceRecorder::set_epoch_offset_us(double offset_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  epoch_offset_us_ = offset_us;
}

double TraceRecorder::epoch_offset_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_offset_us_;
}

void TraceRecorder::set_capacity(std::size_t max_events) {
  if (max_events == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = max_events;
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::size_t TraceRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::uint64_t TraceRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceRecorder::push_locked(TraceEvent event) {
  if (events_.size() >= capacity_) {
    // Drop-oldest: a long run keeps its most recent window. A dropped
    // track-name record may be re-announced later (name_track consults
    // named_tracks_, which we roll back here).
    const TraceEvent& oldest = events_.front();
    if (oldest.phase == 'M' && oldest.name == "thread_name")
      named_tracks_.erase(oldest.tid);
    events_.pop_front();
    ++dropped_;
    auto& reg = MetricsRegistry::global();
    if (reg.enabled()) reg.counter("trace.dropped_events").add(1);
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::complete(std::string name, std::string cat, double ts_us,
                             double dur_us, std::int32_t tid,
                             std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent e{std::move(name), std::move(cat), 'X', ts_us, dur_us, tid,
               std::move(args)};
  std::lock_guard<std::mutex> lock(mutex_);
  push_locked(std::move(e));
}

void TraceRecorder::instant(std::string name, std::string cat,
                            std::int32_t tid, std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent e{std::move(name), std::move(cat), 'i', now_us(), 0, tid,
               std::move(args)};
  std::lock_guard<std::mutex> lock(mutex_);
  push_locked(std::move(e));
}

void TraceRecorder::counter(std::string name, double ts_us, double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = 'C';
  e.cat = "counter";
  e.ts_us = ts_us;
  e.tid = kMainTrack;
  e.args.emplace_back(name, value);
  e.name = std::move(name);
  std::lock_guard<std::mutex> lock(mutex_);
  push_locked(std::move(e));
}

void TraceRecorder::name_track(std::int32_t tid, const std::string& name) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = "thread_name";
  e.cat = "__metadata";
  e.phase = 'M';
  e.ts_us = 0;
  e.tid = tid;
  e.args.emplace_back("name", name);
  std::lock_guard<std::mutex> lock(mutex_);
  // One metadata record per track: callers may re-announce freely.
  if (!named_tracks_.insert(tid).second) return;
  push_locked(std::move(e));
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {events_.begin(), events_.end()};
}

void TraceRecorder::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  named_tracks_.clear();
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

std::string TraceRecorder::json() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void TraceRecorder::write(std::ostream& os) const {
  std::vector<TraceEvent> snapshot;
  std::int32_t pid;
  int rank, n_ranks;
  double offset;
  std::uint64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(events_.begin(), events_.end());
    pid = pid_;
    rank = rank_;
    n_ranks = n_ranks_;
    offset = epoch_offset_us_;
    dropped = dropped_;
  }
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"rank\":" << rank
     << ",\"ranks\":" << n_ranks
     << ",\"epoch_offset_us\":" << json_number(offset)
     << ",\"dropped_events\":" << dropped << "},\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : snapshot) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.cat) << "\",\"ph\":\"" << e.phase
       << "\",\"ts\":" << json_number(e.ts_us) << ",\"pid\":" << pid
       << ",\"tid\":" << e.tid;
    if (e.phase == 'X') os << ",\"dur\":" << json_number(e.dur_us);
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) os << ',';
        os << '"' << json_escape(e.args[i].key())
           << "\":" << e.args[i].json_value();
      }
      os << '}';
    }
    os << '}';
  }
  os << "]}";
}

void TraceRecorder::write(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  GAIA_CHECK(f.good(), "cannot open trace output: " + path);
  write(f);
  GAIA_CHECK(f.good(), "trace write failed: " + path);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder& TraceRecorder::current() {
  return t_thread_recorder ? *t_thread_recorder : global();
}

TraceRecorder* TraceRecorder::thread_recorder() { return t_thread_recorder; }

void TraceRecorder::set_thread_recorder(TraceRecorder* recorder) {
  t_thread_recorder = recorder;
}

}  // namespace gaia::obs
