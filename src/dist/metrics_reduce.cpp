#include "dist/metrics_reduce.hpp"

#include <cstdint>
#include <string>

#include "util/crc32.hpp"

namespace gaia::dist {

namespace {

/// CRC of the (name, type) schema — the agreement check before any
/// numeric reduction. Separators keep ("ab","c") != ("a","bc").
std::uint32_t schema_crc(const std::vector<obs::MetricRow>& rows) {
  std::uint32_t state = util::crc32_init();
  for (const obs::MetricRow& r : rows) {
    state = util::crc32_update(state, r.name.data(), r.name.size());
    state = util::crc32_update(state, "\x1f", 1);
    state = util::crc32_update(state, r.type.data(), r.type.size());
    state = util::crc32_update(state, "\x1e", 1);
  }
  return util::crc32_final(state);
}

}  // namespace

AggregatedMetrics aggregate_metrics(Comm& comm,
                                    std::vector<obs::MetricRow> local) {
  const std::size_t n = local.size();
  try {
    // Schema agreement: min == max of the CRC over ranks means every
    // rank holds the same (name, type) list. Disagreeing ranks all see
    // the mismatch (the allreduce result is symmetric), so they all
    // fall back to their local rows consistently.
    const auto crc = static_cast<real>(schema_crc(local));
    const real crc_min = comm.allreduce(crc, ReduceOp::kMin);
    const real crc_max = comm.allreduce(crc, ReduceOp::kMax);
    if (crc_min != crc_max) return {false, std::move(local)};

    // Bulk reduction: one buffer per reduce op, laid out row-major so a
    // single allreduce covers all rows of that op.
    std::vector<real> sums(2 * n), mins(n), maxs(5 * n);
    for (std::size_t i = 0; i < n; ++i) {
      sums[2 * i] = static_cast<real>(local[i].count);
      sums[2 * i + 1] = local[i].sum;
      mins[i] = local[i].min;
      maxs[5 * i] = local[i].max;
      maxs[5 * i + 1] = local[i].last;
      maxs[5 * i + 2] = local[i].p50;
      maxs[5 * i + 3] = local[i].p95;
      maxs[5 * i + 4] = local[i].p99;
    }
    comm.allreduce(sums, ReduceOp::kSum);
    comm.allreduce(mins, ReduceOp::kMin);
    comm.allreduce(maxs, ReduceOp::kMax);

    AggregatedMetrics out;
    out.complete = true;
    out.rows = std::move(local);
    for (std::size_t i = 0; i < n; ++i) {
      obs::MetricRow& r = out.rows[i];
      r.count = static_cast<std::uint64_t>(sums[2 * i]);
      r.sum = sums[2 * i + 1];
      r.min = mins[i];
      r.max = maxs[5 * i];
      r.last = maxs[5 * i + 1];
      r.p50 = maxs[5 * i + 2];
      r.p95 = maxs[5 * i + 3];
      r.p99 = maxs[5 * i + 4];
      // A counter's or gauge's "last" is its value; after summing
      // across ranks the value is the sum, not the max of per-rank
      // lasts.
      if (r.type == "counter" || r.type == "gauge") r.last = r.sum;
    }
    return out;
  } catch (const WorldPoisoned&) {
    // A peer died mid-reduction: deliver what this rank knows rather
    // than nothing (and never hang — the barrier poisoning already
    // unwound the collective).
    return {false, std::move(local)};
  }
}

}  // namespace gaia::dist
