#include "dist/dist_lsqr.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <bit>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "core/autotune_driver.hpp"
#include "core/kernel_catalog.hpp"
#include "core/preconditioner.hpp"
#include "core/vector_ops.hpp"
#include "metrics/roofline.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "perfmodel/gpu_spec.hpp"
#include "resilience/fault_injector.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace gaia::dist {

using core::Aprod;
using core::LsqrStop;
using core::vaccumulate_sq;
using core::vaxpy;
using core::vdot;
using core::vnorm;
using core::vscale;
using core::vsum;
using core::vxpby;

namespace {

constexpr char kDistMagic[8] = {'G', 'A', 'I', 'A', 'D', 'S', 'T', '1'};

/// Rank-count-independent state of the distributed recurrence at an
/// iteration boundary. u is stored globally assembled so a restart can
/// re-slice it over a *different* (shrunk) rank set; v/w/x/var are
/// replicated on every rank already.
struct DistState {
  std::int64_t itn = 0;
  std::array<real, 16> scalars{};  // alpha..sn2, engine ordering
  std::vector<real> u_global, v, w, x, var;
};

/// Binds a checkpoint to (problem, solver options) but *not* to the rank
/// count — resuming on fewer ranks after a death is the point.
std::uint64_t dist_fingerprint(const matrix::SystemMatrix& A,
                               const core::LsqrOptions& lsqr) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(static_cast<std::uint64_t>(A.n_rows()));
  mix(static_cast<std::uint64_t>(A.n_cols()));
  // max_iterations is deliberately NOT part of the fingerprint: the
  // iteration budget does not change the trajectory, so a resumed run
  // may extend it (rerun with a larger --iterations).
  mix(static_cast<std::uint64_t>(lsqr.precondition));
  mix(static_cast<std::uint64_t>(lsqr.compute_std_errors));
  mix(std::bit_cast<std::uint64_t>(lsqr.damp));
  mix(std::bit_cast<std::uint64_t>(static_cast<double>(A.values()[0])));
  mix(std::bit_cast<std::uint64_t>(
      static_cast<double>(A.values()[A.values().size() - 1])));
  return h;
}

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  GAIA_CHECK(is.good(), "truncated distributed checkpoint");
  return v;
}
void write_vec(std::ostream& os, const std::vector<real>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(real)));
}
std::vector<real> read_vec(std::istream& is) {
  const auto size = read_pod<std::uint64_t>(is);
  std::vector<real> v(size);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(real)));
  GAIA_CHECK(is.good(), "truncated distributed checkpoint");
  return v;
}

std::string serialize_dist_state(const DistState& state,
                                 std::uint64_t fingerprint) {
  std::ostringstream os(std::ios::binary);
  os.write(kDistMagic, sizeof(kDistMagic));
  write_pod(os, fingerprint);
  write_pod(os, state.itn);
  for (real s : state.scalars) write_pod(os, s);
  write_vec(os, state.u_global);
  write_vec(os, state.v);
  write_vec(os, state.w);
  write_vec(os, state.x);
  write_vec(os, state.var);
  return std::move(os).str();
}

DistState parse_dist_state(const std::string& payload,
                           std::uint64_t fingerprint) {
  std::istringstream is(payload, std::ios::binary);
  char magic[8];
  is.read(magic, sizeof(magic));
  GAIA_CHECK(is.good() && std::memcmp(magic, kDistMagic, sizeof(magic)) == 0,
             "not a gaia distributed-LSQR checkpoint");
  GAIA_CHECK(read_pod<std::uint64_t>(is) == fingerprint,
             "checkpoint does not match this system/options");
  DistState state;
  state.itn = read_pod<std::int64_t>(is);
  for (real& s : state.scalars) s = read_pod<real>(is);
  state.u_global = read_vec(is);
  state.v = read_vec(is);
  state.w = read_vec(is);
  state.x = read_vec(is);
  state.var = read_vec(is);
  return state;
}

/// Rank-local observatory rows. Built from genuinely per-rank data (the
/// rank's iteration times, its Aprod launch counter, its row slice) —
/// the in-process MetricsRegistry is shared by every rank and therefore
/// already cluster-wide, so it cannot supply per-rank series.
std::vector<obs::MetricRow> build_rank_rows(
    const std::vector<double>& iter_seconds, const core::Aprod& aprod,
    std::int64_t itn, std::size_t m_local, const CommStats& comm_used,
    double loop_seconds, std::uint64_t trace_dropped) {
  std::vector<obs::MetricRow> rows;
  obs::MetricRow iter;
  iter.name = "dist.rank.iteration_seconds";
  iter.type = "histogram";
  iter.count = iter_seconds.size();
  if (!iter_seconds.empty()) {
    iter.min = util::min(iter_seconds);
    iter.max = util::max(iter_seconds);
    for (double t : iter_seconds) iter.sum += t;
    iter.last = iter_seconds.back();
    iter.p50 = util::percentile(iter_seconds, 50.0);
    iter.p95 = util::percentile(iter_seconds, 95.0);
    iter.p99 = util::percentile(iter_seconds, 99.0);
  }
  rows.push_back(std::move(iter));

  const auto counter = [](const char* name, std::uint64_t v) {
    obs::MetricRow r;
    r.name = name;
    r.type = "counter";
    r.count = v;
    r.sum = static_cast<double>(v);
    r.last = r.sum;
    return r;
  };
  // Bytes this rank's kernels moved: the catalog's per-launch traffic of
  // all eight kernels over the rank's slice, once per iteration.
  std::uint64_t bytes_per_iteration = 0;
  for (backends::KernelId id : backends::all_kernels())
    bytes_per_iteration += core::kernel_traffic_bytes(aprod.view(), id);
  rows.push_back(counter("dist.rank.kernel_bytes",
                         bytes_per_iteration *
                             static_cast<std::uint64_t>(itn)));
  rows.push_back(counter("dist.rank.launches", aprod.launches()));
  rows.push_back(counter("dist.rank.rows",
                         static_cast<std::uint64_t>(m_local)));

  // Per-rank scalars ride as single-sample histograms (count=1, every
  // field = the value): the cross-rank reduction then yields the right
  // envelope — sum is the cluster total, max the worst rank, p50 a
  // representative rank — where a counter row would only ever sum.
  const auto scalar = [](const char* name, double v) {
    obs::MetricRow r;
    r.name = name;
    r.type = "histogram";
    r.count = 1;
    r.sum = v;
    r.min = v;
    r.max = v;
    r.last = v;
    r.p50 = v;
    r.p95 = v;
    r.p99 = v;
    return r;
  };
  rows.push_back(counter("dist.rank.comm.collectives", comm_used.collectives));
  rows.push_back(counter("dist.rank.comm.bytes", comm_used.bytes));
  rows.push_back(scalar("dist.rank.comm.seconds", comm_used.seconds));
  rows.push_back(
      scalar("dist.rank.comm.wait_seconds", comm_used.wait_seconds));
  // The LSQR loop is synchronous (no comm/compute overlap), so the
  // exposed-comm fraction of this rank's loop is simply its collective
  // share of the loop wall time. gaia-critpath computes the
  // overlap-aware version from the trace; the two agree here by
  // construction and diverge once overlap is introduced.
  rows.push_back(scalar(
      "dist.rank.comm.exposure_fraction",
      loop_seconds > 0 ? comm_used.seconds / loop_seconds : 0.0));
  rows.push_back(counter("dist.rank.trace.dropped_events", trace_dropped));
  return rows;
}

/// Folds the cluster-wide reduction into the shared registry under a
/// `cluster.` prefix (rank 0 only, and only when metrics are armed):
/// counters add; histogram rows flatten to gauges, since the registry
/// cannot adopt pre-reduced quantiles as histogram samples.
void publish_cluster_rows(const std::vector<obs::MetricRow>& rows) {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  for (const obs::MetricRow& r : rows) {
    if (r.type == "counter") {
      reg.counter("cluster." + r.name).add(r.count);
    } else {
      reg.gauge("cluster." + r.name + ".count")
          .set(static_cast<double>(r.count));
      reg.gauge("cluster." + r.name + ".sum").set(r.sum);
      reg.gauge("cluster." + r.name + ".max").set(r.max);
      reg.gauge("cluster." + r.name + ".p50").set(r.p50);
    }
  }
}

}  // namespace

DistLsqrResult dist_lsqr_solve(const matrix::SystemMatrix& A_in,
                               const DistLsqrOptions& options) {
  GAIA_CHECK(options.lsqr.max_iterations > 0, "need positive iterations");
  GAIA_CHECK(options.max_restarts >= 0, "max_restarts must be >= 0");
  const auto backend = options.lsqr.aprod.backend;
  const auto n = static_cast<std::size_t>(A_in.n_cols());

  // Global preconditioning before slicing: every rank must scale by the
  // same (global) column norms.
  std::vector<real> col_scale;
  const matrix::SystemMatrix* A = &A_in;
  matrix::SystemMatrix scaled;
  if (options.lsqr.precondition) {
    col_scale = core::column_norms(A_in);
    scaled = A_in;
    core::apply_column_scaling(scaled, col_scale);
    A = &scaled;
  }

  const auto m_global = static_cast<std::size_t>(A->n_rows());
  const auto n_obs = static_cast<std::size_t>(A->n_obs());
  resilience::CheckpointManager manager(options.checkpoint);
  const std::uint64_t fingerprint = dist_fingerprint(*A, options.lsqr);

  DistLsqrResult result;
  int n_ranks = options.n_ranks;
  std::vector<double> iteration_max(
      static_cast<std::size_t>(options.lsqr.max_iterations), 0.0);

  const resilience::HealthConfig& hcfg = options.lsqr.health;
  result.health.mode = hcfg.mode;
  // Rollback/replay budget of repair mode, spent across attempts.
  int sdc_repairs = 0;

  for (;;) {
    // Per-attempt SDC bookkeeping: each rank deposits its verdict at its
    // own slot (published by the verdict allreduce acting as the fence),
    // rank 0 deposits its monitor report and the collective repair
    // decision; the driver consumes them after the join.
    bool sdc_tripped = false;
    resilience::HealthVerdict sdc_verdict;
    resilience::HealthReport attempt_health;
    std::vector<resilience::HealthVerdict> rank_verdicts(
        static_cast<std::size_t>(n_ranks));
    // Auto-resume: newest checkpoint that passes CRC framing *and*
    // parses against this problem's fingerprint; anything else is
    // skipped with a warning. Also the recovery path after a restart.
    std::optional<DistState> resume;
    if (manager.enabled()) {
      for (const auto& info : manager.list()) {
        try {
          resume =
              parse_dist_state(resilience::read_framed_file(info.path),
                               fingerprint);
          result.resumed_from_iteration = info.iteration;
          resilience::note_resilience_event("checkpoint.resumed",
                                            info.path);
          break;
        } catch (const Error& e) {
          std::cerr << "warning: skipping checkpoint " << info.path << ": "
                    << e.what() << '\n';
          resilience::note_resilience_event("checkpoint.skipped",
                                            info.path);
        }
      }
    }

    result.partition = partition_by_stars(*A, n_ranks);
    const RowPartition& partition = result.partition;

    // Rank-local slices built up front (production reads its slice from
    // the distributed filesystem the same way).
    std::vector<matrix::SystemMatrix> slices;
    slices.reserve(static_cast<std::size_t>(n_ranks));
    for (int r = 0; r < n_ranks; ++r)
      slices.push_back(extract_rank_slice(*A, partition, r));

    World world(n_ranks);
    // Per-rank observatory rows of this attempt, deposited by each rank
    // thread at its own index (no sharing) and adopted on success.
    std::vector<std::vector<obs::MetricRow>> rank_rows(
        static_cast<std::size_t>(n_ranks));
    // Per-rank comm accounting of the iteration loop, deposited the same
    // way (the driver folds the maxima into the result on success).
    std::vector<CommStats> rank_comm(static_cast<std::size_t>(n_ranks));
    std::vector<double> rank_loop_seconds(static_cast<std::size_t>(n_ranks),
                                          0.0);
    // One recorder per rank when tracing: each is constructed *after*
    // the World so its epoch offset against the shared world clock is
    // the well-defined positive skew the merger undoes. Recorders must
    // outlive the rank threads; the driver writes/merges them after
    // join.
    const bool tracing = !options.trace_dir.empty();
    std::vector<std::unique_ptr<obs::TraceRecorder>> recorders;
    if (tracing) {
      std::filesystem::create_directories(options.trace_dir);
      recorders.reserve(static_cast<std::size_t>(n_ranks));
      for (int r = 0; r < n_ranks; ++r) {
        auto rec = std::make_unique<obs::TraceRecorder>();
        if (options.trace_capacity > 0)
          rec->set_capacity(options.trace_capacity);
        rec->set_enabled(true);
        rec->set_rank(r, n_ranks);
        rec->set_epoch_offset_us(
            std::chrono::duration<double, std::micro>(rec->epoch() -
                                                      world.epoch())
                .count());
        recorders.push_back(std::move(rec));
      }
    }
    try {
      world.run([&](Comm& comm) {
        const int rank = comm.rank();
        // Everything this rank thread records — and everything the
        // streams it spawns record — lands in its own recorder; without
        // tracing the scope installs nullptr and instrumentation falls
        // through to the process-global recorder as before.
        obs::ThreadRecorderScope trace_scope(
            tracing ? recorders[static_cast<std::size_t>(rank)].get()
                    : nullptr);
        // Rank-tagged telemetry: the sampler's progress rows and any
        // flight events this thread records carry this rank id.
        obs::ThreadRankScope rank_scope(rank);
        obs::ProgressBoard::global().begin(rank,
                                           options.lsqr.max_iterations,
                                           "solve");
        struct BoardEnd {
          int rank;
          ~BoardEnd() { obs::ProgressBoard::global().end(rank); }
        } board_end{rank};
        // The body below is wrapped so every way a rank can die seals a
        // per-rank postmortem bundle (postmortem.rank<N>.json) before the
        // exception reaches World::run's poison path. Indentation of the
        // existing body is left untouched on purpose.
        try {
        const matrix::SystemMatrix& local =
            slices[static_cast<std::size_t>(rank)];
        const auto m_local = static_cast<std::size_t>(local.n_rows());
        const auto obs_local =
            static_cast<std::size_t>(partition.rows_of(rank));
        const auto row_offset = static_cast<std::size_t>(
            partition.row_begin[static_cast<std::size_t>(rank)]);

        backends::DeviceContext device(options.lsqr.device_capacity,
                                       "rank" + std::to_string(rank));
        Aprod aprod(local, device, options.lsqr.aprod);
        resilience::HealthMonitor monitor(hcfg, rank);
        // Scratch for the collective true-residual recompute.
        std::vector<real> resid(hcfg.enabled() ? m_local : 0, real{0});
        // ABFT checksum vectors over this rank's slice: col_check =
        // A_local^T 1, row_check = A_local 1. The aprod1 identity is
        // rank-local (u is distributed); the aprod2 identity needs the
        // rank contributions row_check_r . u_r allreduce-summed, since
        // v's scatter partials are.
        std::vector<real> col_check, row_check;
        real col_check_norm = 0, row_check_norm_global = 0;
        if (hcfg.enabled()) {
          std::vector<real> ones(std::max(m_local, n), real{1});
          col_check.assign(n, real{0});
          aprod.apply2(std::span<const real>(ones.data(), m_local),
                       col_check);
          row_check.assign(m_local, real{0});
          aprod.apply1(std::span<const real>(ones.data(), n), row_check);
          col_check_norm = vnorm(col_check);
          const real rn = vnorm(row_check);
          row_check_norm_global =
              std::sqrt(comm.allreduce(rn * rn, ReduceOp::kSum));
        }

        if (options.autotune) {
          // Rank 0 searches on its own slice; everyone else waits in the
          // broadcast. All ranks then install the same winning table —
          // identical shapes keep the max-over-ranks iteration time
          // meaningful and the per-rank kernel timelines comparable.
          std::vector<real> encoded(tuning::kEncodedTableSize, real{0});
          if (rank == 0) {
            tuning::Autotuner tuner(options.lsqr.aprod.backend,
                                    options.autotune_search);
            core::AprodOptions tune_opts = options.lsqr.aprod;
            tune_opts.autotuner = &tuner;
            backends::DeviceContext tune_device(
                options.lsqr.device_capacity, "rank0-autotune");
            Aprod tune_aprod(local, tune_device, tune_opts);
            core::autotune_warmup(tune_aprod, tuner);
            encoded = tuning::encode_table(tune_aprod.tuning());
          }
          comm.bcast(encoded, 0);
          aprod.set_tuning(tuning::decode_table(encoded));
        }

        // Local obs rows sit at [row_offset, row_offset + obs_local) of
        // the global row space; the last rank also owns the constraint
        // tail [n_obs, m_global).
        auto gather_local_u = [&](const std::vector<real>& u_global,
                                  std::span<real> u_local) {
          std::copy_n(u_global.begin() + static_cast<std::ptrdiff_t>(
                                             row_offset),
                      obs_local, u_local.begin());
          for (std::size_t j = obs_local; j < u_local.size(); ++j)
            u_local[j] = u_global[n_obs + (j - obs_local)];
        };

        std::vector<real> u(local.known_terms().begin(),
                            local.known_terms().end());
        std::vector<real> v(n, real{0}), w(n, real{0}), x(n, real{0});
        std::vector<real> scatter(n, real{0});
        std::vector<real> var(options.lsqr.compute_std_errors ? n : 0,
                              real{0});
        // Scratch for reassembling the global u at checkpoint time.
        std::vector<real> u_assembled(manager.enabled() ? m_global : 0);

        auto global_norm_rows = [&](std::span<const real> local_vec) {
          const real local_n = vnorm(local_vec);
          return std::sqrt(comm.allreduce(local_n * local_n,
                                          ReduceOp::kSum));
        };
        auto apply2_global = [&](std::span<const real> y_local,
                                 std::span<real> target, real scale_target) {
          std::fill(scatter.begin(), scatter.end(), real{0});
          aprod.apply2(y_local, scatter);
          comm.allreduce(scatter, ReduceOp::kSum);
          if (scale_target != real{1}) vscale(backend, target, scale_target);
          vaxpy(backend, target, real{1}, scatter);
        };

        real alpha = 0, beta = 0, bnorm = 0;
        real rhobar = 0, phibar = 0, rnorm = 0, arnorm = 0;
        real anorm = 0, acond = 0, ddnorm = 0, res2 = 0, xnorm = 0,
             xxnorm = 0;
        real z = 0, cs2 = -1, sn2 = 0;
        std::int64_t itn = 0;

        if (resume) {
          const auto& s = resume->scalars;
          alpha = s[0];
          beta = s[1];
          bnorm = s[2];
          rhobar = s[3];
          phibar = s[4];
          rnorm = s[5];
          arnorm = s[6];
          anorm = s[7];
          acond = s[8];
          ddnorm = s[9];
          res2 = s[10];
          xnorm = s[11];
          xxnorm = s[12];
          z = s[13];
          cs2 = s[14];
          sn2 = s[15];
          itn = resume->itn;
          gather_local_u(resume->u_global, u);
          v = resume->v;
          w = resume->w;
          x = resume->x;
          if (options.lsqr.compute_std_errors) var = resume->var;
        } else {
          // --- bidiagonalization start ---------------------------------
          beta = global_norm_rows(u);
          if (beta > 0) {
            vscale(backend, u, real{1} / beta);
            apply2_global(u, v, real{1});  // v = A^T u (v starts zero)
            alpha = vnorm(v);              // v replicated: local == global
          }
          if (alpha > 0) {
            vscale(backend, v, real{1} / alpha);
            std::copy(v.begin(), v.end(), w.begin());
          }
          bnorm = beta;
          rhobar = alpha;
          phibar = beta;
          rnorm = beta;
          arnorm = alpha * beta;
        }

        // Sums of the current basis vectors for the ABFT identities
        // (rescaled alongside the normalizations, never re-summed).
        real s_u = 0, s_v = 0;
        if (hcfg.enabled()) {
          s_u = vsum(u);
          s_v = vsum(v);
        }

        const real damp = options.lsqr.damp;
        LsqrStop istop = LsqrStop::kIterationLimit;
        auto& injector = resilience::FaultInjector::global();
        // This rank's own iteration times (not the max-over-ranks) —
        // the raw material of its dist.rank.iteration_seconds row.
        std::vector<double> local_iter_seconds;
        local_iter_seconds.reserve(
            static_cast<std::size_t>(options.lsqr.max_iterations));

        // Comm accounting scoped to the iteration loop: the stats/wall
        // snapshot-diff below feeds this rank's dist.rank.comm.* rows.
        const CommStats comm_start = comm.stats();
        util::Stopwatch loop_watch;

        if (arnorm > 0) {
          util::Stopwatch watch;
          while (itn < options.lsqr.max_iterations) {
            ++itn;
            // The per-rank iteration span the critical-path analyzer
            // keys on: it brackets the full iteration including the
            // collectives, so comm spans clip cleanly into it.
            obs::ScopedTrace iter_span("lsqr.iteration", "lsqr");
            iter_span.add_arg({"itn", static_cast<std::int64_t>(itn)});
            watch.reset();
            // Injected rank death (rank:iter=...,rank=... clauses) fires
            // here, at the iteration boundary — the RankDeath unwinds
            // through the collectives, poisons the world and reaches the
            // restart loop below.
            injector.maybe_kill_rank(rank, itn);

            const real s_u_old = s_u, s_v_old = s_v;
            resilience::HealthVerdict abft;

            vscale(backend, u, -alpha);
            aprod.apply1(v, u);
            // sdc: clause hook — a flip here lands in this rank's local
            // slice of u; the rank-local ABFT checksum catches it in
            // the same iteration, before the norm allreduce spreads a
            // poisoned beta to every rank.
            if (injector.armed())
              if (const auto flip = injector.on_kernel_output(
                      "aprod1", itn, rank, u.size()))
                resilience::apply_bitflip(std::span<real>(u), *flip);
            if (hcfg.enabled()) {
              // Rank-local identity: sum(A_local v - alpha u_old) must
              // equal col_check . v - alpha sum(u_old) to rounding.
              const real actual = vsum(u);
              const real expected = vdot(col_check, v) - alpha * s_u_old;
              const real scale =
                  col_check_norm +
                  std::abs(alpha) *
                      std::sqrt(static_cast<real>(m_local)) +
                  std::abs(actual);
              abft = monitor.check_kernel_checksum(itn, "aprod1", actual,
                                                   expected, scale);
              s_u = actual;
            }
            beta = global_norm_rows(u);
            if (beta > 0) {
              vscale(backend, u, real{1} / beta);
              if (hcfg.enabled()) s_u /= beta;
              anorm = std::sqrt(anorm * anorm + alpha * alpha +
                                beta * beta + damp * damp);
              apply2_global(u, v, -beta);  // v = A^T u - beta v
              // A flip here is *post*-allreduce: only the targeted
              // rank's replica of v diverges — the minority-divergence
              // case; the checksum trips on that rank alone and the
              // collective verdict reduction below spreads the verdict.
              if (injector.armed())
                if (const auto flip = injector.on_kernel_output(
                        "aprod2", itn, rank, v.size()))
                  resilience::apply_bitflip(std::span<real>(v), *flip);
              if (hcfg.enabled()) {
                // Global identity: v's scatter partials were allreduced,
                // so the expected sum needs every rank's contribution
                // row_check_r . u_r (collective — runs on all ranks).
                const real rc = comm.allreduce(vdot(row_check, u),
                                               ReduceOp::kSum);
                const real actual = vsum(v);
                const real expected = rc - beta * s_v_old;
                const real scale =
                    row_check_norm_global +
                    std::abs(beta) * std::sqrt(static_cast<real>(n)) +
                    std::abs(actual);
                if (abft.healthy())
                  abft = monitor.check_kernel_checksum(
                      itn, "aprod2", actual, expected, scale);
                s_v = actual;
              }
              alpha = vnorm(v);
              if (alpha > 0) {
                vscale(backend, v, real{1} / alpha);
                if (hcfg.enabled()) s_v /= alpha;
              }
            }

            const real rhobar1 = std::sqrt(rhobar * rhobar + damp * damp);
            const real cs1 = rhobar / rhobar1;
            const real psi = (damp / rhobar1) * phibar;
            phibar = cs1 * phibar;

            const real rho = std::sqrt(rhobar1 * rhobar1 + beta * beta);
            const real cs = rhobar1 / rho;
            const real sn = beta / rho;
            const real theta = sn * alpha;
            rhobar = -cs * alpha;
            const real phi = cs * phibar;
            phibar = sn * phibar;
            const real tau = sn * phi;

            if (options.lsqr.compute_std_errors)
              vaccumulate_sq(backend, var, real{1} / rho, w);
            ddnorm += (real{1} / rho) * (real{1} / rho) * vdot(w, w);
            vaxpy(backend, x, phi / rho, w);
            vxpby(backend, w, v, -theta / rho);

            const real delta = sn2 * rho;
            const real gambar = -cs2 * rho;
            const real rhs = phi - delta * z;
            xnorm = std::sqrt(xxnorm + (rhs / gambar) * (rhs / gambar));
            const real gamma = std::sqrt(gambar * gambar + theta * theta);
            cs2 = gambar / gamma;
            sn2 = theta / gamma;
            z = rhs / gamma;
            xxnorm += z * z;

            acond = anorm * std::sqrt(ddnorm);
            res2 += psi * psi;
            rnorm = std::sqrt(phibar * phibar + res2);
            arnorm = alpha * std::abs(tau);

            // Iteration wall time, maximized over ranks (paper App. B).
            const double t_local = watch.elapsed_s();
            local_iter_seconds.push_back(t_local);
            {
              auto& board = obs::ProgressBoard::global();
              if (board.enabled())
                board.update(rank, itn, static_cast<double>(rnorm),
                             static_cast<double>(arnorm));
            }
            const double t_max =
                comm.allreduce(static_cast<real>(t_local), ReduceOp::kMax);
            if (rank == 0)
              iteration_max[static_cast<std::size_t>(itn - 1)] = t_max;

            // --- silent-corruption defense (collective) ----------------
            // Runs *before* the checkpoint seal below, so a state that
            // trips an invariant is never persisted as a rollback target.
            if (hcfg.enabled()) {
              resilience::HealthVerdict verdict = abft;  // same-iteration
              if (verdict.healthy())
                verdict = monitor.check_scalars(itn, alpha, beta, rnorm,
                                                arnorm, xnorm);
              if (verdict.healthy())
                verdict = monitor.check_rnorm_window(itn, rnorm);
              if (hcfg.due(itn)) {
                // Deep pass. Its collectives run unconditionally on
                // every rank — including one that already tripped a
                // local check — so the world stays in lockstep.
                const std::array<real, 16> sc = {
                    alpha, beta, bnorm, rhobar, phibar, rnorm, arnorm,
                    anorm, acond, ddnorm, res2, xnorm, xxnorm, z, cs2,
                    sn2};
                const real h = static_cast<real>(
                    resilience::fold_hash_to_real(resilience::state_hash(
                        std::span<const real>(sc.data(), sc.size()),
                        {v, w, x})));
                const real h_min = comm.allreduce(h, ReduceOp::kMin);
                const real h_max = comm.allreduce(h, ReduceOp::kMax);
                std::fill(resid.begin(), resid.end(), real{0});
                aprod.apply1(x, resid);  // resid = A_local x
                real ss = 0, comp = 0;  // Kahan, like vnorm
                const auto b_local = local.known_terms();
                for (std::size_t i = 0; i < m_local; ++i) {
                  const real d = b_local[i] - resid[i];
                  const real term = d * d - comp;
                  const real next = ss + term;
                  comp = (next - ss) - term;
                  ss = next;
                }
                real rss = comm.allreduce(ss, ReduceOp::kSum);
                if (damp != 0) {
                  const real xn = vnorm(x);
                  rss += damp * damp * xn * xn;
                }
                if (verdict.healthy())
                  verdict = monitor.check_vector(
                      itn, "v", v, alpha > 0 ? real{1} : real{-1},
                      hcfg.unit_norm_tol,
                      resilience::HealthInvariant::kUnitNorm);
                if (verdict.healthy())
                  verdict = monitor.check_vector(
                      itn, "x", x, xnorm, hcfg.xnorm_rel_tol,
                      resilience::HealthInvariant::kXnormAgreement);
                if (verdict.healthy() && h_min != h_max) {
                  verdict.invariant =
                      resilience::HealthInvariant::kStateHashDisagreement;
                  std::ostringstream os;
                  os << "replicated-state hash min " << h_min
                     << " != max " << h_max << " across " << comm.size()
                     << " rank(s)";
                  verdict.detail = os.str();
                }
                // Skipped deep in the convergence plateau, where the
                // difference is cancellation, not corruption.
                if (verdict.healthy() && rnorm > bnorm * real{1e-9})
                  verdict = monitor.check_agreement(
                      itn, "rnorm", std::sqrt(rss), rnorm,
                      hcfg.residual_rel_tol,
                      resilience::HealthInvariant::kResidualAgreement);
                if (rank == 0) monitor.note_deep_check();
              }
              rank_verdicts[static_cast<std::size_t>(rank)] = verdict;
              // Worst invariant across ranks: every rank takes the same
              // branch, and the allreduce doubles as the fence that
              // publishes the verdict slots before anyone reads them.
              const real worst = comm.allreduce(
                  static_cast<real>(static_cast<int>(verdict.invariant)),
                  ReduceOp::kMax);
              if (worst != 0) {
                resilience::HealthVerdict chosen;
                for (const auto& rv : rank_verdicts)
                  if (!rv.healthy()) {
                    chosen = rv;
                    break;
                  }
                if (rank == 0) monitor.record_detection(chosen);
                if (hcfg.mode == resilience::HealthMode::kRepair) {
                  // Leave the attempt collectively; the driver rolls
                  // back and replays, bounded by max_repairs.
                  if (rank == 0) {
                    sdc_tripped = true;
                    sdc_verdict = chosen;
                  }
                  break;
                }
                istop = chosen.invariant ==
                                resilience::HealthInvariant::kScalarFinite
                            ? LsqrStop::kNonFinite
                            : LsqrStop::kSdcDetected;
                break;
              }
            } else if (!std::isfinite(rnorm) || !std::isfinite(arnorm)) {
              // Detection floor, active even with health off: a
              // non-finite residual estimate satisfies no stop test and
              // would burn the whole budget. Healthy-off trajectories
              // are bit-identical across ranks, so this local break is
              // taken by every rank at the same iteration.
              istop = LsqrStop::kNonFinite;
              break;
            }

            if (manager.due(itn)) {
              // Reassemble the global u (collective): each rank deposits
              // its slice at its global offsets, then sum-reduce.
              std::fill(u_assembled.begin(), u_assembled.end(), real{0});
              std::copy(u.begin(),
                        u.begin() + static_cast<std::ptrdiff_t>(obs_local),
                        u_assembled.begin() +
                            static_cast<std::ptrdiff_t>(row_offset));
              for (std::size_t j = obs_local; j < m_local; ++j)
                u_assembled[n_obs + (j - obs_local)] = u[j];
              comm.allreduce(u_assembled, ReduceOp::kSum);
              if (rank == 0) {
                DistState state;
                state.itn = itn;
                state.scalars = {alpha, beta, bnorm, rhobar, phibar,
                                 rnorm, arnorm, anorm, acond, ddnorm,
                                 res2, xnorm, xxnorm, z, cs2, sn2};
                state.u_global = u_assembled;
                state.v = v;
                state.w = w;
                state.x = x;
                state.var = var;
                manager.write(itn, serialize_dist_state(state, fingerprint));
              }
            }

            if (options.lsqr.atol > 0 || options.lsqr.btol > 0) {
              const real test1 = rnorm / bnorm;
              const real test2 =
                  anorm * rnorm > 0 ? arnorm / (anorm * rnorm) : real{0};
              const real rtol = options.lsqr.btol +
                                options.lsqr.atol * anorm * xnorm / bnorm;
              if (options.lsqr.atol > 0 && test2 <= options.lsqr.atol) {
                istop = LsqrStop::kLeastSquares;
                break;
              }
              if (test1 <= rtol) {
                istop = LsqrStop::kAtolBtol;
                break;
              }
            }
          }
        } else {
          istop = LsqrStop::kXZero;
        }

        if (rank == 0) {
          result.x = x;
          if (options.lsqr.precondition)
            core::unscale_solution(result.x, col_scale);
          if (options.lsqr.compute_std_errors) {
            result.std_errors = var;
            // Degrees of freedom from the *global* row count.
            const real dof = m_global > n
                                 ? static_cast<real>(m_global - n)
                                 : real{1};
            const real s = rnorm / std::sqrt(dof);
            for (auto& se : result.std_errors) se = s * std::sqrt(se);
            if (options.lsqr.precondition)
              core::unscale_solution(result.std_errors, col_scale);
          }
          result.istop = istop;
          result.iterations = itn;
          result.rnorm = rnorm;
          result.anorm = anorm;
          result.acond = acond;
        }

        const double loop_seconds = loop_watch.elapsed_s();
        const CommStats comm_used = comm.stats() - comm_start;
        rank_comm[static_cast<std::size_t>(rank)] = comm_used;
        rank_loop_seconds[static_cast<std::size_t>(rank)] = loop_seconds;

        // Performance observatory (collective): reduce the per-rank
        // rows to one cluster-wide set. A peer death or schema mismatch
        // degrades to a partial (local) result — never a hang.
        std::vector<obs::MetricRow> local_rows = build_rank_rows(
            local_iter_seconds, aprod, itn, m_local, comm_used, loop_seconds,
            tracing ? recorders[static_cast<std::size_t>(rank)]
                          ->dropped_events()
                    : 0);
        AggregatedMetrics agg = aggregate_metrics(comm, local_rows);
        rank_rows[static_cast<std::size_t>(rank)] = std::move(local_rows);
        if (rank == 0) {
          result.cluster_metrics_complete = agg.complete;
          result.cluster_metrics = std::move(agg.rows);
          publish_cluster_rows(result.cluster_metrics);
          // Headline gauge: the worst rank's exposed-comm fraction, the
          // number ROADMAP's comm/compute-overlap item tracks.
          auto& reg = obs::MetricsRegistry::global();
          if (reg.enabled()) {
            for (const obs::MetricRow& r : result.cluster_metrics)
              if (r.name == "dist.rank.comm.exposure_fraction")
                reg.gauge("comm.exposure_fraction").set(r.max);
          }
        }
        if (rank == 0) attempt_health = monitor.report();
        } catch (const resilience::RankDeath& death) {
          // The dying rank seals its own bundle — its trace tail and the
          // flight-event timeline are thread-local context the driver
          // cannot reconstruct after the poison propagates.
          obs::flight_event("fault", "rank.death", death.what(),
                            death.iteration(), rank);
          obs::flush_postmortem(
              {"rank-death", death.what(), rank, n_ranks});
          throw;
        } catch (const WorldPoisoned&) {
          // Collateral unwind of a survivor; no bundle — the real error
          // was sealed by the rank that raised it.
          throw;
        } catch (const std::exception& e) {
          obs::flight_event("fault", "rank.exception", e.what(), -1, rank);
          obs::flush_postmortem({"exception", e.what(), rank, n_ranks});
          throw;
        }
      });
      // Fold this attempt's health outcome before deciding whether it
      // ended in a rollback (repairs accumulate across attempts).
      if (hcfg.enabled()) {
        result.health.checks += attempt_health.checks;
        result.health.detections += attempt_health.detections;
        if (result.health.first_detection_iteration < 0)
          result.health.first_detection_iteration =
              attempt_health.first_detection_iteration;
        if (!attempt_health.last_diagnosis.empty())
          result.health.last_diagnosis = attempt_health.last_diagnosis;
      }
      if (sdc_tripped) {
        if (sdc_repairs >= hcfg.max_repairs) {
          result.health.unrepaired = true;
          resilience::note_resilience_event("sdc.unrepaired",
                                            sdc_verdict.describe());
          // Driver-level bundle (rank -1): the cluster-wide diagnosis,
          // sealed before the throw so a crashing caller still has it.
          obs::flush_postmortem(
              {"sdc-unrepaired", sdc_verdict.describe(), -1, n_ranks});
          throw resilience::SdcError(sdc_verdict);
        }
        ++sdc_repairs;
        result.health.repairs += 1;
        resilience::note_resilience_event(
            "sdc.repaired",
            "distributed rollback after " + sdc_verdict.describe());
        continue;  // replay: newest valid checkpoint, or iteration 0
      }
      result.final_ranks = n_ranks;
      result.checkpoints_written = manager.written();
      result.rank_metrics = std::move(rank_rows);
      result.comm_seconds_max = 0;
      result.comm_wait_seconds_max = 0;
      result.comm_exposure_fraction_max = 0;
      for (int r = 0; r < n_ranks; ++r) {
        const CommStats& s = rank_comm[static_cast<std::size_t>(r)];
        const double loop_s = rank_loop_seconds[static_cast<std::size_t>(r)];
        result.comm_seconds_max =
            std::max(result.comm_seconds_max, s.seconds);
        result.comm_wait_seconds_max =
            std::max(result.comm_wait_seconds_max, s.wait_seconds);
        if (loop_s > 0)
          result.comm_exposure_fraction_max = std::max(
              result.comm_exposure_fraction_max, s.seconds / loop_s);
      }
      if (tracing) {
        // Per-rank files first, then the driver-side merge: the rank
        // threads are joined, so the recorders are quiescent.
        std::vector<obs::TraceDoc> docs;
        docs.reserve(recorders.size());
        result.trace_files.clear();
        result.trace_dropped_events = 0;
        for (int r = 0; r < n_ranks; ++r) {
          const auto& rec = recorders[static_cast<std::size_t>(r)];
          const std::string path = options.trace_dir + "/trace.rank" +
                                   std::to_string(r) + ".json";
          rec->write(path);
          result.trace_files.push_back(path);
          result.trace_dropped_events += rec->dropped_events();
          docs.push_back(obs::parse_trace_json(rec->json()));
        }
        const obs::TraceDoc merged = obs::merge_traces(docs);
        obs::validate_trace(merged);
        result.merged_trace_file =
            options.trace_dir + "/trace.merged.json";
        obs::write_trace(merged, result.merged_trace_file);
      }
      // Roofline placement over the cluster-aggregated kernel rows, so
      // the gauges ride the sealed cluster snapshot below and a
      // multi-rank run exposes every kernel's ceiling fraction.
      {
        const perfmodel::GpuSpec spec =
            perfmodel::gpu_spec(perfmodel::Platform::kA100);
        const metrics::RooflineMachine machine{
            spec.name, spec.peak_bw_gbs, spec.fp64_tflops * 1000.0,
            spec.spmv_bw_efficiency};
        metrics::publish_roofline_gauges(metrics::roofline_points(
            obs::MetricsRegistry::global().snapshot(), machine));
      }
      // Exactly one cluster-wide snapshot per distributed solve: the
      // meta records the rank count and whether the reduction covered
      // every rank, then the armed sink (if any) re-seals the file.
      {
        obs::SnapshotMeta meta;
        meta.rank = -1;  // aggregated, not a single rank's view
        meta.ranks = n_ranks;
        meta.complete = result.cluster_metrics_complete;
        obs::set_global_snapshot_meta(meta);
        obs::flush_global_snapshot();
      }
      break;
    } catch (const resilience::RankDeath& death) {
      if (result.restarts >= options.max_restarts || n_ranks <= 1) {
        obs::flush_postmortem(
            {"rank-death-unrecovered",
             std::string(death.what()) + "; restart budget exhausted", -1,
             n_ranks});
        throw;
      }
      ++result.restarts;
      --n_ranks;
      const std::string detail =
          "rank " + std::to_string(death.rank()) + " died at iteration " +
          std::to_string(death.iteration()) + "; restarting on " +
          std::to_string(n_ranks) + " rank(s)";
      std::cerr << "warning: " << detail << '\n';
      resilience::note_resilience_event("rank_death.recovered", detail);
    }
  }

  iteration_max.resize(static_cast<std::size_t>(result.iterations));
  result.iteration_seconds = iteration_max;
  double total = 0;
  for (double t : iteration_max) total += t;
  result.mean_iteration_s =
      iteration_max.empty() ? 0.0
                            : total / static_cast<double>(iteration_max.size());
  return result;
}

}  // namespace gaia::dist
