#include "dist/dist_lsqr.hpp"

#include <algorithm>
#include <cmath>

#include "core/preconditioner.hpp"
#include "core/vector_ops.hpp"
#include "util/stopwatch.hpp"

namespace gaia::dist {

using core::Aprod;
using core::LsqrStop;
using core::vaccumulate_sq;
using core::vaxpy;
using core::vdot;
using core::vnorm;
using core::vscale;
using core::vxpby;

DistLsqrResult dist_lsqr_solve(const matrix::SystemMatrix& A_in,
                               const DistLsqrOptions& options) {
  GAIA_CHECK(options.lsqr.max_iterations > 0, "need positive iterations");
  const auto backend = options.lsqr.aprod.backend;
  const auto n = static_cast<std::size_t>(A_in.n_cols());

  // Global preconditioning before slicing: every rank must scale by the
  // same (global) column norms.
  std::vector<real> col_scale;
  const matrix::SystemMatrix* A = &A_in;
  matrix::SystemMatrix scaled;
  if (options.lsqr.precondition) {
    col_scale = core::column_norms(A_in);
    scaled = A_in;
    core::apply_column_scaling(scaled, col_scale);
    A = &scaled;
  }

  DistLsqrResult result;
  result.partition = partition_by_stars(*A, options.n_ranks);

  // Rank-local slices built up front (production reads its slice from
  // the distributed filesystem the same way).
  std::vector<matrix::SystemMatrix> slices;
  slices.reserve(static_cast<std::size_t>(options.n_ranks));
  for (int r = 0; r < options.n_ranks; ++r)
    slices.push_back(extract_rank_slice(*A, result.partition, r));

  World world(options.n_ranks);
  std::vector<double> iteration_max(
      static_cast<std::size_t>(options.lsqr.max_iterations), 0.0);

  world.run([&](Comm& comm) {
    const matrix::SystemMatrix& local = slices[static_cast<std::size_t>(
        comm.rank())];
    const auto m_local = static_cast<std::size_t>(local.n_rows());

    backends::DeviceContext device(options.lsqr.device_capacity,
                                   "rank" + std::to_string(comm.rank()));
    Aprod aprod(local, device, options.lsqr.aprod);

    std::vector<real> u(local.known_terms().begin(),
                        local.known_terms().end());
    std::vector<real> v(n, real{0}), w(n, real{0}), x(n, real{0});
    std::vector<real> scatter(n, real{0});
    std::vector<real> var(options.lsqr.compute_std_errors ? n : 0, real{0});

    auto global_norm_rows = [&](std::span<const real> local_vec) {
      const real local_n = vnorm(local_vec);
      return std::sqrt(comm.allreduce(local_n * local_n, ReduceOp::kSum));
    };
    auto apply2_global = [&](std::span<const real> y_local,
                             std::span<real> target, real scale_target) {
      std::fill(scatter.begin(), scatter.end(), real{0});
      aprod.apply2(y_local, scatter);
      comm.allreduce(scatter, ReduceOp::kSum);
      if (scale_target != real{1}) vscale(backend, target, scale_target);
      vaxpy(backend, target, real{1}, scatter);
    };

    // --- bidiagonalization start ----------------------------------------
    real beta = global_norm_rows(u);
    real alpha = 0;
    if (beta > 0) {
      vscale(backend, u, real{1} / beta);
      apply2_global(u, v, real{1});  // v = A^T u (v starts zero)
      alpha = vnorm(v);              // v replicated: local == global
    }
    if (alpha > 0) {
      vscale(backend, v, real{1} / alpha);
      std::copy(v.begin(), v.end(), w.begin());
    }

    const real bnorm = beta;
    const real damp = options.lsqr.damp;
    real rhobar = alpha, phibar = beta;
    real rnorm = beta, arnorm = alpha * beta;
    real anorm = 0, acond = 0, ddnorm = 0, res2 = 0, xnorm = 0, xxnorm = 0;
    real z = 0, cs2 = -1, sn2 = 0;
    LsqrStop istop = LsqrStop::kIterationLimit;
    std::int64_t itn = 0;

    if (arnorm > 0) {
      util::Stopwatch watch;
      while (itn < options.lsqr.max_iterations) {
        ++itn;
        watch.reset();

        vscale(backend, u, -alpha);
        aprod.apply1(v, u);
        beta = global_norm_rows(u);
        if (beta > 0) {
          vscale(backend, u, real{1} / beta);
          anorm = std::sqrt(anorm * anorm + alpha * alpha + beta * beta +
                            damp * damp);
          apply2_global(u, v, -beta);  // v = A^T u - beta v
          alpha = vnorm(v);
          if (alpha > 0) vscale(backend, v, real{1} / alpha);
        }

        const real rhobar1 = std::sqrt(rhobar * rhobar + damp * damp);
        const real cs1 = rhobar / rhobar1;
        const real psi = (damp / rhobar1) * phibar;
        phibar = cs1 * phibar;

        const real rho = std::sqrt(rhobar1 * rhobar1 + beta * beta);
        const real cs = rhobar1 / rho;
        const real sn = beta / rho;
        const real theta = sn * alpha;
        rhobar = -cs * alpha;
        const real phi = cs * phibar;
        phibar = sn * phibar;
        const real tau = sn * phi;

        if (options.lsqr.compute_std_errors)
          vaccumulate_sq(backend, var, real{1} / rho, w);
        ddnorm += (real{1} / rho) * (real{1} / rho) * vdot(w, w);
        vaxpy(backend, x, phi / rho, w);
        vxpby(backend, w, v, -theta / rho);

        const real delta = sn2 * rho;
        const real gambar = -cs2 * rho;
        const real rhs = phi - delta * z;
        xnorm = std::sqrt(xxnorm + (rhs / gambar) * (rhs / gambar));
        const real gamma = std::sqrt(gambar * gambar + theta * theta);
        cs2 = gambar / gamma;
        sn2 = theta / gamma;
        z = rhs / gamma;
        xxnorm += z * z;

        acond = anorm * std::sqrt(ddnorm);
        res2 += psi * psi;
        rnorm = std::sqrt(phibar * phibar + res2);
        arnorm = alpha * std::abs(tau);

        // Iteration wall time, maximized over ranks (paper Appendix B).
        const double t_local = watch.elapsed_s();
        const double t_max =
            comm.allreduce(static_cast<real>(t_local), ReduceOp::kMax);
        if (comm.rank() == 0)
          iteration_max[static_cast<std::size_t>(itn - 1)] = t_max;

        if (options.lsqr.atol > 0 || options.lsqr.btol > 0) {
          const real test1 = rnorm / bnorm;
          const real test2 =
              anorm * rnorm > 0 ? arnorm / (anorm * rnorm) : real{0};
          const real rtol =
              options.lsqr.btol + options.lsqr.atol * anorm * xnorm / bnorm;
          if (options.lsqr.atol > 0 && test2 <= options.lsqr.atol) {
            istop = LsqrStop::kLeastSquares;
            break;
          }
          if (test1 <= rtol) {
            istop = LsqrStop::kAtolBtol;
            break;
          }
        }
      }
    } else {
      istop = LsqrStop::kXZero;
    }

    if (comm.rank() == 0) {
      result.x = x;
      if (options.lsqr.precondition)
        core::unscale_solution(result.x, col_scale);
      if (options.lsqr.compute_std_errors) {
        result.std_errors = var;
        // Degrees of freedom from the *global* row count.
        const auto m_global = static_cast<std::size_t>(A->n_rows());
        const real dof =
            m_global > n ? static_cast<real>(m_global - n) : real{1};
        const real s = rnorm / std::sqrt(dof);
        for (auto& se : result.std_errors) se = s * std::sqrt(se);
        if (options.lsqr.precondition)
          core::unscale_solution(result.std_errors, col_scale);
      }
      result.istop = istop;
      result.iterations = itn;
      result.rnorm = rnorm;
      result.anorm = anorm;
      result.acond = acond;
    }
    (void)m_local;
  });

  iteration_max.resize(static_cast<std::size_t>(result.iterations));
  result.iteration_seconds = iteration_max;
  double total = 0;
  for (double t : iteration_max) total += t;
  result.mean_iteration_s =
      iteration_max.empty() ? 0.0
                            : total / static_cast<double>(iteration_max.size());
  return result;
}

}  // namespace gaia::dist
