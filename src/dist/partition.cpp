#include "dist/partition.hpp"

#include <algorithm>

namespace gaia::dist {

RowPartition partition_by_stars(const matrix::SystemMatrix& A, int n_ranks) {
  GAIA_CHECK(n_ranks >= 1, "need at least one rank");
  const row_index n_stars = A.layout().n_stars();
  GAIA_CHECK(n_ranks <= n_stars, "more ranks than stars");

  const auto starts = A.star_row_start();
  RowPartition part;
  part.n_ranks = n_ranks;
  part.star_begin.resize(static_cast<std::size_t>(n_ranks) + 1);
  part.row_begin.resize(static_cast<std::size_t>(n_ranks) + 1);
  part.star_begin[0] = 0;
  part.row_begin[0] = 0;

  // Greedy row-balanced cuts at star boundaries: rank r's cut is the
  // first star whose cumulative row count reaches (r+1)/n of the total.
  const double total_rows = static_cast<double>(A.n_obs());
  row_index star = 0;
  for (int r = 0; r < n_ranks - 1; ++r) {
    const double target = total_rows * (r + 1) / n_ranks;
    while (star < n_stars &&
           static_cast<double>(starts[static_cast<std::size_t>(star) + 1]) <
               target) {
      ++star;
    }
    // Leave enough stars for the remaining ranks.
    star = std::min(star + 0, n_stars - (n_ranks - 1 - r));
    star = std::max<row_index>(star, part.star_begin[static_cast<std::size_t>(r)] + 1);
    part.star_begin[static_cast<std::size_t>(r) + 1] = star;
    part.row_begin[static_cast<std::size_t>(r) + 1] =
        starts[static_cast<std::size_t>(star)];
  }
  part.star_begin[static_cast<std::size_t>(n_ranks)] = n_stars;
  part.row_begin[static_cast<std::size_t>(n_ranks)] = A.n_obs();
  return part;
}

matrix::SystemMatrix extract_rank_slice(const matrix::SystemMatrix& A,
                                        const RowPartition& part, int rank) {
  GAIA_CHECK(rank >= 0 && rank < part.n_ranks, "rank out of range");
  const bool last = rank == part.n_ranks - 1;
  const row_index row_lo = part.row_begin[static_cast<std::size_t>(rank)];
  const row_index row_hi = part.row_begin[static_cast<std::size_t>(rank) + 1];
  const row_index n_local_obs = row_hi - row_lo;
  const row_index n_local_constraints = last ? A.n_constraints() : 0;
  GAIA_CHECK(n_local_obs > 0, "rank received no rows");

  matrix::SystemMatrix S(A.layout(), n_local_obs, n_local_constraints);

  auto copy_rows = [&](row_index src_begin, row_index dst_begin,
                       row_index count) {
    for (row_index i = 0; i < count; ++i) {
      const auto src = static_cast<std::size_t>(src_begin + i);
      const auto dst = static_cast<std::size_t>(dst_begin + i);
      std::copy_n(A.values().data() + src * kNnzPerRow, kNnzPerRow,
                  S.values().data() + dst * kNnzPerRow);
      S.matrix_index_astro()[dst] = A.matrix_index_astro()[src];
      S.matrix_index_att()[dst] = A.matrix_index_att()[src];
      std::copy_n(A.instr_col().data() + src * kInstrNnzPerRow,
                  kInstrNnzPerRow,
                  S.instr_col().data() + dst * kInstrNnzPerRow);
      S.known_terms()[dst] = A.known_terms()[src];
    }
  };
  copy_rows(row_lo, 0, n_local_obs);
  if (n_local_constraints > 0)
    copy_rows(A.n_obs(), n_local_obs, n_local_constraints);

  // Star partition over the full star space: stars before this rank own
  // zero local rows, local stars own shifted ranges, stars after own
  // zero rows (pinned at n_local_obs).
  const auto g_starts = A.star_row_start();
  auto l_starts = S.star_row_start();
  const row_index star_lo = part.star_begin[static_cast<std::size_t>(rank)];
  const row_index star_hi =
      part.star_begin[static_cast<std::size_t>(rank) + 1];
  for (row_index s = 0; s <= A.layout().n_stars(); ++s) {
    const auto i = static_cast<std::size_t>(s);
    if (s <= star_lo)
      l_starts[i] = 0;
    else if (s >= star_hi)
      l_starts[i] = n_local_obs;
    else
      l_starts[i] = g_starts[i] - row_lo;
  }
  return S;
}

}  // namespace gaia::dist
