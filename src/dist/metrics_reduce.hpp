/// \file metrics_reduce.hpp
/// \brief Cross-rank reduction of metric rows — the "MPI_Reduce the
/// perf counters to rank 0" step of the performance observatory.
///
/// Every rank contributes a vector of rank-local MetricRows (built from
/// data that is genuinely per-rank: its iteration times, its launch
/// counter, its row slice — the global MetricsRegistry is shared by all
/// in-process ranks and therefore already cluster-wide). The reduction
/// is collective and schema-checked: ranks first agree on a CRC of the
/// (name, type) list, then bulk-allreduce the numeric fields — counts
/// and sums add, minima min-reduce, maxima and quantiles max-reduce (a
/// quantile of per-rank quantiles is not exact, so the conservative
/// upper envelope is reported).
///
/// Poison safety: if a peer rank dies during the reduction (or the
/// schemas disagree), every surviving caller gets its own rows back
/// with `complete == false` instead of hanging — a partial snapshot is
/// the contract, not a deadlock.
#pragma once

#include <vector>

#include "dist/comm.hpp"
#include "obs/metrics.hpp"

namespace gaia::dist {

/// Outcome of one collective metric reduction.
struct AggregatedMetrics {
  /// True when every rank contributed (schema matched, nobody died).
  bool complete = false;
  /// Cluster-wide rows on success; the caller's local rows on failure.
  std::vector<obs::MetricRow> rows;
};

/// Collective: every rank of `comm` must call with rows of the same
/// (name, type) schema in the same order.
AggregatedMetrics aggregate_metrics(Comm& comm,
                                    std::vector<obs::MetricRow> local);

}  // namespace gaia::dist
