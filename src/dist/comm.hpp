/// \file comm.hpp
/// \brief In-process message-passing world (MPI stand-in).
///
/// The production solver distributes observations over MPI ranks; each
/// rank runs the LSQR recurrences on its row slice and the ranks combine
/// partial results with allreduce (paper SIV). The paper's P runs use a
/// single GPU (= one rank), but the solver keeps the distributed
/// structure, so we reproduce it: a `World` spawns N ranks as threads,
/// and `Comm` gives each rank the usual rank/size/allreduce/bcast/
/// barrier primitives over shared memory.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace gaia::dist {

/// Thrown by collectives on surviving ranks once the world is poisoned
/// (another rank failed mid-collective-epoch). Survivors unwind cleanly
/// instead of deadlocking on a barrier the dead rank will never reach;
/// `World::run` suppresses this marker and rethrows the original error.
class WorldPoisoned : public Error {
 public:
  WorldPoisoned()
      : Error("world poisoned: a peer rank failed; collective aborted") {}
};

enum class ReduceOp : std::uint8_t { kSum, kMax, kMin };

class World;

/// Per-rank communicator handle. Methods are collective: every rank of
/// the world must call them in the same order (like MPI).
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Collective barrier.
  void barrier();

  /// In-place allreduce over doubles.
  void allreduce(std::span<real> data, ReduceOp op);

  /// Allreduce of one scalar (returns the reduced value on every rank).
  real allreduce(real value, ReduceOp op);

  /// Broadcast from `root` into `data` on every rank.
  void bcast(std::span<real> data, int root);

 private:
  friend class World;
  Comm(World* world, int rank, int size)
      : world_(world), rank_(rank), size_(size) {}

  World* world_;
  int rank_;
  int size_;
};

/// Launches `size` ranks, each running `body(comm)` on its own thread,
/// and joins them. When a rank throws, the world is *poisoned*: every
/// surviving rank's next collective throws WorldPoisoned (so nobody
/// blocks on a barrier the dead rank will never reach), and run()
/// rethrows the first real error. The world stays usable for another
/// run() afterwards — the restart path of the distributed solver relies
/// on both properties.
class World {
 public:
  explicit World(int size);

  /// Collective run. May be called multiple times sequentially.
  void run(const std::function<void(Comm&)>& body);

  [[nodiscard]] int size() const { return size_; }

 private:
  friend class Comm;

  // Reduction scratch shared by the collectives.
  void collective_reduce(int rank, std::span<real> data, ReduceOp op);
  void collective_bcast(int rank, std::span<real> data, int root);
  void arrive_barrier();
  /// Records `error` (first wins) and flips the poison flag that every
  /// barrier crossing checks.
  void poison(std::exception_ptr error);

  int size_;
  std::unique_ptr<std::barrier<>> barrier_;
  std::mutex reduce_mutex_;
  std::vector<real> reduce_buffer_;
  std::span<real> bcast_source_;
  std::atomic<bool> poisoned_{false};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace gaia::dist
