/// \file comm.hpp
/// \brief In-process message-passing world (MPI stand-in).
///
/// The production solver distributes observations over MPI ranks; each
/// rank runs the LSQR recurrences on its row slice and the ranks combine
/// partial results with allreduce (paper SIV). The paper's P runs use a
/// single GPU (= one rank), but the solver keeps the distributed
/// structure, so we reproduce it: a `World` spawns N ranks as threads,
/// and `Comm` gives each rank the usual rank/size/allreduce/bcast/
/// barrier primitives over shared memory.
///
/// Every collective is traced as a span on the rank's comm track, split
/// into a *wait* child (time at the entry barrier until the last rank
/// arrives — pure skew) and an *exchange* child (the transfer/reduce
/// work after everyone is present). The same split is accumulated in
/// per-rank `CommStats` (always on; two clock reads per collective) —
/// the raw material for the comm-exposure rows the distributed solver
/// publishes and the critical-path analyzer cross-checks.
#pragma once

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace gaia::dist {

/// Thrown by collectives on surviving ranks once the world is poisoned
/// (another rank failed mid-collective-epoch). Survivors unwind cleanly
/// instead of deadlocking on a barrier the dead rank will never reach;
/// `World::run` suppresses this marker and rethrows the original error.
class WorldPoisoned : public Error {
 public:
  WorldPoisoned()
      : Error("world poisoned: a peer rank failed; collective aborted") {}
};

enum class ReduceOp : std::uint8_t { kSum, kMax, kMin };

class World;

/// Per-rank accounting of collective time, split the way the tracing
/// spans are: `wait_seconds` is time spent at entry barriers waiting for
/// the slowest peer, the rest of `seconds` is transfer/reduce work.
struct CommStats {
  std::uint64_t collectives = 0;  ///< allreduce + bcast + barrier calls
  std::uint64_t bytes = 0;        ///< payload bytes moved (allreduce+bcast)
  double seconds = 0;             ///< total wall time inside collectives
  double wait_seconds = 0;        ///< entry-barrier (skew) share of seconds

  CommStats operator-(const CommStats& other) const {
    return {collectives - other.collectives, bytes - other.bytes,
            seconds - other.seconds, wait_seconds - other.wait_seconds};
  }
};

/// Per-rank communicator handle. Methods are collective: every rank of
/// the world must call them in the same order (like MPI).
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Collective barrier.
  void barrier();

  /// In-place allreduce over doubles.
  void allreduce(std::span<real> data, ReduceOp op);

  /// Allreduce of one scalar (returns the reduced value on every rank).
  real allreduce(real value, ReduceOp op);

  /// Broadcast from `root` into `data` on every rank.
  void bcast(std::span<real> data, int root);

  /// This rank's accumulated collective timing (monotonic over the
  /// Comm's lifetime; snapshot-and-diff to scope a region).
  [[nodiscard]] const CommStats& stats() const { return stats_; }

 private:
  friend class World;
  Comm(World* world, int rank, int size)
      : world_(world), rank_(rank), size_(size) {}

  /// Shared trace/metrics/stats bookkeeping around one collective.
  /// `body` runs the collective and returns the entry-barrier seconds.
  /// Returns this call's {1, bytes, total, wait} delta so the wrappers
  /// can record per-collective metric series.
  CommStats timed_collective(const char* name, std::uint64_t bytes,
                             const std::function<double()>& body);

  World* world_;
  int rank_;
  int size_;
  CommStats stats_;
};

/// Launches `size` ranks, each running `body(comm)` on its own thread,
/// and joins them. When a rank throws, the world is *poisoned*: every
/// surviving rank's next collective throws WorldPoisoned (so nobody
/// blocks on a barrier the dead rank will never reach), and run()
/// rethrows the first real error. The world stays usable for another
/// run() afterwards — the restart path of the distributed solver relies
/// on both properties.
class World {
 public:
  explicit World(int size);

  /// Collective run. May be called multiple times sequentially.
  void run(const std::function<void(Comm&)>& body);

  [[nodiscard]] int size() const { return size_; }

  /// The shared clock epoch every rank aligns its trace against — the
  /// in-process stand-in for the epoch exchange a real MPI launcher
  /// would perform at startup.
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }

 private:
  friend class Comm;

  // Reduction scratch shared by the collectives. The reduce/bcast
  // bodies report the duration of their *entry* barrier via
  // `wait_seconds` (the skew share the comm spans and stats split out).
  void collective_reduce(int rank, std::span<real> data, ReduceOp op,
                         double* wait_seconds);
  void collective_bcast(int rank, std::span<real> data, int root,
                        double* wait_seconds);
  void arrive_barrier();
  /// Records `error` (first wins) and flips the poison flag that every
  /// barrier crossing checks.
  void poison(std::exception_ptr error);

  int size_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::unique_ptr<std::barrier<>> barrier_;
  std::mutex reduce_mutex_;
  std::vector<real> reduce_buffer_;
  std::span<real> bcast_source_;
  std::atomic<bool> poisoned_{false};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace gaia::dist
