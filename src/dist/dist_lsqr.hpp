/// \file dist_lsqr.hpp
/// \brief Distributed (multi-rank) LSQR — the MPI structure of the
/// production solver over the in-process World.
///
/// Data placement mirrors production: u and the matrix rows are
/// distributed by observation; x, v, w are replicated; every aprod2
/// partial result is allreduce-summed; the recurrence scalars are
/// computed from allreduced norms, so all ranks follow the same scalar
/// trajectory. The reported iteration time is the *maximum over ranks*,
/// exactly the paper's measurement rule (Appendix B).
#pragma once

#include "core/lsqr.hpp"
#include "dist/comm.hpp"
#include "dist/partition.hpp"

namespace gaia::dist {

struct DistLsqrOptions {
  int n_ranks = 2;
  core::LsqrOptions lsqr{};
};

struct DistLsqrResult {
  std::vector<real> x;
  std::vector<real> std_errors;
  core::LsqrStop istop = core::LsqrStop::kIterationLimit;
  std::int64_t iterations = 0;
  real rnorm = 0;
  real anorm = 0;
  real acond = 0;
  /// Mean over iterations of the per-iteration wall time maximized over
  /// ranks (paper: "iteration time maximized among all MPI processes").
  double mean_iteration_s = 0;
  std::vector<double> iteration_seconds;
  RowPartition partition;
};

/// Solves A x ~= A.known_terms() on `n_ranks` simulated MPI ranks.
DistLsqrResult dist_lsqr_solve(const matrix::SystemMatrix& A,
                               const DistLsqrOptions& options);

}  // namespace gaia::dist
