/// \file dist_lsqr.hpp
/// \brief Distributed (multi-rank) LSQR — the MPI structure of the
/// production solver over the in-process World.
///
/// Data placement mirrors production: u and the matrix rows are
/// distributed by observation; x, v, w are replicated; every aprod2
/// partial result is allreduce-summed; the recurrence scalars are
/// computed from allreduced norms, so all ranks follow the same scalar
/// trajectory. The reported iteration time is the *maximum over ranks*,
/// exactly the paper's measurement rule (Appendix B).
#pragma once

#include "core/lsqr.hpp"
#include "dist/comm.hpp"
#include "dist/metrics_reduce.hpp"
#include "dist/partition.hpp"
#include "resilience/checkpoint.hpp"
#include "tuning/autotuner.hpp"

namespace gaia::dist {

struct DistLsqrOptions {
  int n_ranks = 2;
  /// Per-rank solver options. `lsqr.health` also governs the distributed
  /// SDC defense: scalar invariants every iteration plus, every
  /// `health.check_every` iterations, a cross-rank agreement pass — the
  /// replicated v/w/x state is hashed per rank and allreduce-compared
  /// (min == max or a replica diverged) alongside a collective
  /// true-residual recompute. All detection decisions are themselves
  /// collective (an allreduce-max of per-rank verdicts), so a corrupted
  /// rank can never desync the world's collective order.
  core::LsqrOptions lsqr{};
  /// Periodic distributed checkpoints (rank 0 seals the replicated +
  /// reassembled state every `checkpoint.every` iterations). Also the
  /// recovery source after a rank death: disabled (`every == 0`) means a
  /// rank death restarts the solve from iteration 0.
  resilience::CheckpointConfig checkpoint{};
  /// Rank-death recoveries allowed before the error propagates. Each
  /// recovery drops the dead rank, re-partitions over the survivors and
  /// resumes from the newest valid checkpoint.
  int max_restarts = 3;
  /// Launch-shape search before the iteration loop: rank 0 tunes on its
  /// local slice and broadcasts the winning table, so every rank runs
  /// identical shapes (the production rule — mismatched shapes would
  /// skew the max-over-ranks iteration time).
  bool autotune = false;
  tuning::AutotuneOptions autotune_search{};
  /// Per-rank distributed tracing: when non-empty, every rank records
  /// into its own TraceRecorder (clock-aligned against the World epoch)
  /// and writes `<trace_dir>/trace.rank<N>.json`; the driver then merges
  /// them into `<trace_dir>/trace.merged.json` — the input of
  /// tools/gaia-critpath.
  std::string trace_dir;
  /// Event cap per rank recorder (0 = recorder default, currently 1M).
  std::size_t trace_capacity = 0;
};

struct DistLsqrResult {
  std::vector<real> x;
  std::vector<real> std_errors;
  core::LsqrStop istop = core::LsqrStop::kIterationLimit;
  std::int64_t iterations = 0;
  real rnorm = 0;
  real anorm = 0;
  real acond = 0;
  /// Mean over iterations of the per-iteration wall time maximized over
  /// ranks (paper: "iteration time maximized among all MPI processes").
  double mean_iteration_s = 0;
  std::vector<double> iteration_seconds;
  RowPartition partition;

  /// Recovery bookkeeping: restarts taken (0 = healthy run), ranks the
  /// final attempt ran on, iteration the last restart resumed from
  /// (-1 = never resumed) and checkpoints sealed across all attempts.
  int restarts = 0;
  int final_ranks = 0;
  std::int64_t resumed_from_iteration = -1;
  std::uint64_t checkpoints_written = 0;

  /// Performance observatory: each rank's local counter rows
  /// (dist.rank.*, indexed by rank of the final attempt) and their
  /// cross-rank reduction. `cluster_metrics_complete` is false when the
  /// reduction was partial (schema mismatch or a peer died mid-reduce),
  /// in which case `cluster_metrics` holds rank 0's local rows.
  std::vector<std::vector<obs::MetricRow>> rank_metrics;
  std::vector<obs::MetricRow> cluster_metrics;
  bool cluster_metrics_complete = false;

  /// Collective-time accounting of the final attempt's iteration loop,
  /// maximized over ranks: total seconds inside collectives, the
  /// entry-barrier (skew) share, and the comm-exposure fraction
  /// (collective seconds / loop wall seconds — the LSQR loop is
  /// synchronous, so unoverlapped comm is simply comm).
  double comm_seconds_max = 0;
  double comm_wait_seconds_max = 0;
  double comm_exposure_fraction_max = 0;

  /// Distributed tracing artifacts (empty unless trace_dir was set):
  /// one file per rank plus the merged multi-process timeline, and the
  /// total events lost to the per-rank capacity cap.
  std::vector<std::string> trace_files;
  std::string merged_trace_file;
  std::uint64_t trace_dropped_events = 0;

  /// Health-monitor outcome accumulated across attempts (mode kOff with
  /// zero counters unless options.lsqr.health enabled it). In repair
  /// mode a collective detection aborts the attempt and the driver
  /// replays from the newest valid checkpoint — or from iteration 0 when
  /// checkpointing is off — bounded by health.max_repairs; exhausting
  /// the budget throws resilience::SdcError with the diagnosis.
  resilience::HealthReport health{};
};

/// Solves A x ~= A.known_terms() on `n_ranks` simulated MPI ranks.
DistLsqrResult dist_lsqr_solve(const matrix::SystemMatrix& A,
                               const DistLsqrOptions& options);

}  // namespace gaia::dist
