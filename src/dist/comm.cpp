#include "dist/comm.hpp"

#include <algorithm>
#include <exception>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace gaia::dist {

namespace {
/// Trace track of a rank's collectives. Ranks run on their own threads,
/// so each gets its own timeline lane (offset to stay clear of stream
/// ids).
std::int32_t rank_track(int rank) { return 1000 + rank; }
}  // namespace

World::World(int size) : size_(size) {
  GAIA_CHECK(size_ >= 1, "world needs at least one rank");
  barrier_ = std::make_unique<std::barrier<>>(size_);
}

void World::arrive_barrier() {
  // Checked on both sides of the wait: before, so a poisoned survivor
  // exits without arriving (its catch-side arrive_and_drop keeps the
  // phase count consistent); after, because the dead rank's
  // arrive_and_drop is what completed the phase we were blocked in, and
  // its poison store happens-before that completion.
  if (poisoned_.load(std::memory_order_acquire)) throw WorldPoisoned();
  barrier_->arrive_and_wait();
  if (poisoned_.load(std::memory_order_acquire)) throw WorldPoisoned();
}

void World::poison(std::exception_ptr error) {
  std::string what = "(unknown)";
  try {
    if (error) std::rethrow_exception(error);
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = std::move(error);
  }
  poisoned_.store(true, std::memory_order_release);
  obs::flight_event("comm", "world.poisoned", what);
}

void World::collective_reduce(int rank, std::span<real> data, ReduceOp op,
                              double* wait_seconds) {
  const std::size_t n = data.size();
  {
    util::Stopwatch entry;
    arrive_barrier();
    if (wait_seconds) *wait_seconds = entry.elapsed_s();
  }
  if (rank == 0) reduce_buffer_.assign(static_cast<std::size_t>(size_) * n,
                                       real{0});
  arrive_barrier();
  // Each rank publishes its contribution in its own slice: no locking,
  // and the subsequent rank-ordered reduction is deterministic (the
  // production MPI_Allreduce is reproducible for a fixed rank count).
  std::copy(data.begin(), data.end(),
            reduce_buffer_.begin() + static_cast<std::size_t>(rank) * n);
  arrive_barrier();
  for (std::size_t i = 0; i < n; ++i) {
    real acc = reduce_buffer_[i];
    for (int r = 1; r < size_; ++r) {
      const real v = reduce_buffer_[static_cast<std::size_t>(r) * n + i];
      switch (op) {
        case ReduceOp::kSum:
          acc += v;
          break;
        case ReduceOp::kMax:
          acc = std::max(acc, v);
          break;
        case ReduceOp::kMin:
          acc = std::min(acc, v);
          break;
      }
    }
    data[i] = acc;
  }
  arrive_barrier();
}

void World::collective_bcast(int rank, std::span<real> data, int root,
                             double* wait_seconds) {
  GAIA_CHECK(root >= 0 && root < size_, "bcast root out of range");
  {
    util::Stopwatch entry;
    arrive_barrier();
    if (wait_seconds) *wait_seconds = entry.elapsed_s();
  }
  if (rank == root) bcast_source_ = data;
  arrive_barrier();
  if (rank != root)
    std::copy(bcast_source_.begin(), bcast_source_.end(), data.begin());
  arrive_barrier();
}

CommStats Comm::timed_collective(const char* name, std::uint64_t bytes,
                                 const std::function<double()>& body) {
  auto& rec = obs::TraceRecorder::current();
  const bool traced = rec.enabled();
  if (traced)
    rec.name_track(rank_track(rank_), "rank-" + std::to_string(rank_) +
                                          " comm");
  obs::ScopedTrace span(name, "comm", rank_track(rank_));
  span.add_arg({"rank", static_cast<std::int64_t>(rank_)});
  span.add_arg({"bytes", bytes});
  const double t0_us = traced ? rec.now_us() : 0;
  util::Stopwatch watch;
  const double wait_s = body();
  const double total_s = watch.elapsed_s();

  stats_.collectives += 1;
  stats_.bytes += bytes;
  stats_.seconds += total_s;
  stats_.wait_seconds += wait_s;
  span.add_arg({"wait_us", wait_s * 1e6});

  if (traced) {
    // The wait/exchange split as nested child spans: wait ends when the
    // last rank has arrived at the entry barrier, exchange covers the
    // actual transfer/reduce work. [t0, t0+wait][t0+wait, end] tiles
    // the parent span exactly, so Perfetto renders a two-level lane.
    const double wait_us = wait_s * 1e6;
    const double total_us = total_s * 1e6;
    const std::string prefix = name;
    rec.complete(prefix + ".wait", "comm", t0_us, wait_us,
                 rank_track(rank_), {{"rank", std::int64_t{rank_}}});
    rec.complete(prefix + ".exchange", "comm", t0_us + wait_us,
                 std::max(0.0, total_us - wait_us), rank_track(rank_),
                 {{"rank", std::int64_t{rank_}}, {"bytes", bytes}});
  }

  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    static obs::Counter& calls = reg.counter("comm.collective_calls");
    static obs::Histogram& waits = reg.histogram("comm.wait_seconds");
    calls.add(1);
    waits.record(wait_s);
  }
  return {1, bytes, total_s, wait_s};
}

void Comm::barrier() {
  timed_collective("barrier", 0, [&] {
    util::Stopwatch entry;
    world_->arrive_barrier();
    return entry.elapsed_s();
  });
}

void Comm::allreduce(std::span<real> data, ReduceOp op) {
  const auto bytes = static_cast<std::uint64_t>(data.size_bytes());
  const CommStats call = timed_collective("allreduce", bytes, [&] {
    double wait_s = 0;
    world_->collective_reduce(rank_, data, op, &wait_s);
    return wait_s;
  });
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    static obs::Counter& calls = reg.counter("comm.allreduce_calls");
    static obs::Counter& traffic = reg.counter("comm.allreduce_bytes");
    static obs::Histogram& seconds = reg.histogram("comm.allreduce_seconds");
    static obs::Histogram& waits =
        reg.histogram("comm.allreduce_wait_seconds");
    calls.add(1);
    traffic.add(bytes);
    seconds.record(call.seconds);
    waits.record(call.wait_seconds);
  }
}

real Comm::allreduce(real value, ReduceOp op) {
  allreduce(std::span<real>(&value, 1), op);
  return value;
}

void Comm::bcast(std::span<real> data, int root) {
  const auto bytes = static_cast<std::uint64_t>(data.size_bytes());
  timed_collective("bcast", bytes, [&] {
    double wait_s = 0;
    world_->collective_bcast(rank_, data, root, &wait_s);
    return wait_s;
  });
}

void World::run(const std::function<void(Comm&)>& body) {
  // Fresh barrier and poison state per collective epoch: a previous run
  // may have dropped participants on error.
  barrier_ = std::make_unique<std::barrier<>>(size_);
  bcast_source_ = {};
  poisoned_.store(false, std::memory_order_release);
  first_error_ = nullptr;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body] {
      Comm comm(this, r, size_);
      try {
        body(comm);
      } catch (const WorldPoisoned&) {
        // Collateral unwind of a survivor — the real error is already
        // recorded. Leave the barrier so remaining waiters progress.
        barrier_->arrive_and_drop();
      } catch (...) {
        poison(std::current_exception());
        // Leave the barrier so surviving ranks cannot deadlock waiting
        // for this one; their next barrier crossing sees the poison and
        // unwinds too.
        barrier_->arrive_and_drop();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (std::exception_ptr error = std::exchange(first_error_, nullptr)) {
    poisoned_.store(false, std::memory_order_release);
    std::rethrow_exception(error);
  }
}

}  // namespace gaia::dist
