#include "dist/comm.hpp"

#include <algorithm>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace gaia::dist {

namespace {
/// Trace track of a rank's collectives. Ranks run on their own threads,
/// so each gets its own timeline lane (offset to stay clear of stream
/// ids).
std::int32_t rank_track(int rank) { return 1000 + rank; }
}  // namespace

World::World(int size) : size_(size) {
  GAIA_CHECK(size_ >= 1, "world needs at least one rank");
  barrier_ = std::make_unique<std::barrier<>>(size_);
}

void World::arrive_barrier() {
  // Checked on both sides of the wait: before, so a poisoned survivor
  // exits without arriving (its catch-side arrive_and_drop keeps the
  // phase count consistent); after, because the dead rank's
  // arrive_and_drop is what completed the phase we were blocked in, and
  // its poison store happens-before that completion.
  if (poisoned_.load(std::memory_order_acquire)) throw WorldPoisoned();
  barrier_->arrive_and_wait();
  if (poisoned_.load(std::memory_order_acquire)) throw WorldPoisoned();
}

void World::poison(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = std::move(error);
  }
  poisoned_.store(true, std::memory_order_release);
}

void World::collective_reduce(int rank, std::span<real> data, ReduceOp op) {
  const std::size_t n = data.size();
  arrive_barrier();
  if (rank == 0) reduce_buffer_.assign(static_cast<std::size_t>(size_) * n,
                                       real{0});
  arrive_barrier();
  // Each rank publishes its contribution in its own slice: no locking,
  // and the subsequent rank-ordered reduction is deterministic (the
  // production MPI_Allreduce is reproducible for a fixed rank count).
  std::copy(data.begin(), data.end(),
            reduce_buffer_.begin() + static_cast<std::size_t>(rank) * n);
  arrive_barrier();
  for (std::size_t i = 0; i < n; ++i) {
    real acc = reduce_buffer_[i];
    for (int r = 1; r < size_; ++r) {
      const real v = reduce_buffer_[static_cast<std::size_t>(r) * n + i];
      switch (op) {
        case ReduceOp::kSum:
          acc += v;
          break;
        case ReduceOp::kMax:
          acc = std::max(acc, v);
          break;
        case ReduceOp::kMin:
          acc = std::min(acc, v);
          break;
      }
    }
    data[i] = acc;
  }
  arrive_barrier();
}

void World::collective_bcast(int rank, std::span<real> data, int root) {
  GAIA_CHECK(root >= 0 && root < size_, "bcast root out of range");
  arrive_barrier();
  if (rank == root) bcast_source_ = data;
  arrive_barrier();
  if (rank != root)
    std::copy(bcast_source_.begin(), bcast_source_.end(), data.begin());
  arrive_barrier();
}

void Comm::barrier() { world_->arrive_barrier(); }

void Comm::allreduce(std::span<real> data, ReduceOp op) {
  const auto bytes = static_cast<std::uint64_t>(data.size_bytes());
  auto& rec = obs::TraceRecorder::global();
  if (rec.enabled()) rec.name_track(rank_track(rank_), "rank-" +
                                    std::to_string(rank_));
  obs::ScopedTrace span("allreduce", "comm", rank_track(rank_));
  span.add_arg({"rank", static_cast<std::int64_t>(rank_)});
  span.add_arg({"bytes", bytes});
  util::Stopwatch watch;
  world_->collective_reduce(rank_, data, op);
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    static obs::Counter& calls = reg.counter("comm.allreduce_calls");
    static obs::Counter& traffic = reg.counter("comm.allreduce_bytes");
    static obs::Histogram& seconds = reg.histogram("comm.allreduce_seconds");
    calls.add(1);
    traffic.add(bytes);
    seconds.record(watch.elapsed_s());
  }
}

real Comm::allreduce(real value, ReduceOp op) {
  allreduce(std::span<real>(&value, 1), op);
  return value;
}

void Comm::bcast(std::span<real> data, int root) {
  world_->collective_bcast(rank_, data, root);
}

void World::run(const std::function<void(Comm&)>& body) {
  // Fresh barrier and poison state per collective epoch: a previous run
  // may have dropped participants on error.
  barrier_ = std::make_unique<std::barrier<>>(size_);
  bcast_source_ = {};
  poisoned_.store(false, std::memory_order_release);
  first_error_ = nullptr;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body] {
      Comm comm(this, r, size_);
      try {
        body(comm);
      } catch (const WorldPoisoned&) {
        // Collateral unwind of a survivor — the real error is already
        // recorded. Leave the barrier so remaining waiters progress.
        barrier_->arrive_and_drop();
      } catch (...) {
        poison(std::current_exception());
        // Leave the barrier so surviving ranks cannot deadlock waiting
        // for this one; their next barrier crossing sees the poison and
        // unwinds too.
        barrier_->arrive_and_drop();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (std::exception_ptr error = std::exchange(first_error_, nullptr)) {
    poisoned_.store(false, std::memory_order_release);
    std::rethrow_exception(error);
  }
}

}  // namespace gaia::dist
