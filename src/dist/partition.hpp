/// \file partition.hpp
/// \brief Observation partitioning across ranks.
///
/// The production code distributes observations over MPI ranks. The
/// partition must respect star boundaries: a star's rows stay on one
/// rank so the atomic-free star-parallel aprod2 astrometric kernel
/// remains valid rank-locally. Constraint rows live on the last rank.
#pragma once

#include <vector>

#include "matrix/system_matrix.hpp"

namespace gaia::dist {

struct RowPartition {
  int n_ranks = 0;
  /// star_begin[r]..star_begin[r+1] are rank r's stars (size n_ranks+1).
  std::vector<row_index> star_begin;
  /// row_begin[r]..row_begin[r+1] are rank r's observation rows.
  std::vector<row_index> row_begin;

  [[nodiscard]] row_index stars_of(int rank) const {
    return star_begin[static_cast<std::size_t>(rank) + 1] -
           star_begin[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] row_index rows_of(int rank) const {
    return row_begin[static_cast<std::size_t>(rank) + 1] -
           row_begin[static_cast<std::size_t>(rank)];
  }
};

/// Balanced-by-rows partition along star boundaries. Every rank receives
/// at least one star (throws if n_ranks > n_stars).
RowPartition partition_by_stars(const matrix::SystemMatrix& A, int n_ranks);

/// Extracts rank `rank`'s slice: local observation rows (plus, on the
/// last rank, the constraint rows) over the *global* column layout.
/// The star partition of the slice covers all stars; non-local stars
/// simply own zero rows.
matrix::SystemMatrix extract_rank_slice(const matrix::SystemMatrix& A,
                                        const RowPartition& partition,
                                        int rank);

}  // namespace gaia::dist
