/// \file residual_analysis.hpp
/// \brief Post-solve residual time-series analysis (paper Fig. 1:
/// "Residuals Time-series Analysis" / "Statistical Fit").
///
/// After the solver, the pipeline inspects the along-scan residuals as a
/// function of observation time: a healthy solution leaves white,
/// zero-mean residuals; attitude mis-modelling or calibration drift show
/// up as time-correlated structure. This module bins residuals by
/// transit time, fits the trend, and computes the lag-1 autocorrelation
/// whiteness statistic.
#pragma once

#include <span>
#include <vector>

#include "matrix/scanlaw.hpp"

namespace gaia::validation {

struct ResidualBin {
  double t_center = 0;   ///< bin center (years)
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
};

struct ResidualAnalysis {
  std::vector<ResidualBin> bins;
  double global_mean = 0;
  double global_stddev = 0;
  /// Linear drift of the residual mean over time (units / year).
  double trend_slope = 0;
  /// Lag-1 autocorrelation of the binned means: ~0 for white residuals,
  /// -> 1 for strongly time-correlated structure.
  double lag1_autocorrelation = 0;
  /// Fraction of bins whose mean is within 3 sigma/sqrt(n) of zero.
  double bins_consistent_with_zero = 0;

  [[nodiscard]] bool looks_white(double trend_tol, double autocorr_tol)
      const {
    return std::abs(trend_slope) < trend_tol &&
           std::abs(lag1_autocorrelation) < autocorr_tol;
  }
};

/// Bins the per-observation residuals by transit time and computes the
/// whiteness statistics. `residuals` must cover the observation rows
/// (constraint-row residuals are excluded by the caller).
ResidualAnalysis analyze_residuals(std::span<const real> residuals,
                                   std::span<const matrix::Transit> transits,
                                   int n_bins = 20);

}  // namespace gaia::validation
