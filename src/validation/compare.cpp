#include "validation/compare.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace gaia::validation {

SolutionComparison compare_solutions(std::span<const real> candidate,
                                     std::span<const real> reference,
                                     std::span<const real> candidate_err,
                                     std::span<const real> reference_err,
                                     real accuracy_goal) {
  GAIA_CHECK(candidate.size() == reference.size(),
             "solution size mismatch");
  const bool have_errors =
      !candidate_err.empty() && !reference_err.empty();
  if (have_errors) {
    GAIA_CHECK(candidate_err.size() == candidate.size() &&
                   reference_err.size() == reference.size(),
               "error-vector size mismatch");
  }

  SolutionComparison cmp;
  cmp.n = candidate.size();
  if (cmp.n == 0) return cmp;

  std::vector<double> diffs(cmp.n);
  double ref_sq = 0, diff_sq = 0;
  std::size_t within_sigma = 0;
  for (std::size_t i = 0; i < cmp.n; ++i) {
    const double d = candidate[i] - reference[i];
    diffs[i] = d;
    diff_sq += d * d;
    ref_sq += reference[i] * reference[i];
    cmp.max_abs_diff = std::max(cmp.max_abs_diff, std::abs(d));
    if (have_errors) {
      const double sigma = std::sqrt(candidate_err[i] * candidate_err[i] +
                                     reference_err[i] * reference_err[i]);
      if (std::abs(d) <= sigma || sigma == 0.0) ++within_sigma;
    }
  }
  cmp.mean_diff = util::mean(diffs);
  cmp.stddev_diff = util::stddev(diffs);
  cmp.rel_l2_error =
      std::sqrt(diff_sq) / std::max(std::sqrt(ref_sq), 1e-300);
  cmp.sigma_agreement =
      have_errors ? static_cast<double>(within_sigma) /
                        static_cast<double>(cmp.n)
                  : 0.0;

  // Paper SV-C: mean and sigma of the standard-error differences must
  // stay below the astrometric accuracy goal. Applied here to the
  // solution differences of whatever pair is being validated.
  cmp.below_accuracy_goal = std::abs(cmp.mean_diff) < accuracy_goal &&
                            cmp.stddev_diff < accuracy_goal;
  return cmp;
}

std::string SolutionComparison::summary() const {
  std::ostringstream os;
  os << "n=" << n << " max|d|=" << max_abs_diff << " mean(d)=" << mean_diff
     << " sigma(d)=" << stddev_diff << " rel-l2=" << rel_l2_error
     << " 1sigma-agreement=" << sigma_agreement * 100 << "%"
     << (below_accuracy_goal ? " [within accuracy goal]"
                             : " [EXCEEDS accuracy goal]");
  return os.str();
}

std::vector<ScatterPoint> astrometric_scatter(
    const matrix::ParameterLayout& layout, std::span<const real> candidate,
    std::span<const real> reference, std::size_t max_points) {
  GAIA_CHECK(candidate.size() == reference.size(), "size mismatch");
  GAIA_CHECK(static_cast<col_index>(candidate.size()) ==
                 layout.n_unknowns(),
             "solution does not match layout");
  const auto n_astro = static_cast<std::size_t>(layout.n_astro_params());
  const std::size_t stride =
      std::max<std::size_t>(1, n_astro / std::max<std::size_t>(1, max_points));
  std::vector<ScatterPoint> points;
  points.reserve(n_astro / stride + 1);
  for (std::size_t c = 0; c < n_astro; c += stride) {
    points.push_back({static_cast<col_index>(c), reference[c], candidate[c]});
  }
  return points;
}

OneToOneFit fit_one_to_one(const std::vector<ScatterPoint>& points) {
  std::vector<double> x, y;
  x.reserve(points.size());
  y.reserve(points.size());
  for (const auto& p : points) {
    x.push_back(p.reference);
    y.push_back(p.candidate);
  }
  const util::LinearFit fit = util::linear_fit(x, y);
  return {fit.slope, fit.intercept, fit.r2};
}

}  // namespace gaia::validation
