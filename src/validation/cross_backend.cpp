#include "validation/cross_backend.hpp"

#include "core/vector_ops.hpp"

namespace gaia::validation {

ValidationCampaign run_validation(const ValidationOptions& options) {
  matrix::GeneratorConfig cfg = options.dataset;
  cfg.rhs_mode = matrix::RhsMode::kFromGroundTruth;
  matrix::GeneratedSystem gen = matrix::generate_system(cfg);

  // Bring the synthetic solution to astrometric scale (radians): the
  // system is linear, so scaling b scales x and its standard errors.
  if (options.solution_scale != real{1}) {
    auto b = gen.A.known_terms();
    for (auto& v : b) v *= options.solution_scale;
  }

  ValidationCampaign campaign;
  campaign.layout = gen.A.layout();

  // Reference: the deterministic serial build plays the production code.
  core::LsqrOptions ref_opts = options.lsqr;
  ref_opts.aprod.backend = backends::BackendKind::kSerial;
  ref_opts.aprod.use_streams = false;
  ref_opts.compute_std_errors = true;
  campaign.reference = core::lsqr_solve(gen.A, ref_opts);

  campaign.all_passed = true;
  for (backends::BackendKind backend : backends::all_backends()) {
    if (backend == backends::BackendKind::kSerial) continue;
    core::LsqrOptions port_opts = options.lsqr;
    port_opts.aprod.backend = backend;
    port_opts.compute_std_errors = true;

    BackendValidation v;
    v.backend = backend;
    v.result = core::lsqr_solve(gen.A, port_opts);
    v.solution = compare_solutions(v.result.x, campaign.reference.x,
                                   v.result.std_errors,
                                   campaign.reference.std_errors,
                                   options.accuracy_goal);
    v.std_errors = compare_solutions(v.result.std_errors,
                                     campaign.reference.std_errors, {}, {},
                                     options.accuracy_goal);
    v.one_to_one = fit_one_to_one(astrometric_scatter(
        campaign.layout, v.result.x, campaign.reference.x));
    campaign.all_passed = campaign.all_passed &&
                          v.solution.below_accuracy_goal &&
                          v.std_errors.below_accuracy_goal &&
                          v.solution.sigma_agreement > 0.99;
    campaign.ports.push_back(std::move(v));
  }
  return campaign;
}

}  // namespace gaia::validation
