#include "validation/cross_backend.hpp"

#include "core/vector_ops.hpp"

namespace gaia::validation {

ValidationCampaign run_validation(const ValidationOptions& options) {
  matrix::GeneratorConfig cfg = options.dataset;
  cfg.rhs_mode = matrix::RhsMode::kFromGroundTruth;
  matrix::GeneratedSystem gen = matrix::generate_system(cfg);

  // Bring the synthetic solution to astrometric scale (radians): the
  // system is linear, so scaling b scales x and its standard errors.
  if (options.solution_scale != real{1}) {
    auto b = gen.A.known_terms();
    for (auto& v : b) v *= options.solution_scale;
  }

  ValidationCampaign campaign;
  campaign.layout = gen.A.layout();

  // Reference: the deterministic serial build plays the production code.
  core::LsqrOptions ref_opts = options.lsqr;
  ref_opts.aprod.backend = backends::BackendKind::kSerial;
  ref_opts.aprod.use_streams = false;
  ref_opts.compute_std_errors = true;
  campaign.reference = core::lsqr_solve(gen.A, ref_opts);

  campaign.all_passed = true;
  for (backends::BackendKind backend : backends::all_backends()) {
    if (backend == backends::BackendKind::kSerial) continue;
    core::LsqrOptions port_opts = options.lsqr;
    port_opts.aprod.backend = backend;
    port_opts.compute_std_errors = true;

    BackendValidation v;
    v.backend = backend;
    v.result = core::lsqr_solve(gen.A, port_opts);
    v.solution = compare_solutions(v.result.x, campaign.reference.x,
                                   v.result.std_errors,
                                   campaign.reference.std_errors,
                                   options.accuracy_goal);
    v.std_errors = compare_solutions(v.result.std_errors,
                                     campaign.reference.std_errors, {}, {},
                                     options.accuracy_goal);
    v.one_to_one = fit_one_to_one(astrometric_scatter(
        campaign.layout, v.result.x, campaign.reference.x));
    campaign.all_passed = campaign.all_passed &&
                          v.solution.below_accuracy_goal &&
                          v.std_errors.below_accuracy_goal &&
                          v.solution.sigma_agreement > 0.99;
    campaign.ports.push_back(std::move(v));
  }

  // Mixed-precision gate: each requested reduced precision solves on the
  // reference backend with its coefficient planes stored reduced, runs
  // the FP64 iterative-refinement loop, and must land within the same
  // accuracy goal of the FP64 reference. A stalled refinement falls back
  // to a full FP64 re-solve — degraded speed, never degraded numbers —
  // and the report says so.
  for (backends::Precision p : options.precisions) {
    if (p == backends::Precision::kFp64) continue;
    core::LsqrOptions reduced_opts = options.lsqr;
    reduced_opts.aprod.backend = backends::BackendKind::kSerial;
    reduced_opts.aprod.use_streams = false;
    reduced_opts.compute_std_errors = false;
    for (backends::KernelId id : backends::all_kernels()) {
      backends::KernelConfig kcfg = reduced_opts.aprod.tuning.get(id);
      kcfg.precision = p;
      reduced_opts.aprod.tuning.set(id, kcfg);
    }

    PrecisionValidation v;
    v.precision = p;
    v.result = core::lsqr_solve(gen.A, reduced_opts);
    v.refinement = core::refine_corrections(gen.A, gen.A.known_terms(),
                                            v.result.x, reduced_opts,
                                            options.refine);
    if (!v.refinement.converged) {
      v.fell_back = true;
      core::LsqrOptions fp64_opts = reduced_opts;
      for (backends::KernelId id : backends::all_kernels()) {
        backends::KernelConfig kcfg = fp64_opts.aprod.tuning.get(id);
        kcfg.precision = backends::Precision::kFp64;
        fp64_opts.aprod.tuning.set(id, kcfg);
      }
      v.result = core::lsqr_solve(gen.A, fp64_opts);
    }
    v.solution = compare_solutions(v.result.x, campaign.reference.x, {}, {},
                                   options.accuracy_goal);
    v.one_to_one = fit_one_to_one(astrometric_scatter(
        campaign.layout, v.result.x, campaign.reference.x));
    campaign.all_passed =
        campaign.all_passed && v.solution.below_accuracy_goal;
    campaign.precisions.push_back(std::move(v));
  }
  return campaign;
}

}  // namespace gaia::validation
