/// \file cross_backend.hpp
/// \brief End-to-end cross-port validation campaign (paper SV-C).
///
/// Solves one reference dataset with the serial "production" backend and
/// with every other backend, then runs the Fig. 6 acceptance analysis on
/// each pair.
#pragma once

#include <vector>

#include "core/lsqr.hpp"
#include "core/refinement.hpp"
#include "matrix/generator.hpp"
#include "validation/compare.hpp"

namespace gaia::validation {

struct BackendValidation {
  backends::BackendKind backend;
  SolutionComparison solution;
  SolutionComparison std_errors;
  OneToOneFit one_to_one;
  core::LsqrResult result;
};

/// One reduced-precision + iterative-refinement run against the FP64
/// reference — the numerics gate of the mixed-precision axis.
struct PrecisionValidation {
  backends::Precision precision = backends::Precision::kFp64;
  SolutionComparison solution;
  OneToOneFit one_to_one;
  core::RefinementReport refinement;
  /// Refinement stalled and the run was redone fully in FP64 (the
  /// comparison then trivially measures FP64-vs-FP64 noise).
  bool fell_back = false;
  core::LsqrResult result;
};

struct ValidationCampaign {
  matrix::ParameterLayout layout;
  core::LsqrResult reference;               ///< serial backend, FP64
  std::vector<BackendValidation> ports;     ///< every other backend
  /// One entry per requested reduced precision (empty when none asked).
  std::vector<PrecisionValidation> precisions;
  bool all_passed = false;
};

struct ValidationOptions {
  matrix::GeneratorConfig dataset{};        ///< validation dataset recipe
  core::LsqrOptions lsqr{};                 ///< per-port solver options
  real accuracy_goal = kAccuracyGoalRad;
  /// Rescale the synthetic unknowns to radian-scale astrometry so the
  /// micro-arcsecond threshold is meaningful (the paper's datasets are
  /// real astrometric quantities of order 1e-6 rad).
  real solution_scale = 1e-6;
  /// Reduced storage precisions to validate (each solved with refinement
  /// on the reference backend, compared against the FP64 reference and
  /// gated by the same accuracy goal). kFp64 entries are skipped.
  std::vector<backends::Precision> precisions{};
  /// Refinement knobs for the reduced-precision runs.
  core::RefinementOptions refine{};
};

ValidationCampaign run_validation(const ValidationOptions& options);

}  // namespace gaia::validation
