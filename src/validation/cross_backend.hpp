/// \file cross_backend.hpp
/// \brief End-to-end cross-port validation campaign (paper SV-C).
///
/// Solves one reference dataset with the serial "production" backend and
/// with every other backend, then runs the Fig. 6 acceptance analysis on
/// each pair.
#pragma once

#include <vector>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"
#include "validation/compare.hpp"

namespace gaia::validation {

struct BackendValidation {
  backends::BackendKind backend;
  SolutionComparison solution;
  SolutionComparison std_errors;
  OneToOneFit one_to_one;
  core::LsqrResult result;
};

struct ValidationCampaign {
  matrix::ParameterLayout layout;
  core::LsqrResult reference;               ///< serial backend
  std::vector<BackendValidation> ports;     ///< every other backend
  bool all_passed = false;
};

struct ValidationOptions {
  matrix::GeneratorConfig dataset{};        ///< validation dataset recipe
  core::LsqrOptions lsqr{};                 ///< per-port solver options
  real accuracy_goal = kAccuracyGoalRad;
  /// Rescale the synthetic unknowns to radian-scale astrometry so the
  /// micro-arcsecond threshold is meaningful (the paper's datasets are
  /// real astrometric quantities of order 1e-6 rad).
  real solution_scale = 1e-6;
};

ValidationCampaign run_validation(const ValidationOptions& options);

}  // namespace gaia::validation
