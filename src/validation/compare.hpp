/// \file compare.hpp
/// \brief Cross-port solution validation (paper SV-C / Fig. 6).
///
/// The paper validates every port against the production CUDA solution:
/// (i) the solutions and their standard errors must agree within 1 sigma,
/// and (ii) the mean and standard deviation of the standard-error
/// differences must stay below the 10 micro-arcsecond astrometric
/// accuracy goal. This module computes those acceptance statistics and
/// emits the one-to-one scatter series Fig. 6 plots.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "matrix/layout.hpp"
#include "util/types.hpp"

namespace gaia::validation {

/// Statistics of a candidate solution against a reference solution.
struct SolutionComparison {
  std::size_t n = 0;
  double max_abs_diff = 0;
  double mean_diff = 0;       ///< signed mean of (candidate - reference)
  double stddev_diff = 0;
  double rel_l2_error = 0;    ///< ||cand - ref|| / ||ref||
  /// Fraction of unknowns where |cand - ref| <= combined 1-sigma error
  /// (only meaningful when standard errors are supplied).
  double sigma_agreement = 0;
  /// Paper acceptance: mean and sigma of the std-error differences below
  /// the 10 uas threshold.
  bool below_accuracy_goal = false;

  [[nodiscard]] std::string summary() const;
};

/// Compare solutions; when both error spans are non-empty the 1-sigma
/// agreement fraction is computed from their combined uncertainty.
SolutionComparison compare_solutions(std::span<const real> candidate,
                                     std::span<const real> reference,
                                     std::span<const real> candidate_err = {},
                                     std::span<const real> reference_err = {},
                                     real accuracy_goal = kAccuracyGoalRad);

/// One point of the Fig. 6 one-to-one scatter.
struct ScatterPoint {
  col_index unknown = 0;
  real reference = 0;
  real candidate = 0;
};

/// Scatter of the astrometric section only (what Fig. 6 shows),
/// downsampled to at most `max_points` evenly spaced unknowns.
std::vector<ScatterPoint> astrometric_scatter(
    const matrix::ParameterLayout& layout, std::span<const real> candidate,
    std::span<const real> reference, std::size_t max_points = 2000);

/// Linear fit through the scatter: slope ~ 1 and intercept ~ 0 certify
/// the one-to-one relation (the dashed line of Fig. 6).
struct OneToOneFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;
};
OneToOneFit fit_one_to_one(const std::vector<ScatterPoint>& points);

}  // namespace gaia::validation
