#include "validation/residual_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace gaia::validation {

ResidualAnalysis analyze_residuals(std::span<const real> residuals,
                                   std::span<const matrix::Transit> transits,
                                   int n_bins) {
  GAIA_CHECK(residuals.size() == transits.size(),
             "one residual per transit required");
  GAIA_CHECK(n_bins >= 2, "need at least two bins");
  GAIA_CHECK(!residuals.empty(), "no residuals to analyze");

  double t_min = transits[0].time, t_max = transits[0].time;
  for (const auto& tr : transits) {
    t_min = std::min(t_min, tr.time);
    t_max = std::max(t_max, tr.time);
  }
  const double span = std::max(1e-12, t_max - t_min);

  std::vector<std::vector<double>> buckets(
      static_cast<std::size_t>(n_bins));
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    const auto b = std::min<std::size_t>(
        static_cast<std::size_t>((transits[i].time - t_min) / span *
                                 n_bins),
        static_cast<std::size_t>(n_bins - 1));
    buckets[b].push_back(residuals[i]);
  }

  ResidualAnalysis out;
  std::vector<double> bin_means, bin_centers;
  std::size_t zero_consistent = 0, populated = 0;
  for (int b = 0; b < n_bins; ++b) {
    const auto& bucket = buckets[static_cast<std::size_t>(b)];
    ResidualBin bin;
    bin.t_center = t_min + span * (b + 0.5) / n_bins;
    bin.count = bucket.size();
    if (!bucket.empty()) {
      bin.mean = util::mean(bucket);
      bin.stddev = util::stddev(bucket);
      bin_means.push_back(bin.mean);
      bin_centers.push_back(bin.t_center);
      ++populated;
      const double sem =
          bin.stddev / std::sqrt(static_cast<double>(bucket.size()));
      if (std::abs(bin.mean) <= 3.0 * std::max(sem, 1e-300))
        ++zero_consistent;
    }
    out.bins.push_back(bin);
  }

  std::vector<double> all(residuals.begin(), residuals.end());
  out.global_mean = util::mean(all);
  out.global_stddev = util::stddev(all);
  out.bins_consistent_with_zero =
      populated > 0 ? static_cast<double>(zero_consistent) /
                          static_cast<double>(populated)
                    : 0.0;
  out.trend_slope = util::linear_fit(bin_centers, bin_means).slope;

  // Lag-1 autocorrelation of the binned means.
  if (bin_means.size() >= 3) {
    const double m = util::mean(bin_means);
    double num = 0, den = 0;
    for (std::size_t i = 0; i < bin_means.size(); ++i) {
      den += (bin_means[i] - m) * (bin_means[i] - m);
      if (i + 1 < bin_means.size())
        num += (bin_means[i] - m) * (bin_means[i + 1] - m);
    }
    out.lag1_autocorrelation = den > 0 ? num / den : 0.0;
  }
  return out;
}

}  // namespace gaia::validation
