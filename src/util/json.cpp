#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace gaia::util {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void literal(const char* word, std::size_t n) {
    if (text_.compare(pos_, n, word) != 0)
      fail(std::string("bad literal (expected ") + word + ")");
    pos_ += n;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      case 't':
        literal("true", 4);
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        literal("false", 5);
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        literal("null", 4);
        return v;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("bare control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP codepoint (the recorder only escapes
          // control characters, but accept the full range).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape character");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      return pos_ > before;
    };
    const std::size_t int_start = pos_;
    if (!digits()) fail("malformed number");
    // JSON forbids leading zeros: "0" is fine, "01" is not.
    if (pos_ - int_start > 1 && text_[int_start] == '0')
      fail("malformed number (leading zero)");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("malformed number (no fraction digits)");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits()) fail("malformed number (no exponent digits)");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v && v->is_number() ? v->number : fallback;
}

std::string JsonValue::dump() const {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return boolean ? "true" : "false";
    case Kind::kNumber: {
      if (!std::isfinite(number)) return "0";
      // Shortest representation that round-trips exactly: 15 significant
      // digits when they reproduce the value, 17 otherwise.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.15g", number);
      if (std::strtod(buf, nullptr) != number)
        std::snprintf(buf, sizeof(buf), "%.17g", number);
      return buf;
    }
    case Kind::kString:
      return '"' + escape(string) + '"';
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i) out += ',';
        out += array[i].dump();
      }
      return out + ']';
    }
    case Kind::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i) out += ',';
        out += '"' + escape(object[i].first) + "\":" + object[i].second.dump();
      }
      return out + '}';
    }
  }
  return "null";  // unreachable
}

JsonValue parse_json(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace gaia::util
