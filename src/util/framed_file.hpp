/// \file framed_file.hpp
/// \brief CRC32-sealed file framing: payload + footer, atomic replace.
///
/// The on-disk contract shared by checkpoints, the tuning cache and the
/// metrics snapshots: the payload bytes are followed by a fixed footer
/// (magic "GAIAFTR1", payload size, CRC32), the file is written to
/// `<path>.tmp` and renamed into place so readers never observe a torn
/// write, and the reader rejects anything whose footer does not verify.
/// Lives in util (no dependencies) so every layer above — obs,
/// resilience, tuning — can seal files without cycles; resilience keeps
/// thin forwarders for its historical call sites.
#pragma once

#include <string>
#include <string_view>

namespace gaia::util {

/// Appends the CRC footer and atomically replaces `path` (write
/// `<path>.tmp`, then rename). `what` names the file kind in error
/// messages ("checkpoint", "metrics snapshot", ...). Throws gaia::Error
/// on I/O failure.
void write_framed_file(const std::string& path, std::string_view payload,
                       const std::string& what = "framed file");

/// Reads and verifies a framed file; returns the payload with the footer
/// stripped. Throws gaia::Error naming `path` and the reason (missing
/// footer magic, length mismatch i.e. truncation, CRC mismatch i.e.
/// bit rot).
[[nodiscard]] std::string read_framed_file(
    const std::string& path, const std::string& what = "framed file");

/// Verification without surfacing the payload: true iff the footer
/// checks out.
[[nodiscard]] bool verify_framed_file(const std::string& path);

}  // namespace gaia::util
