/// \file json.hpp
/// \brief Minimal strict JSON document parser (RFC 8259 subset).
///
/// The repo's sealed formats (tuning cache, metrics snapshot) use
/// purpose-built cursor parsers because their schemas are fixed. Trace
/// documents are different: span `args` objects carry arbitrary keys and
/// nesting, so the trace merger and the critical-path analyzer need a
/// generic value tree. This is that tree — a strict recursive-descent
/// parser that rejects trailing garbage, bare control characters and
/// malformed escapes with a positioned `gaia::Error`, never a silent
/// partial parse (a torn trace must fail loudly, see obs/trace_merge).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace gaia::util {

/// One JSON value. Object member order is preserved (trace events are
/// re-rendered after a merge and should stay diffable against their
/// source files).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup (first match); nullptr when absent or when
  /// this value is not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Member as a number; `fallback` when absent or not numeric.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;

  /// Renders the value back to compact JSON (strings escaped, non-finite
  /// numbers clamped to 0 — JSON has no inf/nan).
  [[nodiscard]] std::string dump() const;
};

/// Parses exactly one JSON document. Throws gaia::Error (with the byte
/// offset of the problem) on malformed input, including trailing
/// non-whitespace after the document.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace gaia::util
