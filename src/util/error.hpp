/// \file error.hpp
/// \brief Precondition checking helpers.
///
/// The library throws `gaia::Error` on contract violations instead of
/// aborting: the solver is meant to be embeddable in long-running pipeline
/// processes that must be able to reject a malformed dataset and continue.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gaia {

/// Exception type used for all library-level failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_check_failure(
    const char* expr, const std::string& message,
    const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": check failed: " << expr;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace gaia

/// Check a precondition; throws gaia::Error (never compiled out — these
/// guard user-facing API boundaries, not inner loops).
#define GAIA_CHECK(expr, msg)                              \
  do {                                                     \
    if (!(expr)) {                                         \
      ::gaia::detail::raise_check_failure(                 \
          #expr, (msg), std::source_location::current());  \
    }                                                      \
  } while (false)
