/// \file cli.hpp
/// \brief Tiny declarative command-line parser for the examples/benches.
///
/// The paper's solver (`solvergaiaSim`) takes the problem size in GB plus
/// iteration counts at run time; our examples mirror that interface:
///   `gaia_solver --size 10GB --iterations 100 --backend gpusim`
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gaia::util {

/// Parses `--key value` and `--flag` style arguments. Unknown keys are an
/// error (typos in benchmark sweeps should fail loudly, not silently run
/// the default configuration).
class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Declare an option with a default value (also used for --help text).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declare a boolean flag (defaults to false).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Returns false (after printing usage) when --help was
  /// requested; throws gaia::Error on malformed input.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  /// Like get(), but when the option was not given on the command line a
  /// non-empty environment variable `env_var` overrides the declared
  /// default (the flag wins over the env). `source`, when non-null,
  /// receives where the value came from — "--name", "ENV_VAR" or
  /// "default" — so a validation error can point at the actual origin
  /// of a bad value instead of guessing.
  [[nodiscard]] std::string get_or_env(const std::string& name,
                                       const std::string& env_var,
                                       std::string* source = nullptr) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  /// Size in bytes from a human string ("10GB").
  [[nodiscard]] unsigned long long get_size(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::string program_;
  std::string description_;
  std::vector<std::string> order_;           // declaration order for usage()
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
};

}  // namespace gaia::util
