#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace gaia::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GAIA_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  GAIA_CHECK(cells.size() == headers_.size(),
             "row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num_or_na(double v, int precision) {
  return v < 0.0 ? std::string("n/a") : num(v, precision);
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

std::string bar(const std::string& label, double value, double max_value,
                int width) {
  const double frac =
      max_value > 0.0 ? std::clamp(value / max_value, 0.0, 1.0) : 0.0;
  const int filled = static_cast<int>(std::lround(frac * width));
  std::ostringstream os;
  os << std::left << std::setw(22) << label << " |"
     << std::string(static_cast<std::size_t>(filled), '#')
     << std::string(static_cast<std::size_t>(width - filled), ' ') << "| "
     << std::fixed << std::setprecision(3) << value;
  return os.str();
}

}  // namespace gaia::util
