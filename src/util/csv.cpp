#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace gaia::util {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GAIA_CHECK(!headers_.empty(), "csv needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  GAIA_CHECK(cells.size() == headers_.size(),
             "csv row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << escape(cells[i]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::write(const std::string& path) const {
  std::ofstream f(path);
  GAIA_CHECK(f.good(), "cannot open csv output: " + path);
  f << str();
  GAIA_CHECK(f.good(), "csv write failed: " + path);
}

}  // namespace gaia::util
