/// \file stats.hpp
/// \brief Summary statistics used by the benchmark harnesses and the
/// Pennycook-P analysis (harmonic means, dispersion, percentiles).
#pragma once

#include <span>
#include <vector>

namespace gaia::util {

/// Arithmetic mean; 0 for an empty sample.
double mean(std::span<const double> xs);

/// Unbiased (n-1) standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Harmonic mean; 0 if any element is <= 0 (matches the P-metric
/// convention that an unsupported platform zeroes the score).
double harmonic_mean(std::span<const double> xs);

/// Geometric mean; 0 if any element is <= 0.
double geometric_mean(std::span<const double> xs);

/// Sample minimum / maximum; 0 for an empty sample.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Median (linear-interpolated); 0 for an empty sample.
double median(std::span<const double> xs);

/// q-th percentile with linear interpolation, q in [0, 100].
double percentile(std::span<const double> xs, double q);

/// Least-squares slope/intercept of y over x (simple linear regression).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination R^2 in [0, 1].
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Aggregate of repeated measurements (the paper repeats each experiment
/// 3 times and reports the average over 100 iterations).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};
Summary summarize(std::span<const double> xs);

}  // namespace gaia::util
