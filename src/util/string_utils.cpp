#include "util/string_utils.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace gaia::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<byte_size> parse_size(std::string_view raw) {
  const std::string s = trim(raw);
  if (s.empty()) return std::nullopt;
  // Split numeric prefix from unit suffix.
  std::size_t i = 0;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.'))
    ++i;
  if (i == 0) return std::nullopt;
  double value = 0.0;
  try {
    value = std::stod(s.substr(0, i));
  } catch (...) {
    return std::nullopt;
  }
  if (value < 0.0) return std::nullopt;
  std::string unit = trim(s.substr(i));
  double mult = 1.0;
  if (unit.empty() || iequals(unit, "b")) {
    mult = 1.0;
  } else if (iequals(unit, "k") || iequals(unit, "kb") || iequals(unit, "kib")) {
    mult = static_cast<double>(kKiB);
  } else if (iequals(unit, "m") || iequals(unit, "mb") || iequals(unit, "mib")) {
    mult = static_cast<double>(kMiB);
  } else if (iequals(unit, "g") || iequals(unit, "gb") || iequals(unit, "gib")) {
    mult = static_cast<double>(kGiB);
  } else if (iequals(unit, "t") || iequals(unit, "tb") || iequals(unit, "tib")) {
    mult = static_cast<double>(kGiB) * 1024.0;
  } else {
    return std::nullopt;
  }
  return static_cast<byte_size>(std::llround(value * mult));
}

std::string format_bytes(byte_size bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(v < 10 ? 2 : 1) << v << ' '
     << units[u];
  return os.str();
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  const double a = std::abs(seconds);
  if (a >= 1.0)
    os << seconds << " s";
  else if (a >= 1e-3)
    os << seconds * 1e3 << " ms";
  else if (a >= 1e-6)
    os << seconds * 1e6 << " us";
  else
    os << seconds * 1e9 << " ns";
  return os.str();
}

}  // namespace gaia::util
