#include "util/crc32.hpp"

#include <array>

namespace gaia::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i)
    state = kTable[(state ^ p[i]) & 0xffu] ^ (state >> 8);
  return state;
}

std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_final(crc32_update(crc32_init(), data, size));
}

std::uint32_t crc32(std::string_view data) {
  return crc32(data.data(), data.size());
}

}  // namespace gaia::util
