/// \file rng.hpp
/// \brief Deterministic, fast pseudo-random number generation.
///
/// The synthetic dataset generator (paper appendix: "it randomly generates,
/// given a certain seed, a dataset with the specified size") must be
/// reproducible across platforms and backends, so we ship our own
/// xoshiro256** implementation instead of relying on the (unspecified)
/// distribution algorithms of the standard library.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "util/types.hpp"

namespace gaia::util {

/// SplitMix64: used to expand a single 64-bit seed into the xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Passes BigCrush; 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x6761696173696dull /*"gaiasim"*/) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump ahead by 2^128 steps: yields independent, non-overlapping
  /// sub-streams (one per simulated MPI rank / generator shard).
  void jump();

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased for the magnitudes we use
  /// (n << 2^64) via 128-bit multiply rejection-free mapping.
  std::uint64_t uniform_index(std::uint64_t n) {
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(next()) * n) >> 64);
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gaia::util
