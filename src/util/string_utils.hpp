/// \file string_utils.hpp
/// \brief Small string helpers (parsing sizes, joining, formatting).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace gaia::util {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Parse a human size such as "10GB", "512MB", "42G", "1.5GiB" into bytes.
/// Returns nullopt on malformed input. Decimal prefixes are treated as
/// binary (the paper sizes datasets "in GB" loosely).
std::optional<byte_size> parse_size(std::string_view s);

/// Render bytes as a human string ("10.0 GiB").
std::string format_bytes(byte_size bytes);

/// Render seconds with an adaptive unit ("1.23 ms", "45.6 us").
std::string format_seconds(double seconds);

}  // namespace gaia::util
