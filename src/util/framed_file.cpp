#include "util/framed_file.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace gaia::util {

namespace fs = std::filesystem;

namespace {

constexpr char kFooterMagic[8] = {'G', 'A', 'I', 'A', 'F', 'T', 'R', '1'};
constexpr std::size_t kFooterSize =
    sizeof(kFooterMagic) + sizeof(std::uint64_t) + sizeof(std::uint32_t);

std::string footer_for(std::string_view payload) {
  std::string footer(kFooterSize, '\0');
  char* out = footer.data();
  std::memcpy(out, kFooterMagic, sizeof(kFooterMagic));
  out += sizeof(kFooterMagic);
  const auto size = static_cast<std::uint64_t>(payload.size());
  std::memcpy(out, &size, sizeof(size));
  out += sizeof(size);
  const std::uint32_t crc = util::crc32(payload);
  std::memcpy(out, &crc, sizeof(crc));
  return footer;
}

}  // namespace

void write_framed_file(const std::string& path, std::string_view payload,
                       const std::string& what) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    GAIA_CHECK(f.good(), "cannot open " + what + " for writing: " + tmp);
    f.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    const std::string footer = footer_for(payload);
    f.write(footer.data(), static_cast<std::streamsize>(footer.size()));
    f.flush();
    if (!f.good()) {
      f.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      throw Error(what + " write failed: " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error(what + " rename failed: " + tmp + " -> " + path);
  }
}

std::string read_framed_file(const std::string& path,
                             const std::string& what) {
  std::ifstream f(path, std::ios::binary);
  GAIA_CHECK(f.good(), "cannot open " + what + " for reading: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  std::string bytes = std::move(buffer).str();

  if (bytes.size() < kFooterSize ||
      std::memcmp(bytes.data() + bytes.size() - kFooterSize, kFooterMagic,
                  sizeof(kFooterMagic)) != 0) {
    throw Error("corrupt " + what + " '" + path +
                "': missing CRC footer (file truncated or not a sealed " +
                what + ")");
  }
  const char* footer = bytes.data() + bytes.size() - kFooterSize;
  std::uint64_t payload_size = 0;
  std::memcpy(&payload_size, footer + sizeof(kFooterMagic),
              sizeof(payload_size));
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc,
              footer + sizeof(kFooterMagic) + sizeof(payload_size),
              sizeof(stored_crc));
  if (payload_size != bytes.size() - kFooterSize) {
    throw Error("corrupt " + what + " '" + path + "': truncated (footer says " +
                std::to_string(payload_size) + " payload bytes, file has " +
                std::to_string(bytes.size() - kFooterSize) + ")");
  }
  bytes.resize(static_cast<std::size_t>(payload_size));
  const std::uint32_t actual_crc = util::crc32(bytes);
  if (actual_crc != stored_crc) {
    throw Error("corrupt " + what + " '" + path +
                "': CRC mismatch (bit flip or partial write)");
  }
  return bytes;
}

bool verify_framed_file(const std::string& path) {
  try {
    (void)read_framed_file(path);
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace gaia::util
