#include "util/profiler.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace gaia::util {

void Profiler::record(const std::string& region, double seconds) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  RegionStats& stats = regions_[region];
  if (stats.name.empty()) stats.name = region;
  stats.min_s = stats.calls ? std::min(stats.min_s, seconds) : seconds;
  stats.max_s = std::max(stats.max_s, seconds);
  stats.last_s = seconds;
  ++stats.calls;
  stats.total_s += seconds;
}

std::vector<Profiler::RegionStats> Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RegionStats> out;
  out.reserve(regions_.size());
  for (const auto& [name, stats] : regions_) out.push_back(stats);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total_s > b.total_s;
  });
  return out;
}

double Profiler::total_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0;
  for (const auto& [name, stats] : regions_) total += stats.total_s;
  return total;
}

double Profiler::fraction_of(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0, matching = 0;
  for (const auto& [name, stats] : regions_) {
    total += stats.total_s;
    if (name.rfind(prefix, 0) == 0) matching += stats.total_s;
  }
  return total > 0 ? matching / total : 0.0;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  regions_.clear();
}

std::string Profiler::report() const {
  const auto stats = snapshot();
  const double total = total_seconds();
  std::ostringstream os;
  os << std::left << std::setw(24) << "region" << std::right << std::setw(10)
     << "calls" << std::setw(14) << "total (ms)" << std::setw(12)
     << "min (ms)" << std::setw(12) << "max (ms)" << std::setw(10) << "share"
     << '\n';
  for (const auto& s : stats) {
    os << std::left << std::setw(24) << s.name << std::right << std::setw(10)
       << s.calls << std::setw(14) << std::fixed << std::setprecision(3)
       << s.total_s * 1e3 << std::setw(12) << s.min_s * 1e3 << std::setw(12)
       << s.max_s * 1e3 << std::setw(9) << std::setprecision(1)
       << (total > 0 ? s.total_s / total * 100 : 0) << "%\n";
  }
  return os.str();
}

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

}  // namespace gaia::util
