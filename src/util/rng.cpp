#include "util/rng.hpp"

namespace gaia::util {

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
      0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ull << b)) {
        for (int i = 0; i < 4; ++i) s[i] ^= state_[i];
      }
      next();
    }
  }
  state_ = s;
  has_cached_normal_ = false;
}

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace gaia::util
