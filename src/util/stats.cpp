#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace gaia::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double harmonic_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double inv_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    inv_sum += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv_sum;
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double min(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 100.0);
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  const double mx = mean(x.subspan(0, n));
  const double my = mean(y.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min(xs);
  s.max = max(xs);
  s.median = median(xs);
  return s;
}

}  // namespace gaia::util
