#include "util/stopwatch.hpp"

// Header-only today; translation unit kept so the target always has at
// least one object file and future non-inline additions have a home.
namespace gaia::util {}
