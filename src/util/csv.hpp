/// \file csv.hpp
/// \brief Minimal CSV emission (benchmark side-files for plotting).
#pragma once

#include <string>
#include <vector>

namespace gaia::util {

/// Builds CSV content in memory; `write()` persists it. Values containing
/// commas/quotes/newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string str() const;

  /// Write to a file path; throws gaia::Error on I/O failure.
  void write(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gaia::util
