#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace gaia::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_option(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  GAIA_CHECK(!options_.contains(name), "duplicate option: " + name);
  options_[name] = Option{default_value, help, false};
  order_.push_back(name);
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  GAIA_CHECK(!options_.contains(name), "duplicate flag: " + name);
  options_[name] = Option{"false", help, true};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    GAIA_CHECK(arg.rfind("--", 0) == 0, "expected --option, got: " + arg);
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const auto it = options_.find(name);
    GAIA_CHECK(it != options_.end(), "unknown option: --" + name);
    if (it->second.is_flag) {
      GAIA_CHECK(!has_inline, "flag --" + name + " takes no value");
      values_[name] = "true";
    } else if (has_inline) {
      values_[name] = inline_value;
    } else {
      GAIA_CHECK(i + 1 < argc, "option --" + name + " needs a value");
      values_[name] = argv[++i];
    }
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  const auto opt = options_.find(name);
  GAIA_CHECK(opt != options_.end(), "undeclared option: " + name);
  const auto val = values_.find(name);
  return val != values_.end() ? val->second : opt->second.default_value;
}

std::string Cli::get_or_env(const std::string& name,
                            const std::string& env_var,
                            std::string* source) const {
  const auto opt = options_.find(name);
  GAIA_CHECK(opt != options_.end(), "undeclared option: " + name);
  if (const auto val = values_.find(name); val != values_.end()) {
    if (source) *source = "--" + name;
    return val->second;
  }
  if (const char* env = std::getenv(env_var.c_str());
      env != nullptr && *env != '\0') {
    if (source) *source = env_var;
    return env;
  }
  if (source) *source = "default";
  return opt->second.default_value;
}

long long Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stoll(v);
  } catch (...) {
    throw Error("option --" + name + " is not an integer: " + v);
  }
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stod(v);
  } catch (...) {
    throw Error("option --" + name + " is not a number: " + v);
  }
}

bool Cli::get_flag(const std::string& name) const {
  return get(name) == "true";
}

unsigned long long Cli::get_size(const std::string& name) const {
  const std::string v = get(name);
  const auto parsed = parse_size(v);
  GAIA_CHECK(parsed.has_value(), "option --" + name + " is not a size: " + v);
  return *parsed;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& o = options_.at(name);
    os << "  --" << name;
    if (!o.is_flag) os << " <value>";
    os << "\n      " << o.help;
    if (!o.is_flag) os << " (default: " << o.default_value << ")";
    os << '\n';
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace gaia::util
