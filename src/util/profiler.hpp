/// \file profiler.hpp
/// \brief Lightweight region profiler (the nsys/rocprof stand-in).
///
/// The paper verifies with vendor profilers that "most of the time of
/// this code is spent computing the matrix-by-vector products of aprod1
/// and aprod2" (SV-A). This profiler gives the library the same
/// introspection: named regions accumulate wall time and invocation
/// counts thread-safely; the solver tags every kernel launch and BLAS-1
/// pass, and tests/benches can assert the time distribution.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/stopwatch.hpp"

namespace gaia::util {

class Profiler {
 public:
  struct RegionStats {
    std::string name;
    std::uint64_t calls = 0;
    double total_s = 0;
    double min_s = 0;   ///< shortest recorded duration (0 when no calls)
    double max_s = 0;   ///< longest recorded duration
    double last_s = 0;  ///< most recently recorded duration
    [[nodiscard]] double mean_s() const {
      return calls ? total_s / static_cast<double>(calls) : 0.0;
    }
  };

  /// Enable/disable collection (disabled costs one relaxed atomic load
  /// per region; default off so hot paths stay clean in production).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Record `seconds` against a region (no-op while disabled).
  void record(const std::string& region, double seconds);

  /// Snapshot of all regions, sorted by descending total time.
  [[nodiscard]] std::vector<RegionStats> snapshot() const;

  /// Total recorded seconds across regions.
  [[nodiscard]] double total_seconds() const;

  /// Fraction of the total spent in regions whose name starts with the
  /// prefix (e.g. "aprod" -> the paper's hot-spot share).
  [[nodiscard]] double fraction_of(const std::string& prefix) const;

  void reset();

  /// ASCII report, profiler-style.
  [[nodiscard]] std::string report() const;

  /// Process-wide instance used by the solver's instrumentation.
  static Profiler& global();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, RegionStats> regions_;
};

/// RAII region timer against the global profiler. Takes a string
/// literal so the disabled path costs one atomic load and no
/// allocation.
class ScopedRegion {
 public:
  explicit ScopedRegion(const char* name)
      : name_(Profiler::global().enabled() ? name : nullptr) {}
  ~ScopedRegion() {
    if (name_) Profiler::global().record(name_, watch_.elapsed_s());
  }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  const char* name_;
  Stopwatch watch_;
};

}  // namespace gaia::util
