/// \file types.hpp
/// \brief Fundamental scalar and index types shared across the library.
///
/// The AVU-GSR system is indexed by observation (row) and unknown (column).
/// Row counts reach O(1e10) in production, so 64-bit indices are mandatory.
#pragma once

#include <cstddef>
#include <cstdint>

/// No-alias qualifier for kernel-local pointers. The aprod gather loops
/// read coefficient rows and the x vector through pointers that never
/// alias (they come from distinct buffers); telling the compiler unlocks
/// vectorization on the serial/pstl backends.
#if defined(__GNUC__) || defined(__clang__)
#define GAIA_RESTRICT __restrict__
#else
#define GAIA_RESTRICT
#endif

/// Vectorization hints for the fixed-trip-count gather inner loops.
/// `omp simd` needs an OpenMP-enabled compile; without it the loops stay
/// scalar-correct and the macros vanish.
#if defined(GAIA_HAS_OPENMP)
#define GAIA_PRAGMA(x) _Pragma(#x)
#define GAIA_OMP_SIMD GAIA_PRAGMA(omp simd)
#define GAIA_OMP_SIMD_REDUCTION(var) GAIA_PRAGMA(omp simd reduction(+ : var))
#else
#define GAIA_OMP_SIMD
#define GAIA_OMP_SIMD_REDUCTION(var)
#endif

namespace gaia {

/// Floating-point type of the solver. The production code is double
/// precision end to end (micro-arcsecond accuracy needs ~1e-11 rad).
using real = double;

/// Row index: one observation equation of the system A x = b.
using row_index = std::int64_t;

/// Column index: one unknown (astrometric / attitude / instrumental /
/// global parameter).
using col_index = std::int64_t;

/// Raw byte sizes (memory footprints, device-buffer accounting).
using byte_size = std::uint64_t;

inline constexpr byte_size kKiB = 1024ull;
inline constexpr byte_size kMiB = 1024ull * kKiB;
inline constexpr byte_size kGiB = 1024ull * kMiB;

/// Number of non-zero coefficients each row of the reduced matrix carries,
/// split by parameter block (see paper SIII-B).
inline constexpr int kAstroNnzPerRow = 5;   ///< contiguous, block diagonal
inline constexpr int kAttNnzPerRow   = 12;  ///< 3 blocks of 4, fixed stride
inline constexpr int kAttBlocks      = 3;   ///< attitude blocks per row
inline constexpr int kAttBlockSize   = 4;   ///< non-zeros per attitude block
inline constexpr int kInstrNnzPerRow = 6;   ///< irregular column pattern
inline constexpr int kGlobNnzPerRow  = 1;   ///< at most one global (PPN gamma)
inline constexpr int kNnzPerRow =
    kAstroNnzPerRow + kAttNnzPerRow + kInstrNnzPerRow + kGlobNnzPerRow;  // 24

/// Astrometric parameters per star (alpha, delta, parallax, mu_alpha*,
/// mu_delta).
inline constexpr int kAstroParamsPerStar = 5;

/// Gaia accuracy goal: 10 micro-arcseconds expressed in radians. Used as
/// the agreement threshold in the validation experiments (paper SV-C).
inline constexpr real kMicroArcsecInRad = 4.84813681109536e-12;
inline constexpr real kAccuracyGoalRad  = 10.0 * kMicroArcsecInRad;

}  // namespace gaia
