/// \file crc32.hpp
/// \brief CRC-32 (IEEE 802.3, polynomial 0xEDB88320).
///
/// Used by the resilience layer to seal checkpoint files: a footer CRC
/// lets `restore` reject truncated or bit-flipped checkpoints instead of
/// silently resuming from corrupt state. The same checksum verifies
/// simulated H2D/D2H transfers when fault injection is armed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gaia::util {

/// Incremental update: feed chunks in order, starting from `crc32_init()`,
/// and finish with `crc32_final()`.
[[nodiscard]] constexpr std::uint32_t crc32_init() { return 0xffffffffu; }
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         const void* data, std::size_t size);
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

/// One-shot CRC-32 of a buffer (crc32("123456789") == 0xCBF43926).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);
[[nodiscard]] std::uint32_t crc32(std::string_view data);

}  // namespace gaia::util
