/// \file backoff.hpp
/// \brief Bounded exponential backoff schedule for retryable operations.
///
/// Transient faults (a failed simulated transfer, a spuriously failed
/// kernel launch) are retried a bounded number of times with
/// exponentially growing, capped delays — the standard production
/// pattern for flaky interconnects and allocators. Delays here are
/// microseconds-scale: the point is the *structure* (attempt budget,
/// growth factor, cap), which tests and the metrics registry observe,
/// not wall-clock realism.
#pragma once

#include <chrono>
#include <cstdint>

namespace gaia::util {

struct BackoffPolicy {
  /// Total attempts including the first (>= 1). Exhausting the budget
  /// escalates the fault from transient to persistent.
  int max_attempts = 4;
  std::chrono::microseconds base_delay{50};
  std::chrono::microseconds max_delay{5000};
  double multiplier = 2.0;
};

/// Delay to sleep after failed attempt `attempt` (1-based):
/// min(base * multiplier^(attempt-1), max). Attempt values < 1 clamp
/// to the base delay.
[[nodiscard]] std::chrono::microseconds backoff_delay(
    const BackoffPolicy& policy, int attempt);

}  // namespace gaia::util
