/// \file table.hpp
/// \brief Fixed-width ASCII table rendering for benchmark reports.
///
/// The benchmark harnesses regenerate the paper's tables/figures as text:
/// rows of numbers plus simple ASCII "cascade" charts. This keeps the
/// reproduction self-contained (no plotting stack needed) while emitting
/// CSV side-files for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace gaia::util {

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Formats a double or "n/a" when the value is negative (used for
  /// unsupported platform/framework combinations).
  static std::string num_or_na(double v, int precision = 3);

  /// Render with box-drawing separators.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a horizontal bar chart line: `label |#####     | value`.
/// Used for the efficiency cascades (paper Fig. 3) in terminal output.
std::string bar(const std::string& label, double value, double max_value,
                int width = 40);

}  // namespace gaia::util
