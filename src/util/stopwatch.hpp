/// \file stopwatch.hpp
/// \brief Wall-clock timing for iteration-time measurements.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace gaia::util {

/// Monotonic stopwatch. The paper's metric is the average LSQR iteration
/// time; all timings in this library are wall-clock seconds as doubles.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }
  [[nodiscard]] double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates per-iteration samples (seconds) and exposes summary stats.
class IterationTimer {
 public:
  void start() { watch_.reset(); }
  void stop() { samples_.push_back(watch_.elapsed_s()); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double total_s() const {
    double t = 0.0;
    for (double s : samples_) t += s;
    return t;
  }

  [[nodiscard]] double mean_s() const {
    return samples_.empty() ? 0.0
                            : total_s() / static_cast<double>(samples_.size());
  }

 private:
  Stopwatch watch_;
  std::vector<double> samples_;
};

}  // namespace gaia::util
