#include "util/backoff.hpp"

#include <cmath>

namespace gaia::util {

std::chrono::microseconds backoff_delay(const BackoffPolicy& policy,
                                        int attempt) {
  const int exponent = attempt > 1 ? attempt - 1 : 0;
  const double scaled =
      static_cast<double>(policy.base_delay.count()) *
      std::pow(policy.multiplier, static_cast<double>(exponent));
  const auto capped = static_cast<std::int64_t>(
      std::min(scaled, static_cast<double>(policy.max_delay.count())));
  return std::chrono::microseconds(capped);
}

}  // namespace gaia::util
