/// \file weights.hpp
/// \brief Observation weighting — the pipeline's "Weights Calculation"
/// stage (paper Fig. 1).
///
/// The production pipeline solves a *weighted* least-squares problem:
/// each observation equation is scaled by w_i = 1/sigma_i (formal
/// measurement error), optionally tempered by a robust (Huber-style)
/// factor computed from the previous outer iteration's residuals to
/// deactivate outliers. Row scaling commutes with everything downstream
/// (LSQR just sees a different A and b), so the stage is a pre-pass over
/// the system.
#pragma once

#include <span>
#include <vector>

#include "matrix/system_matrix.hpp"

namespace gaia::core {

/// In-place row scaling: row i of A and b_i are multiplied by w_i.
/// Weights must be positive and cover every row (constraints included —
/// production keeps constraint weights at 1).
void apply_row_weights(matrix::SystemMatrix& A,
                       std::span<const real> weights);

/// Formal weights from per-observation standard errors: w = 1/sigma.
std::vector<real> weights_from_formal_errors(
    std::span<const real> sigmas);

struct HuberConfig {
  /// Residuals beyond k * sigma_unit are downweighted (AGIS uses ~3).
  real k = 3.0;
  /// Robust scale estimate of the residuals; <= 0 means "estimate from
  /// the median absolute deviation".
  real sigma_unit = 0.0;
};

/// Robust scale estimate of a residual sample: 1.4826 * MAD (a
/// sigma-consistent estimator for gaussian cores). Returns 1 when the
/// sample is degenerate (all zeros).
real robust_scale(std::span<const real> residuals);

/// Huber tempering factors from residuals: 1 inside the core, k*s/|r|
/// outside. Returns one factor per residual.
std::vector<real> huber_factors(std::span<const real> residuals,
                                const HuberConfig& config = {});

/// Convenience: residuals r = A x - b of a candidate solution (serial
/// host computation; used by the outer re-weighting loop).
std::vector<real> compute_residuals(const matrix::SystemMatrix& A,
                                    std::span<const real> x);

}  // namespace gaia::core
