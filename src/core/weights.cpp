#include "core/weights.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace gaia::core {

void apply_row_weights(matrix::SystemMatrix& A,
                       std::span<const real> weights) {
  GAIA_CHECK(static_cast<row_index>(weights.size()) == A.n_rows(),
             "one weight per row required");
  auto vals = A.values();
  auto b = A.known_terms();
  for (row_index r = 0; r < A.n_rows(); ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const real w = weights[ri];
    GAIA_CHECK(w > 0, "weights must be positive");
    real* rv = vals.data() + ri * kNnzPerRow;
    for (int i = 0; i < kNnzPerRow; ++i) rv[i] *= w;
    b[ri] *= w;
  }
}

std::vector<real> weights_from_formal_errors(std::span<const real> sigmas) {
  std::vector<real> w(sigmas.size());
  for (std::size_t i = 0; i < sigmas.size(); ++i) {
    GAIA_CHECK(sigmas[i] > 0, "formal errors must be positive");
    w[i] = real{1} / sigmas[i];
  }
  return w;
}

real robust_scale(std::span<const real> residuals) {
  std::vector<double> abs_r(residuals.size());
  for (std::size_t i = 0; i < residuals.size(); ++i)
    abs_r[i] = std::abs(residuals[i]);
  const real s = static_cast<real>(1.4826 * util::median(abs_r));
  return s > 0 ? s : real{1};  // all-zero residuals: no downweighting
}

std::vector<real> huber_factors(std::span<const real> residuals,
                                const HuberConfig& config) {
  GAIA_CHECK(config.k > 0, "huber threshold must be positive");
  const real s =
      config.sigma_unit > 0 ? config.sigma_unit : robust_scale(residuals);
  const real cut = config.k * s;
  std::vector<real> factors(residuals.size(), real{1});
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    const real a = std::abs(residuals[i]);
    if (a > cut) factors[i] = cut / a;
  }
  return factors;
}

std::vector<real> compute_residuals(const matrix::SystemMatrix& A,
                                    std::span<const real> x) {
  GAIA_CHECK(static_cast<col_index>(x.size()) == A.n_cols(),
             "solution size mismatch");
  const matrix::ParameterLayout& lay = A.layout();
  const auto vals = A.values();
  const auto ia = A.matrix_index_astro();
  const auto it = A.matrix_index_att();
  const auto ic = A.instr_col();
  const auto b = A.known_terms();
  std::vector<real> res(static_cast<std::size_t>(A.n_rows()));
  for (row_index rr = 0; rr < A.n_rows(); ++rr) {
    const auto r = static_cast<std::size_t>(rr);
    const real* rv = vals.data() + r * kNnzPerRow;
    real sum = 0;
    for (int i = 0; i < kAstroNnzPerRow; ++i)
      sum += rv[matrix::kAstroCoeffOffset + i] *
             x[static_cast<std::size_t>(ia[r] + i)];
    for (int blk = 0; blk < kAttBlocks; ++blk)
      for (int i = 0; i < kAttBlockSize; ++i)
        sum += rv[matrix::kAttCoeffOffset + blk * kAttBlockSize + i] *
               x[static_cast<std::size_t>(lay.att_offset() + it[r] +
                                          blk * lay.att_stride() + i)];
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      sum += rv[matrix::kInstrCoeffOffset + i] *
             x[static_cast<std::size_t>(
                 lay.instr_offset() + ic[r * kInstrNnzPerRow + i])];
    if (lay.has_global())
      sum += rv[matrix::kGlobCoeffOffset] *
             x[static_cast<std::size_t>(lay.glob_offset())];
    res[r] = sum - b[r];
  }
  return res;
}

}  // namespace gaia::core
