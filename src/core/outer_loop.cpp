#include "core/outer_loop.hpp"

#include <cmath>
#include <span>

namespace gaia::core {

OuterLoopResult robust_solve(const matrix::SystemMatrix& A,
                             const OuterLoopOptions& options) {
  GAIA_CHECK(options.max_outer_iterations >= 1,
             "need at least one outer iteration");
  const auto n_rows = static_cast<std::size_t>(A.n_rows());

  OuterLoopResult result;
  result.weights.assign(n_rows, real{1});

  // The robust scale is estimated once, from the first solve's
  // residuals, and then frozen: re-estimating it every round makes the
  // borderline-outlier set churn and the IRLS iteration oscillate.
  HuberConfig huber = options.huber;

  for (int outer = 0; outer < options.max_outer_iterations; ++outer) {
    ++result.outer_iterations;

    // Weighted copy of the pristine system (weights compose across
    // outer iterations through result.weights).
    matrix::SystemMatrix weighted = A;
    bool any_weighting = false;
    for (real w : result.weights) any_weighting |= (w != real{1});
    if (any_weighting) apply_row_weights(weighted, result.weights);

    result.solution = lsqr_solve(weighted, options.lsqr);

    // Residuals of the *unweighted* system: outliers are judged in
    // observation units, not down-weighted units.
    const auto residuals = compute_residuals(A, result.solution.x);
    // Constraint rows are never down-weighted (production keeps them
    // pinned): judge observation rows only.
    const auto obs_residuals =
        std::span<const real>(residuals).subspan(
            0, static_cast<std::size_t>(A.n_obs()));
    if (outer == 0 && huber.sigma_unit <= 0)
      huber.sigma_unit = robust_scale(obs_residuals);
    const auto factors = huber_factors(obs_residuals, huber);

    std::vector<real> new_weights(n_rows, real{1});
    std::int64_t downweighted = 0;
    for (std::size_t i = 0; i < factors.size(); ++i) {
      new_weights[i] = factors[i];
      downweighted += (factors[i] < real{1});
    }
    result.downweighted_rows.push_back(downweighted);

    double rms = 0;
    for (std::size_t i = 0; i < n_rows; ++i) {
      const double d = new_weights[i] - result.weights[i];
      rms += d * d;
    }
    rms = std::sqrt(rms / static_cast<double>(n_rows));
    result.weight_rms_change.push_back(rms);
    result.weights = std::move(new_weights);

    if (rms < options.weight_change_tol) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace gaia::core
