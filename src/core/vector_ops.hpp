/// \file vector_ops.hpp
/// \brief BLAS-1 style vector kernels of the LSQR iteration.
///
/// Elementwise operations (scale, axpy) are embarrassingly parallel and
/// run through the selected backend, like the GPU code. Reductions
/// (norms, dots) use a deterministic serial Kahan summation instead:
/// this keeps the scalar trajectory of LSQR bit-identical across all
/// backends, so the validation experiments (paper SV-C) isolate the only
/// genuine numerical divergence — the non-deterministic order of the
/// aprod2 atomic accumulations.
#pragma once

#include <cmath>
#include <span>

#include "backends/backend.hpp"
#include "util/types.hpp"

namespace gaia::core {

/// y *= a
inline void vscale(backends::BackendKind backend, std::span<real> y, real a) {
  real* p = y.data();
  backends::dispatch(backend, [&](auto exec) {
    decltype(exec)::launch(static_cast<std::int64_t>(y.size()), {},
                           [=](std::int64_t i) { p[i] *= a; });
  });
}

/// y = a*x + y
inline void vaxpy(backends::BackendKind backend, std::span<real> y, real a,
                  std::span<const real> x) {
  real* yp = y.data();
  const real* xp = x.data();
  backends::dispatch(backend, [&](auto exec) {
    decltype(exec)::launch(static_cast<std::int64_t>(y.size()), {},
                           [=](std::int64_t i) { yp[i] += a * xp[i]; });
  });
}

/// y = x + b*y (LSQR's w update)
inline void vxpby(backends::BackendKind backend, std::span<real> y,
                  std::span<const real> x, real b) {
  real* yp = y.data();
  const real* xp = x.data();
  backends::dispatch(backend, [&](auto exec) {
    decltype(exec)::launch(static_cast<std::int64_t>(y.size()), {},
                           [=](std::int64_t i) { yp[i] = xp[i] + b * yp[i]; });
  });
}

/// y += (a*x)^2 elementwise (the standard-error accumulator).
inline void vaccumulate_sq(backends::BackendKind backend, std::span<real> y,
                           real a, std::span<const real> x) {
  real* yp = y.data();
  const real* xp = x.data();
  backends::dispatch(backend, [&](auto exec) {
    decltype(exec)::launch(static_cast<std::int64_t>(y.size()), {},
                           [=](std::int64_t i) {
                             const real t = a * xp[i];
                             yp[i] += t * t;
                           });
  });
}

/// Deterministic Euclidean norm (serial Kahan compensated sum).
inline real vnorm(std::span<const real> x) {
  real sum = 0, comp = 0;
  for (real v : x) {
    const real term = v * v - comp;
    const real next = sum + term;
    comp = (next - sum) - term;
    sum = next;
  }
  return std::sqrt(sum);
}

/// Deterministic element sum (serial Kahan compensated sum) — the
/// cheap side of the ABFT checksum identities the health monitor
/// verifies (sum(A v) = (A^T 1) . v and its adjoint dual).
inline real vsum(std::span<const real> x) {
  real sum = 0, comp = 0;
  for (real v : x) {
    const real term = v - comp;
    const real next = sum + term;
    comp = (next - sum) - term;
    sum = next;
  }
  return sum;
}

/// Deterministic dot product (serial Kahan compensated sum).
inline real vdot(std::span<const real> a, std::span<const real> b) {
  real sum = 0, comp = 0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    const real term = a[i] * b[i] - comp;
    const real next = sum + term;
    comp = (next - sum) - term;
    sum = next;
  }
  return sum;
}

}  // namespace gaia::core
