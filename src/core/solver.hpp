/// \file solver.hpp
/// \brief High-level AVU-GSR solver run — the `solvergaiaSim` analog.
///
/// The paper's artifact is a single binary that (i) generates a synthetic
/// system of a requested size in GB from a seed, (ii) runs the LSQR for
/// a fixed number of iterations on the selected framework, and (iii)
/// reports the average iteration time. This facade packages that flow
/// for the examples and benchmark harnesses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"
#include "resilience/checkpoint.hpp"

namespace gaia::core {

struct SolverRunConfig {
  /// Either an explicit generator configuration...
  std::optional<matrix::GeneratorConfig> generator;
  /// ...or a target memory footprint the generator is sized for.
  byte_size footprint_bytes = 16 * kMiB;
  std::uint64_t seed = 0x6761696173696dull;

  LsqrOptions lsqr{};

  /// Checkpoint orchestration (off unless `every > 0` and a directory is
  /// set): the solve periodically seals its state to disk and, when the
  /// directory already holds checkpoints of the same run, auto-resumes
  /// from the newest one that verifies.
  resilience::CheckpointConfig checkpoint{};
};

struct SolverRunReport {
  LsqrResult result;
  matrix::ParameterLayout layout;
  row_index n_obs = 0;
  row_index n_constraints = 0;
  byte_size system_bytes = 0;
  double generation_seconds = 0;
  double solve_seconds = 0;
  /// Iteration the solve resumed from (-1 = fresh start) and checkpoints
  /// sealed during this run.
  std::int64_t resumed_from_iteration = -1;
  std::uint64_t checkpoints_written = 0;

  /// One-paragraph human summary (examples print it verbatim).
  [[nodiscard]] std::string summary() const;
};

/// Generates the system and solves it per the configuration.
SolverRunReport run_solver(const SolverRunConfig& config);

}  // namespace gaia::core
