/// \file solver.hpp
/// \brief High-level AVU-GSR solver run — the `solvergaiaSim` analog.
///
/// The paper's artifact is a single binary that (i) generates a synthetic
/// system of a requested size in GB from a seed, (ii) runs the LSQR for
/// a fixed number of iterations on the selected framework, and (iii)
/// reports the average iteration time. This facade packages that flow
/// for the examples and benchmark harnesses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/lsqr.hpp"
#include "core/refinement.hpp"
#include "matrix/generator.hpp"
#include "metrics/roofline.hpp"
#include "resilience/checkpoint.hpp"
#include "tuning/autotuner.hpp"

namespace gaia::core {

/// Scatter-strategy policy for the three atomic aprod2 kernels
/// (att/instr/glob). `kAtomic` is today's behaviour bit-for-bit;
/// `kPrivatized` forces the contention-free privatized reduction;
/// `kAuto` lets the autotuner measure both arms per kernel (when
/// enabled and the backend honours launch shapes) and otherwise asks
/// the cost model's contention-vs-bandwidth crossover.
enum class ScatterMode : std::uint8_t {
  kAtomic = 0,
  kPrivatized,
  kAuto,
};

[[nodiscard]] std::string to_string(ScatterMode mode);
[[nodiscard]] std::optional<ScatterMode> parse_scatter_mode(
    const std::string& name);

/// Storage-layout policy for all eight kernels (gathers included).
/// `kSeed` is today's row-record AoS bit-for-bit; `kSoa` forces the
/// tiled SoA streams; `kSliced` forces SoA plus the sliced instrumental
/// format; `kAuto` lets the autotuner measure every layout arm (when
/// enabled and the backend honours launch shapes) and otherwise asks
/// the cost model's overfetch-vs-padding crossover per kernel.
enum class LayoutMode : std::uint8_t {
  kSeed = 0,
  kSoa,
  kSliced,
  kAuto,
};

[[nodiscard]] std::string to_string(LayoutMode mode);
[[nodiscard]] std::optional<LayoutMode> parse_layout_mode(
    const std::string& name);

/// Storage-precision policy for all eight kernels. `kFp64` is today's
/// double-precision planes bit-for-bit; `kFp32`/`kBf16s` store the
/// coefficient planes reduced (FP64 accumulation everywhere) and wrap
/// the solve in outer iterative refinement (core/refinement.hpp);
/// `kAuto` lets the autotuner measure every precision arm (when enabled
/// and the backend honours launch shapes) and otherwise asks the cost
/// model's bandwidth-vs-refinement crossover per kernel.
enum class PrecisionMode : std::uint8_t {
  kFp64 = 0,
  kFp32,
  kBf16s,
  kAuto,
};

[[nodiscard]] std::string to_string(PrecisionMode mode);
[[nodiscard]] std::optional<PrecisionMode> parse_precision_mode(
    const std::string& name);

/// Launch-shape autotuning for a solver run (off by default).
struct AutotuneRunConfig {
  bool enabled = false;
  /// CRC-framed JSON cache file. When the file already holds winners for
  /// this (backend, problem-shape bucket) the search is skipped; after a
  /// fresh search the winners are sealed back. Empty = no persistence.
  std::string cache_path;
  tuning::AutotuneOptions search{};
  /// Upper bound on warm-up apply1+apply2 rounds used by the search.
  int max_warmup_rounds = 256;
};

struct SolverRunConfig {
  /// Either an explicit generator configuration...
  std::optional<matrix::GeneratorConfig> generator;
  /// ...or a target memory footprint the generator is sized for.
  byte_size footprint_bytes = 16 * kMiB;
  std::uint64_t seed = 0x6761696173696dull;

  LsqrOptions lsqr{};

  /// Checkpoint orchestration (off unless `every > 0` and a directory is
  /// set): the solve periodically seals its state to disk and, when the
  /// directory already holds checkpoints of the same run, auto-resumes
  /// from the newest one that verifies.
  resilience::CheckpointConfig checkpoint{};

  /// Online (blocks, threads) search before the solve, with a persistent
  /// cache (paper SIV/SV-B: per-kernel launch shapes are worth up to
  /// 40 % of the iteration time and the optimum is device-dependent).
  AutotuneRunConfig autotune{};

  /// Scatter policy for the atomic aprod2 kernels. Authoritative over
  /// `autotune.search.scatter`: the autotune path derives its strategy
  /// axis from this mode.
  ScatterMode scatter = ScatterMode::kAtomic;

  /// Storage-layout policy for the kernels. Authoritative over
  /// `autotune.search.layout` the same way `scatter` is over its axis.
  LayoutMode storage_layout = LayoutMode::kSeed;

  /// Storage-precision policy for the kernels. Authoritative over
  /// `autotune.search.precision` the same way the other modes are over
  /// their axes. Any resolved reduced precision arms the iterative-
  /// refinement loop after the solve.
  PrecisionMode precision = PrecisionMode::kFp64;

  /// Refinement loop knobs (only consulted when the resolved tuning
  /// table carries a reduced precision).
  RefinementOptions refine{};
};

struct SolverRunReport {
  LsqrResult result;
  matrix::ParameterLayout layout;
  row_index n_obs = 0;
  row_index n_constraints = 0;
  byte_size system_bytes = 0;
  double generation_seconds = 0;
  double solve_seconds = 0;
  /// Iteration the solve resumed from (-1 = fresh start) and checkpoints
  /// sealed during this run.
  std::int64_t resumed_from_iteration = -1;
  std::uint64_t checkpoints_written = 0;

  /// Autotuning outcome (all zero/false unless autotune.enabled).
  bool autotune_enabled = false;
  /// All shapes came from the cache; no search ran.
  bool autotune_cache_hit = false;
  int kernels_tuned = 0;
  std::uint64_t tuning_trials = 0;
  /// Launch shapes the solve actually ran with.
  backends::TuningTable tuning_used{};

  /// Iterative-refinement outcome. `refinement_ran` is true exactly when
  /// the resolved table carried a reduced precision (the report is then
  /// meaningful); `precision_fell_back` means refinement stalled within
  /// its correction budget and the solve was redone fully in FP64.
  bool refinement_ran = false;
  bool precision_fell_back = false;
  RefinementReport refinement{};

  /// Pennycook-P digest over the kernels that recorded timing samples
  /// (0 when metrics were off or no kernel timed): per-kernel efficiency
  /// is model-predicted time over measured p50, normalized to the best
  /// kernel, folded with the harmonic mean of paper Eq. 1.
  double pennycook_p = 0;
  int pennycook_kernels = 0;
  /// Path of the sealed metrics snapshot, when one is armed.
  std::string metrics_snapshot_path;

  /// Roofline placement of every kernel series that recorded production
  /// traffic + timing (empty when metrics were off). The machine is the
  /// same representative A100 spec the cost-model crossovers use, so
  /// the %-of-ceiling column is consistent with the derived-bandwidth
  /// table; also published as `gaia_kernel_roofline_*` gauges.
  std::vector<metrics::RooflinePoint> roofline;
  metrics::RooflineMachine roofline_machine{};

  /// Events the bounded trace buffer dropped during this run (0 when
  /// tracing was off or the capacity was never hit); a nonzero value
  /// means the trace file is a sliding window, not the whole run.
  std::uint64_t trace_dropped_events = 0;

  /// One-paragraph human summary (examples print it verbatim).
  [[nodiscard]] std::string summary() const;
};

/// Generates the system and solves it per the configuration.
SolverRunReport run_solver(const SolverRunConfig& config);

}  // namespace gaia::core
