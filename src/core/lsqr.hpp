/// \file lsqr.hpp
/// \brief Preconditioned LSQR (Paige & Saunders 1982) for the AVU-GSR
/// system.
///
/// Faithful implementation of the reference algorithm (ACM TOMS 583)
/// including damping, the incremental estimates of ||A||, cond(A),
/// ||r||, ||A^T r|| and ||x||, the three-way stopping tests, and the
/// standard-error estimation the production pipeline publishes with the
/// astrometric catalogue (paper SV-C validates solutions *and* standard
/// errors).
///
/// Structure mirrors the production solver: the system is copied to the
/// device once, every per-iteration product runs through the selected
/// backend's aprod kernels, and the iteration wall time is recorded —
/// the paper's figure of merit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/aprod.hpp"
#include "matrix/system_matrix.hpp"
#include "resilience/health_monitor.hpp"
#include "util/types.hpp"

namespace gaia::core {

/// Reason LSQR stopped (numbering follows the reference code).
enum class LsqrStop : int {
  kXZero = 0,          ///< b = 0; the solution is x = 0
  kAtolBtol = 1,       ///< Ax=b solved to atol/btol
  kLeastSquares = 2,   ///< least-squares solution within atol
  kConlim = 3,         ///< cond(A) exceeded conlim
  kAtolBtolEps = 4,    ///< as 1, at machine-precision limits
  kLeastSquaresEps = 5,///< as 2, at machine-precision limits
  kConlimEps = 6,      ///< as 3, at machine-precision limits
  kIterationLimit = 7, ///< max_iterations reached (the paper's P runs)
  // Extensions beyond the reference code (resilience):
  kNonFinite = 8,      ///< rnorm/arnorm went non-finite — the solve is
                       ///< poisoned and iterating further is pointless.
                       ///< Always active, even with --health=off: this
                       ///< is the detection floor.
  kSdcDetected = 9,    ///< health monitor diagnosed corruption in
                       ///< detect mode (repair mode rolls back instead)
};

[[nodiscard]] std::string to_string(LsqrStop stop);

struct LsqrOptions {
  AprodOptions aprod{};
  std::int64_t max_iterations = 100;
  /// Relative tolerances of the reference algorithm; 0 disables the
  /// corresponding test (the paper's timing runs use a fixed iteration
  /// count and never stop early).
  real atol = 0;
  real btol = 0;
  real conlim = 0;
  /// Tikhonov damping (the regularized problem min ||Ax-b||^2 +
  /// damp^2 ||x||^2).
  real damp = 0;
  /// Column-equilibrate the system before solving (production default).
  bool precondition = true;
  /// Accumulate the per-unknown standard errors.
  bool compute_std_errors = true;
  /// Record the per-iteration convergence history (rnorm, arnorm, xnorm)
  /// in the result — the data behind convergence plots and monitoring.
  bool record_history = false;
  /// Capacity of the simulated accelerator the system must fit on.
  byte_size device_capacity = 64 * kGiB;
  /// Silent-data-corruption monitoring (off by default; see
  /// resilience/health_monitor.hpp for the invariants and cost model).
  /// In repair mode the engine keeps an in-memory validated snapshot
  /// and rolls back/replays on detection, bounded by
  /// `health.max_repairs`; exhausting the budget throws
  /// resilience::SdcError with the diagnosis.
  resilience::HealthConfig health{};
};

struct LsqrResult {
  std::vector<real> x;           ///< solution, size n_cols
  std::vector<real> std_errors;  ///< per-unknown standard error (may be
                                 ///< empty if not requested)
  LsqrStop istop = LsqrStop::kIterationLimit;
  std::int64_t iterations = 0;

  // Incremental estimates at exit (reference-code semantics).
  real anorm = 0;   ///< Frobenius-norm estimate of [A; damp I]
  real acond = 0;   ///< condition estimate
  real rnorm = 0;   ///< ||r|| of the damped system
  real arnorm = 0;  ///< ||A^T r||
  real xnorm = 0;   ///< ||x||

  /// Wall time of each iteration (the paper's measurement unit) and its
  /// mean — "we report the average iteration time over 100 iterations".
  std::vector<double> iteration_seconds;
  double mean_iteration_s = 0;

  /// Per-iteration convergence history (empty unless
  /// LsqrOptions::record_history).
  std::vector<real> rnorm_history;
  std::vector<real> arnorm_history;
  std::vector<real> xnorm_history;

  /// Device accounting: all H2D traffic must happen before iteration 1
  /// (checked by tests via these counters).
  byte_size device_allocated_bytes = 0;
  byte_size h2d_bytes = 0;

  /// Resilience: backend the run finished on (differs from
  /// options.aprod.backend after failover) and how many degradation
  /// steps were taken. All backends compute identical results, so a
  /// failed-over run is still numerically valid.
  backends::BackendKind final_backend = backends::BackendKind::kSerial;
  std::uint64_t failovers = 0;
  /// Iteration a resumed run restarted from (-1 = fresh start); filled
  /// by the checkpoint-orchestrating callers (run_solver, dist).
  std::int64_t resumed_from_iteration = -1;

  /// Health-monitor outcome (mode kOff with all-zero counters unless
  /// LsqrOptions::health enabled it).
  resilience::HealthReport health{};
};

/// Solves A x ~= b where b = A.known_terms(). Throws gaia::Error if the
/// system does not fit the configured device capacity.
LsqrResult lsqr_solve(const matrix::SystemMatrix& A,
                      const LsqrOptions& options = {});

/// As above with an explicit right-hand side (size n_rows).
LsqrResult lsqr_solve(const matrix::SystemMatrix& A,
                      std::span<const real> b, const LsqrOptions& options);

}  // namespace gaia::core
