#include "core/lsqr_engine.hpp"

#include <algorithm>
#include <cmath>
#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/preconditioner.hpp"
#include "core/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injector.hpp"
#include "util/profiler.hpp"
#include "util/stopwatch.hpp"

namespace gaia::core {

namespace {
constexpr char kCheckpointMagic[8] = {'G', 'A', 'I', 'A', 'C', 'K', 'P',
                                      '2'};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  GAIA_CHECK(is.good(), "truncated checkpoint");
  return v;
}
void write_vec(std::ostream& os, std::span<const real> v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size_bytes()));
}
void read_vec(std::istream& is, std::span<real> v) {
  const auto n = read_pod<std::uint64_t>(is);
  GAIA_CHECK(n == v.size(), "checkpoint vector size mismatch");
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size_bytes()));
  GAIA_CHECK(is.good(), "truncated checkpoint");
}
}  // namespace

struct LsqrEngine::Impl {
  LsqrOptions options;
  const matrix::SystemMatrix* A_orig = nullptr;
  matrix::SystemMatrix scaled;       // used when preconditioning
  const matrix::SystemMatrix* A = nullptr;
  std::vector<real> col_scale;
  std::size_t m = 0, n = 0;

  backends::DeviceContext device;
  std::unique_ptr<Aprod> aprod;
  backends::DeviceBuffer<real> d_u, d_v, d_w, d_x, d_var;

  // Recurrence scalars.
  real alpha = 0, beta = 0, bnorm = 0;
  real rhobar = 0, phibar = 0;
  real rnorm = 0, arnorm = 0;
  real anorm = 0, acond = 0, ddnorm = 0, res2 = 0;
  real xnorm = 0, xxnorm = 0, z = 0, cs2 = -1, sn2 = 0;

  std::int64_t itn = 0;
  bool finished = false;
  LsqrStop istop = LsqrStop::kIterationLimit;
  std::vector<double> iteration_seconds;
  std::vector<real> rnorm_history, arnorm_history, xnorm_history;

  // Silent-corruption defense (engaged when options.health is not off):
  // the monitor runs the invariant checks; b_host/resid_scratch feed the
  // true-residual recompute; good_state is the in-memory rollback target
  // of repair mode — refreshed only *after* a deep check passed, so a
  // restore never lands inside the corruption it is escaping.
  std::unique_ptr<resilience::HealthMonitor> health;
  std::vector<real> b_host, resid_scratch;
  std::string good_state;
  std::int64_t good_itn = 0;
  // ABFT checksum-vector state: col_check = A^T 1_m and row_check =
  // A 1_n, precomputed once on a clean system; per iteration the summed
  // kernel outputs are verified against sum(A v) = col_check . v and
  // sum(A^T u) = row_check . u. sum_u/sum_v track the sums of the
  // current normalized basis vectors (rescaled, never re-summed).
  std::vector<real> col_check, row_check;
  real col_check_norm = 0, row_check_norm = 0;
  real sum_u = 0, sum_v = 0;

  Impl(const matrix::SystemMatrix& A_in, std::span<const real> b,
       const LsqrOptions& opts)
      : options(opts),
        A_orig(&A_in),
        device(opts.device_capacity,
               backends::to_string(opts.aprod.backend) + "-device") {
    GAIA_CHECK(static_cast<row_index>(b.size()) == A_in.n_rows(),
               "rhs size mismatch");
    GAIA_CHECK(options.max_iterations > 0,
               "need a positive iteration limit");
    if (options.precondition) {
      col_scale = column_norms(A_in);
      scaled = A_in;
      apply_column_scaling(scaled, col_scale);
      A = &scaled;
    } else {
      A = &A_in;
    }
    m = static_cast<std::size_t>(A->n_rows());
    n = static_cast<std::size_t>(A->n_cols());

    aprod = std::make_unique<Aprod>(*A, device, options.aprod);
    d_u = backends::DeviceBuffer<real>(device, b);
    d_v = backends::DeviceBuffer<real>(device, n);
    d_w = backends::DeviceBuffer<real>(device, n);
    d_x = backends::DeviceBuffer<real>(device, n);
    d_var = backends::DeviceBuffer<real>(
        device, options.compute_std_errors ? n : std::size_t{0});
    d_v.fill(real{0});
    d_w.fill(real{0});
    d_x.fill(real{0});
    if (options.compute_std_errors) d_var.fill(real{0});

    // Golub-Kahan start.
    const auto backend = aprod->active_backend();
    beta = vnorm(d_u.span());
    if (beta > 0) {
      vscale(backend, d_u.span(), real{1} / beta);
      aprod->apply2(d_u.span(), d_v.span());
      alpha = vnorm(d_v.span());
    }
    if (alpha > 0) {
      vscale(backend, d_v.span(), real{1} / alpha);
      std::copy(d_v.span().begin(), d_v.span().end(), d_w.span().begin());
    }
    bnorm = beta;
    rhobar = alpha;
    phibar = beta;
    rnorm = beta;
    arnorm = alpha * beta;
    if (arnorm == 0) {
      finished = true;
      istop = LsqrStop::kXZero;
    }

    if (options.health.enabled()) {
      health = std::make_unique<resilience::HealthMonitor>(options.health);
      // The recompute checks need b on the host (b is the *unchanged*
      // rhs — preconditioning only scales columns).
      b_host.assign(b.begin(), b.end());
      resid_scratch.assign(m, real{0});
      // ABFT checksum vectors, via the kernels themselves so every
      // backend's product is checked against its own arithmetic.
      std::vector<real> ones(std::max(m, n), real{1});
      col_check.assign(n, real{0});
      aprod->apply2(std::span<const real>(ones.data(), m), col_check);
      row_check.assign(m, real{0});
      aprod->apply1(std::span<const real>(ones.data(), n), row_check);
      col_check_norm = vnorm(col_check);
      row_check_norm = vnorm(row_check);
      sum_u = vsum(d_u.span());
      sum_v = vsum(d_v.span());
      if (options.health.mode == resilience::HealthMode::kRepair)
        refresh_good_state();  // iteration-0 rollback target
    }
  }

  /// Fingerprint binding a checkpoint to (problem, options).
  std::uint64_t fingerprint() const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(static_cast<std::uint64_t>(A->n_rows()));
    mix(static_cast<std::uint64_t>(A->n_cols()));
    // max_iterations is deliberately NOT part of the fingerprint: the
  // iteration budget does not change the trajectory, so a resumed run
  // may extend it (rerun with a larger --iterations). Launch-shape
  // tuning (AprodOptions::tuning, the autotuner) is excluded for the
  // same reason: shapes change kernel timing, never the numerics, so a
  // checkpoint taken untuned may be resumed autotuned and vice versa.
    mix(static_cast<std::uint64_t>(options.precondition));
    mix(static_cast<std::uint64_t>(options.compute_std_errors));
    mix(std::bit_cast<std::uint64_t>(options.damp));
    mix(std::bit_cast<std::uint64_t>(
        static_cast<double>(A->values()[0])));
    mix(std::bit_cast<std::uint64_t>(static_cast<double>(
        A->values()[A->values().size() - 1])));
    return h;
  }

  /// Raw checkpoint stream (no file framing): the on-disk format of
  /// LsqrEngine::checkpoint *and* the in-memory rollback snapshot of
  /// repair mode.
  void save_state(std::ostream& os) const {
    os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
    write_pod(os, fingerprint());
    write_pod(os, itn);
    write_pod(os, static_cast<std::uint8_t>(finished ? 1 : 0));
    write_pod(os, static_cast<std::int32_t>(istop));
    for (real v : {alpha, beta, bnorm, rhobar, phibar, rnorm, arnorm,
                   anorm, acond, ddnorm, res2, xnorm, xxnorm, z, cs2, sn2})
      write_pod(os, v);
    write_vec(os, d_u.span());
    write_vec(os, d_v.span());
    write_vec(os, d_w.span());
    write_vec(os, d_x.span());
    write_vec(os, d_var.span());
    write_pod(os, static_cast<std::uint64_t>(iteration_seconds.size()));
    os.write(reinterpret_cast<const char*>(iteration_seconds.data()),
             static_cast<std::streamsize>(iteration_seconds.size() *
                                          sizeof(double)));
    for (const auto* hist :
         {&rnorm_history, &arnorm_history, &xnorm_history})
      write_vec(os, std::span<const real>(hist->data(), hist->size()));
    GAIA_CHECK(os.good(), "checkpoint write failed");
  }

  void load_state(std::istream& is) {
    char magic[8];
    is.read(magic, sizeof(magic));
    GAIA_CHECK(is.good() &&
                   std::memcmp(magic, kCheckpointMagic, sizeof(magic)) == 0,
               "not a gaia LSQR checkpoint");
    GAIA_CHECK(read_pod<std::uint64_t>(is) == fingerprint(),
               "checkpoint does not match this system/options");
    itn = read_pod<std::int64_t>(is);
    finished = read_pod<std::uint8_t>(is) != 0;
    istop = static_cast<LsqrStop>(read_pod<std::int32_t>(is));
    for (real* v : {&alpha, &beta, &bnorm, &rhobar, &phibar, &rnorm,
                    &arnorm, &anorm, &acond, &ddnorm, &res2, &xnorm,
                    &xxnorm, &z, &cs2, &sn2})
      *v = read_pod<real>(is);
    read_vec(is, d_u.span());
    read_vec(is, d_v.span());
    read_vec(is, d_w.span());
    read_vec(is, d_x.span());
    read_vec(is, d_var.span());
    const auto n_times = read_pod<std::uint64_t>(is);
    iteration_seconds.resize(n_times);
    is.read(reinterpret_cast<char*>(iteration_seconds.data()),
            static_cast<std::streamsize>(n_times * sizeof(double)));
    GAIA_CHECK(is.good(), "truncated checkpoint");
    for (auto* hist : {&rnorm_history, &arnorm_history, &xnorm_history}) {
      const auto n_hist = read_pod<std::uint64_t>(is);
      hist->resize(n_hist);
      is.read(reinterpret_cast<char*>(hist->data()),
              static_cast<std::streamsize>(n_hist * sizeof(real)));
      GAIA_CHECK(is.good(), "truncated checkpoint");
    }
    if (health) {
      sum_u = vsum(d_u.span());
      sum_v = vsum(d_v.span());
    }
  }

  void refresh_good_state() {
    std::ostringstream os(std::ios::binary);
    save_state(os);
    good_state = std::move(os).str();
    good_itn = itn;
  }

  /// `sdc:` clause hook: silently flips a bit in the combined output
  /// vector of the named aprod pass. Disarmed cost: one relaxed load.
  void maybe_inject_sdc(std::string_view pass, std::span<real> out) {
    auto& injector = resilience::FaultInjector::global();
    if (!injector.armed()) return;
    if (const auto flip = injector.on_kernel_output(pass, itn, 0, out.size()))
      resilience::apply_bitflip(out, *flip);
  }

  /// The every-K deep pass: segment checksums + the two ABFT agreement
  /// cross-checks (||x|| vs the xnorm recurrence, recomputed ||b - Ax||
  /// vs the rnorm estimate). Returns the first tripped invariant.
  resilience::HealthVerdict run_deep_checks() {
    using resilience::HealthInvariant;
    health->note_deep_check();
    obs::ScopedTrace span("health.deep_check", "resilience");
    const auto& cfg = options.health;
    auto verdict = health->check_vector(
        itn, "u", d_u.span(), beta > 0 ? real{1} : real{-1},
        cfg.unit_norm_tol, HealthInvariant::kUnitNorm);
    if (!verdict.healthy()) return verdict;
    verdict = health->check_vector(
        itn, "v", d_v.span(), alpha > 0 ? real{1} : real{-1},
        cfg.unit_norm_tol, HealthInvariant::kUnitNorm);
    if (!verdict.healthy()) return verdict;
    verdict = health->check_vector(itn, "x", d_x.span(), xnorm,
                                   cfg.xnorm_rel_tol,
                                   HealthInvariant::kXnormAgreement);
    if (!verdict.healthy()) return verdict;

    // True-residual recompute (one extra apply1 — the overhead term):
    // r = b - A x, plus the damping contribution when damp != 0, against
    // the recurrence's rnorm. Skipped deep in the convergence plateau,
    // where the difference is dominated by cancellation, not corruption.
    if (rnorm > bnorm * real{1e-9}) {
      std::fill(resid_scratch.begin(), resid_scratch.end(), real{0});
      aprod->apply1(d_x.span(), resid_scratch);  // resid = A x
      real sum = 0, comp = 0;
      for (std::size_t i = 0; i < m; ++i) {
        const real d = b_host[i] - resid_scratch[i];
        const real term = d * d - comp;
        const real next = sum + term;
        comp = (next - sum) - term;
        sum = next;
      }
      if (options.damp != 0) {
        const real xn = vnorm(d_x.span());
        sum += options.damp * options.damp * xn * xn;
      }
      verdict = health->check_agreement(
          itn, "rnorm", std::sqrt(sum), rnorm, cfg.residual_rel_tol,
          HealthInvariant::kResidualAgreement);
    }
    return verdict;
  }

  /// Rollback of repair mode: restore the last validated snapshot and
  /// replay. Injector clause counters are *not* rolled back (a count=1
  /// sdc clause stays spent), so the replay runs clean.
  void repair(const resilience::HealthVerdict& verdict) {
    const std::int64_t detected_at = itn;
    std::istringstream is(good_state, std::ios::binary);
    load_state(is);
    health->record_repair(detected_at, itn);
    health->reset_window();
    (void)verdict;
  }

  /// Convergence telemetry for the iteration that just finished: span
  /// args for the timeline, counter tracks for Perfetto's counter view,
  /// and registry metrics for the CSV export.
  void record_iteration_telemetry(obs::ScopedTrace& span, double seconds) {
    span.add_arg({"rnorm", static_cast<double>(rnorm)});
    span.add_arg({"arnorm", static_cast<double>(arnorm)});
    auto& rec = obs::TraceRecorder::current();
    if (rec.enabled()) {
      const double now = rec.now_us();
      rec.counter("lsqr.rnorm", now, rnorm);
      rec.counter("lsqr.arnorm", now, arnorm);
    }
    auto& reg = obs::MetricsRegistry::global();
    if (reg.enabled()) {
      static obs::Counter& iters = reg.counter("lsqr.iterations");
      static obs::Histogram& times = reg.histogram("lsqr.iteration_seconds");
      static obs::Gauge& g_rnorm = reg.gauge("lsqr.rnorm");
      static obs::Gauge& g_arnorm = reg.gauge("lsqr.arnorm");
      static obs::Gauge& g_xnorm = reg.gauge("lsqr.xnorm");
      iters.add(1);
      times.record(seconds);
      g_rnorm.set(rnorm);
      g_arnorm.set(arnorm);
      g_xnorm.set(xnorm);
    }
    // Live progress row for the telemetry sampler (rank-attributed via
    // the thread-local set by dist rank bodies; -1 single-process).
    auto& board = obs::ProgressBoard::global();
    if (board.enabled())
      board.update(obs::ProgressBoard::thread_rank(), itn, rnorm, arnorm);
  }

  bool step() {
    if (finished) return false;
    // Vector ops follow the aprod driver's backend so a failed-over run
    // stays coherent (aprod kernels and BLAS1 on the same executor).
    const auto backend = aprod->active_backend();
    const real damp = options.damp;
    util::Stopwatch watch;
    ++itn;
    obs::ScopedTrace iter_span("lsqr.iteration", "lsqr");
    iter_span.add_arg({"itn", static_cast<std::int64_t>(itn)});

    auto u = d_u.span();
    auto v = d_v.span();
    auto w = d_w.span();
    auto x = d_x.span();

    // ABFT bookkeeping: sums of the basis vectors entering this
    // iteration, and the first checksum verdict (if any) to surface.
    const real s_u_old = sum_u, s_v_old = sum_v;
    resilience::HealthVerdict abft;

    {
      util::ScopedRegion region("blas1_scale");
      vscale(backend, u, -alpha);
    }
    aprod->apply1(v, u);
    maybe_inject_sdc("aprod1", u);
    if (health) {
      // u now holds A v - alpha u_old; its sum must equal
      // col_check . v - alpha sum(u_old) to rounding.
      const real actual = vsum(u);
      const real expected = vdot(col_check, v) - alpha * s_u_old;
      const real scale =
          col_check_norm +
          std::abs(alpha) * std::sqrt(static_cast<real>(m)) +
          std::abs(actual);
      abft = health->check_kernel_checksum(itn, "aprod1", actual,
                                           expected, scale);
      sum_u = actual;
    }
    {
      util::ScopedRegion region("reduction_norm");
      beta = vnorm(u);
    }
    if (beta > 0) {
      {
        util::ScopedRegion region("blas1_scale");
        vscale(backend, u, real{1} / beta);
        anorm = std::sqrt(anorm * anorm + alpha * alpha + beta * beta +
                          damp * damp);
        vscale(backend, v, -beta);
      }
      if (health) sum_u /= beta;
      aprod->apply2(u, v);
      maybe_inject_sdc("aprod2", v);
      if (health) {
        // v now holds A^T u - beta v_old (u freshly normalized).
        const real actual = vsum(v);
        const real expected = vdot(row_check, u) - beta * s_v_old;
        const real scale =
            row_check_norm +
            std::abs(beta) * std::sqrt(static_cast<real>(n)) +
            std::abs(actual);
        if (abft.healthy())
          abft = health->check_kernel_checksum(itn, "aprod2", actual,
                                               expected, scale);
        sum_v = actual;
      }
      {
        util::ScopedRegion region("reduction_norm");
        alpha = vnorm(v);
      }
      if (alpha > 0) {
        util::ScopedRegion region("blas1_scale");
        vscale(backend, v, real{1} / alpha);
        if (health) sum_v /= alpha;
      }
    }

    const real rhobar1 = std::sqrt(rhobar * rhobar + damp * damp);
    const real cs1 = rhobar / rhobar1;
    const real psi = (damp / rhobar1) * phibar;
    phibar = cs1 * phibar;

    const real rho = std::sqrt(rhobar1 * rhobar1 + beta * beta);
    const real cs = rhobar1 / rho;
    const real sn = beta / rho;
    const real theta = sn * alpha;
    rhobar = -cs * alpha;
    const real phi = cs * phibar;
    phibar = sn * phibar;
    const real tau = sn * phi;

    {
      util::ScopedRegion region("blas1_updates");
      if (options.compute_std_errors)
        vaccumulate_sq(backend, d_var.span(), real{1} / rho, w);
      ddnorm += (real{1} / rho) * (real{1} / rho) * vdot(w, w);
      vaxpy(backend, x, phi / rho, w);
      vxpby(backend, w, v, -theta / rho);
    }

    const real delta = sn2 * rho;
    const real gambar = -cs2 * rho;
    const real rhs = phi - delta * z;
    xnorm = std::sqrt(xxnorm + (rhs / gambar) * (rhs / gambar));
    const real gamma = std::sqrt(gambar * gambar + theta * theta);
    cs2 = gambar / gamma;
    sn2 = theta / gamma;
    z = rhs / gamma;
    xxnorm += z * z;

    acond = anorm * std::sqrt(ddnorm);
    res2 += psi * psi;
    rnorm = std::sqrt(phibar * phibar + res2);
    arnorm = alpha * std::abs(tau);

    if (options.record_history) {
      rnorm_history.push_back(rnorm);
      arnorm_history.push_back(arnorm);
      xnorm_history.push_back(xnorm);
    }
    const double iteration_s = watch.elapsed_s();
    iteration_seconds.push_back(iteration_s);
    record_iteration_telemetry(iter_span, iteration_s);

    // --- silent-corruption defense -----------------------------------
    if (health) {
      auto verdict = abft;  // the same-iteration detector reports first
      if (verdict.healthy())
        verdict =
            health->check_scalars(itn, alpha, beta, rnorm, arnorm, xnorm);
      if (verdict.healthy()) verdict = health->check_rnorm_window(itn, rnorm);
      if (verdict.healthy() && options.health.due(itn)) {
        verdict = run_deep_checks();
        // Seal the rollback target only after the full pass came back
        // clean: a snapshot is a *validated* state, never a hopeful one.
        if (verdict.healthy() &&
            options.health.mode == resilience::HealthMode::kRepair)
          refresh_good_state();
      }
      if (!verdict.healthy()) {
        health->record_detection(verdict);
        if (options.health.mode == resilience::HealthMode::kRepair) {
          if (health->repairs() >=
              static_cast<std::uint64_t>(options.health.max_repairs)) {
            health->record_unrepaired(verdict);
            throw resilience::SdcError(verdict);
          }
          repair(verdict);
          return true;  // replay resumes from the validated snapshot
        }
        finished = true;
        istop = verdict.invariant ==
                        resilience::HealthInvariant::kScalarFinite
                    ? LsqrStop::kNonFinite
                    : LsqrStop::kSdcDetected;
        return false;
      }
    } else if (!std::isfinite(rnorm) || !std::isfinite(arnorm)) {
      // Detection floor, active even with --health=off: a non-finite
      // residual estimate satisfies no stop test and would otherwise
      // burn the whole iteration budget on a poisoned solve.
      finished = true;
      istop = LsqrStop::kNonFinite;
      return false;
    }

    // Stopping tests (reference-code numbering; skipped when all
    // tolerances are zero, the paper's fixed-iteration timing mode).
    if (options.atol > 0 || options.btol > 0 || options.conlim > 0) {
      const real ctol =
          options.conlim > 0 ? real{1} / options.conlim : real{0};
      const real test1 = rnorm / bnorm;
      const real test2 =
          anorm * rnorm > 0 ? arnorm / (anorm * rnorm) : real{0};
      const real test3 = acond > 0 ? real{1} / acond : real{0};
      const real t1s = test1 / (real{1} + anorm * xnorm / bnorm);
      const real rtol = options.btol + options.atol * anorm * xnorm / bnorm;
      if (real{1} + test3 <= real{1}) {
        istop = LsqrStop::kConlimEps;
      } else if (real{1} + test2 <= real{1}) {
        istop = LsqrStop::kLeastSquaresEps;
      } else if (real{1} + t1s <= real{1}) {
        istop = LsqrStop::kAtolBtolEps;
      } else if (ctol > 0 && test3 <= ctol) {
        istop = LsqrStop::kConlim;
      } else if (options.atol > 0 && test2 <= options.atol) {
        istop = LsqrStop::kLeastSquares;
      } else if ((options.atol > 0 || options.btol > 0) && test1 <= rtol) {
        istop = LsqrStop::kAtolBtol;
      }
      if (istop != LsqrStop::kIterationLimit) finished = true;
    }
    if (itn >= options.max_iterations) finished = true;
    return !finished;
  }

  LsqrResult make_result() const {
    LsqrResult result;
    result.x.assign(n, real{0});
    d_x.copy_to_host(result.x);
    if (options.precondition) unscale_solution(result.x, col_scale);
    if (options.compute_std_errors) {
      result.std_errors.assign(n, real{0});
      d_var.copy_to_host(result.std_errors);
      const real dof = m > n ? static_cast<real>(m - n) : real{1};
      const real s = rnorm / std::sqrt(dof);
      for (auto& se : result.std_errors) se = s * std::sqrt(se);
      if (options.precondition)
        unscale_solution(result.std_errors, col_scale);
    }
    result.istop = istop;
    result.iterations = itn;
    result.anorm = anorm;
    result.acond = acond;
    result.rnorm = rnorm;
    result.arnorm = arnorm;
    result.xnorm = xnorm;
    result.iteration_seconds = iteration_seconds;
    result.rnorm_history = rnorm_history;
    result.arnorm_history = arnorm_history;
    result.xnorm_history = xnorm_history;
    if (!iteration_seconds.empty()) {
      double total = 0;
      for (double t : iteration_seconds) total += t;
      result.mean_iteration_s =
          total / static_cast<double>(iteration_seconds.size());
    }
    result.device_allocated_bytes = device.allocated();
    result.h2d_bytes = device.h2d_bytes();
    result.final_backend = aprod->active_backend();
    result.failovers = aprod->failovers();
    if (health) result.health = health->report();
    return result;
  }
};

LsqrEngine::LsqrEngine(const matrix::SystemMatrix& A,
                       std::span<const real> b, const LsqrOptions& options)
    : impl_(std::make_unique<Impl>(A, b, options)) {
  sync_mirrors();
}

LsqrEngine::LsqrEngine(const matrix::SystemMatrix& A,
                       const LsqrOptions& options)
    : LsqrEngine(A, A.known_terms(), options) {}

LsqrEngine::~LsqrEngine() = default;

void LsqrEngine::sync_mirrors() {
  finished_ = impl_->finished;
  itn_ = impl_->itn;
  istop_ = impl_->istop;
  rnorm_ = impl_->rnorm;
  arnorm_ = impl_->arnorm;
}

bool LsqrEngine::step() {
  const bool more = impl_->step();
  sync_mirrors();
  return more;
}

std::int64_t LsqrEngine::run_to_completion() {
  std::int64_t steps = 0;
  while (!impl_->finished) {
    impl_->step();
    ++steps;
  }
  sync_mirrors();
  return steps;
}

LsqrResult LsqrEngine::result() const { return impl_->make_result(); }

void LsqrEngine::checkpoint(std::ostream& os) const {
  impl_->save_state(os);
}

void LsqrEngine::checkpoint(const std::string& path) const {
  // File checkpoints get the durable framing on top of the raw stream
  // format: write-temp-then-rename plus a CRC32 footer, so a crash
  // mid-write can never leave a half-checkpoint under the final name.
  std::ostringstream payload(std::ios::binary);
  checkpoint(payload);
  resilience::write_framed_file(path, payload.view());
}

void LsqrEngine::restore(std::istream& is) {
  impl_->load_state(is);
  // A restored state becomes the rollback target of repair mode: it
  // came from a CRC-validated checkpoint the caller chose to trust.
  if (impl_->health &&
      impl_->options.health.mode == resilience::HealthMode::kRepair)
    impl_->refresh_good_state();
  sync_mirrors();
}

void LsqrEngine::restore(const std::string& path) {
  // Validates the CRC32 footer before parsing: truncated or bit-flipped
  // files are rejected with an error naming the path and the reason.
  std::istringstream payload(resilience::read_framed_file(path),
                             std::ios::binary);
  restore(payload);
}

}  // namespace gaia::core
