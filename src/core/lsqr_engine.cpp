#include "core/lsqr_engine.hpp"

#include <algorithm>
#include <cmath>
#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/preconditioner.hpp"
#include "core/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/checkpoint.hpp"
#include "util/profiler.hpp"
#include "util/stopwatch.hpp"

namespace gaia::core {

namespace {
constexpr char kCheckpointMagic[8] = {'G', 'A', 'I', 'A', 'C', 'K', 'P',
                                      '2'};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  GAIA_CHECK(is.good(), "truncated checkpoint");
  return v;
}
void write_vec(std::ostream& os, std::span<const real> v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size_bytes()));
}
void read_vec(std::istream& is, std::span<real> v) {
  const auto n = read_pod<std::uint64_t>(is);
  GAIA_CHECK(n == v.size(), "checkpoint vector size mismatch");
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size_bytes()));
  GAIA_CHECK(is.good(), "truncated checkpoint");
}
}  // namespace

struct LsqrEngine::Impl {
  LsqrOptions options;
  const matrix::SystemMatrix* A_orig = nullptr;
  matrix::SystemMatrix scaled;       // used when preconditioning
  const matrix::SystemMatrix* A = nullptr;
  std::vector<real> col_scale;
  std::size_t m = 0, n = 0;

  backends::DeviceContext device;
  std::unique_ptr<Aprod> aprod;
  backends::DeviceBuffer<real> d_u, d_v, d_w, d_x, d_var;

  // Recurrence scalars.
  real alpha = 0, beta = 0, bnorm = 0;
  real rhobar = 0, phibar = 0;
  real rnorm = 0, arnorm = 0;
  real anorm = 0, acond = 0, ddnorm = 0, res2 = 0;
  real xnorm = 0, xxnorm = 0, z = 0, cs2 = -1, sn2 = 0;

  std::int64_t itn = 0;
  bool finished = false;
  LsqrStop istop = LsqrStop::kIterationLimit;
  std::vector<double> iteration_seconds;
  std::vector<real> rnorm_history, arnorm_history, xnorm_history;

  Impl(const matrix::SystemMatrix& A_in, std::span<const real> b,
       const LsqrOptions& opts)
      : options(opts),
        A_orig(&A_in),
        device(opts.device_capacity,
               backends::to_string(opts.aprod.backend) + "-device") {
    GAIA_CHECK(static_cast<row_index>(b.size()) == A_in.n_rows(),
               "rhs size mismatch");
    GAIA_CHECK(options.max_iterations > 0,
               "need a positive iteration limit");
    if (options.precondition) {
      col_scale = column_norms(A_in);
      scaled = A_in;
      apply_column_scaling(scaled, col_scale);
      A = &scaled;
    } else {
      A = &A_in;
    }
    m = static_cast<std::size_t>(A->n_rows());
    n = static_cast<std::size_t>(A->n_cols());

    aprod = std::make_unique<Aprod>(*A, device, options.aprod);
    d_u = backends::DeviceBuffer<real>(device, b);
    d_v = backends::DeviceBuffer<real>(device, n);
    d_w = backends::DeviceBuffer<real>(device, n);
    d_x = backends::DeviceBuffer<real>(device, n);
    d_var = backends::DeviceBuffer<real>(
        device, options.compute_std_errors ? n : std::size_t{0});
    d_v.fill(real{0});
    d_w.fill(real{0});
    d_x.fill(real{0});
    if (options.compute_std_errors) d_var.fill(real{0});

    // Golub-Kahan start.
    const auto backend = aprod->active_backend();
    beta = vnorm(d_u.span());
    if (beta > 0) {
      vscale(backend, d_u.span(), real{1} / beta);
      aprod->apply2(d_u.span(), d_v.span());
      alpha = vnorm(d_v.span());
    }
    if (alpha > 0) {
      vscale(backend, d_v.span(), real{1} / alpha);
      std::copy(d_v.span().begin(), d_v.span().end(), d_w.span().begin());
    }
    bnorm = beta;
    rhobar = alpha;
    phibar = beta;
    rnorm = beta;
    arnorm = alpha * beta;
    if (arnorm == 0) {
      finished = true;
      istop = LsqrStop::kXZero;
    }
  }

  /// Fingerprint binding a checkpoint to (problem, options).
  std::uint64_t fingerprint() const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(static_cast<std::uint64_t>(A->n_rows()));
    mix(static_cast<std::uint64_t>(A->n_cols()));
    // max_iterations is deliberately NOT part of the fingerprint: the
  // iteration budget does not change the trajectory, so a resumed run
  // may extend it (rerun with a larger --iterations). Launch-shape
  // tuning (AprodOptions::tuning, the autotuner) is excluded for the
  // same reason: shapes change kernel timing, never the numerics, so a
  // checkpoint taken untuned may be resumed autotuned and vice versa.
    mix(static_cast<std::uint64_t>(options.precondition));
    mix(static_cast<std::uint64_t>(options.compute_std_errors));
    mix(std::bit_cast<std::uint64_t>(options.damp));
    mix(std::bit_cast<std::uint64_t>(
        static_cast<double>(A->values()[0])));
    mix(std::bit_cast<std::uint64_t>(static_cast<double>(
        A->values()[A->values().size() - 1])));
    return h;
  }

  /// Convergence telemetry for the iteration that just finished: span
  /// args for the timeline, counter tracks for Perfetto's counter view,
  /// and registry metrics for the CSV export.
  void record_iteration_telemetry(obs::ScopedTrace& span, double seconds) {
    span.add_arg({"rnorm", static_cast<double>(rnorm)});
    span.add_arg({"arnorm", static_cast<double>(arnorm)});
    auto& rec = obs::TraceRecorder::current();
    if (rec.enabled()) {
      const double now = rec.now_us();
      rec.counter("lsqr.rnorm", now, rnorm);
      rec.counter("lsqr.arnorm", now, arnorm);
    }
    auto& reg = obs::MetricsRegistry::global();
    if (reg.enabled()) {
      static obs::Counter& iters = reg.counter("lsqr.iterations");
      static obs::Histogram& times = reg.histogram("lsqr.iteration_seconds");
      static obs::Gauge& g_rnorm = reg.gauge("lsqr.rnorm");
      static obs::Gauge& g_arnorm = reg.gauge("lsqr.arnorm");
      static obs::Gauge& g_xnorm = reg.gauge("lsqr.xnorm");
      iters.add(1);
      times.record(seconds);
      g_rnorm.set(rnorm);
      g_arnorm.set(arnorm);
      g_xnorm.set(xnorm);
    }
  }

  bool step() {
    if (finished) return false;
    // Vector ops follow the aprod driver's backend so a failed-over run
    // stays coherent (aprod kernels and BLAS1 on the same executor).
    const auto backend = aprod->active_backend();
    const real damp = options.damp;
    util::Stopwatch watch;
    ++itn;
    obs::ScopedTrace iter_span("lsqr.iteration", "lsqr");
    iter_span.add_arg({"itn", static_cast<std::int64_t>(itn)});

    auto u = d_u.span();
    auto v = d_v.span();
    auto w = d_w.span();
    auto x = d_x.span();

    {
      util::ScopedRegion region("blas1_scale");
      vscale(backend, u, -alpha);
    }
    aprod->apply1(v, u);
    {
      util::ScopedRegion region("reduction_norm");
      beta = vnorm(u);
    }
    if (beta > 0) {
      {
        util::ScopedRegion region("blas1_scale");
        vscale(backend, u, real{1} / beta);
        anorm = std::sqrt(anorm * anorm + alpha * alpha + beta * beta +
                          damp * damp);
        vscale(backend, v, -beta);
      }
      aprod->apply2(u, v);
      {
        util::ScopedRegion region("reduction_norm");
        alpha = vnorm(v);
      }
      if (alpha > 0) {
        util::ScopedRegion region("blas1_scale");
        vscale(backend, v, real{1} / alpha);
      }
    }

    const real rhobar1 = std::sqrt(rhobar * rhobar + damp * damp);
    const real cs1 = rhobar / rhobar1;
    const real psi = (damp / rhobar1) * phibar;
    phibar = cs1 * phibar;

    const real rho = std::sqrt(rhobar1 * rhobar1 + beta * beta);
    const real cs = rhobar1 / rho;
    const real sn = beta / rho;
    const real theta = sn * alpha;
    rhobar = -cs * alpha;
    const real phi = cs * phibar;
    phibar = sn * phibar;
    const real tau = sn * phi;

    {
      util::ScopedRegion region("blas1_updates");
      if (options.compute_std_errors)
        vaccumulate_sq(backend, d_var.span(), real{1} / rho, w);
      ddnorm += (real{1} / rho) * (real{1} / rho) * vdot(w, w);
      vaxpy(backend, x, phi / rho, w);
      vxpby(backend, w, v, -theta / rho);
    }

    const real delta = sn2 * rho;
    const real gambar = -cs2 * rho;
    const real rhs = phi - delta * z;
    xnorm = std::sqrt(xxnorm + (rhs / gambar) * (rhs / gambar));
    const real gamma = std::sqrt(gambar * gambar + theta * theta);
    cs2 = gambar / gamma;
    sn2 = theta / gamma;
    z = rhs / gamma;
    xxnorm += z * z;

    acond = anorm * std::sqrt(ddnorm);
    res2 += psi * psi;
    rnorm = std::sqrt(phibar * phibar + res2);
    arnorm = alpha * std::abs(tau);

    if (options.record_history) {
      rnorm_history.push_back(rnorm);
      arnorm_history.push_back(arnorm);
      xnorm_history.push_back(xnorm);
    }
    const double iteration_s = watch.elapsed_s();
    iteration_seconds.push_back(iteration_s);
    record_iteration_telemetry(iter_span, iteration_s);

    // Stopping tests (reference-code numbering; skipped when all
    // tolerances are zero, the paper's fixed-iteration timing mode).
    if (options.atol > 0 || options.btol > 0 || options.conlim > 0) {
      const real ctol =
          options.conlim > 0 ? real{1} / options.conlim : real{0};
      const real test1 = rnorm / bnorm;
      const real test2 =
          anorm * rnorm > 0 ? arnorm / (anorm * rnorm) : real{0};
      const real test3 = acond > 0 ? real{1} / acond : real{0};
      const real t1s = test1 / (real{1} + anorm * xnorm / bnorm);
      const real rtol = options.btol + options.atol * anorm * xnorm / bnorm;
      if (real{1} + test3 <= real{1}) {
        istop = LsqrStop::kConlimEps;
      } else if (real{1} + test2 <= real{1}) {
        istop = LsqrStop::kLeastSquaresEps;
      } else if (real{1} + t1s <= real{1}) {
        istop = LsqrStop::kAtolBtolEps;
      } else if (ctol > 0 && test3 <= ctol) {
        istop = LsqrStop::kConlim;
      } else if (options.atol > 0 && test2 <= options.atol) {
        istop = LsqrStop::kLeastSquares;
      } else if ((options.atol > 0 || options.btol > 0) && test1 <= rtol) {
        istop = LsqrStop::kAtolBtol;
      }
      if (istop != LsqrStop::kIterationLimit) finished = true;
    }
    if (itn >= options.max_iterations) finished = true;
    return !finished;
  }

  LsqrResult make_result() const {
    LsqrResult result;
    result.x.assign(n, real{0});
    d_x.copy_to_host(result.x);
    if (options.precondition) unscale_solution(result.x, col_scale);
    if (options.compute_std_errors) {
      result.std_errors.assign(n, real{0});
      d_var.copy_to_host(result.std_errors);
      const real dof = m > n ? static_cast<real>(m - n) : real{1};
      const real s = rnorm / std::sqrt(dof);
      for (auto& se : result.std_errors) se = s * std::sqrt(se);
      if (options.precondition)
        unscale_solution(result.std_errors, col_scale);
    }
    result.istop = istop;
    result.iterations = itn;
    result.anorm = anorm;
    result.acond = acond;
    result.rnorm = rnorm;
    result.arnorm = arnorm;
    result.xnorm = xnorm;
    result.iteration_seconds = iteration_seconds;
    result.rnorm_history = rnorm_history;
    result.arnorm_history = arnorm_history;
    result.xnorm_history = xnorm_history;
    if (!iteration_seconds.empty()) {
      double total = 0;
      for (double t : iteration_seconds) total += t;
      result.mean_iteration_s =
          total / static_cast<double>(iteration_seconds.size());
    }
    result.device_allocated_bytes = device.allocated();
    result.h2d_bytes = device.h2d_bytes();
    result.final_backend = aprod->active_backend();
    result.failovers = aprod->failovers();
    return result;
  }
};

LsqrEngine::LsqrEngine(const matrix::SystemMatrix& A,
                       std::span<const real> b, const LsqrOptions& options)
    : impl_(std::make_unique<Impl>(A, b, options)) {
  sync_mirrors();
}

LsqrEngine::LsqrEngine(const matrix::SystemMatrix& A,
                       const LsqrOptions& options)
    : LsqrEngine(A, A.known_terms(), options) {}

LsqrEngine::~LsqrEngine() = default;

void LsqrEngine::sync_mirrors() {
  finished_ = impl_->finished;
  itn_ = impl_->itn;
  istop_ = impl_->istop;
  rnorm_ = impl_->rnorm;
  arnorm_ = impl_->arnorm;
}

bool LsqrEngine::step() {
  const bool more = impl_->step();
  sync_mirrors();
  return more;
}

std::int64_t LsqrEngine::run_to_completion() {
  std::int64_t steps = 0;
  while (!impl_->finished) {
    impl_->step();
    ++steps;
  }
  sync_mirrors();
  return steps;
}

LsqrResult LsqrEngine::result() const { return impl_->make_result(); }

void LsqrEngine::checkpoint(std::ostream& os) const {
  const Impl& s = *impl_;
  os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  write_pod(os, s.fingerprint());
  write_pod(os, s.itn);
  write_pod(os, static_cast<std::uint8_t>(s.finished ? 1 : 0));
  write_pod(os, static_cast<std::int32_t>(s.istop));
  for (real v : {s.alpha, s.beta, s.bnorm, s.rhobar, s.phibar, s.rnorm,
                 s.arnorm, s.anorm, s.acond, s.ddnorm, s.res2, s.xnorm,
                 s.xxnorm, s.z, s.cs2, s.sn2})
    write_pod(os, v);
  write_vec(os, s.d_u.span());
  write_vec(os, s.d_v.span());
  write_vec(os, s.d_w.span());
  write_vec(os, s.d_x.span());
  write_vec(os, s.d_var.span());
  write_pod(os, static_cast<std::uint64_t>(s.iteration_seconds.size()));
  os.write(reinterpret_cast<const char*>(s.iteration_seconds.data()),
           static_cast<std::streamsize>(s.iteration_seconds.size() *
                                        sizeof(double)));
  for (const auto* hist :
       {&s.rnorm_history, &s.arnorm_history, &s.xnorm_history})
    write_vec(os, std::span<const real>(hist->data(), hist->size()));
  GAIA_CHECK(os.good(), "checkpoint write failed");
}

void LsqrEngine::checkpoint(const std::string& path) const {
  // File checkpoints get the durable framing on top of the raw stream
  // format: write-temp-then-rename plus a CRC32 footer, so a crash
  // mid-write can never leave a half-checkpoint under the final name.
  std::ostringstream payload(std::ios::binary);
  checkpoint(payload);
  resilience::write_framed_file(path, payload.view());
}

void LsqrEngine::restore(std::istream& is) {
  Impl& s = *impl_;
  char magic[8];
  is.read(magic, sizeof(magic));
  GAIA_CHECK(is.good() &&
                 std::memcmp(magic, kCheckpointMagic, sizeof(magic)) == 0,
             "not a gaia LSQR checkpoint");
  GAIA_CHECK(read_pod<std::uint64_t>(is) == s.fingerprint(),
             "checkpoint does not match this system/options");
  s.itn = read_pod<std::int64_t>(is);
  s.finished = read_pod<std::uint8_t>(is) != 0;
  s.istop = static_cast<LsqrStop>(read_pod<std::int32_t>(is));
  for (real* v : {&s.alpha, &s.beta, &s.bnorm, &s.rhobar, &s.phibar,
                  &s.rnorm, &s.arnorm, &s.anorm, &s.acond, &s.ddnorm,
                  &s.res2, &s.xnorm, &s.xxnorm, &s.z, &s.cs2, &s.sn2})
    *v = read_pod<real>(is);
  read_vec(is, s.d_u.span());
  read_vec(is, s.d_v.span());
  read_vec(is, s.d_w.span());
  read_vec(is, s.d_x.span());
  read_vec(is, s.d_var.span());
  const auto n_times = read_pod<std::uint64_t>(is);
  s.iteration_seconds.resize(n_times);
  is.read(reinterpret_cast<char*>(s.iteration_seconds.data()),
          static_cast<std::streamsize>(n_times * sizeof(double)));
  GAIA_CHECK(is.good(), "truncated checkpoint");
  for (auto* hist : {&s.rnorm_history, &s.arnorm_history, &s.xnorm_history}) {
    const auto n_hist = read_pod<std::uint64_t>(is);
    hist->resize(n_hist);
    is.read(reinterpret_cast<char*>(hist->data()),
            static_cast<std::streamsize>(n_hist * sizeof(real)));
    GAIA_CHECK(is.good(), "truncated checkpoint");
  }
  sync_mirrors();
}

void LsqrEngine::restore(const std::string& path) {
  // Validates the CRC32 footer before parsing: truncated or bit-flipped
  // files are rejected with an error naming the path and the reason.
  std::istringstream payload(resilience::read_framed_file(path),
                             std::ios::binary);
  restore(payload);
}

}  // namespace gaia::core
