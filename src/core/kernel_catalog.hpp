/// \file kernel_catalog.hpp
/// \brief Registers the solver's kernels with the tuning registry.
///
/// The tuning library owns the dispatch *mechanism* (a type-erased
/// (KernelId, Backend) table); this file owns the dispatch *content*:
/// the eight templated aprod kernels instantiated for every compiled
/// backend, plus the fused aprod2 scatter. Registration is idempotent
/// and runs on first Aprod construction, so any binary that launches a
/// kernel has a fully populated registry without global-initializer
/// ordering games across libraries.
#pragma once

#include <cstdint>

#include "backends/kernel_config.hpp"

namespace gaia::core {

struct SystemView;

/// Populates tuning::KernelRegistry::global() with every (kernel,
/// backend) launcher (idempotent, thread-safe).
void ensure_kernel_catalog();

/// Stable region/span name of a kernel ("aprod2_att", ...).
[[nodiscard]] const char* kernel_region_name(backends::KernelId id);

/// Bytes a kernel moves through memory (the HBM-traffic accounting a
/// vendor profiler reports): coefficient values + index arrays + vector
/// gathers/scatters, per row. An estimate with the same structure as
/// perfmodel::KernelCostModel::kernel_traffic_bytes, computed from the
/// live system dimensions.
[[nodiscard]] std::uint64_t kernel_traffic_bytes(const SystemView& view,
                                                 backends::KernelId id);

/// Layout-aware traffic: the seed layout charges the compacted
/// coefficient slice (unchanged accounting), the derived layouts charge
/// what they actually stream — SoA planes over the zero-padded tile
/// rows, sliced values + explicit columns + row ids over the padded
/// lanes. The padded-vs-compacted ratio is the modeled price of the
/// regularized addressing; the bandwidth win shows up in the cost
/// model's miss factors, not here.
[[nodiscard]] std::uint64_t kernel_traffic_bytes(
    const SystemView& view, backends::KernelId id,
    backends::StorageLayout layout);

/// Precision-aware traffic: scales the coefficient-plane bytes (AoS
/// records / SoA planes / sliced payload) by the storage scalar's size
/// while the index arrays and the FP64 x/y vector traffic stay
/// unchanged — the bandwidth lever mixed-precision storage actually
/// pulls, and exactly what KernelCostModel::precision_traffic_bytes
/// prices per GPU spec.
[[nodiscard]] std::uint64_t kernel_traffic_bytes(
    const SystemView& view, backends::KernelId id,
    backends::StorageLayout layout, backends::Precision precision);

/// Useful floating-point operations a kernel performs: one multiply +
/// one add per stored coefficient (rows * nnz * 2). Same convention as
/// perfmodel::KernelCostModel::kernel_flops, computed from the live
/// system dimensions.
[[nodiscard]] std::uint64_t kernel_flops(const SystemView& view,
                                         backends::KernelId id);

/// Atomic read-modify-write updates a launch issues: rows * nnz for the
/// aprod2 scatter kernels when running the atomic strategy, zero for
/// gather kernels and for the privatized strategy (which replaces the
/// atomics with private accumulators + a deterministic reduction).
[[nodiscard]] std::uint64_t kernel_atomic_updates(
    const SystemView& view, backends::KernelId id,
    backends::ScatterStrategy strategy);

}  // namespace gaia::core
