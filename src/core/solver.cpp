#include "core/solver.hpp"

#include <algorithm>
#include <exception>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/autotune_driver.hpp"
#include "core/lsqr_engine.hpp"
#include "metrics/pennycook.hpp"
#include "metrics/roofline.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "perfmodel/cost_model.hpp"
#include "perfmodel/problem_shape.hpp"
#include "tuning/tuning_cache.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"

namespace gaia::core {

std::string to_string(ScatterMode mode) {
  switch (mode) {
    case ScatterMode::kAtomic:
      return "atomic";
    case ScatterMode::kPrivatized:
      return "privatized";
    case ScatterMode::kAuto:
      return "auto";
  }
  return "atomic";
}

std::optional<ScatterMode> parse_scatter_mode(const std::string& name) {
  if (name == "atomic") return ScatterMode::kAtomic;
  if (name == "privatized") return ScatterMode::kPrivatized;
  if (name == "auto") return ScatterMode::kAuto;
  return std::nullopt;
}

std::string to_string(LayoutMode mode) {
  switch (mode) {
    case LayoutMode::kSeed:
      return "seed";
    case LayoutMode::kSoa:
      return "soa";
    case LayoutMode::kSliced:
      return "sliced";
    case LayoutMode::kAuto:
      return "auto";
  }
  return "seed";
}

std::optional<LayoutMode> parse_layout_mode(const std::string& name) {
  if (name == "seed" || name == "seed_aos" || name == "aos")
    return LayoutMode::kSeed;
  if (name == "soa" || name == "soa_tiled") return LayoutMode::kSoa;
  if (name == "sliced" || name == "sliced_instr") return LayoutMode::kSliced;
  if (name == "auto") return LayoutMode::kAuto;
  return std::nullopt;
}

std::string to_string(PrecisionMode mode) {
  switch (mode) {
    case PrecisionMode::kFp64:
      return "fp64";
    case PrecisionMode::kFp32:
      return "fp32";
    case PrecisionMode::kBf16s:
      return "bf16s";
    case PrecisionMode::kAuto:
      return "auto";
  }
  return "fp64";
}

std::optional<PrecisionMode> parse_precision_mode(const std::string& name) {
  if (name == "auto") return PrecisionMode::kAuto;
  // The pinned modes accept the same grammar as the precision tokens
  // themselves, so `--precision` and the tuning-cache JSON agree.
  if (const auto p = backends::parse_precision(name)) {
    switch (*p) {
      case backends::Precision::kFp64:
        return PrecisionMode::kFp64;
      case backends::Precision::kFp32:
        return PrecisionMode::kFp32;
      case backends::Precision::kBf16s:
        return PrecisionMode::kBf16s;
    }
  }
  return std::nullopt;
}

namespace {

/// Installs `strategy` on every atomic kernel's table entry, leaving the
/// launch shapes and the gather kernels untouched.
void force_scatter_strategy(backends::TuningTable& table,
                            backends::ScatterStrategy strategy) {
  for (backends::KernelId id : backends::all_kernels()) {
    if (!backends::kernel_uses_atomics(id)) continue;
    backends::KernelConfig cfg = table.get(id);
    cfg.strategy = strategy;
    table.set(id, cfg);
  }
}

/// Installs `layout` on every kernel's table entry, leaving shapes and
/// strategies untouched.
void force_storage_layout(backends::TuningTable& table,
                          backends::StorageLayout layout) {
  for (backends::KernelId id : backends::all_kernels()) {
    backends::KernelConfig cfg = table.get(id);
    cfg.layout = layout;
    table.set(id, cfg);
  }
}

/// The fixed layout a pinned LayoutMode means (never called for kAuto).
backends::StorageLayout pinned_layout(LayoutMode mode) {
  switch (mode) {
    case LayoutMode::kSoa:
      return backends::StorageLayout::kSoaTiled;
    case LayoutMode::kSliced:
      return backends::StorageLayout::kSlicedInstr;
    default:
      return backends::StorageLayout::kSeedAos;
  }
}

/// Installs `precision` on every kernel's table entry, leaving shapes,
/// strategies and layouts untouched.
void force_precision(backends::TuningTable& table,
                     backends::Precision precision) {
  for (backends::KernelId id : backends::all_kernels()) {
    backends::KernelConfig cfg = table.get(id);
    cfg.precision = precision;
    table.set(id, cfg);
  }
}

/// The fixed precision a pinned PrecisionMode means (never for kAuto).
backends::Precision pinned_precision(PrecisionMode mode) {
  switch (mode) {
    case PrecisionMode::kFp32:
      return backends::Precision::kFp32;
    case PrecisionMode::kBf16s:
      return backends::Precision::kBf16s;
    default:
      return backends::Precision::kFp64;
  }
}

/// True when any kernel's resolved entry stores coefficients reduced —
/// the condition that arms the post-solve refinement loop.
bool table_has_reduced_precision(const backends::TuningTable& table) {
  for (backends::KernelId id : backends::all_kernels())
    if (table.get(id).precision != backends::Precision::kFp64) return true;
  return false;
}

/// The no-measurement arm of `--precision=auto`: the cost model's
/// bandwidth-vs-refinement crossover per kernel (same representative
/// A100 spec as the other crossovers — the sign is what matters).
void apply_model_preferred_precision(const matrix::GeneratorConfig& gen_cfg,
                                     backends::TuningTable& table) {
  const perfmodel::ProblemShape shape =
      perfmodel::ProblemShape::from_config(gen_cfg);
  const perfmodel::KernelCostModel model(
      perfmodel::gpu_spec(perfmodel::Platform::kA100));
  for (backends::KernelId id : backends::all_kernels()) {
    backends::KernelConfig cfg = table.get(id);
    cfg.precision = model.preferred_precision(id, shape, cfg.layout);
    table.set(id, cfg);
  }
}

/// The no-measurement arm of `--layout=auto`: the cost model's
/// overfetch-vs-padding crossover per kernel (same representative A100
/// spec as the scatter crossover below — the sign is what matters).
void apply_model_preferred_layout(const matrix::GeneratorConfig& gen_cfg,
                                  backends::TuningTable& table) {
  const perfmodel::ProblemShape shape =
      perfmodel::ProblemShape::from_config(gen_cfg);
  const perfmodel::KernelCostModel model(
      perfmodel::gpu_spec(perfmodel::Platform::kA100));
  for (backends::KernelId id : backends::all_kernels()) {
    backends::KernelConfig cfg = table.get(id);
    cfg.layout = model.preferred_layout(id, shape);
    table.set(id, cfg);
  }
}

/// The no-measurement arm of `--scatter=auto`: asks the cost model's
/// contention-vs-bandwidth crossover per atomic kernel. A100 is the
/// representative device (mid-pack bandwidth and atomic throughput among
/// the paper's five platforms); the *sign* of the crossover, not the
/// absolute times, is what this decides.
void apply_model_preferred(const matrix::GeneratorConfig& gen_cfg,
                           const AprodOptions& aprod,
                           backends::TuningTable& table) {
  const perfmodel::ProblemShape shape =
      perfmodel::ProblemShape::from_config(gen_cfg);
  const perfmodel::KernelCostModel model(
      perfmodel::gpu_spec(perfmodel::Platform::kA100));
  for (backends::KernelId id : backends::all_kernels()) {
    if (!backends::kernel_uses_atomics(id)) continue;
    backends::KernelConfig cfg = table.get(id);
    cfg.strategy = model.preferred_strategy(id, shape, cfg,
                                            aprod.atomic_mode,
                                            aprod.coherence);
    table.set(id, cfg);
  }
}

/// Resolves the launch shapes the solve will run with: a complete cache
/// entry for this (backend, shape bucket) skips the search outright;
/// otherwise a warm-up search runs on a scoped device (its residency is
/// released before the real solve allocates), and fresh winners are
/// sealed back to the cache file.
void run_autotune(const SolverRunConfig& config,
                  const matrix::SystemMatrix& A, LsqrOptions& lsqr,
                  SolverRunReport& report) {
  report.autotune_enabled = true;
  const backends::BackendKind backend = lsqr.aprod.backend;
  const tuning::ShapeBucket bucket =
      tuning::bucket_for(A.n_rows(), A.n_cols());

  tuning::TuningCache cache;
  auto& metrics = obs::MetricsRegistry::global();
  if (!config.autotune.cache_path.empty() &&
      cache.load(config.autotune.cache_path) &&
      cache.complete_for(backend, bucket)) {
    report.kernels_tuned = cache.apply(backend, bucket, lsqr.aprod.tuning);
    report.autotune_cache_hit = true;
    // A cached winner may record the other strategy arm (sealed by an
    // earlier --scatter=auto run); a pinned mode overrides it — pinning
    // is a correctness/reproducibility request, not a speed hint.
    if (config.scatter == ScatterMode::kAtomic)
      force_scatter_strategy(lsqr.aprod.tuning,
                             backends::ScatterStrategy::kAtomic);
    else if (config.scatter == ScatterMode::kPrivatized)
      force_scatter_strategy(lsqr.aprod.tuning,
                             backends::ScatterStrategy::kPrivatized);
    // Same for the layout axis: a pinned mode overrides cached winners.
    if (config.storage_layout != LayoutMode::kAuto)
      force_storage_layout(lsqr.aprod.tuning,
                           pinned_layout(config.storage_layout));
    // And the precision axis: a pinned mode overrides cached winners.
    if (config.precision != PrecisionMode::kAuto)
      force_precision(lsqr.aprod.tuning,
                      pinned_precision(config.precision));
    if (metrics.enabled()) metrics.counter("tuning.cache_hits").add(1);
    return;
  }
  if (metrics.enabled()) metrics.counter("tuning.cache_misses").add(1);
  if (!backends::honors_kernel_config(backend)) return;

  tuning::AutotuneOptions search = config.autotune.search;
  switch (config.scatter) {
    case ScatterMode::kAtomic:
      search.scatter = backends::ScatterStrategy::kAtomic;
      break;
    case ScatterMode::kPrivatized:
      search.scatter = backends::ScatterStrategy::kPrivatized;
      break;
    case ScatterMode::kAuto:
      search.scatter = std::nullopt;  // measure both arms per kernel
      break;
  }
  search.layout = config.storage_layout == LayoutMode::kAuto
                      ? std::nullopt  // measure every layout arm
                      : std::optional(pinned_layout(config.storage_layout));
  search.precision =
      config.precision == PrecisionMode::kAuto
          ? std::nullopt  // measure every precision arm
          : std::optional(pinned_precision(config.precision));
  tuning::Autotuner tuner(backend, search);
  {
    backends::DeviceContext device(lsqr.device_capacity, "autotune");
    AprodOptions opts = lsqr.aprod;
    opts.autotuner = &tuner;
    Aprod aprod(A, device, opts);
    const AutotuneWarmupReport warm =
        autotune_warmup(aprod, tuner, config.autotune.max_warmup_rounds);
    lsqr.aprod.tuning = aprod.tuning();
    report.kernels_tuned = warm.kernels_tuned;
    report.tuning_trials = warm.trials;
  }
  if (!config.autotune.cache_path.empty()) {
    // Seal the *full* table for this key — including kernels the search
    // left at their prior shape — so the next run's complete_for() check
    // can skip the search without re-deriving anything.
    for (backends::KernelId id : backends::all_kernels())
      cache.put(backend, bucket, id, lsqr.aprod.tuning.get(id));
    cache.save(config.autotune.cache_path);
  }
}

/// Post-solve mixed-precision refinement: when the resolved table stores
/// any coefficient plane reduced, the solve converged to the *perturbed*
/// system's solution; correct it against the FP64 residual until the
/// §V-C tolerance (core/refinement.hpp). A stalled refinement — the
/// correction budget ran out above tolerance — falls back to a complete
/// FP64 re-solve: reduced precision may cost its speedup, never accuracy.
void run_refinement(const SolverRunConfig& config,
                    const matrix::SystemMatrix& A, LsqrOptions& lsqr,
                    SolverRunReport& report) {
  if (!table_has_reduced_precision(lsqr.aprod.tuning)) return;
  obs::ProgressBoard::global().set_phase(obs::ProgressBoard::thread_rank(),
                                         "refine");
  report.refinement_ran = true;
  report.refinement = refine_corrections(A, A.known_terms(),
                                         report.result.x, lsqr,
                                         config.refine);
  if (report.refinement.converged) return;

  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) reg.counter("refine.fallbacks").add(1);
  obs::flight_event("state", "solver.precision_fallback",
                    "refinement stalled; full fp64 re-solve");
  report.precision_fell_back = true;
  force_precision(lsqr.aprod.tuning, backends::Precision::kFp64);
  report.tuning_used = lsqr.aprod.tuning;
  LsqrOptions fp64 = lsqr;
  fp64.aprod.autotuner = nullptr;
  report.result = lsqr_solve(A, fp64);
}

/// Post-solve observability digest: Pennycook P across the kernels that
/// recorded production timing samples, plus the armed snapshot path.
/// Per-kernel efficiency e_i = (cost-model predicted launch time) /
/// (measured p50), the per-kernel analog of the paper's application
/// efficiency; normalized by the best kernel so e_i in (0, 1] and P is
/// the harmonic mean of Eq. 1. Rows are read from a snapshot — never via
/// registry lookups, which would create empty series as a side effect.
void finish_observability(const matrix::GeneratorConfig& gen_cfg,
                          const LsqrOptions& lsqr, SolverRunReport& report) {
  report.metrics_snapshot_path = obs::global_snapshot_path();
  report.trace_dropped_events =
      obs::TraceRecorder::global().dropped_events();
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  const std::vector<obs::MetricRow> rows = reg.snapshot();
  const perfmodel::ProblemShape shape =
      perfmodel::ProblemShape::from_config(gen_cfg);
  const perfmodel::GpuSpec spec =
      perfmodel::gpu_spec(perfmodel::Platform::kA100);
  const perfmodel::KernelCostModel model(spec);
  // Roofline placement against the same representative spec the cost
  // model prices crossovers with (GFLOP/s = TFLOP/s * 1000); gauges are
  // published back so exports/bundles carry the placement.
  report.roofline_machine = metrics::RooflineMachine{
      spec.name, spec.peak_bw_gbs, spec.fp64_tflops * 1000.0,
      spec.spmv_bw_efficiency};
  report.roofline = metrics::roofline_points(rows, report.roofline_machine);
  metrics::publish_roofline_gauges(report.roofline);
  std::vector<double> eff;
  for (backends::KernelId id : backends::all_kernels()) {
    const std::string kname = backends::to_string(id);
    // Several series can exist per kernel (trial shapes, failover
    // backends); the one with the most samples is the production config.
    double measured = 0;
    std::uint64_t best_count = 0;
    for (const obs::MetricRow& row : rows) {
      obs::KernelSeriesName series;
      if (!obs::parse_kernel_series(row.name, series)) continue;
      if (series.kernel != kname || series.field != "time_seconds") continue;
      if (row.count > best_count) {
        best_count = row.count;
        measured = row.p50;
      }
    }
    if (best_count == 0 || measured <= 0) continue;
    const double predicted =
        model.kernel_seconds(id, shape, report.tuning_used.get(id),
                             lsqr.aprod.atomic_mode, lsqr.aprod.coherence);
    if (predicted <= 0) continue;
    eff.push_back(predicted / measured);
  }
  if (eff.empty()) return;
  const double best = *std::max_element(eff.begin(), eff.end());
  for (double& e : eff) e /= best;
  report.pennycook_p = metrics::pennycook_p(eff);
  report.pennycook_kernels = static_cast<int>(eff.size());
  reg.gauge("metrics.pennycook").set(report.pennycook_p);
}

SolverRunReport run_solver_impl(const SolverRunConfig& config) {
  util::Stopwatch watch;

  // Live progress: one rank-attributed row for the whole run (rank -1
  // single-process; the dist rank bodies install a ThreadRankScope).
  // Phase transitions below feed the sampler's progress/ETA line; the
  // row is dropped however the run ends.
  const int prank = obs::ProgressBoard::thread_rank();
  auto& board = obs::ProgressBoard::global();
  struct BoardEnd {
    int rank;
    ~BoardEnd() { obs::ProgressBoard::global().end(rank); }
  } board_end{prank};
  board.begin(prank, config.lsqr.max_iterations, "generate");

  matrix::GeneratorConfig gen_cfg =
      config.generator.has_value()
          ? *config.generator
          : matrix::config_for_footprint(config.footprint_bytes, config.seed);

  matrix::GeneratedSystem generated = matrix::generate_system(gen_cfg);
  SolverRunReport report;
  report.generation_seconds = watch.elapsed_s();
  report.layout = generated.A.layout();
  report.n_obs = generated.A.n_obs();
  report.n_constraints = generated.A.n_constraints();
  report.system_bytes = generated.A.footprint_bytes();

  LsqrOptions lsqr = config.lsqr;

  // Config fingerprint for any postmortem bundle this run flushes.
  obs::set_postmortem_context("backend",
                              backends::to_string(lsqr.aprod.backend));
  obs::set_postmortem_context("seed", std::to_string(config.seed));
  obs::set_postmortem_context("scatter", to_string(config.scatter));
  obs::set_postmortem_context("layout", to_string(config.storage_layout));
  obs::set_postmortem_context("precision", to_string(config.precision));
  obs::set_postmortem_context("n_obs", std::to_string(report.n_obs));
  obs::set_postmortem_context("n_unknowns",
                              std::to_string(report.layout.n_unknowns()));
  obs::set_postmortem_context(
      "max_iterations", std::to_string(config.lsqr.max_iterations));
  obs::flight_event("state", "solver.generated",
                    std::to_string(report.n_obs) + " obs, " +
                        std::to_string(report.layout.n_unknowns()) +
                        " unknowns");
  // Resolve the scatter policy before tuning. Pinned modes force the
  // strategy up front (the search then only walks that arm); kAuto
  // without a measuring search — autotune off, or a backend that
  // ignores launch shapes — falls back to the cost model's prediction.
  if (config.scatter == ScatterMode::kPrivatized)
    force_scatter_strategy(lsqr.aprod.tuning,
                           backends::ScatterStrategy::kPrivatized);
  else if (config.scatter == ScatterMode::kAuto &&
           (!config.autotune.enabled ||
            !backends::honors_kernel_config(lsqr.aprod.backend)))
    apply_model_preferred(gen_cfg, lsqr.aprod, lsqr.aprod.tuning);
  // Layout policy mirrors the scatter resolution: pinned modes force the
  // layout up front; kAuto without a measuring search falls back to the
  // cost model's crossover.
  if (config.storage_layout == LayoutMode::kSoa ||
      config.storage_layout == LayoutMode::kSliced)
    force_storage_layout(lsqr.aprod.tuning,
                         pinned_layout(config.storage_layout));
  else if (config.storage_layout == LayoutMode::kAuto &&
           (!config.autotune.enabled ||
            !backends::honors_kernel_config(lsqr.aprod.backend)))
    apply_model_preferred_layout(gen_cfg, lsqr.aprod.tuning);
  // Precision policy mirrors the layout resolution: pinned reduced modes
  // force the storage precision up front; kAuto without a measuring
  // search falls back to the cost model's bandwidth-vs-refinement
  // crossover.
  if (config.precision == PrecisionMode::kFp32 ||
      config.precision == PrecisionMode::kBf16s)
    force_precision(lsqr.aprod.tuning, pinned_precision(config.precision));
  else if (config.precision == PrecisionMode::kAuto &&
           (!config.autotune.enabled ||
            !backends::honors_kernel_config(lsqr.aprod.backend)))
    apply_model_preferred_precision(gen_cfg, lsqr.aprod.tuning);
  if (config.autotune.enabled) {
    board.set_phase(prank, "autotune");
    run_autotune(config, generated.A, lsqr, report);
    obs::flight_event("state", "solver.autotuned",
                      report.autotune_cache_hit
                          ? "cache hit"
                          : std::to_string(report.tuning_trials) + " trials");
  }
  report.tuning_used = lsqr.aprod.tuning;
  {
    // Tuning fingerprint: the resolved (shape, strategy, layout,
    // precision) per kernel — the first question a postmortem asks.
    std::ostringstream fp;
    bool first = true;
    for (backends::KernelId id : backends::all_kernels()) {
      const backends::KernelConfig cfg = lsqr.aprod.tuning.get(id);
      if (!first) fp << ' ';
      first = false;
      fp << backends::to_string(id) << '=' << cfg.blocks << 'x' << cfg.threads
         << '/' << backends::to_string(cfg.strategy) << '/'
         << backends::to_string(cfg.layout) << '/'
         << backends::to_string(cfg.precision);
    }
    obs::set_postmortem_context("tuning", fp.str());
  }

  board.set_phase(prank, "solve");
  watch.reset();
  resilience::CheckpointManager manager(config.checkpoint);
  if (!manager.enabled()) {
    report.result = lsqr_solve(generated.A, lsqr);
    run_refinement(config, generated.A, lsqr, report);
    report.solve_seconds = watch.elapsed_s();
    finish_observability(gen_cfg, lsqr, report);
    return report;
  }

  core::LsqrEngine engine(generated.A, lsqr);
  // Auto-resume: walk the rotation newest-first and take the first
  // checkpoint that passes both the CRC framing and the engine's
  // problem-fingerprint check; anything corrupt or stale is skipped
  // with a warning instead of failing the run.
  for (const auto& info : manager.list()) {
    try {
      std::istringstream payload(resilience::read_framed_file(info.path),
                                 std::ios::binary);
      engine.restore(payload);
      report.resumed_from_iteration = info.iteration;
      resilience::note_resilience_event("checkpoint.resumed", info.path);
      break;
    } catch (const Error& e) {
      std::cerr << "warning: skipping checkpoint " << info.path << ": "
                << e.what() << '\n';
      resilience::note_resilience_event("checkpoint.skipped", info.path);
    }
  }

  while (engine.step()) {
    if (manager.due(engine.iteration())) {
      std::ostringstream payload(std::ios::binary);
      engine.checkpoint(payload);
      manager.write(engine.iteration(), payload.view());
    }
  }
  report.result = engine.result();
  report.result.resumed_from_iteration = report.resumed_from_iteration;
  report.checkpoints_written = manager.written();
  run_refinement(config, generated.A, lsqr, report);
  report.solve_seconds = watch.elapsed_s();
  finish_observability(gen_cfg, lsqr, report);
  return report;
}

}  // namespace

SolverRunReport run_solver(const SolverRunConfig& config) {
  // Satellite fix (ISSUE 10): the exit-time snapshot used to be sealed
  // only on the normal path — this guard seals it while *unwinding*, so
  // an SdcError/failover-exhaustion abort still leaves the armed
  // snapshot on disk (the postmortem bundle links against it).
  struct UnwindSeal {
    ~UnwindSeal() {
      if (std::uncaught_exceptions() > 0) obs::flush_global_snapshot();
    }
  } unwind_seal;
  try {
    SolverRunReport report = run_solver_impl(config);
    obs::flight_event("state", "solver.done",
                      std::to_string(report.result.iterations) +
                          " iterations, stop: " +
                          to_string(report.result.istop));
    return report;
  } catch (const resilience::SdcError& e) {
    obs::flight_event("fault", "solver.sdc_unrepaired", e.what());
    obs::flush_postmortem({"sdc-unrepaired", e.what(),
                           obs::ProgressBoard::thread_rank(), 1});
    throw;
  } catch (const std::exception& e) {
    obs::flight_event("fault", "solver.exception", e.what());
    obs::flush_postmortem({"exception", e.what(),
                           obs::ProgressBoard::thread_rank(), 1});
    throw;
  }
}

std::string SolverRunReport::summary() const {
  std::ostringstream os;
  os << "system: " << n_obs << " observations + " << n_constraints
     << " constraints x " << layout.n_unknowns() << " unknowns ("
     << layout.n_stars() << " stars), footprint "
     << util::format_bytes(system_bytes) << '\n';
  os << "solve:  " << result.iterations << " iterations, stop: \""
     << to_string(result.istop) << "\"\n";
  if (autotune_enabled) {
    os << "tuning: ";
    if (autotune_cache_hit)
      os << "loaded " << kernels_tuned
         << " kernel shape(s) from cache (search skipped)";
    else if (tuning_trials > 0)
      os << "autotuned " << kernels_tuned << " kernel(s) in "
         << tuning_trials << " trial launch(es)";
    else
      os << "backend ignores launch shapes; nothing to tune";
    os << '\n';
  }
  os << "scatter:";
  for (backends::KernelId id : backends::all_kernels()) {
    if (!backends::kernel_uses_atomics(id)) continue;
    os << ' ' << backends::to_string(id) << '='
       << backends::to_string(tuning_used.get(id).strategy);
  }
  os << '\n';
  // Collapse the layout line when every kernel agrees (the common case:
  // a pinned mode); --layout=auto can split per kernel.
  bool uniform_layout = true;
  const backends::StorageLayout first_layout =
      tuning_used.get(backends::KernelId::kAprod1Astro).layout;
  for (backends::KernelId id : backends::all_kernels())
    uniform_layout &= tuning_used.get(id).layout == first_layout;
  os << "layout: ";
  if (uniform_layout) {
    os << backends::to_string(first_layout);
  } else {
    bool first = true;
    for (backends::KernelId id : backends::all_kernels()) {
      if (!first) os << ' ';
      first = false;
      os << backends::to_string(id) << '='
         << backends::to_string(tuning_used.get(id).layout);
    }
  }
  os << '\n';
  // Same collapse for the precision line; --precision=auto can split
  // per kernel too.
  bool uniform_precision = true;
  const backends::Precision first_precision =
      tuning_used.get(backends::KernelId::kAprod1Astro).precision;
  for (backends::KernelId id : backends::all_kernels())
    uniform_precision &= tuning_used.get(id).precision == first_precision;
  os << "precision: ";
  if (uniform_precision) {
    os << backends::to_string(first_precision);
  } else {
    bool first = true;
    for (backends::KernelId id : backends::all_kernels()) {
      if (!first) os << ' ';
      first = false;
      os << backends::to_string(id) << '='
         << backends::to_string(tuning_used.get(id).precision);
    }
  }
  os << '\n';
  if (refinement_ran) {
    os << "refine: " << refinement.corrections << " correction(s), "
       << (refinement.converged ? "converged" : "stalled")
       << "; true |r|=" << refinement.true_rnorm
       << " |A'r|=" << refinement.true_arnorm;
    if (precision_fell_back)
      os << "; fell back to fp64 (full re-solve)";
    os << '\n';
  }
  os << "        mean iteration time "
     << util::format_seconds(result.mean_iteration_s) << ", total solve "
     << util::format_seconds(solve_seconds) << '\n';
  os << "        estimates: |A|=" << result.anorm
     << " cond(A)=" << result.acond << " |r|=" << result.rnorm
     << " |A'r|=" << result.arnorm << " |x|=" << result.xnorm << '\n';
  if (pennycook_kernels > 0)
    os << "perf:   Pennycook P=" << pennycook_p << " over "
       << pennycook_kernels
       << " kernel(s) (model-predicted / measured p50, best-normalized)\n";
  if (!roofline.empty())
    os << metrics::roofline_table(roofline, roofline_machine);
  if (!metrics_snapshot_path.empty())
    os << "        metrics snapshot: " << metrics_snapshot_path << '\n';
  if (trace_dropped_events > 0)
    os << "        trace: " << trace_dropped_events
       << " event(s) dropped by the capacity cap (sliding window)\n";
  if (resumed_from_iteration >= 0 || checkpoints_written > 0 ||
      result.failovers > 0) {
    os << "resilience:";
    if (resumed_from_iteration >= 0)
      os << " resumed from iteration " << resumed_from_iteration << ",";
    if (checkpoints_written > 0)
      os << " wrote " << checkpoints_written << " checkpoint(s),";
    os << " finished on backend "
       << backends::to_string(result.final_backend);
    if (result.failovers > 0)
      os << " after " << result.failovers << " failover(s)";
    os << '\n';
  }
  if (result.health.mode != resilience::HealthMode::kOff) {
    os << "health: mode " << resilience::to_string(result.health.mode)
       << ", " << result.health.checks << " deep check(s), "
       << result.health.detections << " detection(s), "
       << result.health.repairs << " repair(s)";
    if (result.health.first_detection_iteration >= 0)
      os << "; first detection at iteration "
         << result.health.first_detection_iteration;
    os << '\n';
    if (!result.health.last_diagnosis.empty())
      os << "        last diagnosis: " << result.health.last_diagnosis
         << '\n';
  }
  return os.str();
}

}  // namespace gaia::core
