#include "core/solver.hpp"

#include <sstream>

#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"

namespace gaia::core {

SolverRunReport run_solver(const SolverRunConfig& config) {
  util::Stopwatch watch;

  matrix::GeneratorConfig gen_cfg =
      config.generator.has_value()
          ? *config.generator
          : matrix::config_for_footprint(config.footprint_bytes, config.seed);

  matrix::GeneratedSystem generated = matrix::generate_system(gen_cfg);
  SolverRunReport report;
  report.generation_seconds = watch.elapsed_s();
  report.layout = generated.A.layout();
  report.n_obs = generated.A.n_obs();
  report.n_constraints = generated.A.n_constraints();
  report.system_bytes = generated.A.footprint_bytes();

  watch.reset();
  report.result = lsqr_solve(generated.A, config.lsqr);
  report.solve_seconds = watch.elapsed_s();
  return report;
}

std::string SolverRunReport::summary() const {
  std::ostringstream os;
  os << "system: " << n_obs << " observations + " << n_constraints
     << " constraints x " << layout.n_unknowns() << " unknowns ("
     << layout.n_stars() << " stars), footprint "
     << util::format_bytes(system_bytes) << '\n';
  os << "solve:  " << result.iterations << " iterations, stop: \""
     << to_string(result.istop) << "\"\n";
  os << "        mean iteration time "
     << util::format_seconds(result.mean_iteration_s) << ", total solve "
     << util::format_seconds(solve_seconds) << '\n';
  os << "        estimates: |A|=" << result.anorm
     << " cond(A)=" << result.acond << " |r|=" << result.rnorm
     << " |A'r|=" << result.arnorm << " |x|=" << result.xnorm << '\n';
  return os.str();
}

}  // namespace gaia::core
