#include "core/solver.hpp"

#include <iostream>
#include <sstream>

#include "core/lsqr_engine.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"

namespace gaia::core {

SolverRunReport run_solver(const SolverRunConfig& config) {
  util::Stopwatch watch;

  matrix::GeneratorConfig gen_cfg =
      config.generator.has_value()
          ? *config.generator
          : matrix::config_for_footprint(config.footprint_bytes, config.seed);

  matrix::GeneratedSystem generated = matrix::generate_system(gen_cfg);
  SolverRunReport report;
  report.generation_seconds = watch.elapsed_s();
  report.layout = generated.A.layout();
  report.n_obs = generated.A.n_obs();
  report.n_constraints = generated.A.n_constraints();
  report.system_bytes = generated.A.footprint_bytes();

  watch.reset();
  resilience::CheckpointManager manager(config.checkpoint);
  if (!manager.enabled()) {
    report.result = lsqr_solve(generated.A, config.lsqr);
    report.solve_seconds = watch.elapsed_s();
    return report;
  }

  core::LsqrEngine engine(generated.A, config.lsqr);
  // Auto-resume: walk the rotation newest-first and take the first
  // checkpoint that passes both the CRC framing and the engine's
  // problem-fingerprint check; anything corrupt or stale is skipped
  // with a warning instead of failing the run.
  for (const auto& info : manager.list()) {
    try {
      std::istringstream payload(resilience::read_framed_file(info.path),
                                 std::ios::binary);
      engine.restore(payload);
      report.resumed_from_iteration = info.iteration;
      resilience::note_resilience_event("checkpoint.resumed", info.path);
      break;
    } catch (const Error& e) {
      std::cerr << "warning: skipping checkpoint " << info.path << ": "
                << e.what() << '\n';
      resilience::note_resilience_event("checkpoint.skipped", info.path);
    }
  }

  while (engine.step()) {
    if (manager.due(engine.iteration())) {
      std::ostringstream payload(std::ios::binary);
      engine.checkpoint(payload);
      manager.write(engine.iteration(), payload.view());
    }
  }
  report.result = engine.result();
  report.result.resumed_from_iteration = report.resumed_from_iteration;
  report.checkpoints_written = manager.written();
  report.solve_seconds = watch.elapsed_s();
  return report;
}

std::string SolverRunReport::summary() const {
  std::ostringstream os;
  os << "system: " << n_obs << " observations + " << n_constraints
     << " constraints x " << layout.n_unknowns() << " unknowns ("
     << layout.n_stars() << " stars), footprint "
     << util::format_bytes(system_bytes) << '\n';
  os << "solve:  " << result.iterations << " iterations, stop: \""
     << to_string(result.istop) << "\"\n";
  os << "        mean iteration time "
     << util::format_seconds(result.mean_iteration_s) << ", total solve "
     << util::format_seconds(solve_seconds) << '\n';
  os << "        estimates: |A|=" << result.anorm
     << " cond(A)=" << result.acond << " |r|=" << result.rnorm
     << " |A'r|=" << result.arnorm << " |x|=" << result.xnorm << '\n';
  if (resumed_from_iteration >= 0 || checkpoints_written > 0 ||
      result.failovers > 0) {
    os << "resilience:";
    if (resumed_from_iteration >= 0)
      os << " resumed from iteration " << resumed_from_iteration << ",";
    if (checkpoints_written > 0)
      os << " wrote " << checkpoints_written << " checkpoint(s),";
    os << " finished on backend "
       << backends::to_string(result.final_backend);
    if (result.failovers > 0)
      os << " after " << result.failovers << " failover(s)";
    os << '\n';
  }
  return os.str();
}

}  // namespace gaia::core
