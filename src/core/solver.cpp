#include "core/solver.hpp"

#include <iostream>
#include <sstream>

#include "core/autotune_driver.hpp"
#include "core/lsqr_engine.hpp"
#include "obs/metrics.hpp"
#include "tuning/tuning_cache.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"

namespace gaia::core {

namespace {

/// Resolves the launch shapes the solve will run with: a complete cache
/// entry for this (backend, shape bucket) skips the search outright;
/// otherwise a warm-up search runs on a scoped device (its residency is
/// released before the real solve allocates), and fresh winners are
/// sealed back to the cache file.
void run_autotune(const SolverRunConfig& config,
                  const matrix::SystemMatrix& A, LsqrOptions& lsqr,
                  SolverRunReport& report) {
  report.autotune_enabled = true;
  const backends::BackendKind backend = lsqr.aprod.backend;
  const tuning::ShapeBucket bucket =
      tuning::bucket_for(A.n_rows(), A.n_cols());

  tuning::TuningCache cache;
  auto& metrics = obs::MetricsRegistry::global();
  if (!config.autotune.cache_path.empty() &&
      cache.load(config.autotune.cache_path) &&
      cache.complete_for(backend, bucket)) {
    report.kernels_tuned = cache.apply(backend, bucket, lsqr.aprod.tuning);
    report.autotune_cache_hit = true;
    if (metrics.enabled()) metrics.counter("tuning.cache_hits").add(1);
    return;
  }
  if (metrics.enabled()) metrics.counter("tuning.cache_misses").add(1);
  if (!backends::honors_kernel_config(backend)) return;

  tuning::Autotuner tuner(backend, config.autotune.search);
  {
    backends::DeviceContext device(lsqr.device_capacity, "autotune");
    AprodOptions opts = lsqr.aprod;
    opts.autotuner = &tuner;
    Aprod aprod(A, device, opts);
    const AutotuneWarmupReport warm =
        autotune_warmup(aprod, tuner, config.autotune.max_warmup_rounds);
    lsqr.aprod.tuning = aprod.tuning();
    report.kernels_tuned = warm.kernels_tuned;
    report.tuning_trials = warm.trials;
  }
  if (!config.autotune.cache_path.empty()) {
    // Seal the *full* table for this key — including kernels the search
    // left at their prior shape — so the next run's complete_for() check
    // can skip the search without re-deriving anything.
    for (backends::KernelId id : backends::all_kernels())
      cache.put(backend, bucket, id, lsqr.aprod.tuning.get(id));
    cache.save(config.autotune.cache_path);
  }
}

}  // namespace

SolverRunReport run_solver(const SolverRunConfig& config) {
  util::Stopwatch watch;

  matrix::GeneratorConfig gen_cfg =
      config.generator.has_value()
          ? *config.generator
          : matrix::config_for_footprint(config.footprint_bytes, config.seed);

  matrix::GeneratedSystem generated = matrix::generate_system(gen_cfg);
  SolverRunReport report;
  report.generation_seconds = watch.elapsed_s();
  report.layout = generated.A.layout();
  report.n_obs = generated.A.n_obs();
  report.n_constraints = generated.A.n_constraints();
  report.system_bytes = generated.A.footprint_bytes();

  LsqrOptions lsqr = config.lsqr;
  if (config.autotune.enabled) run_autotune(config, generated.A, lsqr, report);
  report.tuning_used = lsqr.aprod.tuning;

  watch.reset();
  resilience::CheckpointManager manager(config.checkpoint);
  if (!manager.enabled()) {
    report.result = lsqr_solve(generated.A, lsqr);
    report.solve_seconds = watch.elapsed_s();
    return report;
  }

  core::LsqrEngine engine(generated.A, lsqr);
  // Auto-resume: walk the rotation newest-first and take the first
  // checkpoint that passes both the CRC framing and the engine's
  // problem-fingerprint check; anything corrupt or stale is skipped
  // with a warning instead of failing the run.
  for (const auto& info : manager.list()) {
    try {
      std::istringstream payload(resilience::read_framed_file(info.path),
                                 std::ios::binary);
      engine.restore(payload);
      report.resumed_from_iteration = info.iteration;
      resilience::note_resilience_event("checkpoint.resumed", info.path);
      break;
    } catch (const Error& e) {
      std::cerr << "warning: skipping checkpoint " << info.path << ": "
                << e.what() << '\n';
      resilience::note_resilience_event("checkpoint.skipped", info.path);
    }
  }

  while (engine.step()) {
    if (manager.due(engine.iteration())) {
      std::ostringstream payload(std::ios::binary);
      engine.checkpoint(payload);
      manager.write(engine.iteration(), payload.view());
    }
  }
  report.result = engine.result();
  report.result.resumed_from_iteration = report.resumed_from_iteration;
  report.checkpoints_written = manager.written();
  report.solve_seconds = watch.elapsed_s();
  return report;
}

std::string SolverRunReport::summary() const {
  std::ostringstream os;
  os << "system: " << n_obs << " observations + " << n_constraints
     << " constraints x " << layout.n_unknowns() << " unknowns ("
     << layout.n_stars() << " stars), footprint "
     << util::format_bytes(system_bytes) << '\n';
  os << "solve:  " << result.iterations << " iterations, stop: \""
     << to_string(result.istop) << "\"\n";
  if (autotune_enabled) {
    os << "tuning: ";
    if (autotune_cache_hit)
      os << "loaded " << kernels_tuned
         << " kernel shape(s) from cache (search skipped)";
    else if (tuning_trials > 0)
      os << "autotuned " << kernels_tuned << " kernel(s) in "
         << tuning_trials << " trial launch(es)";
    else
      os << "backend ignores launch shapes; nothing to tune";
    os << '\n';
  }
  os << "        mean iteration time "
     << util::format_seconds(result.mean_iteration_s) << ", total solve "
     << util::format_seconds(solve_seconds) << '\n';
  os << "        estimates: |A|=" << result.anorm
     << " cond(A)=" << result.acond << " |r|=" << result.rnorm
     << " |A'r|=" << result.arnorm << " |x|=" << result.xnorm << '\n';
  if (resumed_from_iteration >= 0 || checkpoints_written > 0 ||
      result.failovers > 0) {
    os << "resilience:";
    if (resumed_from_iteration >= 0)
      os << " resumed from iteration " << resumed_from_iteration << ",";
    if (checkpoints_written > 0)
      os << " wrote " << checkpoints_written << " checkpoint(s),";
    os << " finished on backend "
       << backends::to_string(result.final_backend);
    if (result.failovers > 0)
      os << " after " << result.failovers << " failover(s)";
    os << '\n';
  }
  return os.str();
}

}  // namespace gaia::core
