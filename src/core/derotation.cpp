#include "core/derotation.hpp"

#include <array>
#include <functional>
#include <utility>
#include <cmath>

#include "util/error.hpp"

namespace gaia::core {

namespace {

/// Design rows of the infinitesimal-rotation model at a star:
/// row_a . eps = d(alpha*), row_d . eps = d(delta).
void design_rows(const matrix::Star& s, std::array<real, 3>& row_a,
                 std::array<real, 3>& row_d) {
  const real ca = std::cos(s.alpha), sa = std::sin(s.alpha);
  const real cd = std::cos(s.delta), sd = std::sin(s.delta);
  row_a = {-ca * sd, -sa * sd, cd};
  row_d = {sa, -ca, 0};
}

/// Solves the 3x3 SPD system N v = g (tiny Cholesky); throws if the
/// reference geometry is degenerate.
std::array<real, 3> solve3(std::array<std::array<real, 3>, 3> N,
                           std::array<real, 3> g) {
  std::array<std::array<real, 3>, 3> L{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j <= i; ++j) {
      real sum = N[i][j];
      for (int k = 0; k < j; ++k) sum -= L[i][k] * L[j][k];
      if (i == j) {
        GAIA_CHECK(sum > 1e-12,
                   "degenerate reference-star geometry: rotation not "
                   "observable");
        L[i][i] = std::sqrt(sum);
      } else {
        L[i][j] = sum / L[j][j];
      }
    }
  }
  std::array<real, 3> y{};
  for (int i = 0; i < 3; ++i) {
    real sum = g[i];
    for (int k = 0; k < i; ++k) sum -= L[i][k] * y[k];
    y[i] = sum / L[i][i];
  }
  std::array<real, 3> v{};
  for (int i = 2; i >= 0; --i) {
    real sum = y[i];
    for (int k = i + 1; k < 3; ++k) sum -= L[k][i] * v[k];
    v[i] = sum / L[i][i];
  }
  return v;
}

/// Accumulate one (rows, observations) pair into normal equations.
void accumulate(const std::array<real, 3>& row, real obs,
                std::array<std::array<real, 3>, 3>& N,
                std::array<real, 3>& g) {
  for (int i = 0; i < 3; ++i) {
    g[i] += row[i] * obs;
    for (int j = 0; j < 3; ++j) N[i][j] += row[i] * row[j];
  }
}

/// Least-squares 3-vector from per-star (d_alpha*, d_delta) observations.
std::array<real, 3> fit_vector(
    std::span<const matrix::Star> catalogue,
    std::span<const row_index> reference_stars,
    const std::function<std::pair<real, real>(row_index)>& observed) {
  std::array<std::array<real, 3>, 3> N{};
  std::array<real, 3> g{};
  for (row_index s : reference_stars) {
    const matrix::Star& star = catalogue[static_cast<std::size_t>(s)];
    std::array<real, 3> row_a{}, row_d{};
    design_rows(star, row_a, row_d);
    const auto [da, dd] = observed(s);
    accumulate(row_a, da, N, g);
    accumulate(row_d, dd, N, g);
  }
  return solve3(N, g);
}

}  // namespace

RotationOffsets rotation_offsets(const FrameRotation& rot,
                                 const matrix::Star& star) {
  std::array<real, 3> row_a{}, row_d{};
  design_rows(star, row_a, row_d);
  RotationOffsets off;
  off.dalpha_star = row_a[0] * rot.ex + row_a[1] * rot.ey + row_a[2] * rot.ez;
  off.ddelta = row_d[0] * rot.ex + row_d[1] * rot.ey + row_d[2] * rot.ez;
  return off;
}

void apply_rotation(std::span<real> x, const matrix::ParameterLayout& layout,
                    std::span<const matrix::Star> catalogue,
                    const FrameRotation& rot) {
  GAIA_CHECK(static_cast<col_index>(x.size()) == layout.n_unknowns(),
             "solution size mismatch");
  GAIA_CHECK(static_cast<row_index>(catalogue.size()) == layout.n_stars(),
             "catalogue size mismatch");
  const FrameRotation spin{rot.wx, rot.wy, rot.wz, 0, 0, 0};
  for (row_index s = 0; s < layout.n_stars(); ++s) {
    const auto base = static_cast<std::size_t>(s) * kAstroParamsPerStar;
    const matrix::Star& star = catalogue[static_cast<std::size_t>(s)];
    const RotationOffsets pos = rotation_offsets(rot, star);
    const RotationOffsets pm = rotation_offsets(spin, star);
    x[base + 0] += pos.dalpha_star;
    x[base + 1] += pos.ddelta;
    x[base + 3] += pm.dalpha_star;  // mu_alpha*
    x[base + 4] += pm.ddelta;       // mu_delta
  }
}

FrameRotation estimate_rotation(std::span<const real> x,
                                const matrix::ParameterLayout& layout,
                                std::span<const matrix::Star> catalogue,
                                std::span<const row_index> reference_stars) {
  GAIA_CHECK(static_cast<col_index>(x.size()) == layout.n_unknowns(),
             "solution size mismatch");
  GAIA_CHECK(static_cast<row_index>(catalogue.size()) == layout.n_stars(),
             "catalogue size mismatch");
  GAIA_CHECK(reference_stars.size() >= 3,
             "need at least 3 reference stars");
  for (row_index s : reference_stars)
    GAIA_CHECK(s >= 0 && s < layout.n_stars(),
               "reference star index out of range");

  const auto pos_obs = [&](row_index s) {
    const auto base = static_cast<std::size_t>(s) * kAstroParamsPerStar;
    return std::pair<real, real>(x[base + 0], x[base + 1]);
  };
  const auto pm_obs = [&](row_index s) {
    const auto base = static_cast<std::size_t>(s) * kAstroParamsPerStar;
    return std::pair<real, real>(x[base + 3], x[base + 4]);
  };

  const auto eps = fit_vector(catalogue, reference_stars, pos_obs);
  const auto omega = fit_vector(catalogue, reference_stars, pm_obs);
  return {eps[0], eps[1], eps[2], omega[0], omega[1], omega[2]};
}

FrameRotation derotate_solution(std::span<real> x,
                                const matrix::ParameterLayout& layout,
                                std::span<const matrix::Star> catalogue,
                                std::span<const row_index> reference_stars) {
  const FrameRotation rot =
      estimate_rotation(x, layout, catalogue, reference_stars);
  const FrameRotation inverse{-rot.ex, -rot.ey, -rot.ez,
                              -rot.wx, -rot.wy, -rot.wz};
  apply_rotation(x, layout, catalogue, inverse);
  return rot;
}

}  // namespace gaia::core
