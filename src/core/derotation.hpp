/// \file derotation.hpp
/// \brief Solution de-rotation — the pipeline stage after the solver
/// (paper Fig. 1).
///
/// The global sphere reconstruction determines star positions only up to
/// a rigid rotation (and its time derivative, a spin) of the celestial
/// frame: adding the same infinitesimal rotation to every position is
/// invisible to relative measurements. The pipeline removes this
/// indeterminacy by fitting the rotation against a subset of reference
/// stars (quasars / stars with VLBI positions) and subtracting it.
///
/// For an infinitesimal rotation vector eps = (ex, ey, ez), the induced
/// position offsets are the classic frame-rotation formulae:
///
///   d(alpha*) = -ex cos(alpha) sin(delta) - ey sin(alpha) sin(delta)
///               + ez cos(delta)
///   d(delta)  =  ex sin(alpha) - ey cos(alpha)
///
/// (alpha* = alpha cos(delta)). The same applies to proper motions with
/// the spin vector omega. This module estimates (eps, omega) by linear
/// least squares over the reference stars and removes them from the full
/// solution.
#pragma once

#include <span>
#include <vector>

#include "matrix/layout.hpp"
#include "matrix/scanlaw.hpp"
#include "util/types.hpp"

namespace gaia::core {

/// Rigid frame rotation (positions) and spin (proper motions).
struct FrameRotation {
  real ex = 0, ey = 0, ez = 0;     ///< rotation (rad)
  real wx = 0, wy = 0, wz = 0;     ///< spin (rad / yr)
};

/// Position offsets (d_alpha*, d_delta) a rotation induces at a star.
struct RotationOffsets {
  real dalpha_star = 0;
  real ddelta = 0;
};
RotationOffsets rotation_offsets(const FrameRotation& rot,
                                 const matrix::Star& star);

/// Applies a rotation/spin to the astrometric section of a solution
/// vector in place (adds the induced offsets). Inverse of de-rotation;
/// used to inject known rotations in tests and pipelines.
void apply_rotation(std::span<real> x, const matrix::ParameterLayout& layout,
                    std::span<const matrix::Star> catalogue,
                    const FrameRotation& rot);

/// Estimates the rigid rotation and spin carried by a solution, from the
/// reference stars listed by index. Requires >= 3 well-spread reference
/// stars (throws otherwise); the fit is plain linear least squares on
/// the 2 equations per star.
FrameRotation estimate_rotation(std::span<const real> x,
                                const matrix::ParameterLayout& layout,
                                std::span<const matrix::Star> catalogue,
                                std::span<const row_index> reference_stars);

/// Estimate + subtract: returns the rotation that was removed.
FrameRotation derotate_solution(std::span<real> x,
                                const matrix::ParameterLayout& layout,
                                std::span<const matrix::Star> catalogue,
                                std::span<const row_index> reference_stars);

}  // namespace gaia::core
