#include "core/refinement.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gaia::core {

namespace {

real norm2(std::span<const real> v) {
  real sum = 0;
  for (real e : v) sum += e * e;
  return std::sqrt(sum);
}

real norm_inf(std::span<const real> v) {
  real m = 0;
  for (real e : v) m = std::max(m, std::abs(e));
  return m;
}

/// Every kernel pinned to fp64 storage, shapes/strategies/layouts kept —
/// the residual passes should run the production-tuned bodies, just at
/// full precision.
backends::TuningTable fp64_table(backends::TuningTable table) {
  for (backends::KernelId id : backends::all_kernels()) {
    backends::KernelConfig cfg = table.get(id);
    cfg.precision = backends::Precision::kFp64;
    table.set(id, cfg);
  }
  return table;
}

void note_refinement(const RefinementReport& report) {
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("refine.corrections").add(
        static_cast<std::uint64_t>(report.corrections));
    if (!report.converged) reg.counter("refine.stalls").add(1);
    reg.gauge("refine.true_rnorm").set(report.true_rnorm);
    reg.gauge("refine.true_arnorm").set(report.true_arnorm);
  }
}

}  // namespace

TrueResidual true_residual(Aprod& aprod, std::span<const real> b,
                           std::span<const real> x, std::span<real> r) {
  obs::ScopedTrace span("refine_residual", "refine");
  // r = b - A x. apply1 accumulates (y += A x), so start from zero and
  // subtract from b afterwards — one pass, no extra vector.
  std::fill(r.begin(), r.end(), real{0});
  aprod.apply1(x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  TrueResidual res;
  res.rnorm = norm2(r);
  // ||A^T r|| via apply2 into a scratch gradient vector.
  std::vector<real> g(static_cast<std::size_t>(aprod.n_cols()), real{0});
  aprod.apply2(r, g);
  res.arnorm = norm2(g);
  return res;
}

RefinementReport refine_corrections(const matrix::SystemMatrix& A,
                                    std::span<const real> b,
                                    std::vector<real>& x,
                                    const LsqrOptions& reduced,
                                    const RefinementOptions& options) {
  RefinementReport report;
  obs::ScopedTrace span("refine", "refine");

  // FP64 residual driver: same backend and tuned shapes as the solve,
  // precision clamped to the seed planes. No autotuner — the shapes are
  // already resolved — and no streams races to worry about: apply1 and
  // apply2 are called back to back on this thread.
  backends::DeviceContext device(reduced.device_capacity, "refine");
  AprodOptions residual_opts = reduced.aprod;
  residual_opts.autotuner = nullptr;
  residual_opts.tuning = fp64_table(reduced.aprod.tuning);
  Aprod aprod(A, device, residual_opts);

  // Correction solves reuse the reduced configuration (same precision,
  // layout, strategy winners) but never checkpoint/monitor — they are
  // short inner solves against a small right-hand side.
  LsqrOptions correction = reduced;
  correction.aprod.autotuner = nullptr;
  correction.compute_std_errors = false;
  correction.record_history = false;
  if (options.correction_iterations > 0)
    correction.max_iterations = options.correction_iterations;

  std::vector<real> r(b.size());
  TrueResidual res = true_residual(aprod, b, x, r);
  report.true_rnorm = res.rnorm;
  report.true_arnorm = res.arnorm;
  // Nothing verified yet: a zero correction budget reports a stall so
  // the caller's fp64 fallback engages instead of trusting the
  // unrefined reduced-precision solution.
  report.converged = false;

  for (int k = 0; k < options.max_corrections; ++k) {
    // d = argmin ||A~ d - r|| in reduced precision, then x += d.
    const LsqrResult corr = lsqr_solve(A, r, correction);
    const real update = norm_inf(corr.x);
    report.update_norms.push_back(update);
    report.corrections++;
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += corr.x[i];
    res = true_residual(aprod, b, x, r);
    report.true_rnorm = res.rnorm;
    report.true_arnorm = res.arnorm;
    if (update <= options.tolerance) {
      report.converged = true;
      note_refinement(report);
      return report;
    }
    report.converged = false;
  }
  note_refinement(report);
  return report;
}

}  // namespace gaia::core
