#include "core/preconditioner.hpp"

#include <cmath>

namespace gaia::core {

using matrix::kAstroCoeffOffset;
using matrix::kAttCoeffOffset;
using matrix::kGlobCoeffOffset;
using matrix::kInstrCoeffOffset;

namespace {

/// Visits every (column, coefficient reference) pair of a row.
template <typename F>
void for_each_entry(matrix::SystemMatrix& A, F&& f) {
  const matrix::ParameterLayout& lay = A.layout();
  auto vals = A.values();
  const auto ia = A.matrix_index_astro();
  const auto it = A.matrix_index_att();
  const auto ic = A.instr_col();
  for (row_index r = 0; r < A.n_rows(); ++r) {
    const auto ri = static_cast<std::size_t>(r);
    real* rv = vals.data() + ri * kNnzPerRow;
    for (int i = 0; i < kAstroNnzPerRow; ++i)
      f(ia[ri] + i, rv[kAstroCoeffOffset + i]);
    for (int blk = 0; blk < kAttBlocks; ++blk)
      for (int i = 0; i < kAttBlockSize; ++i)
        f(lay.att_offset() + it[ri] + blk * lay.att_stride() + i,
          rv[kAttCoeffOffset + blk * kAttBlockSize + i]);
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      f(lay.instr_offset() + ic[ri * kInstrNnzPerRow + i],
        rv[kInstrCoeffOffset + i]);
    if (lay.has_global()) f(lay.glob_offset(), rv[kGlobCoeffOffset]);
  }
}

}  // namespace

std::vector<real> column_norms(const matrix::SystemMatrix& A) {
  std::vector<real> norms(static_cast<std::size_t>(A.n_cols()), real{0});
  // const_cast is safe: the visitor only reads when f takes by value; we
  // keep one mutable visitor to avoid duplicating the traversal.
  auto& mutable_A = const_cast<matrix::SystemMatrix&>(A);
  for_each_entry(mutable_A, [&](col_index c, real& v) {
    norms[static_cast<std::size_t>(c)] += v * v;
  });
  for (auto& n : norms) n = n > real{0} ? std::sqrt(n) : real{1};
  return norms;
}

void apply_column_scaling(matrix::SystemMatrix& A,
                          std::span<const real> norms) {
  GAIA_CHECK(static_cast<col_index>(norms.size()) == A.n_cols(),
             "column-norm vector size mismatch");
  for_each_entry(A, [&](col_index c, real& v) {
    v /= norms[static_cast<std::size_t>(c)];
  });
}

void unscale_solution(std::span<real> x, std::span<const real> norms) {
  GAIA_CHECK(x.size() == norms.size(), "unscale size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] /= norms[i];
}

}  // namespace gaia::core
