/// \file autotune_driver.hpp
/// \brief Warm-up orchestration of the online launch-shape search.
///
/// The Autotuner itself is passive — it only proposes and scores shapes
/// when the Aprod driver launches kernels. This driver supplies the
/// launches: warm-up rounds of the exact aprod1/aprod2 sequence an LSQR
/// iteration performs, over zero-valued vectors (y += A·0 and x += Aᵀ·0
/// leave every vector untouched, so warm-up has no numerical effect on
/// the solve that follows). Used by run_solver and the dist solver's
/// rank 0 before the iteration loop starts.
#pragma once

#include <cstdint>

#include "core/aprod.hpp"

namespace gaia::tuning {
class Autotuner;
}

namespace gaia::core {

struct AutotuneWarmupReport {
  /// Warm-up apply1+apply2 rounds executed.
  int rounds = 0;
  /// Kernels whose search closed with a measured winner.
  int kernels_tuned = 0;
  /// Timed trial launches consumed across all kernels.
  std::uint64_t trials = 0;
};

/// Runs warm-up rounds through `aprod` (which must have `tuner` attached
/// via AprodOptions::autotuner) until every kernel's search closes or
/// `max_rounds` is exhausted, then closes any stragglers and installs
/// all measured winners into the aprod's live TuningTable.
AutotuneWarmupReport autotune_warmup(Aprod& aprod, tuning::Autotuner& tuner,
                                     int max_rounds = 256);

}  // namespace gaia::core
