#include "core/lsqr.hpp"

#include "core/lsqr_engine.hpp"

namespace gaia::core {

std::string to_string(LsqrStop stop) {
  switch (stop) {
    case LsqrStop::kXZero:
      return "x = 0 is the exact solution";
    case LsqrStop::kAtolBtol:
      return "Ax = b solved to atol/btol";
    case LsqrStop::kLeastSquares:
      return "least-squares solution within atol";
    case LsqrStop::kConlim:
      return "cond(A) exceeds conlim";
    case LsqrStop::kAtolBtolEps:
      return "Ax = b solved to machine precision";
    case LsqrStop::kLeastSquaresEps:
      return "least-squares solution at machine precision";
    case LsqrStop::kConlimEps:
      return "cond(A) too large for machine precision";
    case LsqrStop::kIterationLimit:
      return "iteration limit reached";
    case LsqrStop::kNonFinite:
      return "non-finite residual estimate — solve is poisoned";
    case LsqrStop::kSdcDetected:
      return "silent data corruption detected";
  }
  return "unknown";
}

LsqrResult lsqr_solve(const matrix::SystemMatrix& A,
                      const LsqrOptions& options) {
  return lsqr_solve(A, A.known_terms(), options);
}

LsqrResult lsqr_solve(const matrix::SystemMatrix& A,
                      std::span<const real> b, const LsqrOptions& options) {
  LsqrEngine engine(A, b, options);
  engine.run_to_completion();
  return engine.result();
}

}  // namespace gaia::core
