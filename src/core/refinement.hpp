/// \file refinement.hpp
/// \brief Outer iterative refinement for mixed-precision LSQR solves.
///
/// Reduced-precision coefficient storage (matrix/precision.hpp) solves a
/// *nearby* system: storing A's entries in fp32/bf16s is a relative
/// perturbation of A bounded by the storage format's unit roundoff, and
/// LSQR then converges to the perturbed system's least-squares solution.
/// Classical iterative refinement recovers the full-precision answer
/// without giving back the bandwidth win: keep solving in reduced
/// precision, but measure the residual in FP64 and solve for the
/// *correction*:
///
///   x_0 = argmin ||A~ x - b||          (A~ = reduced-precision planes)
///   repeat: r_k = b - A x_k            (FP64 kernels, FP64 vectors)
///           d_k = argmin ||A~ d - r_k||  (reduced precision again)
///           x_{k+1} = x_k + d_k
///   until ||d_k||_inf <= tolerance or the correction budget runs out.
///
/// The stopping tolerance defaults to the paper's §V-C accuracy goal
/// (10 µas in rad, util::kAccuracyGoalRad): a correction smaller than
/// the catalogue's own accuracy target cannot change any published
/// parameter. If the budget runs out without convergence — bf16s on an
/// ill-conditioned block can stall — the caller is told via the report
/// and (by default) re-solves fully in FP64: reduced precision degrades
/// to full precision, never to a wrong catalogue.
///
/// Residual passes run through the same Aprod drivers as the solve, with
/// every kernel pinned to Precision::kFp64 — the FP64 planes are the
/// seed arrays themselves, so the refinement loop adds no storage.
#pragma once

#include <span>
#include <vector>

#include "core/lsqr.hpp"
#include "matrix/system_matrix.hpp"
#include "util/types.hpp"

namespace gaia::core {

struct RefinementOptions {
  /// Outer corrections attempted before declaring non-convergence.
  int max_corrections = 6;
  /// Converged when the FP64 correction's max-norm drops to or below
  /// this (radians — the §V-C catalogue accuracy goal by default).
  real tolerance = kAccuracyGoalRad;
  /// Iteration cap of each correction solve; 0 inherits the main
  /// solve's max_iterations. Corrections start from d = 0 against a
  /// small residual, so they typically need far fewer iterations.
  std::int64_t correction_iterations = 0;
};

struct RefinementReport {
  /// Corrections actually applied (0 = first residual already met the
  /// tolerance, or refinement never ran).
  int corrections = 0;
  /// The last correction met the tolerance (vacuously true when the
  /// initial solve did).
  bool converged = true;
  /// Max-norm of each applied correction, in application order — the
  /// convergence trace behind the EXPERIMENTS refinement table.
  std::vector<real> update_norms;
  /// FP64 true residual norms after the final correction:
  /// ||b - A x|| and ||A^T (b - A x)|| computed with full-precision
  /// kernels — the numbers the validation gate trusts, as opposed to
  /// LSQR's incremental estimates which track the *reduced* system.
  real true_rnorm = 0;
  real true_arnorm = 0;
};

/// FP64 true residual of `x`: fills `r` with b - A x and returns
/// {||r||, ||A^T r||}, all products through `aprod` (whose tuning must
/// be pinned to Precision::kFp64 for the values to mean anything).
struct TrueResidual {
  real rnorm = 0;
  real arnorm = 0;
};
[[nodiscard]] TrueResidual true_residual(Aprod& aprod,
                                         std::span<const real> b,
                                         std::span<const real> x,
                                         std::span<real> r);

/// Runs the refinement loop on a completed reduced-precision solution:
/// `x` is corrected in place, `reduced` is the configuration the initial
/// solve ran with (its tuning table carries the reduced precision the
/// correction solves reuse). Returns the report; inspect `converged` to
/// decide whether a full-FP64 fallback re-solve is needed. The damped
/// problem (reduced.damp != 0) refines the undamped residual — damping
/// regularizes the correction solves exactly like the main solve, so the
/// fixed point is unchanged.
[[nodiscard]] RefinementReport refine_corrections(
    const matrix::SystemMatrix& A, std::span<const real> b,
    std::vector<real>& x, const LsqrOptions& reduced,
    const RefinementOptions& options);

}  // namespace gaia::core
