/// \file aprod.hpp
/// \brief Runtime driver for the aprod products: backend selection,
/// device residency, kernel tuning, stream overlap.
///
/// Owns the device-resident copy of the system (made once, at
/// construction — the "matrices are copied to the GPU before the main
/// loop and remain there until the end" contract of paper SIV-a) and the
/// four streams used to overlap the aprod2 scatter kernels.
///
/// Every kernel launch — normal, failover re-dispatch, and autotuner
/// trial — goes through one path (`launch_kernel`) that dispatches via
/// `tuning::KernelRegistry`. When an `Autotuner` is attached, launches
/// of kernels still under search run the tuner's candidate shape, are
/// timed, and feed the measurement back; the winner is installed into
/// the live TuningTable the moment a kernel's search closes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "backends/atomic.hpp"
#include "backends/backend.hpp"
#include "backends/device_buffer.hpp"
#include "backends/kernel_config.hpp"
#include "backends/scratch_arena.hpp"
#include "backends/stream.hpp"
#include "core/system_view.hpp"
#include "matrix/layouted_system.hpp"
#include "matrix/system_matrix.hpp"
#include "util/backoff.hpp"

namespace gaia::tuning {
class Autotuner;
}

namespace gaia::core {

/// How the driver executes kernels.
struct AprodOptions {
  backends::BackendKind backend = backends::BackendKind::kGpuSim;
  backends::TuningTable tuning = backends::TuningTable::tuned_default();
  backends::AtomicMode atomic_mode = backends::AtomicMode::kNativeRmw;
  /// Overlap the four aprod2 kernels in streams (safe: they scatter into
  /// disjoint sections of x). The serial reference runs without streams
  /// to stay deterministic.
  bool use_streams = true;
  /// Fuse the attitude/instrumental/global scatters into one row-pass —
  /// the shape a real C++ PSTL port takes (stdpar has no streams, and
  /// fusing reads each row record once). Overrides use_streams for
  /// aprod2.
  bool fuse_aprod2 = false;
  backends::CoherenceMode coherence = backends::CoherenceMode::kCoarseGrain;
  /// Retry budget for transient kernel-launch faults (injected via
  /// GAIA_FAULTS or real): bounded exponential backoff per launch.
  util::BackoffPolicy retry{};
  /// When a launch fault survives the retry budget, step down the
  /// degradation chain (gpusim -> openmp -> serial) for the remainder
  /// of the run instead of aborting.
  bool failover = true;
  /// Online launch-shape search: when set (and its backend matches the
  /// active one), kernels still under search launch trial shapes and
  /// report their timings. Not owned; must outlive the Aprod.
  tuning::Autotuner* autotuner = nullptr;
};

class Aprod {
 public:
  /// Copies the system onto `device` (throws if it does not fit) and
  /// keeps it resident for the driver's lifetime.
  Aprod(const matrix::SystemMatrix& A, backends::DeviceContext& device,
        AprodOptions options);
  ~Aprod();

  Aprod(const Aprod&) = delete;
  Aprod& operator=(const Aprod&) = delete;

  [[nodiscard]] const AprodOptions& options() const { return options_; }
  [[nodiscard]] const SystemView& view() const { return view_; }
  [[nodiscard]] row_index n_rows() const { return view_.n_rows; }
  [[nodiscard]] col_index n_cols() const { return view_.n_cols; }

  /// Live launch shapes (updated by the autotuner as searches close).
  [[nodiscard]] const backends::TuningTable& tuning() const {
    return options_.tuning;
  }
  void set_tuning(const backends::TuningTable& table) {
    options_.tuning = table;
  }

  /// Backend currently executing kernels. Equals options().backend until
  /// a persistent launch fault triggers failover down the chain.
  [[nodiscard]] backends::BackendKind active_backend() const {
    return active_backend_.load(std::memory_order_relaxed);
  }
  /// Failover steps taken so far (0 on a healthy run).
  [[nodiscard]] std::uint64_t failovers() const {
    return failover_count_.load(std::memory_order_relaxed);
  }

  /// aprod mode 1: y += A x. x has n_cols elements, y has n_rows.
  void apply1(std::span<const real> x, std::span<real> y);

  /// aprod mode 2: x += A^T y. y has n_rows elements, x has n_cols.
  void apply2(std::span<const real> y, std::span<real> x);

  /// Kernel launches issued so far (8 per apply pair unless the global
  /// block is disabled) — lets tests pin the stream/launch structure.
  [[nodiscard]] std::uint64_t launches() const { return launches_; }

  /// Scratch pool backing this driver's privatized scatters. Exposed so
  /// tests can assert the allocator-silent-after-warm-up contract (the
  /// miss counter stops moving after the first iteration).
  [[nodiscard]] backends::ScratchArena& scratch_arena() {
    return scratch_arena_;
  }

  /// Builds and uploads the derived arrays `layout` needs and attaches
  /// them to the view (idempotent; kSeedAos is a no-op). Called lazily
  /// by the launch path the first time a config carries the layout, so
  /// seed-pinned runs allocate nothing; callable eagerly to move the
  /// build cost out of the first timed iteration.
  void ensure_layout(backends::StorageLayout layout);

  /// Down-converts the coefficient planes of every currently-built
  /// layout to `precision`, uploads the converted streams, and attaches
  /// them to the view (idempotent; kFp64 is a no-op — the seed arrays
  /// *are* the fp64 planes). Like ensure_layout this is called lazily by
  /// the launch path, so fp64-pinned runs convert and allocate nothing.
  /// Call it again after ensure_layout() of a new layout to convert that
  /// layout's streams too.
  void ensure_precision(backends::Precision precision);

 private:
  /// The single launch path: resolves the shape (tuner candidate or
  /// installed table), dispatches through the KernelRegistry under the
  /// retry budget with fault injection, and on a persistent fault fails
  /// over to the next backend in the chain (atomically, first thread
  /// wins) and re-dispatches — through the same registry. `fused` routes
  /// to the fused aprod2 scatter, which shares `id`'s (= kAprod2Att's)
  /// tuning and fault identity but is traced under its own name.
  /// `track` is the trace-timeline lane: 0 for the calling thread,
  /// Stream::id() when the kernel was enqueued on a stream.
  void launch_kernel(backends::KernelId id, bool fused, const real* in,
                     real* out, std::int32_t track);

  /// True while trial launches may still happen on the active backend —
  /// apply2 then keeps kernels on the calling thread (no stream overlap)
  /// so trial timings measure one kernel, not four.
  [[nodiscard]] bool tuning_in_progress() const;

  AprodOptions options_;
  std::atomic<backends::BackendKind> active_backend_;
  std::atomic<std::uint64_t> failover_count_{0};
  /// Source matrix (not owned; outlives the driver — it backs the
  /// derived-layout builds, which are lazy).
  const matrix::SystemMatrix* matrix_;
  backends::DeviceContext* device_;
  backends::DeviceBuffer<real> d_values_;
  backends::DeviceBuffer<col_index> d_idx_astro_;
  backends::DeviceBuffer<col_index> d_idx_att_;
  backends::DeviceBuffer<std::int32_t> d_instr_col_;
  backends::DeviceBuffer<row_index> d_star_row_start_;
  SystemView view_{};
  /// Lazily-built derived layouts + their device-resident copies.
  /// Guarded by layout_mutex_ (stream threads may race to build); the
  /// view's descriptor pointers are only ever written under the mutex,
  /// and a launch needing them re-checks has_layout() under it too.
  std::mutex layout_mutex_;
  std::unique_ptr<matrix::LayoutedSystem> layouts_;
  std::unique_ptr<backends::DeviceBuffer<real>> d_soa_astro_;
  std::unique_ptr<backends::DeviceBuffer<real>> d_soa_att_;
  std::unique_ptr<backends::DeviceBuffer<real>> d_soa_instr_;
  std::unique_ptr<backends::DeviceBuffer<real>> d_soa_glob_;
  std::unique_ptr<backends::DeviceBuffer<real>> d_slice_values_;
  std::unique_ptr<backends::DeviceBuffer<std::int32_t>> d_slice_cols_;
  std::unique_ptr<backends::DeviceBuffer<row_index>> d_slice_rows_;
  std::unique_ptr<backends::DeviceBuffer<row_index>> d_slice_row_slot_;
  /// Device-resident reduced-precision coefficient planes, one bundle
  /// per storage scalar (indices stay shared with the fp64 buffers
  /// above). Uploaded stream-by-stream as layouts get converted; guarded
  /// by layout_mutex_ like the layout buffers.
  template <typename T>
  struct PrecisionBuffers {
    std::unique_ptr<backends::DeviceBuffer<T>> values;
    std::unique_ptr<backends::DeviceBuffer<T>> soa_astro;
    std::unique_ptr<backends::DeviceBuffer<T>> soa_att;
    std::unique_ptr<backends::DeviceBuffer<T>> soa_instr;
    std::unique_ptr<backends::DeviceBuffer<T>> soa_glob;
    std::unique_ptr<backends::DeviceBuffer<T>> slice_values;
  };
  template <typename T>
  void attach_precision_buffers(const matrix::PrecisionStore<T>& store,
                                PrecisionBuffers<T>& bufs,
                                SystemView::CoefPlanes<T>& planes);
  PrecisionBuffers<float> d_f32_;
  PrecisionBuffers<matrix::bf16s> d_b16_;
  /// One stream per aprod2 kernel, created lazily when streams are on.
  std::array<std::unique_ptr<backends::Stream>, 4> streams_;
  /// Pooled scratch for the privatized scatter strategy; owned per
  /// driver so its hit/miss accounting tracks this solve alone.
  backends::ScratchArena scratch_arena_;
  std::uint64_t launches_ = 0;
  /// Sum of per-kernel wall times within the current streamed aprod2
  /// pass (accumulated from stream threads, hence atomic). Together with
  /// the pass wall time this yields the stream-overlap ratio exported to
  /// the metrics registry.
  std::atomic<double> pass_kernel_seconds_{0};
};

}  // namespace gaia::core
