/// \file outer_loop.hpp
/// \brief Iterated robust re-weighting around the LSQR solver — the
/// outer loop the AGIS-style pipelines run (paper Fig. 1: the solver is
/// embedded between the weights stage and the residual analysis).
///
/// Each outer iteration solves the (currently weighted) system, computes
/// the residuals, derives Huber factors from them and re-weights; the
/// loop converges when the active-outlier set stabilizes (the weights
/// stop changing materially).
#pragma once

#include <vector>

#include "core/lsqr.hpp"
#include "core/weights.hpp"

namespace gaia::core {

struct OuterLoopOptions {
  LsqrOptions lsqr{};
  HuberConfig huber{};
  /// Maximum outer iterations (production pipelines use a handful).
  int max_outer_iterations = 5;
  /// Converged when the rms change of the weight factors drops below
  /// this threshold. (A single borderline row toggling its Huber factor
  /// moves the rms by ~0.1/sqrt(n_rows), so the tolerance is deliberately
  /// coarse.)
  real weight_change_tol = 1e-2;
};

struct OuterLoopResult {
  LsqrResult solution;             ///< final inner solve
  std::vector<real> weights;       ///< final combined weight per row
  int outer_iterations = 0;
  bool converged = false;
  /// Per-outer-iteration diagnostics.
  std::vector<double> weight_rms_change;
  std::vector<std::int64_t> downweighted_rows;
};

/// Runs the re-weighted solve. The input system is not modified; the
/// weighted copies live inside the loop.
OuterLoopResult robust_solve(const matrix::SystemMatrix& A,
                             const OuterLoopOptions& options = {});

}  // namespace gaia::core
