#include "core/kernel_catalog.hpp"

#include <mutex>

#include "core/aprod_kernels.hpp"
#include "tuning/kernel_registry.hpp"

namespace gaia::core {

using backends::BackendKind;
using backends::KernelId;
using tuning::KernelRegistry;
using tuning::LaunchArgs;

namespace {

/// Instantiates all launchers for one execution policy and hands them to
/// the registry. Each launcher captures nothing: the full launch state
/// travels in LaunchArgs, so the registry entries are valid for the
/// process lifetime.
template <typename Exec>
void register_kernels(KernelRegistry& reg) {
  constexpr BackendKind kind = Exec::kKind;
  reg.add(KernelId::kAprod1Astro, kind, [](const LaunchArgs& a) {
    aprod1_astro<Exec>(*a.view, a.in, a.out, a.config);
  });
  reg.add(KernelId::kAprod1Att, kind, [](const LaunchArgs& a) {
    aprod1_att<Exec>(*a.view, a.in, a.out, a.config);
  });
  reg.add(KernelId::kAprod1Instr, kind, [](const LaunchArgs& a) {
    aprod1_instr<Exec>(*a.view, a.in, a.out, a.config);
  });
  reg.add(KernelId::kAprod1Glob, kind, [](const LaunchArgs& a) {
    aprod1_glob<Exec>(*a.view, a.in, a.out, a.config);
  });
  reg.add(KernelId::kAprod2Astro, kind, [](const LaunchArgs& a) {
    aprod2_astro<Exec>(*a.view, a.in, a.out, a.config);
  });
  reg.add(KernelId::kAprod2Att, kind, [](const LaunchArgs& a) {
    aprod2_att<Exec>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  });
  reg.add(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr<Exec>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  });
  reg.add(KernelId::kAprod2Glob, kind, [](const LaunchArgs& a) {
    aprod2_glob<Exec>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  });
  reg.add_fused(kind, [](const LaunchArgs& a) {
    aprod2_shared_fused<Exec>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  });
  // Second strategy for the atomic scatters: contention-free privatized
  // accumulation + deterministic tree reduction, pooled scratch.
  reg.add_privatized(KernelId::kAprod2Att, kind, [](const LaunchArgs& a) {
    aprod2_att_privatized<Exec>(*a.view, a.in, a.out, a.config, a.arena);
  });
  reg.add_privatized(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr_privatized<Exec>(*a.view, a.in, a.out, a.config, a.arena);
  });
  reg.add_privatized(KernelId::kAprod2Glob, kind, [](const LaunchArgs& a) {
    aprod2_glob_privatized<Exec>(*a.view, a.in, a.out, a.config, a.arena);
  });
}

/// The SoA-tiled bodies, registered for `layout` — both derived layouts
/// use them for the regular blocks (the sliced build always carries the
/// SoA streams), so kSlicedInstr registers this set and then overrides
/// the three instrumental slots with the slice-major bodies.
template <typename Exec>
void register_soa_bodies(KernelRegistry& reg,
                         backends::StorageLayout layout) {
  constexpr BackendKind kind = Exec::kKind;
  reg.add(KernelId::kAprod1Astro, kind, [](const LaunchArgs& a) {
    aprod1_astro_soa<Exec>(*a.view, a.in, a.out, a.config);
  }, layout);
  reg.add(KernelId::kAprod1Att, kind, [](const LaunchArgs& a) {
    aprod1_att_soa<Exec>(*a.view, a.in, a.out, a.config);
  }, layout);
  reg.add(KernelId::kAprod1Instr, kind, [](const LaunchArgs& a) {
    aprod1_instr_soa<Exec>(*a.view, a.in, a.out, a.config);
  }, layout);
  reg.add(KernelId::kAprod1Glob, kind, [](const LaunchArgs& a) {
    aprod1_glob_soa<Exec>(*a.view, a.in, a.out, a.config);
  }, layout);
  reg.add(KernelId::kAprod2Astro, kind, [](const LaunchArgs& a) {
    aprod2_astro_soa<Exec>(*a.view, a.in, a.out, a.config);
  }, layout);
  reg.add(KernelId::kAprod2Att, kind, [](const LaunchArgs& a) {
    aprod2_att_soa<Exec>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  }, layout);
  reg.add(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr_soa<Exec>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  }, layout);
  reg.add(KernelId::kAprod2Glob, kind, [](const LaunchArgs& a) {
    aprod2_glob_soa<Exec>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  }, layout);
  reg.add_fused(kind, [](const LaunchArgs& a) {
    aprod2_shared_fused_soa<Exec>(*a.view, a.in, a.out, a.config,
                                  a.atomic_mode);
  }, layout);
  reg.add_privatized(KernelId::kAprod2Att, kind, [](const LaunchArgs& a) {
    aprod2_att_privatized_soa<Exec>(*a.view, a.in, a.out, a.config, a.arena);
  }, layout);
  reg.add_privatized(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr_privatized_soa<Exec>(*a.view, a.in, a.out, a.config,
                                      a.arena);
  }, layout);
  reg.add_privatized(KernelId::kAprod2Glob, kind, [](const LaunchArgs& a) {
    aprod2_glob_privatized_soa<Exec>(*a.view, a.in, a.out, a.config,
                                     a.arena);
  }, layout);
}

template <typename Exec>
void register_layout_kernels(KernelRegistry& reg) {
  constexpr BackendKind kind = Exec::kKind;
  register_soa_bodies<Exec>(reg, backends::StorageLayout::kSoaTiled);
  register_soa_bodies<Exec>(reg, backends::StorageLayout::kSlicedInstr);
  // Slice-major instrumental bodies override the SoA ones.
  constexpr auto kSliced = backends::StorageLayout::kSlicedInstr;
  reg.add(KernelId::kAprod1Instr, kind, [](const LaunchArgs& a) {
    aprod1_instr_sliced<Exec>(*a.view, a.in, a.out, a.config);
  }, kSliced);
  reg.add(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr_sliced<Exec>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  }, kSliced);
  reg.add_privatized(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr_privatized_sliced<Exec>(*a.view, a.in, a.out, a.config,
                                         a.arena);
  }, kSliced);
}

}  // namespace

void ensure_kernel_catalog() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    KernelRegistry& reg = KernelRegistry::global();
    register_kernels<backends::SerialExec>(reg);
    register_kernels<backends::OpenMPExec>(reg);
    register_kernels<backends::PstlExec>(reg);
    register_kernels<backends::GpuSimExec>(reg);
    register_layout_kernels<backends::SerialExec>(reg);
    register_layout_kernels<backends::OpenMPExec>(reg);
    register_layout_kernels<backends::PstlExec>(reg);
    register_layout_kernels<backends::GpuSimExec>(reg);
  });
}

const char* kernel_region_name(KernelId id) {
  static const char* kNames[] = {"aprod1_astro", "aprod1_att",
                                 "aprod1_instr", "aprod1_glob",
                                 "aprod2_astro", "aprod2_att",
                                 "aprod2_instr", "aprod2_glob"};
  return kNames[static_cast<int>(id)];
}

namespace {

int nnz_per_row(KernelId id) {
  switch (id) {
    case KernelId::kAprod1Astro:
    case KernelId::kAprod2Astro:
      return kAstroNnzPerRow;
    case KernelId::kAprod1Att:
    case KernelId::kAprod2Att:
      return kAttNnzPerRow;
    case KernelId::kAprod1Instr:
    case KernelId::kAprod2Instr:
      return kInstrNnzPerRow;
    case KernelId::kAprod1Glob:
    case KernelId::kAprod2Glob:
      return kGlobNnzPerRow;
  }
  return 0;
}

}  // namespace

std::uint64_t kernel_traffic_bytes(const SystemView& v, KernelId id) {
  const auto rows = static_cast<std::uint64_t>(v.n_rows);
  const bool is_aprod1 = id < KernelId::kAprod2Astro;
  int nnz = 0;
  std::uint64_t idx_bytes = 0;
  switch (id) {
    case KernelId::kAprod1Astro:
    case KernelId::kAprod2Astro:
      nnz = kAstroNnzPerRow;
      idx_bytes = sizeof(col_index);
      break;
    case KernelId::kAprod1Att:
    case KernelId::kAprod2Att:
      nnz = kAttNnzPerRow;
      idx_bytes = sizeof(col_index);
      break;
    case KernelId::kAprod1Instr:
    case KernelId::kAprod2Instr:
      nnz = kInstrNnzPerRow;
      idx_bytes = kInstrNnzPerRow * sizeof(std::int32_t);
      break;
    case KernelId::kAprod1Glob:
    case KernelId::kAprod2Glob:
      nnz = kGlobNnzPerRow;
      idx_bytes = 0;
      break;
  }
  const auto value_bytes = static_cast<std::uint64_t>(nnz) * sizeof(real);
  // aprod1 gathers x (nnz reads) and read-modify-writes y once; aprod2
  // reads y once and read-modify-writes nnz entries of x.
  const std::uint64_t vector_bytes =
      is_aprod1 ? value_bytes + 2 * sizeof(real)
                : sizeof(real) + 2 * value_bytes;
  return rows * (value_bytes + idx_bytes + vector_bytes);
}

std::uint64_t kernel_traffic_bytes(const SystemView& v, KernelId id,
                                   backends::StorageLayout layout) {
  const std::uint64_t base = kernel_traffic_bytes(v, id);
  if (layout == backends::StorageLayout::kSeedAos) return base;
  const auto rows = static_cast<std::uint64_t>(v.n_rows);
  const auto padded = static_cast<std::uint64_t>(
      v.soa_padded_rows > 0
          ? v.soa_padded_rows
          : (v.n_rows + matrix::kSoaTileRows - 1) / matrix::kSoaTileRows *
                matrix::kSoaTileRows);
  const bool instr_kernel =
      id == KernelId::kAprod1Instr || id == KernelId::kAprod2Instr;
  if (layout == backends::StorageLayout::kSlicedInstr && instr_kernel) {
    // Slice storage streams every padded lane: values + explicit
    // columns + the lane's row id, then the vector traffic for the
    // rows that actually exist.
    const auto lanes = static_cast<std::uint64_t>(
        v.n_slices > 0 ? v.n_slices * matrix::kSliceHeight : padded);
    const std::uint64_t lane_bytes =
        kInstrNnzPerRow * (sizeof(real) + sizeof(std::int32_t)) +
        sizeof(row_index);
    const std::uint64_t value_bytes = kInstrNnzPerRow * sizeof(real);
    const std::uint64_t vector_bytes =
        id == KernelId::kAprod1Instr ? value_bytes + 2 * sizeof(real)
                                     : sizeof(real) + 2 * value_bytes;
    return lanes * lane_bytes + rows * vector_bytes;
  }
  // SoA planes: the per-row slice is exact (no record overfetch) but
  // the zero-padded tile tail is streamed like any other row.
  const std::uint64_t per_row_extra =
      static_cast<std::uint64_t>(nnz_per_row(id)) * sizeof(real);
  return base + (padded - rows) * per_row_extra;
}

std::uint64_t kernel_flops(const SystemView& v, KernelId id) {
  // One fused multiply-add per stored coefficient, counted as 2 flops.
  return static_cast<std::uint64_t>(v.n_rows) *
         static_cast<std::uint64_t>(nnz_per_row(id)) * 2;
}

std::uint64_t kernel_atomic_updates(const SystemView& v, KernelId id,
                                    backends::ScatterStrategy strategy) {
  if (!backends::kernel_uses_atomics(id)) return 0;
  if (strategy != backends::ScatterStrategy::kAtomic) return 0;
  return static_cast<std::uint64_t>(v.n_rows) *
         static_cast<std::uint64_t>(nnz_per_row(id));
}

}  // namespace gaia::core
