#include "core/kernel_catalog.hpp"

#include <mutex>

#include "core/aprod_kernels.hpp"
#include "tuning/kernel_registry.hpp"

namespace gaia::core {

using backends::BackendKind;
using backends::KernelId;
using backends::Precision;
using backends::StorageLayout;
using tuning::KernelRegistry;
using tuning::LaunchArgs;

namespace {

/// Instantiates all seed-layout launchers for one (execution policy,
/// coefficient storage scalar) pair and hands them to the registry.
/// Each launcher captures nothing: the full launch state travels in
/// LaunchArgs, so the registry entries are valid for the process
/// lifetime. The CoefT = real instantiation registered at kFp64 is the
/// pre-precision catalog, bit for bit.
template <typename Exec, typename CoefT>
void register_kernels(KernelRegistry& reg, Precision precision) {
  constexpr BackendKind kind = Exec::kKind;
  constexpr auto kSeed = StorageLayout::kSeedAos;
  reg.add(KernelId::kAprod1Astro, kind, [](const LaunchArgs& a) {
    aprod1_astro<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, kSeed, precision);
  reg.add(KernelId::kAprod1Att, kind, [](const LaunchArgs& a) {
    aprod1_att<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, kSeed, precision);
  reg.add(KernelId::kAprod1Instr, kind, [](const LaunchArgs& a) {
    aprod1_instr<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, kSeed, precision);
  reg.add(KernelId::kAprod1Glob, kind, [](const LaunchArgs& a) {
    aprod1_glob<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, kSeed, precision);
  reg.add(KernelId::kAprod2Astro, kind, [](const LaunchArgs& a) {
    aprod2_astro<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, kSeed, precision);
  reg.add(KernelId::kAprod2Att, kind, [](const LaunchArgs& a) {
    aprod2_att<Exec, CoefT>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  }, kSeed, precision);
  reg.add(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr<Exec, CoefT>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  }, kSeed, precision);
  reg.add(KernelId::kAprod2Glob, kind, [](const LaunchArgs& a) {
    aprod2_glob<Exec, CoefT>(*a.view, a.in, a.out, a.config, a.atomic_mode);
  }, kSeed, precision);
  reg.add_fused(kind, [](const LaunchArgs& a) {
    aprod2_shared_fused<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                     a.atomic_mode);
  }, kSeed, precision);
  // Second strategy for the atomic scatters: contention-free privatized
  // accumulation + deterministic tree reduction, pooled scratch.
  reg.add_privatized(KernelId::kAprod2Att, kind, [](const LaunchArgs& a) {
    aprod2_att_privatized<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                       a.arena);
  }, kSeed, precision);
  reg.add_privatized(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr_privatized<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                         a.arena);
  }, kSeed, precision);
  reg.add_privatized(KernelId::kAprod2Glob, kind, [](const LaunchArgs& a) {
    aprod2_glob_privatized<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                        a.arena);
  }, kSeed, precision);
}

/// The SoA-tiled bodies, registered for `layout` — both derived layouts
/// use them for the regular blocks (the sliced build always carries the
/// SoA streams), so kSlicedInstr registers this set and then overrides
/// the three instrumental slots with the slice-major bodies.
template <typename Exec, typename CoefT>
void register_soa_bodies(KernelRegistry& reg, StorageLayout layout,
                         Precision precision) {
  constexpr BackendKind kind = Exec::kKind;
  reg.add(KernelId::kAprod1Astro, kind, [](const LaunchArgs& a) {
    aprod1_astro_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, layout, precision);
  reg.add(KernelId::kAprod1Att, kind, [](const LaunchArgs& a) {
    aprod1_att_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, layout, precision);
  reg.add(KernelId::kAprod1Instr, kind, [](const LaunchArgs& a) {
    aprod1_instr_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, layout, precision);
  reg.add(KernelId::kAprod1Glob, kind, [](const LaunchArgs& a) {
    aprod1_glob_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, layout, precision);
  reg.add(KernelId::kAprod2Astro, kind, [](const LaunchArgs& a) {
    aprod2_astro_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, layout, precision);
  reg.add(KernelId::kAprod2Att, kind, [](const LaunchArgs& a) {
    aprod2_att_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                a.atomic_mode);
  }, layout, precision);
  reg.add(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                  a.atomic_mode);
  }, layout, precision);
  reg.add(KernelId::kAprod2Glob, kind, [](const LaunchArgs& a) {
    aprod2_glob_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                 a.atomic_mode);
  }, layout, precision);
  reg.add_fused(kind, [](const LaunchArgs& a) {
    aprod2_shared_fused_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                         a.atomic_mode);
  }, layout, precision);
  reg.add_privatized(KernelId::kAprod2Att, kind, [](const LaunchArgs& a) {
    aprod2_att_privatized_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                           a.arena);
  }, layout, precision);
  reg.add_privatized(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr_privatized_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                             a.arena);
  }, layout, precision);
  reg.add_privatized(KernelId::kAprod2Glob, kind, [](const LaunchArgs& a) {
    aprod2_glob_privatized_soa<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                            a.arena);
  }, layout, precision);
}

template <typename Exec, typename CoefT>
void register_layout_kernels(KernelRegistry& reg, Precision precision) {
  constexpr BackendKind kind = Exec::kKind;
  register_soa_bodies<Exec, CoefT>(reg, StorageLayout::kSoaTiled, precision);
  register_soa_bodies<Exec, CoefT>(reg, StorageLayout::kSlicedInstr,
                                   precision);
  // Slice-major instrumental bodies override the SoA ones.
  constexpr auto kSliced = StorageLayout::kSlicedInstr;
  reg.add(KernelId::kAprod1Instr, kind, [](const LaunchArgs& a) {
    aprod1_instr_sliced<Exec, CoefT>(*a.view, a.in, a.out, a.config);
  }, kSliced, precision);
  reg.add(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr_sliced<Exec, CoefT>(*a.view, a.in, a.out, a.config,
                                     a.atomic_mode);
  }, kSliced, precision);
  reg.add_privatized(KernelId::kAprod2Instr, kind, [](const LaunchArgs& a) {
    aprod2_instr_privatized_sliced<Exec, CoefT>(*a.view, a.in, a.out,
                                                a.config, a.arena);
  }, kSliced, precision);
}

/// Full (layouts x precisions) catalog of one execution policy.
template <typename Exec>
void register_backend(KernelRegistry& reg) {
  register_kernels<Exec, real>(reg, Precision::kFp64);
  register_kernels<Exec, float>(reg, Precision::kFp32);
  register_kernels<Exec, matrix::bf16s>(reg, Precision::kBf16s);
  register_layout_kernels<Exec, real>(reg, Precision::kFp64);
  register_layout_kernels<Exec, float>(reg, Precision::kFp32);
  register_layout_kernels<Exec, matrix::bf16s>(reg, Precision::kBf16s);
}

}  // namespace

void ensure_kernel_catalog() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    KernelRegistry& reg = KernelRegistry::global();
    register_backend<backends::SerialExec>(reg);
    register_backend<backends::OpenMPExec>(reg);
    register_backend<backends::PstlExec>(reg);
    register_backend<backends::GpuSimExec>(reg);
  });
}

const char* kernel_region_name(KernelId id) {
  static const char* kNames[] = {"aprod1_astro", "aprod1_att",
                                 "aprod1_instr", "aprod1_glob",
                                 "aprod2_astro", "aprod2_att",
                                 "aprod2_instr", "aprod2_glob"};
  return kNames[static_cast<int>(id)];
}

namespace {

int nnz_per_row(KernelId id) {
  switch (id) {
    case KernelId::kAprod1Astro:
    case KernelId::kAprod2Astro:
      return kAstroNnzPerRow;
    case KernelId::kAprod1Att:
    case KernelId::kAprod2Att:
      return kAttNnzPerRow;
    case KernelId::kAprod1Instr:
    case KernelId::kAprod2Instr:
      return kInstrNnzPerRow;
    case KernelId::kAprod1Glob:
    case KernelId::kAprod2Glob:
      return kGlobNnzPerRow;
  }
  return 0;
}

/// Seed-layout traffic with the coefficient plane stored at `coef_size`
/// bytes per entry. The x/y vector gathers/scatters stay FP64 whatever
/// the storage precision — only A's entries shrink.
std::uint64_t seed_traffic_bytes(const SystemView& v, KernelId id,
                                 std::uint64_t coef_size) {
  const auto rows = static_cast<std::uint64_t>(v.n_rows);
  const bool is_aprod1 = id < KernelId::kAprod2Astro;
  int nnz = 0;
  std::uint64_t idx_bytes = 0;
  switch (id) {
    case KernelId::kAprod1Astro:
    case KernelId::kAprod2Astro:
      nnz = kAstroNnzPerRow;
      idx_bytes = sizeof(col_index);
      break;
    case KernelId::kAprod1Att:
    case KernelId::kAprod2Att:
      nnz = kAttNnzPerRow;
      idx_bytes = sizeof(col_index);
      break;
    case KernelId::kAprod1Instr:
    case KernelId::kAprod2Instr:
      nnz = kInstrNnzPerRow;
      idx_bytes = kInstrNnzPerRow * sizeof(std::int32_t);
      break;
    case KernelId::kAprod1Glob:
    case KernelId::kAprod2Glob:
      nnz = kGlobNnzPerRow;
      idx_bytes = 0;
      break;
  }
  const auto store_bytes = static_cast<std::uint64_t>(nnz) * coef_size;
  const auto vec_bytes = static_cast<std::uint64_t>(nnz) * sizeof(real);
  // aprod1 gathers x (nnz reads) and read-modify-writes y once; aprod2
  // reads y once and read-modify-writes nnz entries of x.
  const std::uint64_t vector_bytes =
      is_aprod1 ? vec_bytes + 2 * sizeof(real)
                : sizeof(real) + 2 * vec_bytes;
  return rows * (store_bytes + idx_bytes + vector_bytes);
}

std::uint64_t layout_traffic_bytes_impl(const SystemView& v, KernelId id,
                                        StorageLayout layout,
                                        std::uint64_t coef_size) {
  const std::uint64_t base = seed_traffic_bytes(v, id, coef_size);
  if (layout == StorageLayout::kSeedAos) return base;
  const auto rows = static_cast<std::uint64_t>(v.n_rows);
  const auto padded = static_cast<std::uint64_t>(
      v.soa_padded_rows > 0
          ? v.soa_padded_rows
          : (v.n_rows + matrix::kSoaTileRows - 1) / matrix::kSoaTileRows *
                matrix::kSoaTileRows);
  const bool instr_kernel =
      id == KernelId::kAprod1Instr || id == KernelId::kAprod2Instr;
  if (layout == StorageLayout::kSlicedInstr && instr_kernel) {
    // Slice storage streams every padded lane: values + explicit
    // columns + the lane's row id, then the vector traffic for the
    // rows that actually exist.
    const auto lanes = static_cast<std::uint64_t>(
        v.n_slices > 0 ? v.n_slices * matrix::kSliceHeight : padded);
    const std::uint64_t lane_bytes =
        kInstrNnzPerRow * (coef_size + sizeof(std::int32_t)) +
        sizeof(row_index);
    const std::uint64_t value_bytes = kInstrNnzPerRow * sizeof(real);
    const std::uint64_t vector_bytes =
        id == KernelId::kAprod1Instr ? value_bytes + 2 * sizeof(real)
                                     : sizeof(real) + 2 * value_bytes;
    return lanes * lane_bytes + rows * vector_bytes;
  }
  // SoA planes: the per-row slice is exact (no record overfetch) but
  // the zero-padded tile tail is streamed like any other row.
  const std::uint64_t per_row_extra =
      static_cast<std::uint64_t>(nnz_per_row(id)) * coef_size;
  return base + (padded - rows) * per_row_extra;
}

}  // namespace

std::uint64_t kernel_traffic_bytes(const SystemView& v, KernelId id) {
  return seed_traffic_bytes(v, id, sizeof(real));
}

std::uint64_t kernel_traffic_bytes(const SystemView& v, KernelId id,
                                   StorageLayout layout) {
  return layout_traffic_bytes_impl(v, id, layout, sizeof(real));
}

std::uint64_t kernel_traffic_bytes(const SystemView& v, KernelId id,
                                   StorageLayout layout,
                                   Precision precision) {
  return layout_traffic_bytes_impl(
      v, id, layout,
      static_cast<std::uint64_t>(matrix::precision_bytes(precision)));
}

std::uint64_t kernel_flops(const SystemView& v, KernelId id) {
  // One fused multiply-add per stored coefficient, counted as 2 flops.
  return static_cast<std::uint64_t>(v.n_rows) *
         static_cast<std::uint64_t>(nnz_per_row(id)) * 2;
}

std::uint64_t kernel_atomic_updates(const SystemView& v, KernelId id,
                                    backends::ScatterStrategy strategy) {
  if (!backends::kernel_uses_atomics(id)) return 0;
  if (strategy != backends::ScatterStrategy::kAtomic) return 0;
  return static_cast<std::uint64_t>(v.n_rows) *
         static_cast<std::uint64_t>(nnz_per_row(id));
}

}  // namespace gaia::core
