/// \file lsqr_engine.hpp
/// \brief Stateful, steppable LSQR with checkpoint/restart.
///
/// `lsqr_solve()` is a convenience wrapper around this engine. The
/// engine form exists for the two production needs the batch call cannot
/// serve:
///  * **checkpoint/restart** — a full AVU-GSR solve occupies a large
///    allocation on a shared machine for hours; the production solver
///    persists its state and resumes across job boundaries. The engine
///    serializes the complete Golub-Kahan state (vectors + recurrence
///    scalars) and resumes bit-exactly;
///  * **outer-loop integration** — re-weighting and monitoring schemes
///    interleave with the iteration (paper Fig. 1 pipeline), which needs
///    per-step control.
#pragma once

#include <iosfwd>

#include "core/lsqr.hpp"

namespace gaia::core {

class LsqrEngine {
 public:
  /// Prepares the solve: preconditions (if configured), copies the
  /// system to the device, and runs the bidiagonalization start. The
  /// system must outlive the engine.
  LsqrEngine(const matrix::SystemMatrix& A, std::span<const real> b,
             const LsqrOptions& options);
  /// b defaults to A.known_terms().
  explicit LsqrEngine(const matrix::SystemMatrix& A,
                      const LsqrOptions& options = {});
  ~LsqrEngine();

  LsqrEngine(const LsqrEngine&) = delete;
  LsqrEngine& operator=(const LsqrEngine&) = delete;

  /// Runs one LSQR iteration. Returns false once finished (stopping
  /// test hit or iteration limit reached); further calls are no-ops.
  bool step();

  /// Runs until finished; returns the number of iterations executed by
  /// this call.
  std::int64_t run_to_completion();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::int64_t iteration() const { return itn_; }
  [[nodiscard]] LsqrStop stop_reason() const { return istop_; }
  /// Current residual-norm estimate (updates every step).
  [[nodiscard]] real rnorm() const { return rnorm_; }
  [[nodiscard]] real arnorm() const { return arnorm_; }

  /// Snapshot of the current solution and statistics (unscaled — valid
  /// at any point, not only at completion).
  [[nodiscard]] LsqrResult result() const;

  /// Serializes the complete solver state (versioned binary). The
  /// checkpoint embeds the problem fingerprint; `restore` validates it.
  void checkpoint(std::ostream& os) const;
  void checkpoint(const std::string& path) const;

  /// Restores a checkpoint into an engine constructed over the *same*
  /// system, rhs and options; throws gaia::Error on fingerprint
  /// mismatch or corrupt data. Resumed runs are bit-identical to
  /// uninterrupted ones.
  void restore(std::istream& is);
  void restore(const std::string& path);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  // Mirrors of hot state for the inline accessors.
  bool finished_ = false;
  std::int64_t itn_ = 0;
  LsqrStop istop_ = LsqrStop::kIterationLimit;
  real rnorm_ = 0;
  real arnorm_ = 0;

  void sync_mirrors();
};

}  // namespace gaia::core
