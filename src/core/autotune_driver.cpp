#include "core/autotune_driver.hpp"

#include <vector>

#include "obs/trace.hpp"
#include "tuning/autotuner.hpp"

namespace gaia::core {

AutotuneWarmupReport autotune_warmup(Aprod& aprod, tuning::Autotuner& tuner,
                                     int max_rounds) {
  AutotuneWarmupReport report;
  obs::ScopedTrace span("autotune_warmup", "tuning");
  std::vector<real> x(static_cast<std::size_t>(aprod.n_cols()), real{0});
  std::vector<real> y(static_cast<std::size_t>(aprod.n_rows()), real{0});
  while (tuner.active() && report.rounds < max_rounds) {
    aprod.apply1(x, y);
    aprod.apply2(y, x);
    report.rounds++;
  }
  tuner.finish();
  aprod.set_tuning(tuner.apply_winners(aprod.tuning()));
  report.kernels_tuned = tuner.kernels_tuned();
  report.trials = tuner.trials();
  if (span.armed()) {
    span.add_arg({"rounds", static_cast<std::int64_t>(report.rounds)});
    span.add_arg(
        {"kernels_tuned", static_cast<std::int64_t>(report.kernels_tuned)});
    span.add_arg({"trials", static_cast<std::int64_t>(report.trials)});
  }
  return report;
}

}  // namespace gaia::core
