/// \file system_view.hpp
/// \brief Non-owning, kernel-side view of the system data.
///
/// Kernels receive raw pointers plus layout scalars — the same contract a
/// CUDA kernel has after the one-time host-to-device copy. Building a
/// view from `DeviceBuffer`s (device residency) or straight from a
/// `SystemMatrix` (tests) is equally valid.
#pragma once

#include <cstdint>

#include "matrix/system_matrix.hpp"
#include "util/types.hpp"

namespace gaia::core {

struct SystemView {
  row_index n_rows = 0;   ///< observation + constraint rows
  row_index n_obs = 0;    ///< observation rows only
  row_index n_stars = 0;
  col_index n_cols = 0;

  const real* values = nullptr;            ///< n_rows * kNnzPerRow
  const col_index* idx_astro = nullptr;    ///< n_rows
  const col_index* idx_att = nullptr;      ///< n_rows
  const std::int32_t* instr_col = nullptr; ///< n_rows * kInstrNnzPerRow
  const row_index* star_row_start = nullptr;  ///< n_stars + 1

  col_index att_offset = 0;
  col_index att_stride = 0;
  col_index instr_offset = 0;
  col_index glob_offset = 0;
  bool has_global = false;

  /// View over host-resident system data (test/reference path).
  static SystemView from(const matrix::SystemMatrix& A) {
    const matrix::ParameterLayout& lay = A.layout();
    SystemView v;
    v.n_rows = A.n_rows();
    v.n_obs = A.n_obs();
    v.n_stars = lay.n_stars();
    v.n_cols = A.n_cols();
    v.values = A.values().data();
    v.idx_astro = A.matrix_index_astro().data();
    v.idx_att = A.matrix_index_att().data();
    v.instr_col = A.instr_col().data();
    v.star_row_start = A.star_row_start().data();
    v.att_offset = lay.att_offset();
    v.att_stride = lay.att_stride();
    v.instr_offset = lay.instr_offset();
    v.glob_offset = lay.glob_offset();
    v.has_global = lay.has_global();
    return v;
  }
};

}  // namespace gaia::core
