/// \file system_view.hpp
/// \brief Non-owning, kernel-side view of the system data.
///
/// Kernels receive raw pointers plus layout scalars — the same contract a
/// CUDA kernel has after the one-time host-to-device copy. Building a
/// view from `DeviceBuffer`s (device residency) or straight from a
/// `SystemMatrix` (tests) is equally valid: both feed the same
/// construction path, `from(A, arrays)`, so the scalar fields and the
/// layout descriptors can never drift between the two sources.
#pragma once

#include <cstdint>
#include <type_traits>

#include "matrix/layouted_system.hpp"
#include "matrix/precision.hpp"
#include "matrix/storage_layout.hpp"
#include "matrix/system_matrix.hpp"
#include "util/types.hpp"

namespace gaia::core {

struct SystemView {
  /// The five data arrays of the seed layout. Split out so the host
  /// path (spans straight from the SystemMatrix) and the device path
  /// (DeviceBuffer::data() after the H2D copy) share one `from`.
  struct Arrays {
    const real* values = nullptr;             ///< n_rows * kNnzPerRow
    const col_index* idx_astro = nullptr;     ///< n_rows
    const col_index* idx_att = nullptr;       ///< n_rows
    const std::int32_t* instr_col = nullptr;  ///< n_rows * kInstrNnzPerRow
    const row_index* star_row_start = nullptr;  ///< n_stars + 1

    static Arrays of(const matrix::SystemMatrix& A) {
      return {A.values().data(), A.matrix_index_astro().data(),
              A.matrix_index_att().data(), A.instr_col().data(),
              A.star_row_start().data()};
    }
  };

  row_index n_rows = 0;   ///< observation + constraint rows
  row_index n_obs = 0;    ///< observation rows only
  row_index n_stars = 0;
  col_index n_cols = 0;

  const real* values = nullptr;            ///< n_rows * kNnzPerRow
  const col_index* idx_astro = nullptr;    ///< n_rows
  const col_index* idx_att = nullptr;      ///< n_rows
  const std::int32_t* instr_col = nullptr; ///< n_rows * kInstrNnzPerRow
  const row_index* star_row_start = nullptr;  ///< n_stars + 1

  col_index att_offset = 0;
  col_index att_stride = 0;
  col_index instr_offset = 0;
  col_index glob_offset = 0;
  bool has_global = false;

  // --- Derived-layout descriptors (null until attach_layout) ---------
  // Plane-major SoA streams within kSoaTileRows tiles; see
  // matrix::SoaStreams for the addressing.
  const real* soa_astro = nullptr;  ///< kAstroNnzPerRow planes
  const real* soa_att = nullptr;    ///< kAttNnzPerRow planes
  const real* soa_instr = nullptr;  ///< kInstrNnzPerRow planes
  const real* soa_glob = nullptr;   ///< 1 plane
  row_index soa_padded_rows = 0;

  // Sliced instrumental block (SELL-C-sigma style); see
  // matrix::SlicedInstr for the lane-major addressing and `row_slot`.
  const real* slice_values = nullptr;
  const std::int32_t* slice_cols = nullptr;
  const row_index* slice_rows = nullptr;
  const row_index* slice_row_slot = nullptr;
  row_index n_slices = 0;

  // --- Precision descriptors (null until attach_precision) -----------
  // One pointer bundle per storage scalar: the coefficient payloads of
  // every layout, down-converted. Indices/permutations stay shared with
  // the FP64 arrays above — only the values shrink. The CoefT = real
  // bundle mirrors the legacy pointers so a kernel body templated on
  // CoefT reads the exact same memory as the pre-precision code when
  // instantiated at real.
  template <typename T>
  struct CoefPlanes {
    const T* values = nullptr;       ///< seed AoS records
    const T* soa_astro = nullptr;    ///< SoA planes (same addressing)
    const T* soa_att = nullptr;
    const T* soa_instr = nullptr;
    const T* soa_glob = nullptr;
    const T* slice_values = nullptr; ///< sliced instrumental payload
  };
  CoefPlanes<real> planes_f64;
  CoefPlanes<float> planes_f32;
  CoefPlanes<matrix::bf16s> planes_b16;

  /// The pointer bundle for storage scalar `T` (real | float | bf16s).
  template <typename T>
  [[nodiscard]] const CoefPlanes<T>& coefs() const {
    if constexpr (std::is_same_v<T, real>) {
      return planes_f64;
    } else if constexpr (std::is_same_v<T, float>) {
      return planes_f32;
    } else {
      static_assert(std::is_same_v<T, matrix::bf16s>,
                    "unsupported coefficient storage scalar");
      return planes_b16;
    }
  }

  /// Shared construction path: scalar/layout fields from the matrix
  /// metadata, data pointers from wherever the arrays live (host spans
  /// or device buffers).
  static SystemView from(const matrix::SystemMatrix& A,
                         const Arrays& arrays) {
    const matrix::ParameterLayout& lay = A.layout();
    SystemView v;
    v.n_rows = A.n_rows();
    v.n_obs = A.n_obs();
    v.n_stars = lay.n_stars();
    v.n_cols = A.n_cols();
    v.values = arrays.values;
    v.idx_astro = arrays.idx_astro;
    v.idx_att = arrays.idx_att;
    v.instr_col = arrays.instr_col;
    v.star_row_start = arrays.star_row_start;
    v.att_offset = lay.att_offset();
    v.att_stride = lay.att_stride();
    v.instr_offset = lay.instr_offset();
    v.glob_offset = lay.glob_offset();
    v.has_global = lay.has_global();
    v.planes_f64.values = arrays.values;
    return v;
  }

  /// View over host-resident system data (test/reference path).
  static SystemView from(const matrix::SystemMatrix& A) {
    return from(A, Arrays::of(A));
  }

  /// Points the layout descriptors at `layouts`' derived arrays (only
  /// those already built; building is the owner's call). The
  /// LayoutedSystem must outlive every kernel launch through this view.
  void attach_layout(const matrix::LayoutedSystem& layouts) {
    if (layouts.soa().built()) {
      const matrix::SoaStreams& s = layouts.soa();
      soa_astro = s.astro.data();
      soa_att = s.att.data();
      soa_instr = s.instr.data();
      soa_glob = s.glob.data();
      soa_padded_rows = s.padded_rows;
      planes_f64.soa_astro = s.astro.data();
      planes_f64.soa_att = s.att.data();
      planes_f64.soa_instr = s.instr.data();
      planes_f64.soa_glob = s.glob.data();
    }
    if (layouts.sliced().built()) {
      const matrix::SlicedInstr& s = layouts.sliced();
      slice_values = s.slice_values.data();
      slice_cols = s.slice_cols.data();
      slice_rows = s.slice_rows.data();
      slice_row_slot = s.row_slot.data();
      n_slices = s.n_slices;
      planes_f64.slice_values = s.slice_values.data();
    }
  }

  /// Points the reduced-precision descriptors at `layouts`' converted
  /// stores (only streams already converted; build_precision is the
  /// owner's call). Shares the host-path ownership contract of
  /// attach_layout.
  void attach_precision(const matrix::LayoutedSystem& layouts) {
    attach_precision_store(layouts.f32(), planes_f32);
    attach_precision_store(layouts.b16(), planes_b16);
  }

  template <typename T>
  void attach_precision_store(const matrix::PrecisionStore<T>& s,
                              CoefPlanes<T>& p) {
    if (!s.built()) return;
    p.values = s.values.data();
    if (!s.soa_astro.empty()) {
      p.soa_astro = s.soa_astro.data();
      p.soa_att = s.soa_att.data();
      p.soa_instr = s.soa_instr.data();
      p.soa_glob = s.soa_glob.data();
    }
    if (!s.slice_values.empty()) p.slice_values = s.slice_values.data();
  }

  /// True when every array `layout` needs is attached — the launcher
  /// clamps a config's layout to kSeedAos otherwise, so a view without
  /// derived arrays keeps the seed semantics instead of faulting.
  [[nodiscard]] bool has_layout(matrix::StorageLayout layout) const {
    switch (layout) {
      case matrix::StorageLayout::kSeedAos:
        return true;
      case matrix::StorageLayout::kSoaTiled:
        return soa_astro != nullptr;
      case matrix::StorageLayout::kSlicedInstr:
        return soa_astro != nullptr && slice_values != nullptr;
    }
    return false;
  }

  /// True when the coefficient streams `layout` reads are attached at
  /// precision `p` — the launcher clamps a config's precision to kFp64
  /// otherwise, mirroring the layout fallback.
  [[nodiscard]] bool has_precision(matrix::Precision p,
                                   matrix::StorageLayout layout) const {
    switch (p) {
      case matrix::Precision::kFp64:
        return has_layout(layout);
      case matrix::Precision::kFp32:
        return planes_has(planes_f32, layout);
      case matrix::Precision::kBf16s:
        return planes_has(planes_b16, layout);
    }
    return false;
  }

  template <typename T>
  [[nodiscard]] bool planes_has(const CoefPlanes<T>& p,
                                matrix::StorageLayout layout) const {
    if (!has_layout(layout)) return false;
    switch (layout) {
      case matrix::StorageLayout::kSeedAos:
        return p.values != nullptr;
      case matrix::StorageLayout::kSoaTiled:
        return p.soa_astro != nullptr;
      case matrix::StorageLayout::kSlicedInstr:
        return p.soa_astro != nullptr && p.slice_values != nullptr;
    }
    return false;
  }
};

}  // namespace gaia::core
