/// \file aprod_kernels.hpp
/// \brief The eight hot kernels of the solver, templated on the backend.
///
/// aprod mode 1 (paper Eq. 3): y += A x — a gather per row; every kernel
/// accumulates its block's partial dot product into y[r], so the four
/// aprod1 kernels must not run concurrently with each other (they share
/// y), matching the production code where only aprod2 is overlapped.
///
/// aprod mode 2 (paper Eq. 4): x += A^T y — a scatter per row into x.
/// The astrometric part is block diagonal, so parallelizing over *stars*
/// gives each task exclusive ownership of its five columns: no atomics.
/// Attitude, instrumental and global columns are shared between rows, so
/// their updates are atomic; the three kernels target disjoint sections
/// of x and may safely overlap in streams (paper SIV).
///
/// Templating on the execution policy keeps the row loop body inlined in
/// every backend while the launch mechanics (grid-stride virtual threads,
/// OpenMP directives, parallel algorithms, plain loop) differ — this is
/// the library's equivalent of maintaining one kernel source per
/// programming model.
#pragma once

#include "backends/backend.hpp"
#include "core/system_view.hpp"
#include "util/types.hpp"

namespace gaia::core {

using backends::AtomicMode;
using backends::KernelConfig;

// ---------------------------------------------------------------------------
// aprod1: y += A x (row-parallel gathers; no atomics anywhere)
// ---------------------------------------------------------------------------

template <typename Exec>
void aprod1_astro(const SystemView& A, const real* x, real* y,
                  KernelConfig cfg) {
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const real* rv = A.values + r * kNnzPerRow + matrix::kAstroCoeffOffset;
    const col_index c0 = A.idx_astro[r];
    real sum = 0;
    for (int i = 0; i < kAstroNnzPerRow; ++i) sum += rv[i] * x[c0 + i];
    y[r] += sum;
  });
}

template <typename Exec>
void aprod1_att(const SystemView& A, const real* x, real* y,
                KernelConfig cfg) {
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const real* rv = A.values + r * kNnzPerRow + matrix::kAttCoeffOffset;
    const col_index base = A.att_offset + A.idx_att[r];
    real sum = 0;
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      const col_index c0 = base + blk * A.att_stride;
      for (int i = 0; i < kAttBlockSize; ++i)
        sum += rv[blk * kAttBlockSize + i] * x[c0 + i];
    }
    y[r] += sum;
  });
}

template <typename Exec>
void aprod1_instr(const SystemView& A, const real* x, real* y,
                  KernelConfig cfg) {
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const real* rv = A.values + r * kNnzPerRow + matrix::kInstrCoeffOffset;
    const std::int32_t* cols = A.instr_col + r * kInstrNnzPerRow;
    real sum = 0;
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      sum += rv[i] * x[A.instr_offset + cols[i]];
    y[r] += sum;
  });
}

template <typename Exec>
void aprod1_glob(const SystemView& A, const real* x, real* y,
                 KernelConfig cfg) {
  if (!A.has_global) return;
  const real xg = x[A.glob_offset];
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    y[r] += A.values[r * kNnzPerRow + matrix::kGlobCoeffOffset] * xg;
  });
}

// ---------------------------------------------------------------------------
// aprod2: x += A^T y (column scatters)
// ---------------------------------------------------------------------------

/// Star-parallel, atomic-free: each star owns its 5 columns and the rows
/// touching them are exactly its contiguous row range. Requires the
/// generator invariant that constraint rows carry zero astrometric
/// coefficients (they are not covered by the star partition).
template <typename Exec>
void aprod2_astro(const SystemView& A, const real* y, real* x,
                  KernelConfig cfg) {
  Exec::launch(A.n_stars, cfg, [=](std::int64_t s) {
    const col_index c0 = s * kAstroParamsPerStar;
    real acc[kAstroNnzPerRow] = {0, 0, 0, 0, 0};
    for (row_index r = A.star_row_start[s]; r < A.star_row_start[s + 1];
         ++r) {
      const real* rv = A.values + r * kNnzPerRow + matrix::kAstroCoeffOffset;
      const real yr = y[r];
      for (int i = 0; i < kAstroNnzPerRow; ++i) acc[i] += rv[i] * yr;
    }
    for (int i = 0; i < kAstroNnzPerRow; ++i) x[c0 + i] += acc[i];
  });
}

/// Row-parallel with atomic updates: neighbouring observations hit the
/// same attitude spline knots (this is the collision hot spot the paper
/// tunes thread counts down for).
template <typename Exec>
void aprod2_att(const SystemView& A, const real* y, real* x,
                KernelConfig cfg, AtomicMode mode) {
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const real* rv = A.values + r * kNnzPerRow + matrix::kAttCoeffOffset;
    const real yr = y[r];
    const col_index base = A.att_offset + A.idx_att[r];
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      const col_index c0 = base + blk * A.att_stride;
      for (int i = 0; i < kAttBlockSize; ++i)
        Exec::atomic_add(x[c0 + i], rv[blk * kAttBlockSize + i] * yr, mode);
    }
  });
}

template <typename Exec>
void aprod2_instr(const SystemView& A, const real* y, real* x,
                  KernelConfig cfg, AtomicMode mode) {
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const real* rv = A.values + r * kNnzPerRow + matrix::kInstrCoeffOffset;
    const std::int32_t* cols = A.instr_col + r * kInstrNnzPerRow;
    const real yr = y[r];
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      Exec::atomic_add(x[A.instr_offset + cols[i]], rv[i] * yr, mode);
  });
}

/// Every row contributes to the single PPN-gamma unknown — the most
/// contended column of the whole system.
template <typename Exec>
void aprod2_glob(const SystemView& A, const real* y, real* x,
                 KernelConfig cfg, AtomicMode mode) {
  if (!A.has_global) return;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    Exec::atomic_add(
        x[A.glob_offset],
        A.values[r * kNnzPerRow + matrix::kGlobCoeffOffset] * y[r], mode);
  });
}

/// Fused single-pass aprod2 over the shared sections (attitude +
/// instrumental + global): one row-parallel kernel doing every atomic
/// scatter. This is the shape a real C++ PSTL port takes — stdpar has no
/// stream/queue concept, so splitting the scatter into four kernels buys
/// nothing, while fusing reads each row's record once. The astrometric
/// block still goes through the star-parallel atomic-free kernel.
template <typename Exec>
void aprod2_shared_fused(const SystemView& A, const real* y, real* x,
                         KernelConfig cfg, AtomicMode mode) {
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const real* rv = A.values + r * kNnzPerRow;
    const real yr = y[r];
    const col_index att_base = A.att_offset + A.idx_att[r];
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      const col_index c0 = att_base + blk * A.att_stride;
      for (int i = 0; i < kAttBlockSize; ++i)
        Exec::atomic_add(x[c0 + i],
                         rv[matrix::kAttCoeffOffset + blk * kAttBlockSize + i] *
                             yr,
                         mode);
    }
    const std::int32_t* cols = A.instr_col + r * kInstrNnzPerRow;
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      Exec::atomic_add(x[A.instr_offset + cols[i]],
                       rv[matrix::kInstrCoeffOffset + i] * yr, mode);
    if (A.has_global)
      Exec::atomic_add(x[A.glob_offset],
                       rv[matrix::kGlobCoeffOffset] * yr, mode);
  });
}

}  // namespace gaia::core
