/// \file aprod_kernels.hpp
/// \brief The eight hot kernels of the solver, templated on the backend.
///
/// aprod mode 1 (paper Eq. 3): y += A x — a gather per row; every kernel
/// accumulates its block's partial dot product into y[r], so the four
/// aprod1 kernels must not run concurrently with each other (they share
/// y), matching the production code where only aprod2 is overlapped.
///
/// aprod mode 2 (paper Eq. 4): x += A^T y — a scatter per row into x.
/// The astrometric part is block diagonal, so parallelizing over *stars*
/// gives each task exclusive ownership of its five columns: no atomics.
/// Attitude, instrumental and global columns are shared between rows, so
/// their updates are atomic; the three kernels target disjoint sections
/// of x and may safely overlap in streams (paper SIV).
///
/// Templating on the execution policy keeps the row loop body inlined in
/// every backend while the launch mechanics (grid-stride virtual threads,
/// OpenMP directives, parallel algorithms, plain loop) differ — this is
/// the library's equivalent of maintaining one kernel source per
/// programming model.
///
/// Every body additionally takes the coefficient storage scalar `CoefT`
/// (real | float | matrix::bf16s — the Precision axis). Coefficients
/// are converted on load (`matrix::load_real`) and all arithmetic and
/// accumulation stays FP64, whatever the storage precision: the solver
/// needs ~1e-11 rad in the solution and LSQR amplifies accumulator
/// rounding, while storage rounding only perturbs A — a nearby system
/// that outer iterative refinement corrects. The CoefT = real
/// instantiation reads the exact same arrays as the pre-precision code.
#pragma once

#include <algorithm>
#include <bit>

#include "backends/backend.hpp"
#include "backends/scratch_arena.hpp"
#include "core/system_view.hpp"
#include "util/types.hpp"

namespace gaia::core {

using backends::AtomicMode;
using backends::KernelConfig;
using matrix::load_real;

// ---------------------------------------------------------------------------
// aprod1: y += A x (row-parallel gathers; no atomics anywhere)
// ---------------------------------------------------------------------------
// The gather inner loops run over fixed, tiny trip counts through
// pointers that never alias (coefficients, index arrays and x come from
// distinct buffers): GAIA_RESTRICT + the simd reduction hint let the
// serial/pstl backends vectorize what CUDA gets from the hardware.

template <typename Exec, typename CoefT = real>
void aprod1_astro(const SystemView& A, const real* x, real* y,
                  KernelConfig cfg) {
  const CoefT* vals = A.coefs<CoefT>().values;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* GAIA_RESTRICT rv =
        vals + r * kNnzPerRow + matrix::kAstroCoeffOffset;
    const real* GAIA_RESTRICT xs = x + A.idx_astro[r];
    real sum = 0;
    GAIA_OMP_SIMD_REDUCTION(sum)
    for (int i = 0; i < kAstroNnzPerRow; ++i) sum += load_real(rv[i]) * xs[i];
    y[r] += sum;
  });
}

template <typename Exec, typename CoefT = real>
void aprod1_att(const SystemView& A, const real* x, real* y,
                KernelConfig cfg) {
  const CoefT* vals = A.coefs<CoefT>().values;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* GAIA_RESTRICT rv =
        vals + r * kNnzPerRow + matrix::kAttCoeffOffset;
    const col_index base = A.att_offset + A.idx_att[r];
    real sum = 0;
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      const real* GAIA_RESTRICT xb = x + base + blk * A.att_stride;
      const CoefT* GAIA_RESTRICT rb = rv + blk * kAttBlockSize;
      GAIA_OMP_SIMD_REDUCTION(sum)
      for (int i = 0; i < kAttBlockSize; ++i)
        sum += load_real(rb[i]) * xb[i];
    }
    y[r] += sum;
  });
}

template <typename Exec, typename CoefT = real>
void aprod1_instr(const SystemView& A, const real* x, real* y,
                  KernelConfig cfg) {
  const CoefT* vals = A.coefs<CoefT>().values;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* GAIA_RESTRICT rv =
        vals + r * kNnzPerRow + matrix::kInstrCoeffOffset;
    const std::int32_t* GAIA_RESTRICT cols =
        A.instr_col + r * kInstrNnzPerRow;
    const real* GAIA_RESTRICT xs = x + A.instr_offset;
    real sum = 0;
    GAIA_OMP_SIMD_REDUCTION(sum)
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      sum += load_real(rv[i]) * xs[cols[i]];
    y[r] += sum;
  });
}

template <typename Exec, typename CoefT = real>
void aprod1_glob(const SystemView& A, const real* x, real* y,
                 KernelConfig cfg) {
  if (!A.has_global) return;
  const real xg = x[A.glob_offset];
  const CoefT* vals = A.coefs<CoefT>().values;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    y[r] += load_real(vals[r * kNnzPerRow + matrix::kGlobCoeffOffset]) * xg;
  });
}

// ---------------------------------------------------------------------------
// aprod2: x += A^T y (column scatters)
// ---------------------------------------------------------------------------

/// Star-parallel, atomic-free: each star owns its 5 columns and the rows
/// touching them are exactly its contiguous row range. Requires the
/// generator invariant that constraint rows carry zero astrometric
/// coefficients (they are not covered by the star partition).
template <typename Exec, typename CoefT = real>
void aprod2_astro(const SystemView& A, const real* y, real* x,
                  KernelConfig cfg) {
  const CoefT* vals = A.coefs<CoefT>().values;
  Exec::launch(A.n_stars, cfg, [=](std::int64_t s) {
    const col_index c0 = s * kAstroParamsPerStar;
    real acc[kAstroNnzPerRow] = {0, 0, 0, 0, 0};
    for (row_index r = A.star_row_start[s]; r < A.star_row_start[s + 1];
         ++r) {
      const CoefT* rv = vals + r * kNnzPerRow + matrix::kAstroCoeffOffset;
      const real yr = y[r];
      for (int i = 0; i < kAstroNnzPerRow; ++i)
        acc[i] += load_real(rv[i]) * yr;
    }
    for (int i = 0; i < kAstroNnzPerRow; ++i) x[c0 + i] += acc[i];
  });
}

/// Row-parallel with atomic updates: neighbouring observations hit the
/// same attitude spline knots (this is the collision hot spot the paper
/// tunes thread counts down for).
template <typename Exec, typename CoefT = real>
void aprod2_att(const SystemView& A, const real* y, real* x,
                KernelConfig cfg, AtomicMode mode) {
  const CoefT* vals = A.coefs<CoefT>().values;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* rv = vals + r * kNnzPerRow + matrix::kAttCoeffOffset;
    const real yr = y[r];
    const col_index base = A.att_offset + A.idx_att[r];
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      const col_index c0 = base + blk * A.att_stride;
      for (int i = 0; i < kAttBlockSize; ++i)
        Exec::atomic_add(x[c0 + i],
                         load_real(rv[blk * kAttBlockSize + i]) * yr, mode);
    }
  });
}

template <typename Exec, typename CoefT = real>
void aprod2_instr(const SystemView& A, const real* y, real* x,
                  KernelConfig cfg, AtomicMode mode) {
  const CoefT* vals = A.coefs<CoefT>().values;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* rv = vals + r * kNnzPerRow + matrix::kInstrCoeffOffset;
    const std::int32_t* cols = A.instr_col + r * kInstrNnzPerRow;
    const real yr = y[r];
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      Exec::atomic_add(x[A.instr_offset + cols[i]], load_real(rv[i]) * yr,
                       mode);
  });
}

/// Every row contributes to the single PPN-gamma unknown — the most
/// contended column of the whole system.
template <typename Exec, typename CoefT = real>
void aprod2_glob(const SystemView& A, const real* y, real* x,
                 KernelConfig cfg, AtomicMode mode) {
  if (!A.has_global) return;
  const CoefT* vals = A.coefs<CoefT>().values;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    Exec::atomic_add(
        x[A.glob_offset],
        load_real(vals[r * kNnzPerRow + matrix::kGlobCoeffOffset]) * y[r],
        mode);
  });
}

/// Fused single-pass aprod2 over the shared sections (attitude +
/// instrumental + global): one row-parallel kernel doing every atomic
/// scatter. This is the shape a real C++ PSTL port takes — stdpar has no
/// stream/queue concept, so splitting the scatter into four kernels buys
/// nothing, while fusing reads each row's record once. The astrometric
/// block still goes through the star-parallel atomic-free kernel.
template <typename Exec, typename CoefT = real>
void aprod2_shared_fused(const SystemView& A, const real* y, real* x,
                         KernelConfig cfg, AtomicMode mode) {
  const CoefT* vals = A.coefs<CoefT>().values;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* rv = vals + r * kNnzPerRow;
    const real yr = y[r];
    const col_index att_base = A.att_offset + A.idx_att[r];
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      const col_index c0 = att_base + blk * A.att_stride;
      for (int i = 0; i < kAttBlockSize; ++i)
        Exec::atomic_add(
            x[c0 + i],
            load_real(rv[matrix::kAttCoeffOffset + blk * kAttBlockSize + i]) *
                yr,
            mode);
    }
    const std::int32_t* cols = A.instr_col + r * kInstrNnzPerRow;
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      Exec::atomic_add(x[A.instr_offset + cols[i]],
                       load_real(rv[matrix::kInstrCoeffOffset + i]) * yr,
                       mode);
    if (A.has_global)
      Exec::atomic_add(x[A.glob_offset],
                       load_real(rv[matrix::kGlobCoeffOffset]) * yr, mode);
  });
}

// ---------------------------------------------------------------------------
// aprod2, privatized strategy (ScatterStrategy::kPrivatized): no atomics
// ---------------------------------------------------------------------------

namespace detail {

/// The contention-free scatter skeleton shared by the three privatized
/// kernels. W = Exec::scatter_workers(cfg) workers each zero a private
/// copy of the kernel's column section in pooled scratch and accumulate
/// a contiguous row chunk into it sequentially (ascending rows); the
/// copies are then folded pairwise — slice p += slice p+stride, stride
/// halving from bit_ceil(W)/2 — a combine order fixed by W alone, so a
/// fixed launch shape reduces bit-identically run to run regardless of
/// thread scheduling. The folded slice 0 is added into x in one
/// column-parallel pass. `accumulate_row(slice, r)` adds row r's
/// contribution at section-relative indices.
template <typename Exec, typename AccumRow>
void privatized_scatter(std::int64_t n_rows, real* x, col_index sect_offset,
                        col_index sect_len, KernelConfig cfg,
                        backends::ScratchArena* arena,
                        AccumRow&& accumulate_row) {
  if (sect_len <= 0) return;
  const int workers = Exec::scatter_workers(cfg);
  backends::ScratchArena& pool =
      arena ? *arena : backends::ScratchArena::for_backend(Exec::kKind);
  auto lease = pool.acquire(static_cast<std::size_t>(workers) *
                            static_cast<std::size_t>(sect_len));
  real* const scratch = lease.data();
  const std::int64_t chunk = (n_rows + workers - 1) / workers;

  Exec::launch_workers(workers, cfg, [&](int w) {
    real* GAIA_RESTRICT slice =
        scratch + static_cast<std::int64_t>(w) * sect_len;
    std::fill(slice, slice + sect_len, real{0});
    const std::int64_t begin = static_cast<std::int64_t>(w) * chunk;
    const std::int64_t end = std::min(n_rows, begin + chunk);
    for (std::int64_t r = begin; r < end; ++r) accumulate_row(slice, r);
  });

  const int top =
      static_cast<int>(std::bit_ceil(static_cast<unsigned>(workers)) / 2);
  for (int stride = top; stride >= 1; stride /= 2) {
    const std::int64_t pairs = std::min(stride, workers - stride);
    if (pairs <= 0) continue;
    Exec::launch(pairs * sect_len, cfg, [=](std::int64_t i) {
      const std::int64_t p = i / sect_len;
      const std::int64_t c = i - p * sect_len;
      scratch[p * sect_len + c] += scratch[(p + stride) * sect_len + c];
    });
  }
  Exec::launch(sect_len, cfg,
               [=](std::int64_t c) { x[sect_offset + c] += scratch[c]; });
}

}  // namespace detail

/// Privatized attitude scatter: each worker owns a private copy of the
/// full attitude section (n_att entries) — collisions on the shared
/// spline knots vanish entirely.
template <typename Exec, typename CoefT = real>
void aprod2_att_privatized(const SystemView& A, const real* y, real* x,
                           KernelConfig cfg,
                           backends::ScratchArena* arena = nullptr) {
  const CoefT* vals = A.coefs<CoefT>().values;
  detail::privatized_scatter<Exec>(
      A.n_rows, x, A.att_offset, A.instr_offset - A.att_offset, cfg, arena,
      [=](real* GAIA_RESTRICT slice, std::int64_t r) {
        const CoefT* GAIA_RESTRICT rv =
            vals + r * kNnzPerRow + matrix::kAttCoeffOffset;
        const real yr = y[r];
        const col_index base = A.idx_att[r];
        for (int blk = 0; blk < kAttBlocks; ++blk) {
          const col_index c0 = base + blk * A.att_stride;
          for (int i = 0; i < kAttBlockSize; ++i)
            slice[c0 + i] += load_real(rv[blk * kAttBlockSize + i]) * yr;
        }
      });
}

template <typename Exec, typename CoefT = real>
void aprod2_instr_privatized(const SystemView& A, const real* y, real* x,
                             KernelConfig cfg,
                             backends::ScratchArena* arena = nullptr) {
  const CoefT* vals = A.coefs<CoefT>().values;
  detail::privatized_scatter<Exec>(
      A.n_rows, x, A.instr_offset, A.glob_offset - A.instr_offset, cfg,
      arena, [=](real* GAIA_RESTRICT slice, std::int64_t r) {
        const CoefT* GAIA_RESTRICT rv =
            vals + r * kNnzPerRow + matrix::kInstrCoeffOffset;
        const std::int32_t* GAIA_RESTRICT cols =
            A.instr_col + r * kInstrNnzPerRow;
        const real yr = y[r];
        for (int i = 0; i < kInstrNnzPerRow; ++i)
          slice[cols[i]] += load_real(rv[i]) * yr;
      });
}

/// Privatized global scatter: the single PPN-gamma column degenerates to
/// one private partial sum per worker plus the tree fold — a classic
/// parallel reduction replacing the most contended atomic of the system.
template <typename Exec, typename CoefT = real>
void aprod2_glob_privatized(const SystemView& A, const real* y, real* x,
                            KernelConfig cfg,
                            backends::ScratchArena* arena = nullptr) {
  if (!A.has_global) return;
  const CoefT* vals = A.coefs<CoefT>().values;
  detail::privatized_scatter<Exec>(
      A.n_rows, x, A.glob_offset, 1, cfg, arena,
      [=](real* GAIA_RESTRICT slice, std::int64_t r) {
        slice[0] +=
            load_real(vals[r * kNnzPerRow + matrix::kGlobCoeffOffset]) * y[r];
      });
}

// ---------------------------------------------------------------------------
// StorageLayout::kSoaTiled bodies: plane-major SoA streams in row tiles
// ---------------------------------------------------------------------------
// Same arithmetic, same per-row accumulation order as the seed bodies —
// only the coefficient addressing changes, so each row's contribution is
// bit-identical to the seed layout's. The win is pure traffic: a kernel
// streams exactly its own planes (40–96 B/row) instead of the full
// 192 B record. The plane-stride gathers are constant-stride
// (kSoaTileRows), so the simd reduction hint still applies — the
// compiler emits strided vector gathers instead of scalar loads.

namespace detail {

/// Address of coefficient plane 0 for row r in a `planes`-wide stream,
/// plus the in-tile lane; plane i then sits at `base[i * kSoaTileRows]`.
template <typename T>
inline const T* soa_row(const T* stream, int planes, std::int64_t r) {
  const std::int64_t t = r / matrix::kSoaTileRows;
  const std::int64_t w = r - t * matrix::kSoaTileRows;
  return stream + (t * planes) * matrix::kSoaTileRows + w;
}

}  // namespace detail

template <typename Exec, typename CoefT = real>
void aprod1_astro_soa(const SystemView& A, const real* x, real* y,
                      KernelConfig cfg) {
  const CoefT* stream = A.coefs<CoefT>().soa_astro;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* GAIA_RESTRICT rv =
        detail::soa_row(stream, kAstroNnzPerRow, r);
    const real* GAIA_RESTRICT xs = x + A.idx_astro[r];
    real sum = 0;
    GAIA_OMP_SIMD_REDUCTION(sum)
    for (int i = 0; i < kAstroNnzPerRow; ++i)
      sum += load_real(rv[i * matrix::kSoaTileRows]) * xs[i];
    y[r] += sum;
  });
}

template <typename Exec, typename CoefT = real>
void aprod1_att_soa(const SystemView& A, const real* x, real* y,
                    KernelConfig cfg) {
  const CoefT* stream = A.coefs<CoefT>().soa_att;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* GAIA_RESTRICT rv = detail::soa_row(stream, kAttNnzPerRow, r);
    const col_index base = A.att_offset + A.idx_att[r];
    real sum = 0;
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      const real* GAIA_RESTRICT xb = x + base + blk * A.att_stride;
      const CoefT* GAIA_RESTRICT rb =
          rv + blk * kAttBlockSize * matrix::kSoaTileRows;
      GAIA_OMP_SIMD_REDUCTION(sum)
      for (int i = 0; i < kAttBlockSize; ++i)
        sum += load_real(rb[i * matrix::kSoaTileRows]) * xb[i];
    }
    y[r] += sum;
  });
}

template <typename Exec, typename CoefT = real>
void aprod1_instr_soa(const SystemView& A, const real* x, real* y,
                      KernelConfig cfg) {
  const CoefT* stream = A.coefs<CoefT>().soa_instr;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* GAIA_RESTRICT rv =
        detail::soa_row(stream, kInstrNnzPerRow, r);
    const std::int32_t* GAIA_RESTRICT cols =
        A.instr_col + r * kInstrNnzPerRow;
    const real* GAIA_RESTRICT xs = x + A.instr_offset;
    real sum = 0;
    GAIA_OMP_SIMD_REDUCTION(sum)
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      sum += load_real(rv[i * matrix::kSoaTileRows]) * xs[cols[i]];
    y[r] += sum;
  });
}

template <typename Exec, typename CoefT = real>
void aprod1_glob_soa(const SystemView& A, const real* x, real* y,
                     KernelConfig cfg) {
  if (!A.has_global) return;
  const real xg = x[A.glob_offset];
  const CoefT* stream = A.coefs<CoefT>().soa_glob;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const std::int64_t t = r / matrix::kSoaTileRows;
    y[r] += load_real(
                stream[t * matrix::kSoaTileRows +
                       (r - t * matrix::kSoaTileRows)]) *
            xg;
  });
}

template <typename Exec, typename CoefT = real>
void aprod2_astro_soa(const SystemView& A, const real* y, real* x,
                      KernelConfig cfg) {
  const CoefT* stream = A.coefs<CoefT>().soa_astro;
  Exec::launch(A.n_stars, cfg, [=](std::int64_t s) {
    const col_index c0 = s * kAstroParamsPerStar;
    real acc[kAstroNnzPerRow] = {0, 0, 0, 0, 0};
    for (row_index r = A.star_row_start[s]; r < A.star_row_start[s + 1];
         ++r) {
      const CoefT* rv = detail::soa_row(stream, kAstroNnzPerRow, r);
      const real yr = y[r];
      for (int i = 0; i < kAstroNnzPerRow; ++i)
        acc[i] += load_real(rv[i * matrix::kSoaTileRows]) * yr;
    }
    for (int i = 0; i < kAstroNnzPerRow; ++i) x[c0 + i] += acc[i];
  });
}

template <typename Exec, typename CoefT = real>
void aprod2_att_soa(const SystemView& A, const real* y, real* x,
                    KernelConfig cfg, AtomicMode mode) {
  const CoefT* stream = A.coefs<CoefT>().soa_att;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* rv = detail::soa_row(stream, kAttNnzPerRow, r);
    const real yr = y[r];
    const col_index base = A.att_offset + A.idx_att[r];
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      const col_index c0 = base + blk * A.att_stride;
      for (int i = 0; i < kAttBlockSize; ++i)
        Exec::atomic_add(
            x[c0 + i],
            load_real(rv[(blk * kAttBlockSize + i) * matrix::kSoaTileRows]) *
                yr,
            mode);
    }
  });
}

template <typename Exec, typename CoefT = real>
void aprod2_instr_soa(const SystemView& A, const real* y, real* x,
                      KernelConfig cfg, AtomicMode mode) {
  const CoefT* stream = A.coefs<CoefT>().soa_instr;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const CoefT* rv = detail::soa_row(stream, kInstrNnzPerRow, r);
    const std::int32_t* cols = A.instr_col + r * kInstrNnzPerRow;
    const real yr = y[r];
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      Exec::atomic_add(x[A.instr_offset + cols[i]],
                       load_real(rv[i * matrix::kSoaTileRows]) * yr, mode);
  });
}

template <typename Exec, typename CoefT = real>
void aprod2_glob_soa(const SystemView& A, const real* y, real* x,
                     KernelConfig cfg, AtomicMode mode) {
  if (!A.has_global) return;
  const CoefT* stream = A.coefs<CoefT>().soa_glob;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const std::int64_t t = r / matrix::kSoaTileRows;
    Exec::atomic_add(
        x[A.glob_offset],
        load_real(stream[t * matrix::kSoaTileRows +
                         (r - t * matrix::kSoaTileRows)]) *
            y[r],
        mode);
  });
}

/// Fused shared-section scatter over the SoA streams. Also serves the
/// kSlicedInstr layout: fusing the three sections into one row pass is
/// incompatible with slice-major iteration, and the sliced build always
/// carries the SoA streams.
template <typename Exec, typename CoefT = real>
void aprod2_shared_fused_soa(const SystemView& A, const real* y, real* x,
                             KernelConfig cfg, AtomicMode mode) {
  const CoefT* att_stream = A.coefs<CoefT>().soa_att;
  const CoefT* instr_stream = A.coefs<CoefT>().soa_instr;
  const CoefT* glob_stream = A.coefs<CoefT>().soa_glob;
  Exec::launch(A.n_rows, cfg, [=](std::int64_t r) {
    const real yr = y[r];
    const CoefT* rv_att = detail::soa_row(att_stream, kAttNnzPerRow, r);
    const col_index att_base = A.att_offset + A.idx_att[r];
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      const col_index c0 = att_base + blk * A.att_stride;
      for (int i = 0; i < kAttBlockSize; ++i)
        Exec::atomic_add(
            x[c0 + i],
            load_real(
                rv_att[(blk * kAttBlockSize + i) * matrix::kSoaTileRows]) *
                yr,
            mode);
    }
    const CoefT* rv_instr = detail::soa_row(instr_stream, kInstrNnzPerRow, r);
    const std::int32_t* cols = A.instr_col + r * kInstrNnzPerRow;
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      Exec::atomic_add(x[A.instr_offset + cols[i]],
                       load_real(rv_instr[i * matrix::kSoaTileRows]) * yr,
                       mode);
    if (A.has_global) {
      const std::int64_t t = r / matrix::kSoaTileRows;
      Exec::atomic_add(
          x[A.glob_offset],
          load_real(glob_stream[t * matrix::kSoaTileRows +
                                (r - t * matrix::kSoaTileRows)]) *
              yr,
          mode);
    }
  });
}

template <typename Exec, typename CoefT = real>
void aprod2_att_privatized_soa(const SystemView& A, const real* y, real* x,
                               KernelConfig cfg,
                               backends::ScratchArena* arena = nullptr) {
  const CoefT* stream = A.coefs<CoefT>().soa_att;
  detail::privatized_scatter<Exec>(
      A.n_rows, x, A.att_offset, A.instr_offset - A.att_offset, cfg, arena,
      [=](real* GAIA_RESTRICT slice, std::int64_t r) {
        const CoefT* GAIA_RESTRICT rv =
            detail::soa_row(stream, kAttNnzPerRow, r);
        const real yr = y[r];
        const col_index base = A.idx_att[r];
        for (int blk = 0; blk < kAttBlocks; ++blk) {
          const col_index c0 = base + blk * A.att_stride;
          for (int i = 0; i < kAttBlockSize; ++i)
            slice[c0 + i] +=
                load_real(rv[(blk * kAttBlockSize + i) *
                             matrix::kSoaTileRows]) *
                yr;
        }
      });
}

template <typename Exec, typename CoefT = real>
void aprod2_instr_privatized_soa(const SystemView& A, const real* y, real* x,
                                 KernelConfig cfg,
                                 backends::ScratchArena* arena = nullptr) {
  const CoefT* stream = A.coefs<CoefT>().soa_instr;
  detail::privatized_scatter<Exec>(
      A.n_rows, x, A.instr_offset, A.glob_offset - A.instr_offset, cfg,
      arena, [=](real* GAIA_RESTRICT slice, std::int64_t r) {
        const CoefT* GAIA_RESTRICT rv =
            detail::soa_row(stream, kInstrNnzPerRow, r);
        const std::int32_t* GAIA_RESTRICT cols =
            A.instr_col + r * kInstrNnzPerRow;
        const real yr = y[r];
        for (int i = 0; i < kInstrNnzPerRow; ++i)
          slice[cols[i]] += load_real(rv[i * matrix::kSoaTileRows]) * yr;
      });
}

template <typename Exec, typename CoefT = real>
void aprod2_glob_privatized_soa(const SystemView& A, const real* y, real* x,
                                KernelConfig cfg,
                                backends::ScratchArena* arena = nullptr) {
  if (!A.has_global) return;
  const CoefT* stream = A.coefs<CoefT>().soa_glob;
  detail::privatized_scatter<Exec>(
      A.n_rows, x, A.glob_offset, 1, cfg, arena,
      [=](real* GAIA_RESTRICT slice, std::int64_t r) {
        const std::int64_t t = r / matrix::kSoaTileRows;
        slice[0] += load_real(stream[t * matrix::kSoaTileRows +
                                     (r - t * matrix::kSoaTileRows)]) *
                    y[r];
      });
}

// ---------------------------------------------------------------------------
// StorageLayout::kSlicedInstr bodies: SELL-C-sigma slices for the
// irregular instrumental block (regular blocks run the SoA bodies)
// ---------------------------------------------------------------------------

/// Slice-parallel instrumental gather: one virtual thread per lane slot.
/// Every row occupies exactly one slot, so y[r] is written by exactly
/// one worker; padded lanes carry row -1 and are skipped. The slice
/// sort means neighbouring lanes gather neighbouring x entries — the
/// cache reuse the seed layout's ~90 % miss rate leaves on the table.
template <typename Exec, typename CoefT = real>
void aprod1_instr_sliced(const SystemView& A, const real* x, real* y,
                         KernelConfig cfg) {
  const CoefT* svals = A.coefs<CoefT>().slice_values;
  Exec::launch(A.n_slices * matrix::kSliceHeight, cfg,
               [=](std::int64_t slot) {
    const row_index r = A.slice_rows[slot];
    if (r < 0) return;
    const std::int64_t s = slot / matrix::kSliceHeight;
    const std::int64_t lane = slot - s * matrix::kSliceHeight;
    const std::int64_t base =
        s * kInstrNnzPerRow * matrix::kSliceHeight + lane;
    const CoefT* GAIA_RESTRICT v = svals + base;
    const std::int32_t* GAIA_RESTRICT c = A.slice_cols + base;
    const real* GAIA_RESTRICT xs = x + A.instr_offset;
    real sum = 0;
    GAIA_OMP_SIMD_REDUCTION(sum)
    for (int j = 0; j < kInstrNnzPerRow; ++j)
      sum += load_real(v[j * matrix::kSliceHeight]) *
             xs[c[j * matrix::kSliceHeight]];
    y[r] += sum;
  });
}

/// Slice-parallel instrumental scatter (atomic strategy): the sort
/// clusters nearby target columns within a slice, trading a few more
/// intra-slice collisions for far better locality on x.
template <typename Exec, typename CoefT = real>
void aprod2_instr_sliced(const SystemView& A, const real* y, real* x,
                         KernelConfig cfg, AtomicMode mode) {
  const CoefT* svals = A.coefs<CoefT>().slice_values;
  Exec::launch(A.n_slices * matrix::kSliceHeight, cfg,
               [=](std::int64_t slot) {
    const row_index r = A.slice_rows[slot];
    if (r < 0) return;
    const std::int64_t s = slot / matrix::kSliceHeight;
    const std::int64_t lane = slot - s * matrix::kSliceHeight;
    const std::int64_t base =
        s * kInstrNnzPerRow * matrix::kSliceHeight + lane;
    const CoefT* GAIA_RESTRICT v = svals + base;
    const std::int32_t* GAIA_RESTRICT c = A.slice_cols + base;
    const real yr = y[r];
    for (int j = 0; j < kInstrNnzPerRow; ++j)
      Exec::atomic_add(x[A.instr_offset + c[j * matrix::kSliceHeight]],
                       load_real(v[j * matrix::kSliceHeight]) * yr, mode);
  });
}

/// Privatized instrumental scatter over the sliced storage: the
/// skeleton keeps iterating rows in ascending order (via the row->slot
/// inverse permutation), so worker partitioning, per-row accumulation
/// order and the tree fold are exactly the seed layout's — bit-identical
/// results at a fixed launch shape, layout notwithstanding.
template <typename Exec, typename CoefT = real>
void aprod2_instr_privatized_sliced(const SystemView& A, const real* y,
                                    real* x, KernelConfig cfg,
                                    backends::ScratchArena* arena = nullptr) {
  const CoefT* svals = A.coefs<CoefT>().slice_values;
  detail::privatized_scatter<Exec>(
      A.n_rows, x, A.instr_offset, A.glob_offset - A.instr_offset, cfg,
      arena, [=](real* GAIA_RESTRICT slice, std::int64_t r) {
        const std::int64_t slot = A.slice_row_slot[r];
        const std::int64_t s = slot / matrix::kSliceHeight;
        const std::int64_t lane = slot - s * matrix::kSliceHeight;
        const std::int64_t base =
            s * kInstrNnzPerRow * matrix::kSliceHeight + lane;
        const CoefT* GAIA_RESTRICT v = svals + base;
        const std::int32_t* GAIA_RESTRICT c = A.slice_cols + base;
        const real yr = y[r];
        for (int j = 0; j < kInstrNnzPerRow; ++j)
          slice[c[j * matrix::kSliceHeight]] +=
              load_real(v[j * matrix::kSliceHeight]) * yr;
      });
}

}  // namespace gaia::core
