/// \file preconditioner.hpp
/// \brief Column-scaling preconditioner of the AVU-GSR LSQR.
///
/// The production solver runs a *preconditioned* LSQR (paper SIII-B): the
/// system is normalized column-wise, A -> A D with D = diag(1/||a_j||),
/// solved for z, and the solution is mapped back as x = D z. Column
/// scaling equilibrates the wildly different magnitudes of astrometric,
/// attitude, instrumental and global partials and tightens the condition
/// number LSQR's convergence depends on.
#pragma once

#include <span>
#include <vector>

#include "matrix/system_matrix.hpp"

namespace gaia::core {

/// Euclidean norm of every column of A (size n_cols). Columns that never
/// receive a coefficient (possible in tiny synthetic systems) get norm 1
/// so the scaling stays invertible.
std::vector<real> column_norms(const matrix::SystemMatrix& A);

/// In-place A -> A D: divides each stored coefficient by its column norm.
void apply_column_scaling(matrix::SystemMatrix& A,
                          std::span<const real> norms);

/// Maps the scaled-space solution back: x = D z (divides elementwise by
/// the norms). Also correct for the per-unknown standard errors.
void unscale_solution(std::span<real> x, std::span<const real> norms);

}  // namespace gaia::core
