#include "core/aprod.hpp"

#include "core/kernel_catalog.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "resilience/failover.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/retry.hpp"
#include "tuning/autotuner.hpp"
#include "tuning/kernel_registry.hpp"
#include "util/profiler.hpp"
#include "util/stopwatch.hpp"

namespace gaia::core {

using backends::BackendKind;
using backends::KernelId;

namespace {

/// Span annotations of one kernel launch: backend, launch shape
/// (resolved to the actual grid for the gpusim backend), stream lane,
/// bytes moved, and whether this launch was an autotuner trial.
std::vector<obs::TraceArg> kernel_trace_args(
    BackendKind backend, backends::KernelConfig cfg,
    backends::AtomicMode atomic_mode, const SystemView& view, KernelId id,
    std::int32_t stream, bool trial) {
  if (backend == BackendKind::kGpuSim)
    cfg = backends::GpuSimExec::resolve(cfg);
  std::vector<obs::TraceArg> args;
  args.reserve(8);
  args.emplace_back("backend", backends::to_string(backend));
  args.emplace_back("blocks", static_cast<std::int64_t>(cfg.blocks));
  args.emplace_back("threads", static_cast<std::int64_t>(cfg.threads));
  args.emplace_back("stream", static_cast<std::int64_t>(stream));
  args.emplace_back(
      "bytes", kernel_traffic_bytes(view, id, cfg.layout, cfg.precision));
  if (cfg.layout != backends::StorageLayout::kSeedAos)
    args.emplace_back("layout", backends::to_string(cfg.layout));
  if (cfg.precision != backends::Precision::kFp64)
    args.emplace_back("precision", backends::to_string(cfg.precision));
  if (backends::kernel_uses_atomics(id)) {
    args.emplace_back("strategy", backends::to_string(cfg.strategy));
    if (cfg.strategy == backends::ScatterStrategy::kAtomic)
      args.emplace_back("atomic", backends::to_string(atomic_mode));
  }
  if (trial) args.emplace_back("tuning_trial", std::int64_t{1});
  return args;
}

/// Derived performance counters for one completed (non-trial) launch.
/// The cost shapes come from the kernel catalog, the wall time from the
/// launch stopwatch; the fused scatter reports the summed shape of the
/// three sections it interleaves. Glob launches on a system without a
/// global block are registry no-ops and record nothing.
void record_launch_sample(const SystemView& view, KernelId id, bool fused,
                          BackendKind backend,
                          const backends::KernelConfig& cfg, double seconds) {
  if (!obs::MetricsRegistry::global().enabled()) return;
  const bool glob_noop = !view.has_global;
  obs::KernelSample s;
  s.backend = backends::to_string(backend);
  s.seconds = seconds;
  if (fused) {
    s.kernel = "aprod2_fused";
    s.strategy = "atomic";
    const std::array<KernelId, 3> parts = {
        KernelId::kAprod2Att, KernelId::kAprod2Instr, KernelId::kAprod2Glob};
    for (KernelId part : parts) {
      if (part == KernelId::kAprod2Glob && glob_noop) continue;
      s.bytes += kernel_traffic_bytes(view, part, cfg.layout, cfg.precision);
      s.flops += kernel_flops(view, part);
      s.atomic_updates += kernel_atomic_updates(
          view, part, backends::ScatterStrategy::kAtomic);
    }
  } else {
    if (glob_noop &&
        (id == KernelId::kAprod1Glob || id == KernelId::kAprod2Glob))
      return;
    s.kernel = kernel_region_name(id);
    s.strategy = backends::kernel_uses_atomics(id)
                     ? backends::to_string(cfg.strategy)
                     : "none";
    s.bytes = kernel_traffic_bytes(view, id, cfg.layout, cfg.precision);
    s.flops = kernel_flops(view, id);
    s.atomic_updates = kernel_atomic_updates(view, id, cfg.strategy);
  }
  obs::record_kernel_sample(s);
}

void note_failover(const char* kernel, BackendKind from, BackendKind to) {
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    static obs::Counter& failovers = reg.counter("resilience.failovers");
    failovers.add(1);
  }
  auto& rec = obs::TraceRecorder::current();
  if (rec.enabled()) {
    rec.instant("failover", "resilience", obs::TraceRecorder::kMainTrack,
                {{"kernel", std::string(kernel)},
                 {"from", backends::to_string(from)},
                 {"to", backends::to_string(to)}});
  }
  obs::flight_event("failover", kernel,
                    backends::to_string(from) + " -> " +
                        backends::to_string(to));
}

}  // namespace

Aprod::Aprod(const matrix::SystemMatrix& A, backends::DeviceContext& device,
             AprodOptions options)
    : options_(options),
      active_backend_(options.backend),
      matrix_(&A),
      device_(&device),
      d_values_(device, A.values(), options.coherence),
      d_idx_astro_(device, A.matrix_index_astro(), options.coherence),
      d_idx_att_(device, A.matrix_index_att(), options.coherence),
      d_instr_col_(device, A.instr_col(), options.coherence),
      d_star_row_start_(device, A.star_row_start(), options.coherence) {
  ensure_kernel_catalog();
  // Same construction path as the host view, fed the device-resident
  // copies — scalar fields and layout descriptors can't drift.
  view_ = SystemView::from(
      A, {d_values_.data(), d_idx_astro_.data(), d_idx_att_.data(),
          d_instr_col_.data(), d_star_row_start_.data()});

  if (options_.use_streams) {
    for (auto& s : streams_) s = std::make_unique<backends::Stream>();
  }
}

void Aprod::ensure_layout(backends::StorageLayout layout) {
  if (layout == backends::StorageLayout::kSeedAos) return;
  std::lock_guard<std::mutex> lock(layout_mutex_);
  if (view_.has_layout(layout)) return;
  if (!layouts_)
    layouts_ = std::make_unique<matrix::LayoutedSystem>(*matrix_);
  layouts_->build(layout);
  // Upload the derived arrays once (the "resident before the main loop"
  // contract of paper SIV-a applies to them like the seed arrays) and
  // point the view's descriptors at the device copies.
  const matrix::SoaStreams& soa = layouts_->soa();
  if (soa.built() && !d_soa_astro_) {
    d_soa_astro_ = std::make_unique<backends::DeviceBuffer<real>>(
        *device_, std::span<const real>(soa.astro), options_.coherence);
    d_soa_att_ = std::make_unique<backends::DeviceBuffer<real>>(
        *device_, std::span<const real>(soa.att), options_.coherence);
    d_soa_instr_ = std::make_unique<backends::DeviceBuffer<real>>(
        *device_, std::span<const real>(soa.instr), options_.coherence);
    d_soa_glob_ = std::make_unique<backends::DeviceBuffer<real>>(
        *device_, std::span<const real>(soa.glob), options_.coherence);
    view_.soa_astro = d_soa_astro_->data();
    view_.soa_att = d_soa_att_->data();
    view_.soa_instr = d_soa_instr_->data();
    view_.soa_glob = d_soa_glob_->data();
    view_.soa_padded_rows = soa.padded_rows;
    view_.planes_f64.soa_astro = d_soa_astro_->data();
    view_.planes_f64.soa_att = d_soa_att_->data();
    view_.planes_f64.soa_instr = d_soa_instr_->data();
    view_.planes_f64.soa_glob = d_soa_glob_->data();
  }
  const matrix::SlicedInstr& sliced = layouts_->sliced();
  if (sliced.built() && !d_slice_values_) {
    d_slice_values_ = std::make_unique<backends::DeviceBuffer<real>>(
        *device_, std::span<const real>(sliced.slice_values),
        options_.coherence);
    d_slice_cols_ = std::make_unique<backends::DeviceBuffer<std::int32_t>>(
        *device_, std::span<const std::int32_t>(sliced.slice_cols),
        options_.coherence);
    d_slice_rows_ = std::make_unique<backends::DeviceBuffer<row_index>>(
        *device_, std::span<const row_index>(sliced.slice_rows),
        options_.coherence);
    d_slice_row_slot_ = std::make_unique<backends::DeviceBuffer<row_index>>(
        *device_, std::span<const row_index>(sliced.row_slot),
        options_.coherence);
    view_.slice_values = d_slice_values_->data();
    view_.slice_cols = d_slice_cols_->data();
    view_.slice_rows = d_slice_rows_->data();
    view_.slice_row_slot = d_slice_row_slot_->data();
    view_.n_slices = sliced.n_slices;
    view_.planes_f64.slice_values = d_slice_values_->data();
  }
}

template <typename T>
void Aprod::attach_precision_buffers(const matrix::PrecisionStore<T>& store,
                                     PrecisionBuffers<T>& bufs,
                                     SystemView::CoefPlanes<T>& planes) {
  // Upload each converted stream once; a later call after a new layout
  // build only uploads the streams that appeared since.
  if (store.built() && !bufs.values) {
    bufs.values = std::make_unique<backends::DeviceBuffer<T>>(
        *device_, std::span<const T>(store.values), options_.coherence);
    planes.values = bufs.values->data();
  }
  if (!store.soa_astro.empty() && !bufs.soa_astro) {
    bufs.soa_astro = std::make_unique<backends::DeviceBuffer<T>>(
        *device_, std::span<const T>(store.soa_astro), options_.coherence);
    bufs.soa_att = std::make_unique<backends::DeviceBuffer<T>>(
        *device_, std::span<const T>(store.soa_att), options_.coherence);
    bufs.soa_instr = std::make_unique<backends::DeviceBuffer<T>>(
        *device_, std::span<const T>(store.soa_instr), options_.coherence);
    bufs.soa_glob = std::make_unique<backends::DeviceBuffer<T>>(
        *device_, std::span<const T>(store.soa_glob), options_.coherence);
    planes.soa_astro = bufs.soa_astro->data();
    planes.soa_att = bufs.soa_att->data();
    planes.soa_instr = bufs.soa_instr->data();
    planes.soa_glob = bufs.soa_glob->data();
  }
  if (!store.slice_values.empty() && !bufs.slice_values) {
    bufs.slice_values = std::make_unique<backends::DeviceBuffer<T>>(
        *device_, std::span<const T>(store.slice_values),
        options_.coherence);
    planes.slice_values = bufs.slice_values->data();
  }
}

void Aprod::ensure_precision(backends::Precision precision) {
  if (precision == backends::Precision::kFp64) return;
  std::lock_guard<std::mutex> lock(layout_mutex_);
  if (!layouts_)
    layouts_ = std::make_unique<matrix::LayoutedSystem>(*matrix_);
  // Converts the seed values plus every layout stream built so far;
  // streams converted on a previous call are skipped inside.
  layouts_->build_precision(precision);
  switch (precision) {
    case backends::Precision::kFp64:
      break;
    case backends::Precision::kFp32:
      attach_precision_buffers(layouts_->f32(), d_f32_, view_.planes_f32);
      break;
    case backends::Precision::kBf16s:
      attach_precision_buffers(layouts_->b16(), d_b16_, view_.planes_b16);
      break;
  }
}

Aprod::~Aprod() = default;

bool Aprod::tuning_in_progress() const {
  tuning::Autotuner* tuner = options_.autotuner;
  return tuner && active_backend() == tuner->backend() && tuner->active();
}

void Aprod::launch_kernel(KernelId id, bool fused, const real* in, real* out,
                          std::int32_t track) {
  const tuning::KernelRegistry& registry = tuning::KernelRegistry::global();
  auto& injector = resilience::FaultInjector::global();
  const char* name = fused ? "aprod2_fused" : kernel_region_name(id);
  for (;;) {
    const BackendKind backend = active_backend();
    // Trial launches only happen on the tuner's own backend: after a
    // failover the shapes being searched no longer describe the backend
    // actually executing, so the run falls back to the installed table.
    tuning::Autotuner* tuner = options_.autotuner;
    const bool trial = !fused && tuner && backend == tuner->backend() &&
                       tuner->searching(id);
    backends::KernelConfig cfg =
        trial ? tuner->propose(id) : options_.tuning.get(id);
    // The fused scatter interleaves all three sections in one row pass;
    // privatizing it would need every section's scratch at once for no
    // contention win, so fused launches always run the atomic strategy.
    if (fused) cfg.strategy = backends::ScatterStrategy::kAtomic;
    // Materialize the derived layout on first use; if the build cannot
    // fit the device, the launch clamps back to the always-present seed
    // layout instead of aborting the solve.
    if (cfg.layout != backends::StorageLayout::kSeedAos &&
        !view_.has_layout(cfg.layout)) {
      try {
        ensure_layout(cfg.layout);
      } catch (const Error&) {
        cfg.layout = backends::StorageLayout::kSeedAos;
      }
    }
    // Same lazy-materialize-or-clamp contract for the precision axis:
    // convert + upload the reduced-precision planes on first use, and
    // if the conversion cannot fit the device, run full precision.
    if (cfg.precision != backends::Precision::kFp64 &&
        !view_.has_precision(cfg.precision, cfg.layout)) {
      try {
        ensure_precision(cfg.precision);
      } catch (const Error&) {
        cfg.precision = backends::Precision::kFp64;
      }
    }
    try {
      resilience::with_retry(name, options_.retry, [&] {
        obs::ScopedTrace span(name, "kernel", track);
        if (span.armed())
          for (auto& a : kernel_trace_args(backend, cfg,
                                           options_.atomic_mode, view_, id,
                                           track, trial))
            span.add_arg(std::move(a));
        util::ScopedRegion region(name);
        if (injector.armed() &&
            injector.should_fail_kernel(name, backends::to_string(backend)))
          throw resilience::TransientFault(
              std::string("injected launch failure: ") + name);
        tuning::LaunchArgs args;
        args.view = &view_;
        args.in = in;
        args.out = out;
        args.config = cfg;
        args.atomic_mode = options_.atomic_mode;
        args.arena = &scratch_arena_;
        if (trial) {
          util::Stopwatch watch;
          registry.launch(id, backend, args);
          // Closing a kernel's search installs its measured winner into
          // the live table, so the remaining iterations already run
          // tuned.
          if (tuner->report(id, cfg, watch.elapsed_s()))
            options_.tuning.set(id, tuner->best(id));
        } else {
          util::Stopwatch watch;
          if (fused)
            registry.launch_fused(backend, args);
          else
            registry.launch(id, backend, args);
          const double seconds = watch.elapsed_s();
          pass_kernel_seconds_.fetch_add(seconds,
                                         std::memory_order_relaxed);
          record_launch_sample(view_, id, fused, backend, cfg, seconds);
        }
      });
      return;
    } catch (const resilience::PersistentFault&) {
      const auto next = resilience::next_backend(backend);
      if (!options_.failover || !next) throw;
      // Several streams can fault concurrently; only the first thread
      // advances the chain, the rest retry on the already-updated
      // backend.
      BackendKind expected = backend;
      if (active_backend_.compare_exchange_strong(expected, *next)) {
        failover_count_.fetch_add(1, std::memory_order_relaxed);
        note_failover(name, backend, *next);
      }
    }
  }
}

void Aprod::apply1(std::span<const real> x, std::span<real> y) {
  GAIA_CHECK(static_cast<col_index>(x.size()) == view_.n_cols,
             "aprod1 x size mismatch");
  GAIA_CHECK(static_cast<row_index>(y.size()) == view_.n_rows,
             "aprod1 y size mismatch");
  const real* xp = x.data();
  real* yp = y.data();
  obs::ScopedTrace pass("aprod1", "aprod");
  // The four gathers all accumulate into y[r]: they must run in order
  // (one stream). Launched back to back on the calling thread, each one
  // independently retryable/failover-able (injected faults throw before
  // the kernel body runs, so a retried launch never double-applies).
  launch_kernel(KernelId::kAprod1Astro, false, xp, yp,
                obs::TraceRecorder::kMainTrack);
  launch_kernel(KernelId::kAprod1Att, false, xp, yp,
                obs::TraceRecorder::kMainTrack);
  launch_kernel(KernelId::kAprod1Instr, false, xp, yp,
                obs::TraceRecorder::kMainTrack);
  launch_kernel(KernelId::kAprod1Glob, false, xp, yp,
                obs::TraceRecorder::kMainTrack);
  launches_ += view_.has_global ? 4 : 3;
}

void Aprod::apply2(std::span<const real> y, std::span<real> x) {
  GAIA_CHECK(static_cast<row_index>(y.size()) == view_.n_rows,
             "aprod2 y size mismatch");
  GAIA_CHECK(static_cast<col_index>(x.size()) == view_.n_cols,
             "aprod2 x size mismatch");
  const real* yp = y.data();
  real* xp = x.data();
  obs::ScopedTrace pass("aprod2", "aprod");

  if (options_.fuse_aprod2) {
    launch_kernel(KernelId::kAprod2Astro, false, yp, xp,
                  obs::TraceRecorder::kMainTrack);
    // The fused scatter is traced under its own name but shares the
    // attitude kernel's tuning/fault identity.
    launch_kernel(KernelId::kAprod2Att, true, yp, xp,
                  obs::TraceRecorder::kMainTrack);
    launches_ += 2;
    return;
  }

  const std::array<KernelId, 4> kernels = {
      KernelId::kAprod2Astro, KernelId::kAprod2Att, KernelId::kAprod2Instr,
      KernelId::kAprod2Glob};
  const std::size_t active = view_.has_global ? 4 : 3;

  if (options_.use_streams && !tuning_in_progress()) {
    // The scatters target disjoint sections of x, so overlapping them
    // does not increase atomic contention (paper SIV); each kernel goes
    // to its own stream, then all streams are joined. A launch fault
    // inside a stream retries/fails-over on the stream's thread; an
    // exhausted chain surfaces at synchronize(). While the autotuner is
    // still searching, overlap is suppressed: four concurrent kernels
    // would pollute each other's trial timings.
    pass_kernel_seconds_.store(0, std::memory_order_relaxed);
    util::Stopwatch pass_watch;
    for (std::size_t k = 0; k < active; ++k) {
      streams_[k]->enqueue([this, id = kernels[k], yp, xp,
                            track = streams_[k]->id()] {
        launch_kernel(id, false, yp, xp, track);
      });
    }
    for (std::size_t k = 0; k < active; ++k) streams_[k]->synchronize();
    // Overlap ratio: sum of per-kernel times over the pass wall time.
    // ~1.0 means the streams serialized, ~`active` means full overlap.
    obs::record_stream_overlap(
        pass_kernel_seconds_.load(std::memory_order_relaxed),
        pass_watch.elapsed_s());
  } else {
    for (std::size_t k = 0; k < active; ++k)
      launch_kernel(kernels[k], false, yp, xp,
                    obs::TraceRecorder::kMainTrack);
  }
  launches_ += active;
}

}  // namespace gaia::core
