#include "core/aprod.hpp"

#include "core/aprod_kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/failover.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/retry.hpp"
#include "util/profiler.hpp"

namespace gaia::core {

using backends::BackendKind;
using backends::KernelId;

namespace {

/// Bytes a kernel moves through memory (the HBM-traffic accounting a
/// vendor profiler reports): coefficient values + index arrays + vector
/// gathers/scatters, per row. An estimate with the same structure as
/// perfmodel::KernelCostModel::kernel_traffic_bytes, computed from the
/// live system dimensions.
std::uint64_t kernel_trace_bytes(const SystemView& v, KernelId id) {
  const auto rows = static_cast<std::uint64_t>(v.n_rows);
  const bool is_aprod1 = id < KernelId::kAprod2Astro;
  int nnz = 0;
  std::uint64_t idx_bytes = 0;
  switch (id) {
    case KernelId::kAprod1Astro:
    case KernelId::kAprod2Astro:
      nnz = kAstroNnzPerRow;
      idx_bytes = sizeof(col_index);
      break;
    case KernelId::kAprod1Att:
    case KernelId::kAprod2Att:
      nnz = kAttNnzPerRow;
      idx_bytes = sizeof(col_index);
      break;
    case KernelId::kAprod1Instr:
    case KernelId::kAprod2Instr:
      nnz = kInstrNnzPerRow;
      idx_bytes = kInstrNnzPerRow * sizeof(std::int32_t);
      break;
    case KernelId::kAprod1Glob:
    case KernelId::kAprod2Glob:
      nnz = kGlobNnzPerRow;
      idx_bytes = 0;
      break;
  }
  const auto value_bytes = static_cast<std::uint64_t>(nnz) * sizeof(real);
  // aprod1 gathers x (nnz reads) and read-modify-writes y once; aprod2
  // reads y once and read-modify-writes nnz entries of x.
  const std::uint64_t vector_bytes =
      is_aprod1 ? value_bytes + 2 * sizeof(real)
                : sizeof(real) + 2 * value_bytes;
  return rows * (value_bytes + idx_bytes + vector_bytes);
}

const char* kernel_region_name(KernelId id) {
  static const char* kNames[] = {"aprod1_astro", "aprod1_att",
                                 "aprod1_instr", "aprod1_glob",
                                 "aprod2_astro", "aprod2_att",
                                 "aprod2_instr", "aprod2_glob"};
  return kNames[static_cast<int>(id)];
}

/// Span annotations of one kernel launch: backend, launch shape
/// (resolved to the actual grid for the gpusim backend), stream lane,
/// and bytes moved.
std::vector<obs::TraceArg> kernel_trace_args(BackendKind backend,
                                             const AprodOptions& options,
                                             const SystemView& view,
                                             KernelId id,
                                             std::int32_t stream) {
  backends::KernelConfig cfg = options.tuning.get(id);
  if (backend == BackendKind::kGpuSim)
    cfg = backends::GpuSimExec::resolve(cfg);
  std::vector<obs::TraceArg> args;
  args.reserve(6);
  args.emplace_back("backend", backends::to_string(backend));
  args.emplace_back("blocks", static_cast<std::int64_t>(cfg.blocks));
  args.emplace_back("threads", static_cast<std::int64_t>(cfg.threads));
  args.emplace_back("stream", static_cast<std::int64_t>(stream));
  args.emplace_back("bytes", kernel_trace_bytes(view, id));
  if (backends::kernel_uses_atomics(id))
    args.emplace_back("atomic", backends::to_string(options.atomic_mode));
  return args;
}

void note_failover(const char* kernel, BackendKind from, BackendKind to) {
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    static obs::Counter& failovers = reg.counter("resilience.failovers");
    failovers.add(1);
  }
  auto& rec = obs::TraceRecorder::global();
  if (rec.enabled()) {
    rec.instant("failover", "resilience", obs::TraceRecorder::kMainTrack,
                {{"kernel", std::string(kernel)},
                 {"from", backends::to_string(from)},
                 {"to", backends::to_string(to)}});
  }
}

}  // namespace

Aprod::Aprod(const matrix::SystemMatrix& A, backends::DeviceContext& device,
             AprodOptions options)
    : options_(options),
      active_backend_(options.backend),
      d_values_(device, A.values(), options.coherence),
      d_idx_astro_(device, A.matrix_index_astro(), options.coherence),
      d_idx_att_(device, A.matrix_index_att(), options.coherence),
      d_instr_col_(device, A.instr_col(), options.coherence),
      d_star_row_start_(device, A.star_row_start(), options.coherence) {
  view_ = SystemView::from(A);
  // Re-point the view at the device-resident copies.
  view_.values = d_values_.data();
  view_.idx_astro = d_idx_astro_.data();
  view_.idx_att = d_idx_att_.data();
  view_.instr_col = d_instr_col_.data();
  view_.star_row_start = d_star_row_start_.data();

  if (options_.use_streams) {
    for (auto& s : streams_) s = std::make_unique<backends::Stream>();
  }
}

Aprod::~Aprod() = default;

void Aprod::resilient_launch(KernelId id, std::int32_t track,
                             const std::function<void(BackendKind)>& run) {
  auto& injector = resilience::FaultInjector::global();
  const char* name = kernel_region_name(id);
  for (;;) {
    const BackendKind backend = active_backend();
    try {
      resilience::with_retry(name, options_.retry, [&] {
        obs::ScopedTrace span(name, "kernel", track);
        if (span.armed())
          for (auto& a :
               kernel_trace_args(backend, options_, view_, id, track))
            span.add_arg(std::move(a));
        util::ScopedRegion region(name);
        if (injector.armed() &&
            injector.should_fail_kernel(name, backends::to_string(backend)))
          throw resilience::TransientFault(
              std::string("injected launch failure: ") + name);
        run(backend);
      });
      return;
    } catch (const resilience::PersistentFault&) {
      const auto next = resilience::next_backend(backend);
      if (!options_.failover || !next) throw;
      // Several streams can fault concurrently; only the first thread
      // advances the chain, the rest retry on the already-updated
      // backend.
      BackendKind expected = backend;
      if (active_backend_.compare_exchange_strong(expected, *next)) {
        failover_count_.fetch_add(1, std::memory_order_relaxed);
        note_failover(name, backend, *next);
      }
    }
  }
}

void Aprod::launch_aprod1(KernelId id, const real* x, real* y) {
  resilient_launch(id, obs::TraceRecorder::kMainTrack, [&](BackendKind bk) {
    const backends::KernelConfig cfg = options_.tuning.get(id);
    backends::dispatch(bk, [&](auto exec) {
      using Exec = decltype(exec);
      switch (id) {
        case KernelId::kAprod1Astro:
          aprod1_astro<Exec>(view_, x, y, cfg);
          break;
        case KernelId::kAprod1Att:
          aprod1_att<Exec>(view_, x, y, cfg);
          break;
        case KernelId::kAprod1Instr:
          aprod1_instr<Exec>(view_, x, y, cfg);
          break;
        case KernelId::kAprod1Glob:
          aprod1_glob<Exec>(view_, x, y, cfg);
          break;
        default:
          throw Error("launch_aprod1 called with an aprod2 kernel id");
      }
    });
  });
}

void Aprod::apply1(std::span<const real> x, std::span<real> y) {
  GAIA_CHECK(static_cast<col_index>(x.size()) == view_.n_cols,
             "aprod1 x size mismatch");
  GAIA_CHECK(static_cast<row_index>(y.size()) == view_.n_rows,
             "aprod1 y size mismatch");
  const real* xp = x.data();
  real* yp = y.data();
  obs::ScopedTrace pass("aprod1", "aprod");
  // The four gathers all accumulate into y[r]: they must run in order
  // (one stream). Launched back to back on the calling thread, each one
  // independently retryable/failover-able (injected faults throw before
  // the kernel body runs, so a retried launch never double-applies).
  launch_aprod1(KernelId::kAprod1Astro, xp, yp);
  launch_aprod1(KernelId::kAprod1Att, xp, yp);
  launch_aprod1(KernelId::kAprod1Instr, xp, yp);
  launch_aprod1(KernelId::kAprod1Glob, xp, yp);
  launches_ += view_.has_global ? 4 : 3;
}

void Aprod::launch_aprod2(KernelId id, const real* y, real* x,
                          std::int32_t track) {
  const backends::KernelConfig cfg = options_.tuning.get(id);
  const backends::AtomicMode mode = options_.atomic_mode;
  const int region_idx =
      static_cast<int>(id) - static_cast<int>(KernelId::kAprod2Astro);
  GAIA_CHECK(region_idx >= 0 && region_idx < 4,
             "launch_aprod2 called with an aprod1 kernel id");
  resilient_launch(id, track, [&](BackendKind bk) {
    backends::dispatch(bk, [&](auto exec) {
      using Exec = decltype(exec);
      switch (id) {
        case KernelId::kAprod2Astro:
          aprod2_astro<Exec>(view_, y, x, cfg);
          break;
        case KernelId::kAprod2Att:
          aprod2_att<Exec>(view_, y, x, cfg, mode);
          break;
        case KernelId::kAprod2Instr:
          aprod2_instr<Exec>(view_, y, x, cfg, mode);
          break;
        case KernelId::kAprod2Glob:
          aprod2_glob<Exec>(view_, y, x, cfg, mode);
          break;
        default:
          throw Error("launch_aprod2 called with an aprod1 kernel id");
      }
    });
  });
}

void Aprod::apply2(std::span<const real> y, std::span<real> x) {
  GAIA_CHECK(static_cast<row_index>(y.size()) == view_.n_rows,
             "aprod2 y size mismatch");
  GAIA_CHECK(static_cast<col_index>(x.size()) == view_.n_cols,
             "aprod2 x size mismatch");
  const real* yp = y.data();
  real* xp = x.data();
  obs::ScopedTrace pass("aprod2", "aprod");

  if (options_.fuse_aprod2) {
    resilient_launch(KernelId::kAprod2Astro, obs::TraceRecorder::kMainTrack,
                     [&](BackendKind bk) {
                       backends::dispatch(bk, [&](auto exec) {
                         using Exec = decltype(exec);
                         aprod2_astro<Exec>(
                             view_, yp, xp,
                             options_.tuning.get(KernelId::kAprod2Astro));
                       });
                     });
    {
      // The fused scatter is traced under its own name but shares the
      // attitude kernel's tuning/fault identity.
      obs::ScopedTrace span("aprod2_fused", "kernel");
      if (span.armed())
        for (auto& a : kernel_trace_args(active_backend(), options_, view_,
                                         KernelId::kAprod2Att, 0))
          span.add_arg(std::move(a));
      util::ScopedRegion region("aprod2_fused");
      backends::dispatch(active_backend(), [&](auto exec) {
        using Exec = decltype(exec);
        aprod2_shared_fused<Exec>(view_, yp, xp,
                                  options_.tuning.get(KernelId::kAprod2Att),
                                  options_.atomic_mode);
      });
    }
    launches_ += 2;
    return;
  }

  const std::array<KernelId, 4> kernels = {
      KernelId::kAprod2Astro, KernelId::kAprod2Att, KernelId::kAprod2Instr,
      KernelId::kAprod2Glob};
  const std::size_t active = view_.has_global ? 4 : 3;

  if (options_.use_streams) {
    // The scatters target disjoint sections of x, so overlapping them
    // does not increase atomic contention (paper SIV); each kernel goes
    // to its own stream, then all streams are joined. A launch fault
    // inside a stream retries/fails-over on the stream's thread; an
    // exhausted chain surfaces at synchronize().
    for (std::size_t k = 0; k < active; ++k) {
      streams_[k]->enqueue([this, id = kernels[k], yp, xp,
                            track = streams_[k]->id()] {
        launch_aprod2(id, yp, xp, track);
      });
    }
    for (std::size_t k = 0; k < active; ++k) streams_[k]->synchronize();
  } else {
    for (std::size_t k = 0; k < active; ++k)
      launch_aprod2(kernels[k], yp, xp, obs::TraceRecorder::kMainTrack);
  }
  launches_ += active;
}

}  // namespace gaia::core
