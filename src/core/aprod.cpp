#include "core/aprod.hpp"

#include "core/aprod_kernels.hpp"
#include "util/profiler.hpp"

namespace gaia::core {

using backends::BackendKind;
using backends::KernelId;

Aprod::Aprod(const matrix::SystemMatrix& A, backends::DeviceContext& device,
             AprodOptions options)
    : options_(options),
      d_values_(device, A.values(), options.coherence),
      d_idx_astro_(device, A.matrix_index_astro(), options.coherence),
      d_idx_att_(device, A.matrix_index_att(), options.coherence),
      d_instr_col_(device, A.instr_col(), options.coherence),
      d_star_row_start_(device, A.star_row_start(), options.coherence) {
  view_ = SystemView::from(A);
  // Re-point the view at the device-resident copies.
  view_.values = d_values_.data();
  view_.idx_astro = d_idx_astro_.data();
  view_.idx_att = d_idx_att_.data();
  view_.instr_col = d_instr_col_.data();
  view_.star_row_start = d_star_row_start_.data();

  if (options_.use_streams) {
    for (auto& s : streams_) s = std::make_unique<backends::Stream>();
  }
}

Aprod::~Aprod() = default;

void Aprod::apply1(std::span<const real> x, std::span<real> y) {
  GAIA_CHECK(static_cast<col_index>(x.size()) == view_.n_cols,
             "aprod1 x size mismatch");
  GAIA_CHECK(static_cast<row_index>(y.size()) == view_.n_rows,
             "aprod1 y size mismatch");
  const real* xp = x.data();
  real* yp = y.data();
  // The four gathers all accumulate into y[r]: they must run in order
  // (one stream). Launched back to back on the calling thread.
  backends::dispatch(options_.backend, [&](auto exec) {
    using Exec = decltype(exec);
    {
      util::ScopedRegion region("aprod1_astro");
      aprod1_astro<Exec>(view_, xp, yp,
                         options_.tuning.get(KernelId::kAprod1Astro));
    }
    {
      util::ScopedRegion region("aprod1_att");
      aprod1_att<Exec>(view_, xp, yp,
                       options_.tuning.get(KernelId::kAprod1Att));
    }
    {
      util::ScopedRegion region("aprod1_instr");
      aprod1_instr<Exec>(view_, xp, yp,
                         options_.tuning.get(KernelId::kAprod1Instr));
    }
    {
      util::ScopedRegion region("aprod1_glob");
      aprod1_glob<Exec>(view_, xp, yp,
                        options_.tuning.get(KernelId::kAprod1Glob));
    }
  });
  launches_ += view_.has_global ? 4 : 3;
}

void Aprod::launch_aprod2(KernelId id, const real* y, real* x) {
  const backends::KernelConfig cfg = options_.tuning.get(id);
  const backends::AtomicMode mode = options_.atomic_mode;
  static const char* kRegionNames[] = {"aprod2_astro", "aprod2_att",
                                       "aprod2_instr", "aprod2_glob"};
  const int region_idx =
      static_cast<int>(id) - static_cast<int>(KernelId::kAprod2Astro);
  GAIA_CHECK(region_idx >= 0 && region_idx < 4,
             "launch_aprod2 called with an aprod1 kernel id");
  util::ScopedRegion region(kRegionNames[region_idx]);
  backends::dispatch(options_.backend, [&](auto exec) {
    using Exec = decltype(exec);
    switch (id) {
      case KernelId::kAprod2Astro:
        aprod2_astro<Exec>(view_, y, x, cfg);
        break;
      case KernelId::kAprod2Att:
        aprod2_att<Exec>(view_, y, x, cfg, mode);
        break;
      case KernelId::kAprod2Instr:
        aprod2_instr<Exec>(view_, y, x, cfg, mode);
        break;
      case KernelId::kAprod2Glob:
        aprod2_glob<Exec>(view_, y, x, cfg, mode);
        break;
      default:
        throw Error("launch_aprod2 called with an aprod1 kernel id");
    }
  });
}

void Aprod::apply2(std::span<const real> y, std::span<real> x) {
  GAIA_CHECK(static_cast<row_index>(y.size()) == view_.n_rows,
             "aprod2 y size mismatch");
  GAIA_CHECK(static_cast<col_index>(x.size()) == view_.n_cols,
             "aprod2 x size mismatch");
  const real* yp = y.data();
  real* xp = x.data();

  if (options_.fuse_aprod2) {
    backends::dispatch(options_.backend, [&](auto exec) {
      using Exec = decltype(exec);
      {
        util::ScopedRegion region("aprod2_astro");
        aprod2_astro<Exec>(view_, yp, xp,
                           options_.tuning.get(KernelId::kAprod2Astro));
      }
      {
        util::ScopedRegion region("aprod2_fused");
        aprod2_shared_fused<Exec>(view_, yp, xp,
                                  options_.tuning.get(KernelId::kAprod2Att),
                                  options_.atomic_mode);
      }
    });
    launches_ += 2;
    return;
  }

  const std::array<KernelId, 4> kernels = {
      KernelId::kAprod2Astro, KernelId::kAprod2Att, KernelId::kAprod2Instr,
      KernelId::kAprod2Glob};
  const std::size_t active = view_.has_global ? 4 : 3;

  if (options_.use_streams) {
    // The scatters target disjoint sections of x, so overlapping them
    // does not increase atomic contention (paper SIV); each kernel goes
    // to its own stream, then all streams are joined.
    for (std::size_t k = 0; k < active; ++k) {
      streams_[k]->enqueue(
          [this, id = kernels[k], yp, xp] { launch_aprod2(id, yp, xp); });
    }
    for (std::size_t k = 0; k < active; ++k) streams_[k]->synchronize();
  } else {
    for (std::size_t k = 0; k < active; ++k) launch_aprod2(kernels[k], yp, xp);
  }
  launches_ += active;
}

}  // namespace gaia::core
