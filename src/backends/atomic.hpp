/// \file atomic.hpp
/// \brief Floating-point atomic accumulation — the aprod2 hot spot.
///
/// The transposed product A^T b scatters into the unknown vector; rows
/// sharing attitude/instrumental/global columns collide, so the updates
/// must be atomic (paper SIV). The paper found that compilers differ in
/// *how* they lower the atomic: native read-modify-write (RMW) where the
/// ISA supports FP atomics vs. a compare-and-swap (CAS) retry loop, with
/// a large performance gap on MI250X (`-munsafe-fp-atomics`). We provide
/// both lowerings so the behavioural difference is real code, and the
/// performance model prices them per platform.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace gaia::backends {

enum class AtomicMode : std::uint8_t {
  kNativeRmw,  ///< hardware fetch-add (e.g. global_atomic_add_f64)
  kCasLoop,    ///< compare-exchange retry loop (portable fallback)
};

[[nodiscard]] std::string to_string(AtomicMode mode);

/// RMW-style atomic add. (On CPUs std::atomic_ref<double>::fetch_add is
/// itself typically a CAS loop; the semantic contract — a single atomic
/// accumulation — is what the solver needs, and the cost difference is
/// modelled, not measured, on host.)
inline void atomic_add_rmw(real& target, real value) {
  std::atomic_ref<real>(target).fetch_add(value,
                                          std::memory_order_relaxed);
}

/// Explicit CAS retry loop, the lowering emitted by compilers that cannot
/// prove the unsafe-FP-atomics contract. With metrics enabled, retry
/// counts are recorded — the host-measurable analog of the contention
/// the performance model prices on MI250X; the disabled path stays at
/// one relaxed load on top of the loop itself.
inline void atomic_add_cas(real& target, real value) {
  std::atomic_ref<real> ref(target);
  real expected = ref.load(std::memory_order_relaxed);
  if (obs::MetricsRegistry::global().enabled()) [[unlikely]] {
    std::uint64_t retries = 0;
    while (!ref.compare_exchange_weak(expected, expected + value,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
      ++retries;
    }
    obs::count_cas(1, retries);
    return;
  }
  while (!ref.compare_exchange_weak(expected, expected + value,
                                    std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
    // expected reloaded by compare_exchange_weak on failure
  }
}

/// Dispatch on the mode the "compiler" (framework+flags) selected.
inline void atomic_add(real& target, real value, AtomicMode mode) {
  if (mode == AtomicMode::kNativeRmw)
    atomic_add_rmw(target, value);
  else
    atomic_add_cas(target, value);
}

}  // namespace gaia::backends
