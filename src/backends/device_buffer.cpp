#include "backends/device_buffer.hpp"

// Header-only templates; translation unit anchors the target.
namespace gaia::backends {}
