#include "backends/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace gaia::backends {

ThreadPool::ThreadPool(unsigned n_workers) {
  threads_.reserve(n_workers);
  for (unsigned i = 0; i < n_workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::work_on(Job& job) {
  job.active.fetch_add(1, std::memory_order_acq_rel);
  std::int64_t start;
  while ((start = job.next.fetch_add(job.grain, std::memory_order_relaxed)) <
         job.n) {
    job.body(start, std::min(start + job.grain, job.n));
  }
  // The last participant to leave an exhausted job signals completion.
  if (job.active.fetch_sub(1, std::memory_order_acq_rel) == 1)
    job.signal_done();
}

void ThreadPool::parallel_for(std::int64_t n, std::int64_t grain,
                              RangeBody body) {
  GAIA_CHECK(grain > 0, "parallel_for grain must be positive");
  if (n <= 0) return;
  if (threads_.empty() || n <= grain) {
    body(0, n);
    return;
  }
  auto job = std::make_shared<Job>(n, grain, std::move(body));
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    jobs_.push_back(job);
  }
  queue_cv_.notify_all();
  work_on(*job);
  job->wait_done();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    std::erase(jobs_, job);
  }
}

std::shared_ptr<ThreadPool::Job> ThreadPool::take_job() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_cv_.wait(lock, [&] {
    if (stopping_) return true;
    return std::any_of(jobs_.begin(), jobs_.end(),
                       [](const auto& j) { return !j->exhausted(); });
  });
  if (stopping_) return nullptr;
  for (const auto& j : jobs_) {
    if (!j->exhausted()) return j;
  }
  return nullptr;  // raced with completion; loop again
}

void ThreadPool::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job = take_job();
    if (!job) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stopping_) return;
      continue;
    }
    work_on(*job);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("GAIA_POOL_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 0 && v <= 1024) return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(3u, hw > 0 ? hw - 1 : 3u);
  }());
  return pool;
}

}  // namespace gaia::backends
