#include "backends/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/error.hpp"

namespace gaia::backends {

namespace {

/// Pins the calling thread to one CPU. Slot 0 is left to the submitting
/// thread (worker i takes CPU i+1 mod ncpu), so the main thread and the
/// first worker do not fight over a core. Best-effort: a failed
/// affinity call (cgroup-restricted CPU set, exotic platform) is simply
/// ignored — pinning is an optimization, never a correctness need.
void pin_current_thread(unsigned worker_index) {
#ifdef __linux__
  const unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET((worker_index + 1) % ncpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker_index;
#endif
}

}  // namespace

bool ThreadPool::pin_threads_requested() {
  static const bool requested = [] {
    const char* env = std::getenv("GAIA_PIN_THREADS");
    if (!env) return false;
    const std::string v(env);
    return v == "1" || v == "on" || v == "true";
  }();
  return requested;
}

ThreadPool::ThreadPool(unsigned n_workers) {
  const bool pin = pin_threads_requested();
  threads_.reserve(n_workers);
  for (unsigned i = 0; i < n_workers; ++i)
    threads_.emplace_back([this, i, pin] {
      if (pin) pin_current_thread(i);
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::work_on(Job& job) {
  job.active.fetch_add(1, std::memory_order_acq_rel);
  std::int64_t start;
  while ((start = job.next.fetch_add(job.grain, std::memory_order_relaxed)) <
         job.n) {
    job.body(start, std::min(start + job.grain, job.n));
  }
  // The last participant to leave an exhausted job signals completion.
  if (job.active.fetch_sub(1, std::memory_order_acq_rel) == 1)
    job.signal_done();
}

void ThreadPool::parallel_for(std::int64_t n, std::int64_t grain,
                              RangeBody body) {
  GAIA_CHECK(grain > 0, "parallel_for grain must be positive");
  if (n <= 0) return;
  if (threads_.empty() || n <= grain) {
    body(0, n);
    return;
  }
  auto job = std::make_shared<Job>(n, grain, std::move(body));
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    jobs_.push_back(job);
  }
  queue_cv_.notify_all();
  work_on(*job);
  job->wait_done();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    std::erase(jobs_, job);
  }
}

std::shared_ptr<ThreadPool::Job> ThreadPool::take_job() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_cv_.wait(lock, [&] {
    if (stopping_) return true;
    return std::any_of(jobs_.begin(), jobs_.end(),
                       [](const auto& j) { return !j->exhausted(); });
  });
  if (stopping_) return nullptr;
  for (const auto& j : jobs_) {
    if (!j->exhausted()) return j;
  }
  return nullptr;  // raced with completion; loop again
}

void ThreadPool::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job = take_job();
    if (!job) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stopping_) return;
      continue;
    }
    work_on(*job);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("GAIA_POOL_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 0 && v <= 1024) return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(3u, hw > 0 ? hw - 1 : 3u);
  }());
  return pool;
}

void first_touch_zero(void* p, std::size_t bytes) {
  if (p == nullptr || bytes == 0) return;
  // 256 KiB chunks: large enough to amortize the chunk counter, small
  // enough that pages interleave across however many workers show up.
  constexpr std::int64_t kChunk = 256 * 1024;
  auto* base = static_cast<char*>(p);
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(bytes), kChunk,
      [base](std::int64_t lo, std::int64_t hi) {
        std::memset(base + lo, 0, static_cast<std::size_t>(hi - lo));
      });
}

}  // namespace gaia::backends
