#include "backends/kernel_config.hpp"

#include "backends/atomic.hpp"

namespace gaia::backends {

std::string to_string(KernelId id) {
  switch (id) {
    case KernelId::kAprod1Astro:
      return "aprod1_astro";
    case KernelId::kAprod1Att:
      return "aprod1_att";
    case KernelId::kAprod1Instr:
      return "aprod1_instr";
    case KernelId::kAprod1Glob:
      return "aprod1_glob";
    case KernelId::kAprod2Astro:
      return "aprod2_astro";
    case KernelId::kAprod2Att:
      return "aprod2_att";
    case KernelId::kAprod2Instr:
      return "aprod2_instr";
    case KernelId::kAprod2Glob:
      return "aprod2_glob";
  }
  return "unknown_kernel";
}

std::string to_string(AtomicMode mode) {
  return mode == AtomicMode::kNativeRmw ? "rmw" : "cas";
}

TuningTable TuningTable::tuned_default() {
  TuningTable t;
  // Full-occupancy shapes for the gather-style kernels...
  const KernelConfig wide{256, 128};
  t.set(KernelId::kAprod1Astro, wide);
  t.set(KernelId::kAprod1Att, wide);
  t.set(KernelId::kAprod1Instr, wide);
  t.set(KernelId::kAprod1Glob, wide);
  t.set(KernelId::kAprod2Astro, wide);
  // ...and deliberately narrow shapes where atomics collide (paper SIV):
  // fewer blocks and threads lower the collision probability at the cost
  // of occupancy, recovered by overlapping the kernels in streams.
  const KernelConfig narrow{32, 32};
  t.set(KernelId::kAprod2Att, narrow);
  t.set(KernelId::kAprod2Instr, narrow);
  t.set(KernelId::kAprod2Glob, {8, 32});
  return t;
}

TuningTable TuningTable::untuned(KernelConfig cfg) {
  TuningTable t;
  t.set_all(cfg);
  return t;
}

}  // namespace gaia::backends
