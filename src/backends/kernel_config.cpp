#include "backends/kernel_config.hpp"

#include <charconv>
#include <sstream>

#include "backends/atomic.hpp"
#include "util/error.hpp"

namespace gaia::backends {

std::string to_string(KernelId id) {
  switch (id) {
    case KernelId::kAprod1Astro:
      return "aprod1_astro";
    case KernelId::kAprod1Att:
      return "aprod1_att";
    case KernelId::kAprod1Instr:
      return "aprod1_instr";
    case KernelId::kAprod1Glob:
      return "aprod1_glob";
    case KernelId::kAprod2Astro:
      return "aprod2_astro";
    case KernelId::kAprod2Att:
      return "aprod2_att";
    case KernelId::kAprod2Instr:
      return "aprod2_instr";
    case KernelId::kAprod2Glob:
      return "aprod2_glob";
  }
  return "unknown_kernel";
}

std::string to_string(AtomicMode mode) {
  return mode == AtomicMode::kNativeRmw ? "rmw" : "cas";
}

std::string to_string(ScatterStrategy strategy) {
  return strategy == ScatterStrategy::kAtomic ? "atomic" : "privatized";
}

std::optional<ScatterStrategy> parse_scatter_strategy(
    const std::string& name) {
  if (name == "atomic") return ScatterStrategy::kAtomic;
  if (name == "privatized") return ScatterStrategy::kPrivatized;
  return std::nullopt;
}

std::optional<KernelId> parse_kernel_id(const std::string& name) {
  for (KernelId id : all_kernels()) {
    if (name == to_string(id)) return id;
  }
  return std::nullopt;
}

const std::array<KernelId, kNumKernels>& all_kernels() {
  static const std::array<KernelId, kNumKernels> ids = {
      KernelId::kAprod1Astro, KernelId::kAprod1Att, KernelId::kAprod1Instr,
      KernelId::kAprod1Glob,  KernelId::kAprod2Astro, KernelId::kAprod2Att,
      KernelId::kAprod2Instr, KernelId::kAprod2Glob};
  return ids;
}

bool is_valid_kernel_config(KernelConfig cfg) {
  if (cfg.is_default()) return true;
  return cfg.blocks >= 1 && cfg.blocks <= kMaxBlocks && cfg.threads >= 1 &&
         cfg.threads <= kMaxThreads;
}

void validate_kernel_config(KernelConfig cfg, const std::string& context) {
  if (is_valid_kernel_config(cfg)) return;
  std::ostringstream os;
  os << context << ": invalid kernel launch shape (blocks=" << cfg.blocks
     << ", threads=" << cfg.threads << "); expected {0,0} (backend default) "
     << "or blocks in [1, " << kMaxBlocks << "] and threads in [1, "
     << kMaxThreads << "]";
  throw Error(os.str());
}

KernelConfig parse_kernel_config(const std::string& text) {
  const auto fail = [&](const char* why) -> KernelConfig {
    throw Error("kernel config \"" + text + "\": " + why +
                " (expected BLOCKSxTHREADS, e.g. 32x128)");
  };
  const std::size_t sep = text.find_first_of("xX*");
  if (sep == std::string::npos || sep == 0 || sep + 1 >= text.size())
    return fail("malformed");
  KernelConfig cfg;
  const char* b = text.data();
  auto r1 = std::from_chars(b, b + sep, cfg.blocks);
  auto r2 = std::from_chars(b + sep + 1, b + text.size(), cfg.threads);
  if (r1.ec != std::errc{} || r1.ptr != b + sep || r2.ec != std::errc{} ||
      r2.ptr != b + text.size())
    return fail("not a pair of integers");
  validate_kernel_config(cfg, "kernel config \"" + text + "\"");
  return cfg;
}

void TuningTable::set(KernelId id, KernelConfig cfg) {
  validate_kernel_config(cfg, "TuningTable::set(" + to_string(id) + ")");
  table_[static_cast<std::size_t>(id)] = cfg;
}

void TuningTable::set_all(KernelConfig cfg) {
  validate_kernel_config(cfg, "TuningTable::set_all");
  table_.fill(cfg);
}

TuningTable TuningTable::tuned_default() {
  TuningTable t;
  // Full-occupancy shapes for the gather-style kernels...
  const KernelConfig wide{256, 128};
  t.set(KernelId::kAprod1Astro, wide);
  t.set(KernelId::kAprod1Att, wide);
  t.set(KernelId::kAprod1Instr, wide);
  t.set(KernelId::kAprod1Glob, wide);
  t.set(KernelId::kAprod2Astro, wide);
  // ...and deliberately narrow shapes where atomics collide (paper SIV):
  // fewer blocks and threads lower the collision probability at the cost
  // of occupancy, recovered by overlapping the kernels in streams.
  const KernelConfig narrow{32, 32};
  t.set(KernelId::kAprod2Att, narrow);
  t.set(KernelId::kAprod2Instr, narrow);
  t.set(KernelId::kAprod2Glob, {8, 32});
  return t;
}

TuningTable TuningTable::untuned(KernelConfig cfg) {
  TuningTable t;
  t.set_all(cfg);
  return t;
}

}  // namespace gaia::backends
