#include "backends/stream.hpp"

#include <utility>

namespace gaia::backends {

Stream::Stream() : worker_([this] { run(); }) {}

Stream::~Stream() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void Stream::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(m_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_all();
}

void Stream::record(Event event) {
  enqueue([event] { event.signal(); });
}

void Stream::synchronize() {
  std::unique_lock<std::mutex> lock(m_);
  cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

std::uint64_t Stream::completed() const {
  std::lock_guard<std::mutex> lock(m_);
  return completed_;
}

void Stream::run() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(m_);
      busy_ = false;
      ++completed_;
    }
    cv_.notify_all();
  }
}

}  // namespace gaia::backends
