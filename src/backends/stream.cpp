#include "backends/stream.hpp"

#include <atomic>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gaia::backends {

namespace {
std::int32_t next_stream_id() {
  static std::atomic<std::int32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Stream::Stream()
    : id_(next_stream_id()),
      // The worker inherits the spawning thread's recorder so streamed
      // kernel spans land in the owning rank's trace file, not the
      // global one, during distributed per-rank tracing.
      worker_([this, rec = obs::TraceRecorder::thread_recorder()] {
        obs::ThreadRecorderScope scope(rec);
        run();
      }) {
  // Announce the stream's timeline track up front so even an idle
  // stream shows up labelled in the trace.
  auto& rec = obs::TraceRecorder::current();
  if (rec.enabled()) rec.name_track(id_, "stream-" + std::to_string(id_));
}

Stream::~Stream() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void Stream::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(m_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_all();
}

void Stream::record(Event event) {
  enqueue([event] { event.signal(); });
}

void Stream::synchronize() {
  // The join is the cudaStreamSynchronize analog; the span makes stream
  // stalls visible on the caller's track like nsys does.
  obs::ScopedTrace span("stream.sync", "stream",
                        obs::TraceRecorder::kMainTrack);
  span.add_arg({"stream", static_cast<std::int64_t>(id_)});
  std::unique_lock<std::mutex> lock(m_);
  cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
  if (error_) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::uint64_t Stream::completed() const {
  std::lock_guard<std::mutex> lock(m_);
  return completed_;
}

void Stream::run() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    {
      obs::ScopedTrace span("stream.task", "stream", id_);
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(m_);
        if (!error_) error_ = std::current_exception();
      }
    }
    {
      auto& reg = obs::MetricsRegistry::global();
      if (reg.enabled()) {
        static obs::Counter& tasks = reg.counter("stream.tasks");
        tasks.add(1);
      }
    }
    {
      std::lock_guard<std::mutex> lock(m_);
      busy_ = false;
      ++completed_;
    }
    cv_.notify_all();
  }
}

}  // namespace gaia::backends
