/// \file pstl_algorithms.hpp
/// \brief Minimal C++17-PSTL-style parallel algorithms over the pool.
///
/// The toolchain here has no TBB, so the standard library's
/// `std::execution::par` cannot be used; this header supplies the same
/// programming surface (execution policies + `for_each` /
/// `transform_reduce` over random-access iterators) implemented on the
/// shared ThreadPool. Crucially, and faithful to the paper's PSTL
/// finding (SIV-e): *there is no way to pass a kernel shape through this
/// interface* — the implementation picks its own grain, exactly like
/// nvc++ -stdpar picks its own 256-thread blocks.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iterator>
#include <mutex>
#include <numeric>

#include "backends/thread_pool.hpp"

namespace gaia::backends::pstl {

/// Sequenced execution policy tag (std::execution::seq analog).
struct sequenced_policy {};
/// Parallel execution policy tag (std::execution::par analog).
struct parallel_policy {};

inline constexpr sequenced_policy seq{};
inline constexpr parallel_policy par{};

namespace detail {
/// The original fixed grain. A constant grain is the pathology the
/// pSTL-Bench line of work isolates: at small n it over-decomposes (the
/// chunk hand-out counter becomes the bottleneck) and at large n it
/// creates millions of tiny chunks whose dispatch overhead swamps the
/// body. Kept reachable (see `set_legacy_grain`) so the scaling bench
/// can measure before/after.
inline constexpr std::int64_t kDefaultGrain = 1024;

inline std::atomic<bool>& legacy_grain_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

/// Range-proportional grain: ~8 chunks per participant (enough slack
/// for dynamic load balancing without drowning in counter traffic),
/// clamped to [256, 65536] so tiny ranges still amortize dispatch and
/// huge ranges still rebalance. Still chosen by the runtime, never the
/// caller — the PSTL "no tuning knob" property is preserved.
inline std::int64_t auto_grain(std::int64_t n, unsigned workers) {
  const auto participants = static_cast<std::int64_t>(workers) + 1;
  return std::clamp<std::int64_t>(n / (participants * 8),
                                  std::int64_t{256}, std::int64_t{65536});
}

inline std::int64_t grain_for(std::int64_t n, unsigned workers) {
  return legacy_grain_flag().load(std::memory_order_relaxed)
             ? kDefaultGrain
             : auto_grain(n, workers);
}
}  // namespace detail

/// Reverts `for_each(par)` to the fixed 1024-element grain (the
/// pre-chunking behaviour) so benchmarks can quantify the fix; returns
/// the previous setting. Not for production use.
inline bool set_legacy_grain(bool on) {
  return detail::legacy_grain_flag().exchange(on);
}

template <typename It, typename F>
void for_each(sequenced_policy, It first, It last, F f) {
  for (; first != last; ++first) f(*first);
}

template <typename It, typename F>
void for_each(parallel_policy, It first, It last, F f) {
  const std::int64_t n = static_cast<std::int64_t>(last - first);
  ThreadPool& pool = ThreadPool::global();
  pool.parallel_for(n, detail::grain_for(n, pool.workers()),
                    [&](std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i) f(first[i]);
                    });
}

template <typename Policy, typename It, typename Size, typename F>
It for_each_n(Policy policy, It first, Size n, F f) {
  for_each(policy, first, first + static_cast<std::int64_t>(n), std::move(f));
  return first + static_cast<std::int64_t>(n);
}

template <typename It, typename T, typename Reduce, typename Transform>
T transform_reduce(sequenced_policy, It first, It last, T init, Reduce reduce,
                   Transform transform) {
  for (; first != last; ++first) init = reduce(init, transform(*first));
  return init;
}

template <typename It, typename T, typename Reduce, typename Transform>
T transform_reduce(parallel_policy, It first, It last, T init, Reduce reduce,
                   Transform transform) {
  const std::int64_t n = static_cast<std::int64_t>(last - first);
  std::mutex merge_mutex;
  T acc = init;
  bool has_acc = false;
  ThreadPool::global().parallel_for(
      n, detail::kDefaultGrain, [&](std::int64_t lo, std::int64_t hi) {
        T local = transform(first[lo]);
        for (std::int64_t i = lo + 1; i < hi; ++i)
          local = reduce(local, transform(first[i]));
        std::lock_guard<std::mutex> lock(merge_mutex);
        if (has_acc) {
          acc = reduce(acc, local);
        } else {
          acc = reduce(init, local);
          has_acc = true;
        }
      });
  return has_acc ? acc : init;
}

}  // namespace gaia::backends::pstl
