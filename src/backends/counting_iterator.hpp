/// \file counting_iterator.hpp
/// \brief Random-access iterator over an integer range.
///
/// The C++ PSTL port of the solver iterates index spaces, not containers
/// (the classic `std::for_each(par, counting(0), counting(n), ...)`
/// pattern used by stdpar GPU ports, including the paper's). This is the
/// supporting iterator.
#pragma once

#include <cstdint>
#include <iterator>

namespace gaia::backends {

class CountingIterator {
 public:
  using iterator_category = std::random_access_iterator_tag;
  using value_type = std::int64_t;
  using difference_type = std::int64_t;
  using pointer = const std::int64_t*;
  using reference = std::int64_t;

  CountingIterator() = default;
  explicit constexpr CountingIterator(std::int64_t v) : value_(v) {}

  constexpr reference operator*() const { return value_; }
  constexpr reference operator[](difference_type n) const {
    return value_ + n;
  }

  constexpr CountingIterator& operator++() {
    ++value_;
    return *this;
  }
  constexpr CountingIterator operator++(int) {
    CountingIterator tmp = *this;
    ++value_;
    return tmp;
  }
  constexpr CountingIterator& operator--() {
    --value_;
    return *this;
  }
  constexpr CountingIterator operator--(int) {
    CountingIterator tmp = *this;
    --value_;
    return tmp;
  }
  constexpr CountingIterator& operator+=(difference_type n) {
    value_ += n;
    return *this;
  }
  constexpr CountingIterator& operator-=(difference_type n) {
    value_ -= n;
    return *this;
  }
  friend constexpr CountingIterator operator+(CountingIterator it,
                                              difference_type n) {
    return CountingIterator(it.value_ + n);
  }
  friend constexpr CountingIterator operator+(difference_type n,
                                              CountingIterator it) {
    return it + n;
  }
  friend constexpr CountingIterator operator-(CountingIterator it,
                                              difference_type n) {
    return CountingIterator(it.value_ - n);
  }
  friend constexpr difference_type operator-(CountingIterator a,
                                             CountingIterator b) {
    return a.value_ - b.value_;
  }
  friend constexpr bool operator==(CountingIterator a, CountingIterator b) {
    return a.value_ == b.value_;
  }
  friend constexpr auto operator<=>(CountingIterator a, CountingIterator b) {
    return a.value_ <=> b.value_;
  }

 private:
  std::int64_t value_ = 0;
};

}  // namespace gaia::backends
