/// \file thread_pool.hpp
/// \brief Shared worker pool backing the host execution backends.
///
/// All parallel backends (OpenMP excepted — it brings its own runtime)
/// execute on this pool. Design constraints:
///  * multiple submitters may run `parallel_for` concurrently (the solver
///    overlaps aprod2 kernels in streams, like the CUDA original);
///  * the submitting thread participates in its own job, so a pool of
///    size 0 degenerates to serial execution and nested submission cannot
///    deadlock;
///  * chunk hand-out is an atomic counter, so work distribution is
///    dynamic (the virtual "GPU blocks" of the gpusim backend have
///    uneven costs).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gaia::backends {

class ThreadPool {
 public:
  /// Range chunk callback: body(begin, end).
  using RangeBody = std::function<void(std::int64_t, std::int64_t)>;

  /// \param n_workers extra worker threads (submitters also execute work,
  /// so total parallelism is n_workers + concurrent submitters).
  explicit ThreadPool(unsigned n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Executes body over [0, n) in chunks of `grain`; returns when every
  /// chunk completed. Thread-safe; callable concurrently and from within
  /// running chunks.
  void parallel_for(std::int64_t n, std::int64_t grain, RangeBody body);

  /// Process-wide pool. Size from GAIA_POOL_THREADS (default:
  /// max(3, hardware_concurrency - 1) so concurrency is exercised even on
  /// small CI machines). Workers pin to distinct CPUs when
  /// GAIA_PIN_THREADS=1 (see `pin_threads_requested`).
  static ThreadPool& global();

  /// True when GAIA_PIN_THREADS asks for worker affinity (1/on/true).
  /// Pinning fixes the first-touch NUMA story: a worker that faults a
  /// page in stays on the socket that owns it, so the page's bandwidth
  /// is local for the rest of the run. Off by default — on a laptop or
  /// an oversubscribed CI box pinning hurts more than it helps.
  [[nodiscard]] static bool pin_threads_requested();

 private:
  struct Job {
    Job(std::int64_t n_, std::int64_t grain_, RangeBody body_)
        : n(n_), grain(grain_), body(std::move(body_)) {}
    const std::int64_t n;
    const std::int64_t grain;
    const RangeBody body;
    std::atomic<std::int64_t> next{0};
    std::atomic<int> active{0};
    std::mutex m;
    std::condition_variable cv;
    bool done = false;

    [[nodiscard]] bool exhausted() const {
      return next.load(std::memory_order_relaxed) >= n;
    }
    void signal_done() {
      {
        std::lock_guard<std::mutex> lock(m);
        done = true;
      }
      cv.notify_all();
    }
    void wait_done() {
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return done; });
    }
  };

  /// Runs chunks of `job` until exhausted; signals completion if this
  /// thread retires the last chunk.
  static void work_on(Job& job);

  void worker_loop();
  std::shared_ptr<Job> take_job();

  std::vector<std::thread> threads_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stopping_ = false;
};

/// First-touch initialization: zero-fills `bytes` at `p` in page-sized
/// chunks *in parallel over the global pool*, so under Linux's default
/// first-touch NUMA policy each page lands on the node of the worker
/// that will (with pinning and the same chunking) stream it later.
/// Serial zero-fill — what `std::vector`'s allocator does — places every
/// page on the allocating thread's node and remote-access penalties
/// follow. Safe on any freshly allocated region; do not call on live
/// data (it zeroes).
void first_touch_zero(void* p, std::size_t bytes);

}  // namespace gaia::backends
