/// \file device_buffer.hpp
/// \brief Explicit host/device memory management emulation.
///
/// The CUDA original allocates all system data on the GPU once, before
/// the iteration loop, and never exchanges it again (paper SIV-a) — the
/// study forces the same discipline on every port. We reproduce that
/// contract on host: a `DeviceContext` stands for one accelerator with a
/// capacity limit and transfer accounting, and `DeviceBuffer<T>` is the
/// `cudaMalloc`/`cudaMemcpyAsync` analog. The byte counters let tests
/// assert the solver's "copy once, iterate device-resident" property.
#pragma once

#include <atomic>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/retry.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace gaia::backends {

/// Memory-coherence granularity of host-visible allocations. The paper
/// observed (SIV-b) that fine-grain coherence "led to performance
/// degradations due to the atomic operations" on AMD, hence the forced
/// `hipMemAdvise` coarse grain; the flag is carried so the performance
/// model can price it.
enum class CoherenceMode : std::uint8_t { kCoarseGrain, kFineGrain };

/// One simulated accelerator: tracks live allocation against a capacity
/// limit and counts transfer traffic in each direction.
class DeviceContext {
 public:
  /// \param capacity device memory capacity; allocations beyond it throw
  /// (the paper's problem sizes are chosen against this limit).
  explicit DeviceContext(byte_size capacity = 64 * kGiB,
                         std::string name = "hostsim")
      : capacity_(capacity), name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] byte_size capacity() const { return capacity_; }
  [[nodiscard]] byte_size allocated() const { return allocated_.load(); }
  [[nodiscard]] byte_size h2d_bytes() const { return h2d_.load(); }
  [[nodiscard]] byte_size d2h_bytes() const { return d2h_.load(); }
  [[nodiscard]] std::uint64_t alloc_count() const { return allocs_.load(); }

  void reset_transfer_counters() {
    h2d_.store(0);
    d2h_.store(0);
  }

 private:
  template <typename T>
  friend class DeviceBuffer;

  void on_alloc(byte_size bytes) {
    const byte_size now = allocated_.fetch_add(bytes) + bytes;
    if (now > capacity_) {
      allocated_.fetch_sub(bytes);
      throw Error("device '" + name_ + "' out of memory: need " +
                  std::to_string(bytes) + " B on top of " +
                  std::to_string(now - bytes) + " B, capacity " +
                  std::to_string(capacity_) + " B");
    }
    allocs_.fetch_add(1);
  }
  void on_free(byte_size bytes) { allocated_.fetch_sub(bytes); }
  void on_h2d(byte_size bytes) { h2d_.fetch_add(bytes); }
  void on_d2h(byte_size bytes) { d2h_.fetch_add(bytes); }

  byte_size capacity_;
  std::string name_;
  std::atomic<byte_size> allocated_{0};
  std::atomic<byte_size> h2d_{0};
  std::atomic<byte_size> d2h_{0};
  std::atomic<std::uint64_t> allocs_{0};
};

/// Typed device allocation with explicit copies (cudaMalloc analog).
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(DeviceContext& ctx, std::size_t count,
               CoherenceMode coherence = CoherenceMode::kCoarseGrain)
      : ctx_(&ctx), coherence_(coherence), data_(count) {
    ctx_->on_alloc(bytes());
  }

  /// Allocate and copy from host in one step.
  DeviceBuffer(DeviceContext& ctx, std::span<const T> host,
               CoherenceMode coherence = CoherenceMode::kCoarseGrain)
      : DeviceBuffer(ctx, host.size(), coherence) {
    copy_from_host(host);
  }

  ~DeviceBuffer() {
    if (ctx_) ctx_->on_free(bytes());
  }

  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      if (ctx_) ctx_->on_free(bytes());
      ctx_ = other.ctx_;
      coherence_ = other.coherence_;
      data_ = std::move(other.data_);
      other.ctx_ = nullptr;
      other.data_.clear();
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] byte_size bytes() const {
    return static_cast<byte_size>(data_.size()) * sizeof(T);
  }
  [[nodiscard]] CoherenceMode coherence() const { return coherence_; }

  /// "Device pointer" views for kernels.
  [[nodiscard]] std::span<T> span() { return data_; }
  [[nodiscard]] std::span<const T> span() const { return data_; }
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  /// cudaMemcpy(HostToDevice) analog. When fault injection is armed,
  /// each copy is checksummed and retried with backoff: an injected
  /// failure throws before moving bytes; an injected corruption flips a
  /// bit which the CRC verification catches, so the retry re-copies.
  void copy_from_host(std::span<const T> host) {
    GAIA_CHECK(host.size() == data_.size(), "H2D size mismatch");
    auto& injector = resilience::FaultInjector::global();
    if (!injector.armed()) {
      transfer_h2d(host);
      return;
    }
    resilience::with_retry("h2d", util::BackoffPolicy{}, [&] {
      const auto fault = injector.on_transfer(resilience::FaultSite::kH2D);
      if (fault == resilience::TransferFault::kFail)
        throw resilience::TransientFault("injected H2D transfer failure");
      transfer_h2d(host);
      if (fault == resilience::TransferFault::kCorrupt)
        flip_bit(data_.data(), bytes());
      if (util::crc32(host.data(), host.size_bytes()) !=
          util::crc32(data_.data(), host.size_bytes()))
        throw resilience::TransientFault(
            "H2D transfer verification failed (corrupt copy)");
    });
  }

  /// cudaMemcpy(DeviceToHost) analog (same fault/verify contract as
  /// copy_from_host).
  void copy_to_host(std::span<T> host) const {
    GAIA_CHECK(host.size() == data_.size(), "D2H size mismatch");
    auto& injector = resilience::FaultInjector::global();
    if (!injector.armed()) {
      transfer_d2h(host);
      return;
    }
    resilience::with_retry("d2h", util::BackoffPolicy{}, [&] {
      const auto fault = injector.on_transfer(resilience::FaultSite::kD2H);
      if (fault == resilience::TransferFault::kFail)
        throw resilience::TransientFault("injected D2H transfer failure");
      transfer_d2h(host);
      if (fault == resilience::TransferFault::kCorrupt)
        flip_bit(host.data(), host.size_bytes());
      if (util::crc32(data_.data(), host.size_bytes()) !=
          util::crc32(host.data(), host.size_bytes()))
        throw resilience::TransientFault(
            "D2H transfer verification failed (corrupt copy)");
    });
  }

  /// cudaMemset analog.
  void fill(const T& value) {
    std::fill(data_.begin(), data_.end(), value);
  }

 private:
  void transfer_h2d(std::span<const T> host) {
    obs::ScopedTrace span("h2d", "transfer");
    if (span.armed() && ctx_) {
      span.add_arg({"bytes", static_cast<std::uint64_t>(host.size_bytes())});
      span.add_arg({"device", ctx_->name()});
    }
    std::memcpy(data_.data(), host.data(), host.size_bytes());
    if (ctx_) {
      ctx_->on_h2d(host.size_bytes());
      // Same increment point and amount as the device accounting, so
      // the metrics CSV totals match DeviceContext::h2d_bytes exactly.
      obs::count_h2d(host.size_bytes());
    }
  }

  void transfer_d2h(std::span<T> host) const {
    obs::ScopedTrace span("d2h", "transfer");
    if (span.armed() && ctx_) {
      span.add_arg({"bytes", static_cast<std::uint64_t>(host.size_bytes())});
      span.add_arg({"device", ctx_->name()});
    }
    std::memcpy(host.data(), data_.data(), host.size_bytes());
    if (ctx_) {
      ctx_->on_d2h(host.size_bytes());
      obs::count_d2h(host.size_bytes());
    }
  }

  static void flip_bit(void* data, byte_size bytes) {
    if (bytes == 0) return;
    auto* raw = static_cast<unsigned char*>(data);
    raw[bytes / 2] ^= 0x10;
  }

  DeviceContext* ctx_ = nullptr;
  CoherenceMode coherence_ = CoherenceMode::kCoarseGrain;
  std::vector<T> data_;
};

}  // namespace gaia::backends
