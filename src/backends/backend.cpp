#include "backends/backend.hpp"

#include <algorithm>
#include <thread>

#include "util/string_utils.hpp"

namespace gaia::backends {

std::string to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSerial:
      return "serial";
    case BackendKind::kOpenMP:
      return "openmp";
    case BackendKind::kPstl:
      return "pstl";
    case BackendKind::kGpuSim:
      return "gpusim";
  }
  return "unknown";
}

std::optional<BackendKind> parse_backend(const std::string& name) {
  for (BackendKind k : all_backends()) {
    if (util::iequals(name, to_string(k))) return k;
  }
  // Convenience aliases matching the paper's framework names.
  if (util::iequals(name, "cuda") || util::iequals(name, "hip") ||
      util::iequals(name, "sycl"))
    return BackendKind::kGpuSim;
  if (util::iequals(name, "stdpar")) return BackendKind::kPstl;
  if (util::iequals(name, "omp")) return BackendKind::kOpenMP;
  return std::nullopt;
}

const std::vector<BackendKind>& all_backends() {
  static const std::vector<BackendKind> kinds = {
      BackendKind::kSerial,
      BackendKind::kOpenMP,
      BackendKind::kPstl,
      BackendKind::kGpuSim,
  };
  return kinds;
}

bool honors_kernel_config(BackendKind kind) {
  return dispatch(kind, [](auto exec) {
    return decltype(exec)::kHonorsKernelConfig;
  });
}

int OpenMPExec::resolve_threads(KernelConfig cfg) {
#if defined(GAIA_HAS_OPENMP)
  const int hw = std::max(1, omp_get_max_threads());
#else
  const int hw =
      std::max(1u, std::thread::hardware_concurrency());
#endif
  if (cfg.is_default()) return hw;
  // num_teams * thread_limit bounds device parallelism; on host we clamp
  // the product to the available threads (a GPU would fan it out wider).
  const std::int64_t requested = std::max<std::int64_t>(
      1, cfg.total_threads() > 0
             ? cfg.total_threads()
             : std::max<std::int64_t>(cfg.blocks, cfg.threads));
  return static_cast<int>(std::min<std::int64_t>(requested, hw));
}

}  // namespace gaia::backends
