/// \file kernel_config.hpp
/// \brief Kernel launch shapes — the tuning knob the paper studies.
///
/// CUDA, HIP and SYCL let the programmer pick (blocks, threads-per-block)
/// per kernel; OpenMP exposes num_teams/thread_limit; C++ PSTL exposes
/// nothing (paper SIV-e). The study's headline tuning result — up to 40 %
/// iteration-time reduction, with *small* thread counts winning in the
/// atomic-heavy aprod2 kernels — is expressed through this type.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "matrix/precision.hpp"
#include "matrix/storage_layout.hpp"
#include "util/types.hpp"

namespace gaia::backends {

/// Storage layout the kernel body reads its coefficients through. The
/// enum lives in `matrix` (header-only — backends does not link
/// gaia_matrix) next to the builders; it is re-exported here because it
/// rides on KernelConfig through the whole tuning stack, exactly like
/// the scatter strategy.
using matrix::StorageLayout;
using matrix::kNumStorageLayouts;

[[nodiscard]] inline std::string to_string(StorageLayout layout) {
  return matrix::to_string(layout);
}
[[nodiscard]] inline std::optional<StorageLayout> parse_storage_layout(
    const std::string& name) {
  return matrix::parse_storage_layout(name);
}

/// Storage precision the kernel body reads its coefficients through.
/// Like StorageLayout, the enum lives in `matrix` (header-only) next to
/// the down-converters and rides on KernelConfig through the tuning
/// stack; accumulation is FP64 for every precision.
using matrix::Precision;
using matrix::kNumPrecisions;

[[nodiscard]] inline std::string to_string(Precision p) {
  return matrix::to_string(p);
}
[[nodiscard]] inline std::optional<Precision> parse_precision(
    const std::string& name) {
  return matrix::parse_precision(name);
}

/// How an atomic aprod2 scatter commits its updates to x.
///
/// kAtomic is the production path the paper tunes (atomic adds into the
/// shared column section, thread counts turned *down* to limit
/// collisions). kPrivatized is the contention-free alternative from the
/// SpMV-transpose literature: each worker accumulates into a private
/// copy of the column section, then a deterministic segmented tree
/// reduction folds the copies into x — no atomics at all, at the price
/// of scratch traffic proportional to workers x section length.
/// Non-atomic kernels ignore the strategy.
enum class ScatterStrategy : std::uint8_t {
  kAtomic = 0,
  kPrivatized,
};
inline constexpr int kNumScatterStrategies = 2;

[[nodiscard]] std::string to_string(ScatterStrategy strategy);
/// Inverse of to_string(ScatterStrategy); nullopt for unknown names.
[[nodiscard]] std::optional<ScatterStrategy> parse_scatter_strategy(
    const std::string& name);

/// Launch shape of one kernel. {0, 0} means "backend default".
struct KernelConfig {
  std::int32_t blocks = 0;
  std::int32_t threads = 0;
  /// Scatter commit strategy (atomic kernels only; kAtomic preserves the
  /// pre-strategy behaviour bit for bit).
  ScatterStrategy strategy = ScatterStrategy::kAtomic;
  /// Coefficient storage layout the kernel body reads. kSeedAos is the
  /// seed behaviour bit for bit; non-seed layouts require the matching
  /// derived arrays to be attached to the SystemView (the launcher
  /// falls back to kSeedAos when they are not).
  StorageLayout layout = StorageLayout::kSeedAos;
  /// Coefficient storage precision the kernel body loads through. kFp64
  /// is the seed behaviour bit for bit; reduced precisions require the
  /// matching down-converted planes to be attached to the SystemView
  /// (the launcher clamps to kFp64 when they are not). Accumulation is
  /// FP64 regardless.
  Precision precision = Precision::kFp64;

  [[nodiscard]] bool is_default() const { return blocks == 0 && threads == 0; }
  [[nodiscard]] std::int64_t total_threads() const {
    return static_cast<std::int64_t>(blocks) * threads;
  }
  bool operator==(const KernelConfig&) const = default;
};

/// Sanity bounds on launch shapes. No real GPU accepts more than 1024
/// threads per block (CUDA/HIP hard limit; we allow 4096 for the
/// simulated device's virtual threads), and a million blocks of host
/// work is far past any shape this solver could use productively.
inline constexpr std::int32_t kMaxBlocks = 1 << 20;
inline constexpr std::int32_t kMaxThreads = 4096;

/// True iff `cfg` is either the backend-default sentinel {0,0} or a
/// positive shape within [1, kMaxBlocks] x [1, kMaxThreads]. Negative
/// values and zero-paired-with-nonzero are never valid.
[[nodiscard]] bool is_valid_kernel_config(KernelConfig cfg);

/// Throws gaia::Error naming `context` and the offending values when
/// `cfg` fails is_valid_kernel_config. Call sites: CLI parsing, tuning
/// cache ingestion, TuningTable::set.
void validate_kernel_config(KernelConfig cfg, const std::string& context);

/// Parses "BxT" (e.g. "32x128") into a validated KernelConfig. Throws
/// gaia::Error on malformed input or out-of-range values.
[[nodiscard]] KernelConfig parse_kernel_config(const std::string& text);

/// The eight hot kernels of the solver (paper SIV: aprod{1,2} x
/// {astro, att, instr, glob}).
enum class KernelId : std::uint8_t {
  kAprod1Astro = 0,
  kAprod1Att,
  kAprod1Instr,
  kAprod1Glob,
  kAprod2Astro,
  kAprod2Att,
  kAprod2Instr,
  kAprod2Glob,
};
inline constexpr int kNumKernels = 8;

[[nodiscard]] std::string to_string(KernelId id);
/// Inverse of to_string(KernelId); nullopt for unknown names. Used by
/// the tuning cache to validate kernel keys on load.
[[nodiscard]] std::optional<KernelId> parse_kernel_id(
    const std::string& name);
/// All eight kernel ids in enum order (for registry/tuning iteration).
[[nodiscard]] const std::array<KernelId, kNumKernels>& all_kernels();

/// Whether the kernel performs atomic updates (all aprod2 kernels except
/// the block-diagonal astrometric one, paper SIV).
[[nodiscard]] constexpr bool kernel_uses_atomics(KernelId id) {
  return id == KernelId::kAprod2Att || id == KernelId::kAprod2Instr ||
         id == KernelId::kAprod2Glob;
}

/// Per-kernel launch shapes. Tunable backends read it; PSTL ignores it.
class TuningTable {
 public:
  [[nodiscard]] KernelConfig get(KernelId id) const {
    return table_[static_cast<std::size_t>(id)];
  }
  /// Validates the shape (throws gaia::Error on negative/absurd values)
  /// before storing — a TuningTable can never hold an unlaunchable
  /// config.
  void set(KernelId id, KernelConfig cfg);
  void set_all(KernelConfig cfg);

  /// The production-code heuristic: full occupancy for aprod1, reduced
  /// blocks/threads where atomics collide (paper SIV "we redesigned the
  /// code to reduce the number of blocks and GPU threads per block in the
  /// regions where atomic operations are performed").
  static TuningTable tuned_default();

  /// Untuned: every kernel at the naive full-occupancy shape — the
  /// configuration of the pre-optimization production code.
  static TuningTable untuned(KernelConfig cfg = {256, 256});

  bool operator==(const TuningTable&) const = default;

 private:
  std::array<KernelConfig, kNumKernels> table_{};
};

}  // namespace gaia::backends
