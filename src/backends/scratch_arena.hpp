/// \file scratch_arena.hpp
/// \brief Pooled, size-bucketed scratch buffers for privatized scatters.
///
/// The privatized aprod2 path needs `workers x section` reals of scratch
/// on every launch — per LSQR iteration, for thousands of iterations.
/// Paying the allocator each time would dwarf the contention it saves,
/// so buffers are pooled: a released buffer parks in a power-of-two size
/// bucket and the next acquire of a compatible size reuses it. After the
/// first iteration touched every kernel's bucket, the steady state is
/// allocator-silent (the miss counter stops moving — asserted in tests).
///
/// Byte accounting mirrors `DeviceBuffer`/`DeviceContext`: pooled and
/// in-use byte totals plus hit/miss counters, surfaced as obs metrics
/// (`scratch.arena.*`) so arena pressure shows up next to the device
/// residency numbers.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/types.hpp"

namespace gaia::backends {

enum class BackendKind : std::uint8_t;

class ScratchArena {
 public:
  /// RAII hold on one pooled buffer. The buffer returns to its bucket on
  /// destruction; contents are *not* zeroed (the privatized scatter
  /// zeroes each worker slice itself, in parallel).
  class Lease {
   public:
    Lease() = default;
    Lease(ScratchArena* arena, std::unique_ptr<std::vector<real>> buffer)
        : arena_(arena), buffer_(std::move(buffer)) {}
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] real* data() { return buffer_ ? buffer_->data() : nullptr; }
    [[nodiscard]] std::size_t size() const {
      return buffer_ ? buffer_->size() : 0;
    }

   private:
    void release();
    ScratchArena* arena_ = nullptr;
    std::unique_ptr<std::vector<real>> buffer_;
  };

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Hands out a buffer of at least `n` reals (rounded up to the bucket
  /// size, so reuse is by order of magnitude, not exact length). n == 0
  /// yields an empty lease without touching the pool.
  [[nodiscard]] Lease acquire(std::size_t n);

  /// Frees every pooled (not-in-use) buffer.
  void trim();

  /// Pool reuse counters: an acquire served from the pool is a hit, one
  /// that had to allocate is a miss. misses() flat across iterations is
  /// the "allocator-silent after warm-up" contract.
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  /// Bytes parked in buckets awaiting reuse / bytes currently leased out.
  [[nodiscard]] byte_size pooled_bytes() const;
  [[nodiscard]] byte_size in_use_bytes() const;

  /// Process-wide arena of one backend (catalog launchers fall back to
  /// this when the launch carries no arena).
  static ScratchArena& for_backend(BackendKind kind);

 private:
  static constexpr int kNumBuckets = 40;  ///< 2^0 .. 2^39 reals
  static int bucket_of(std::size_t n);
  void give_back(std::unique_ptr<std::vector<real>> buffer);
  void publish_gauges_locked();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<std::vector<real>>> buckets_[kNumBuckets];
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t hits_published_ = 0;
  std::uint64_t misses_published_ = 0;
  byte_size pooled_bytes_ = 0;
  byte_size in_use_bytes_ = 0;
};

}  // namespace gaia::backends
