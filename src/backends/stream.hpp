/// \file stream.hpp
/// \brief Asynchronous execution streams (cudaStream analog).
///
/// The solver overlaps the four aprod2 kernels in separate streams
/// because their atomic updates target disjoint sections of x, so
/// concurrency does not add contention (paper SIV). A Stream owns a
/// worker thread executing enqueued tasks FIFO; different streams run
/// concurrently. `synchronize()` is the cudaStreamSynchronize analog.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

namespace gaia::backends {

/// Completion marker usable across streams (cudaEvent analog).
class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  /// Blocks until the event was recorded and reached in its stream.
  void wait() const {
    std::unique_lock<std::mutex> lock(state_->m);
    state_->cv.wait(lock, [&] { return state_->set; });
  }

  [[nodiscard]] bool query() const {
    std::lock_guard<std::mutex> lock(state_->m);
    return state_->set;
  }

 private:
  friend class Stream;
  struct State {
    std::mutex m;
    std::condition_variable cv;
    bool set = false;
  };
  void signal() const {
    {
      std::lock_guard<std::mutex> lock(state_->m);
      state_->set = true;
    }
    state_->cv.notify_all();
  }
  std::shared_ptr<State> state_;
};

/// FIFO asynchronous task queue with a dedicated executor thread.
class Stream {
 public:
  Stream();
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Process-lifetime-unique id (1-based; 0 is the caller's thread).
  /// Kernel spans launched on this stream carry it, and the trace
  /// timeline maps each stream to its own track — the cudaStream lane
  /// view of an nsys timeline.
  [[nodiscard]] std::int32_t id() const { return id_; }

  /// Enqueue a task; returns immediately. Tasks in one stream execute in
  /// order; tasks in different streams may overlap.
  void enqueue(std::function<void()> task);

  /// Record an event that fires once all previously enqueued tasks ran.
  void record(Event event);

  /// Block until the queue drains and the in-flight task finishes. If a
  /// task threw, the first exception is rethrown here (and cleared) —
  /// the cudaStreamSynchronize error-return analog; without this a
  /// faulted kernel launch inside a stream would terminate the process.
  void synchronize();

  /// Number of tasks executed so far (for tests/instrumentation).
  [[nodiscard]] std::uint64_t completed() const;

 private:
  void run();

  std::int32_t id_ = 0;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool busy_ = false;
  bool stopping_ = false;
  std::uint64_t completed_ = 0;
  std::exception_ptr error_;  ///< first task failure, surfaced by synchronize()
  std::thread worker_;
};

}  // namespace gaia::backends
