#include "backends/scratch_arena.hpp"

#include <bit>

#include "backends/backend.hpp"
#include "backends/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace gaia::backends {

ScratchArena::Lease& ScratchArena::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    arena_ = other.arena_;
    buffer_ = std::move(other.buffer_);
    other.arena_ = nullptr;
  }
  return *this;
}

void ScratchArena::Lease::release() {
  if (arena_ && buffer_) arena_->give_back(std::move(buffer_));
  arena_ = nullptr;
  buffer_.reset();
}

int ScratchArena::bucket_of(std::size_t n) {
  const auto rounded = std::bit_ceil(n == 0 ? std::size_t{1} : n);
  const int bucket = static_cast<int>(std::bit_width(rounded) - 1);
  GAIA_CHECK(bucket < kNumBuckets, "ScratchArena: request too large");
  return bucket;
}

ScratchArena::Lease ScratchArena::acquire(std::size_t n) {
  if (n == 0) return {};
  const int bucket = bucket_of(n);
  const std::size_t rounded = std::size_t{1} << bucket;
  std::unique_ptr<std::vector<real>> buffer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& pool = buckets_[bucket];
    if (!pool.empty()) {
      buffer = std::move(pool.back());
      pool.pop_back();
      hits_++;
      pooled_bytes_ -= rounded * sizeof(real);
    } else {
      misses_++;
    }
    in_use_bytes_ += rounded * sizeof(real);
    publish_gauges_locked();
  }
  // Allocation happens outside the lock; accounting already reserved it.
  // First-touch on the miss path: reserve leaves the pages unfaulted,
  // the parallel zero-fill faults them in across the pool's workers (so
  // under the kernel's first-touch policy a pinned pool spreads the
  // buffer over NUMA nodes), then resize formally constructs the
  // elements without reallocating. A vector{n} ctor would instead fault
  // every page on this one thread and pin the whole buffer to its node.
  if (!buffer) {
    buffer = std::make_unique<std::vector<real>>();
    buffer->reserve(rounded);
    first_touch_zero(buffer->data(), rounded * sizeof(real));
    buffer->resize(rounded);
  }
  return {this, std::move(buffer)};
}

void ScratchArena::give_back(std::unique_ptr<std::vector<real>> buffer) {
  const std::size_t bytes = buffer->size() * sizeof(real);
  std::lock_guard<std::mutex> lock(mutex_);
  in_use_bytes_ -= bytes;
  pooled_bytes_ += bytes;
  buckets_[bucket_of(buffer->size())].push_back(std::move(buffer));
  publish_gauges_locked();
}

void ScratchArena::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& pool : buckets_) pool.clear();
  pooled_bytes_ = 0;
  publish_gauges_locked();
}

std::uint64_t ScratchArena::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ScratchArena::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

byte_size ScratchArena::pooled_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pooled_bytes_;
}

byte_size ScratchArena::in_use_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_bytes_;
}

void ScratchArena::publish_gauges_locked() {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  static obs::Gauge& pooled = reg.gauge("scratch.arena.pooled_bytes");
  static obs::Gauge& in_use = reg.gauge("scratch.arena.in_use_bytes");
  static obs::Counter& hits = reg.counter("scratch.arena.hits");
  static obs::Counter& misses = reg.counter("scratch.arena.misses");
  pooled.set(static_cast<double>(pooled_bytes_));
  in_use.set(static_cast<double>(in_use_bytes_));
  // Counters are monotonic and shared across arenas; each instance
  // contributes the delta since its last publication.
  if (hits_ > hits_published_) hits.add(hits_ - hits_published_);
  if (misses_ > misses_published_) misses.add(misses_ - misses_published_);
  hits_published_ = hits_;
  misses_published_ = misses_;
}

ScratchArena& ScratchArena::for_backend(BackendKind kind) {
  static ScratchArena arenas[kNumBackends];
  return arenas[static_cast<std::size_t>(kind)];
}

}  // namespace gaia::backends
