/// \file backend.hpp
/// \brief The execution backends (the "programming frameworks" axis).
///
/// The paper ports one solver to five programming models; this library
/// ports one solver to four host execution policies that preserve each
/// model's *shape*:
///
/// | paper model      | backend   | what is preserved                      |
/// |------------------|-----------|----------------------------------------|
/// | CUDA / HIP / SYCL| kGpuSim   | explicit kernels, grid/block tuning,    |
/// |                  |           | device buffers, streams, device atomics |
/// | OpenMP-GPU       | kOpenMP   | directive-based, teams/thread_limit     |
/// | C++ PSTL         | kPstl     | parallel algorithms, *no tuning knob*   |
/// | (reference)      | kSerial   | deterministic oracle ("production" ref) |
///
/// Kernels are templates over an execution policy so inner loops inline;
/// runtime backend selection dispatches once per kernel launch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "backends/atomic.hpp"
#include "backends/counting_iterator.hpp"
#include "backends/kernel_config.hpp"
#include "backends/pstl_algorithms.hpp"
#include "backends/thread_pool.hpp"
#include "util/types.hpp"

#if defined(GAIA_HAS_OPENMP)
#include <omp.h>
#endif

namespace gaia::backends {

enum class BackendKind : std::uint8_t {
  kSerial = 0,
  kOpenMP,
  kPstl,
  kGpuSim,
};
inline constexpr int kNumBackends = 4;

[[nodiscard]] std::string to_string(BackendKind kind);
[[nodiscard]] std::optional<BackendKind> parse_backend(
    const std::string& name);
/// All backends compiled into this build.
[[nodiscard]] const std::vector<BackendKind>& all_backends();

/// Runtime view of Exec::kHonorsKernelConfig: whether launch shapes
/// change execution on this backend (true for OpenMP and GpuSim). The
/// autotuner refuses to search backends where the knob is a no-op.
[[nodiscard]] bool honors_kernel_config(BackendKind kind);

// ---------------------------------------------------------------------------
// Execution policies
// ---------------------------------------------------------------------------

/// Upper bound on privatized-scatter workers per launch. Each worker
/// privatizes a full column section, so scratch grows linearly with the
/// worker count; past a few hundred host workers the reduction tree
/// dominates anyway.
inline constexpr int kMaxScatterWorkers = 256;

/// Reference backend: sequential, deterministic; plays the role of the
/// "production code" the paper validates every port against (SV-C).
struct SerialExec {
  static constexpr BackendKind kKind = BackendKind::kSerial;
  static constexpr bool kHonorsKernelConfig = false;

  template <typename F>
  static void launch(std::int64_t n, KernelConfig /*cfg*/, F&& body) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
  }

  /// Privatized-scatter workers a launch at `cfg` uses. A pure function
  /// of the launch shape (and the fixed machine), so a fixed config
  /// always reduces in the same combine order — the determinism contract
  /// of the privatized path.
  static int scatter_workers(KernelConfig /*cfg*/) { return 1; }

  /// Runs body(w) once per worker w in [0, workers). Worker w is the
  /// segment id of the privatized reduction; serial runs them in order.
  template <typename F>
  static void launch_workers(int workers, KernelConfig /*cfg*/, F&& body) {
    for (int w = 0; w < workers; ++w) body(w);
  }

  static void atomic_add(real& target, real value, AtomicMode /*mode*/) {
    target += value;  // single thread: plain accumulation
  }
};

/// OpenMP port: directive-style. KernelConfig maps num_teams *
/// thread_limit onto the host thread count (clamped), mirroring how the
/// GPU-offload directives bound parallelism.
struct OpenMPExec {
  static constexpr BackendKind kKind = BackendKind::kOpenMP;
  static constexpr bool kHonorsKernelConfig = true;

  /// Host threads used for a launch shape; {0,0} lets the runtime choose.
  static int resolve_threads(KernelConfig cfg);

  template <typename F>
  static void launch(std::int64_t n, KernelConfig cfg, F&& body) {
#if defined(GAIA_HAS_OPENMP)
    const int nt = resolve_threads(cfg);
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t i = 0; i < n; ++i) body(i);
#else
    (void)cfg;
    for (std::int64_t i = 0; i < n; ++i) body(i);
#endif
  }

  /// One privatized segment per OpenMP thread of this launch shape.
  static int scatter_workers(KernelConfig cfg) {
    const int nt = resolve_threads(cfg);
    return nt < 1 ? 1 : (nt > kMaxScatterWorkers ? kMaxScatterWorkers : nt);
  }

  template <typename F>
  static void launch_workers(int workers, KernelConfig /*cfg*/, F&& body) {
#if defined(GAIA_HAS_OPENMP)
#pragma omp parallel for schedule(static) num_threads(workers)
    for (int w = 0; w < workers; ++w) body(w);
#else
    for (int w = 0; w < workers; ++w) body(w);
#endif
  }

  static void atomic_add(real& target, real value, AtomicMode /*mode*/) {
#if defined(GAIA_HAS_OPENMP)
#pragma omp atomic update
    target += value;
#else
    target += value;
#endif
  }
};

/// C++ PSTL port: parallel algorithms over counting iterators. Ignores
/// KernelConfig by design — the standard offers no executor yet (the
/// paper pins its PSTL efficiency gap on exactly this, SIV-e / SV-B).
struct PstlExec {
  static constexpr BackendKind kKind = BackendKind::kPstl;
  static constexpr bool kHonorsKernelConfig = false;

  template <typename F>
  static void launch(std::int64_t n, KernelConfig /*ignored*/, F&& body) {
    pstl::for_each(pstl::par, CountingIterator(0), CountingIterator(n),
                   [&](std::int64_t i) { body(i); });
  }

  /// PSTL has no shape knob, so the worker count comes from the pool the
  /// parallel algorithms execute on (workers + the submitting thread) —
  /// fixed for the process, keeping the reduction order reproducible.
  static int scatter_workers(KernelConfig /*ignored*/) {
    const int w = static_cast<int>(ThreadPool::global().workers()) + 1;
    return w > kMaxScatterWorkers ? kMaxScatterWorkers : w;
  }

  template <typename F>
  static void launch_workers(int workers, KernelConfig /*ignored*/,
                             F&& body) {
    // Grain 1: one pool chunk per worker segment (the default pstl grain
    // of 1024 would serialize a handful of segment-sized items).
    ThreadPool::global().parallel_for(
        workers, 1, [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t w = begin; w < end; ++w)
            body(static_cast<int>(w));
        });
  }

  static void atomic_add(real& target, real value, AtomicMode mode) {
    backends::atomic_add(target, value, mode);
  }
};

/// CUDA/HIP/SYCL-shaped port: explicit grid of blocks x threads, executed
/// as virtual GPU threads in a grid-stride loop; blocks are the unit of
/// scheduling on the pool. Honors KernelConfig exactly, so tuning
/// experiments change real execution structure.
struct GpuSimExec {
  static constexpr BackendKind kKind = BackendKind::kGpuSim;
  static constexpr bool kHonorsKernelConfig = true;

  static constexpr std::int32_t kDefaultBlocks = 64;
  static constexpr std::int32_t kDefaultThreads = 128;

  static KernelConfig resolve(KernelConfig cfg) {
    if (cfg.blocks <= 0) cfg.blocks = kDefaultBlocks;
    if (cfg.threads <= 0) cfg.threads = kDefaultThreads;
    return cfg;
  }

  template <typename F>
  static void launch(std::int64_t n, KernelConfig cfg, F&& body) {
    const KernelConfig c = resolve(cfg);
    const std::int64_t grid = c.total_threads();
    // One pool chunk per block; each virtual thread walks a grid-stride.
    ThreadPool::global().parallel_for(
        c.blocks, 1, [&, grid](std::int64_t block, std::int64_t /*end*/) {
          for (std::int32_t t = 0; t < c.threads; ++t) {
            for (std::int64_t i = block * c.threads + t; i < n; i += grid) {
              body(i);
            }
          }
        });
  }

  /// One privatized segment per virtual block (blocks are the gpusim
  /// scheduling unit), capped so scratch stays bounded when the tuner
  /// probes very wide grids.
  static int scatter_workers(KernelConfig cfg) {
    const std::int32_t blocks = resolve(cfg).blocks;
    return blocks > kMaxScatterWorkers ? kMaxScatterWorkers
                                       : static_cast<int>(blocks);
  }

  template <typename F>
  static void launch_workers(int workers, KernelConfig /*cfg*/, F&& body) {
    ThreadPool::global().parallel_for(
        workers, 1, [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t w = begin; w < end; ++w)
            body(static_cast<int>(w));
        });
  }

  static void atomic_add(real& target, real value, AtomicMode mode) {
    backends::atomic_add(target, value, mode);
  }
};

// ---------------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------------

/// Invokes `f` with the execution-policy type selected at runtime:
/// `dispatch(kind, [&](auto exec) { kernel<decltype(exec)>(...); })`.
template <typename F>
decltype(auto) dispatch(BackendKind kind, F&& f) {
  switch (kind) {
    case BackendKind::kSerial:
      return f(SerialExec{});
    case BackendKind::kOpenMP:
      return f(OpenMPExec{});
    case BackendKind::kPstl:
      return f(PstlExec{});
    case BackendKind::kGpuSim:
      return f(GpuSimExec{});
  }
  return f(SerialExec{});  // unreachable; silences -Wreturn-type
}

}  // namespace gaia::backends
