/// \file retry.hpp
/// \brief Retry-with-backoff wrapper for transient faults.
///
/// Wraps an operation that may throw `TransientFault` (injected or
/// real): retries up to the policy's attempt budget with bounded
/// exponential backoff, counting every retry in the metrics registry
/// (`resilience.retries.<site>`) and emitting a trace instant per
/// retry. Exhausting the budget escalates to `PersistentFault`, which
/// callers treat as "this resource is down" (e.g. the Aprod driver
/// fails over to the next backend in the chain).
#pragma once

#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/fault_injector.hpp"
#include "util/backoff.hpp"

namespace gaia::resilience {

namespace detail {
inline void note_retry(const char* site, int attempt) {
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("resilience.retries").add(1);
    reg.counter(std::string("resilience.retries.") + site).add(1);
  }
  auto& rec = obs::TraceRecorder::current();
  if (rec.enabled()) {
    rec.instant("retry", "resilience", obs::TraceRecorder::kMainTrack,
                {{"site", site}, {"attempt", static_cast<std::int64_t>(attempt)}});
  }
}
}  // namespace detail

/// Runs `op`, absorbing `TransientFault` with bounded exponential
/// backoff. Throws `PersistentFault` (carrying the last transient
/// message) once `policy.max_attempts` attempts all failed. Any other
/// exception propagates immediately.
template <typename Op>
auto with_retry(const char* site, const util::BackoffPolicy& policy,
                Op&& op) {
  for (int attempt = 1;; ++attempt) {
    try {
      return op();
    } catch (const TransientFault& fault) {
      if (attempt >= policy.max_attempts) {
        throw PersistentFault(std::string(site) + ": " + fault.what() +
                              " (after " + std::to_string(attempt) +
                              " attempts)");
      }
      detail::note_retry(site, attempt);
      std::this_thread::sleep_for(util::backoff_delay(policy, attempt));
    }
  }
}

}  // namespace gaia::resilience
