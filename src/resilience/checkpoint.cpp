#include "resilience/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/fault_injector.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace gaia::resilience {

namespace fs = std::filesystem;

namespace {

constexpr char kFooterMagic[8] = {'G', 'A', 'I', 'A', 'F', 'T', 'R', '1'};
constexpr std::size_t kFooterSize =
    sizeof(kFooterMagic) + sizeof(std::uint64_t) + sizeof(std::uint32_t);

std::string footer_for(std::string_view payload) {
  std::string footer(kFooterSize, '\0');
  char* out = footer.data();
  std::memcpy(out, kFooterMagic, sizeof(kFooterMagic));
  out += sizeof(kFooterMagic);
  const auto size = static_cast<std::uint64_t>(payload.size());
  std::memcpy(out, &size, sizeof(size));
  out += sizeof(size);
  const std::uint32_t crc = util::crc32(payload);
  std::memcpy(out, &crc, sizeof(crc));
  return footer;
}

/// Applies an injected `ckpt:` corruption to the file just written.
void corrupt_file(const std::string& path, CheckpointFault mode) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size == 0) return;
  if (mode == CheckpointFault::kTruncate) {
    fs::resize_file(path, size / 2, ec);
  } else {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    if (!f.good()) return;
    const auto offset = static_cast<std::streamoff>(size / 2);
    f.seekg(offset);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(offset);
    f.write(&byte, 1);
  }
}

}  // namespace

void note_resilience_event(const char* name, const std::string& detail) {
  auto& rec = obs::TraceRecorder::global();
  if (rec.enabled()) {
    rec.instant(name, "resilience", obs::TraceRecorder::kMainTrack,
                {{"detail", detail}});
  }
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) reg.counter(std::string("resilience.") + name).add(1);
}

void write_framed_file(const std::string& path, std::string_view payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    GAIA_CHECK(f.good(), "cannot open checkpoint for writing: " + tmp);
    f.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    const std::string footer = footer_for(payload);
    f.write(footer.data(), static_cast<std::streamsize>(footer.size()));
    f.flush();
    if (!f.good()) {
      f.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      throw Error("checkpoint write failed: " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error("checkpoint rename failed: " + tmp + " -> " + path);
  }
}

std::string read_framed_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  GAIA_CHECK(f.good(), "cannot open checkpoint for reading: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  std::string bytes = std::move(buffer).str();

  if (bytes.size() < kFooterSize ||
      std::memcmp(bytes.data() + bytes.size() - kFooterSize, kFooterMagic,
                  sizeof(kFooterMagic)) != 0) {
    throw Error("corrupt checkpoint '" + path +
                "': missing CRC footer (file truncated or not a sealed "
                "checkpoint)");
  }
  const char* footer = bytes.data() + bytes.size() - kFooterSize;
  std::uint64_t payload_size = 0;
  std::memcpy(&payload_size, footer + sizeof(kFooterMagic),
              sizeof(payload_size));
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc,
              footer + sizeof(kFooterMagic) + sizeof(payload_size),
              sizeof(stored_crc));
  if (payload_size != bytes.size() - kFooterSize) {
    throw Error("corrupt checkpoint '" + path + "': truncated (footer says " +
                std::to_string(payload_size) + " payload bytes, file has " +
                std::to_string(bytes.size() - kFooterSize) + ")");
  }
  bytes.resize(static_cast<std::size_t>(payload_size));
  const std::uint32_t actual_crc = util::crc32(bytes);
  if (actual_crc != stored_crc) {
    throw Error("corrupt checkpoint '" + path +
                "': CRC mismatch (bit flip or partial write)");
  }
  return bytes;
}

bool verify_framed_file(const std::string& path) {
  try {
    (void)read_framed_file(path);
    return true;
  } catch (const Error&) {
    return false;
  }
}

CheckpointManager::CheckpointManager(CheckpointConfig config)
    : config_(std::move(config)) {
  GAIA_CHECK(config_.keep_last >= 1, "checkpoint keep_last must be >= 1");
  if (enabled()) fs::create_directories(config_.directory);
}

std::string CheckpointManager::write(std::int64_t iteration,
                                     std::string_view payload) {
  GAIA_CHECK(!config_.directory.empty(),
             "checkpoint manager has no directory configured");
  char name[64];
  std::snprintf(name, sizeof(name), "%s.%08lld.ckpt",
                config_.basename.c_str(),
                static_cast<long long>(iteration));
  const std::string path = (fs::path(config_.directory) / name).string();
  {
    obs::ScopedTrace span("checkpoint.write", "resilience");
    span.add_arg({"iteration", static_cast<std::int64_t>(iteration)});
    span.add_arg({"bytes", static_cast<std::uint64_t>(payload.size())});
    write_framed_file(path, payload);
  }
  ++written_;
  note_resilience_event("checkpoint.written", path);
  if (const auto fault = FaultInjector::global().on_checkpoint_write())
    corrupt_file(path, *fault);
  prune();
  return path;
}

std::vector<CheckpointInfo> CheckpointManager::list() const {
  std::vector<CheckpointInfo> found;
  if (config_.directory.empty()) return found;
  std::error_code ec;
  const std::string prefix = config_.basename + ".";
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string filename = entry.path().filename().string();
    if (filename.rfind(prefix, 0) != 0) continue;
    if (entry.path().extension() != ".ckpt") continue;
    const std::string middle = filename.substr(
        prefix.size(), filename.size() - prefix.size() - 5 /*.ckpt*/);
    try {
      found.push_back({entry.path().string(), std::stoll(middle)});
    } catch (const std::exception&) {
      continue;  // unrelated file matching the prefix
    }
  }
  std::sort(found.begin(), found.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.iteration > b.iteration;
            });
  return found;
}

std::optional<CheckpointManager::Loaded>
CheckpointManager::load_newest_valid() const {
  for (const CheckpointInfo& info : list()) {
    try {
      std::string payload = read_framed_file(info.path);
      return Loaded{info, std::move(payload)};
    } catch (const Error& e) {
      std::cerr << "warning: skipping checkpoint " << info.path << ": "
                << e.what() << '\n';
      note_resilience_event("checkpoint.skipped", info.path);
    }
  }
  return std::nullopt;
}

void CheckpointManager::prune() const {
  const auto all = list();
  for (std::size_t i = static_cast<std::size_t>(config_.keep_last);
       i < all.size(); ++i) {
    std::error_code ec;
    fs::remove(all[i].path, ec);
  }
}

}  // namespace gaia::resilience
