#include "resilience/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/fault_injector.hpp"
#include "util/error.hpp"
#include "util/framed_file.hpp"

namespace gaia::resilience {

namespace fs = std::filesystem;

namespace {

/// Applies an injected `ckpt:` corruption to the file just written.
void corrupt_file(const std::string& path, CheckpointFault mode) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size == 0) return;
  if (mode == CheckpointFault::kTruncate) {
    fs::resize_file(path, size / 2, ec);
  } else {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    if (!f.good()) return;
    const auto offset = static_cast<std::streamoff>(size / 2);
    f.seekg(offset);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(offset);
    f.write(&byte, 1);
  }
}

}  // namespace

void note_resilience_event(const char* name, const std::string& detail) {
  auto& rec = obs::TraceRecorder::current();
  if (rec.enabled()) {
    rec.instant(name, "resilience", obs::TraceRecorder::kMainTrack,
                {{"detail", detail}});
  }
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) reg.counter(std::string("resilience.") + name).add(1);
  // Every resilience event is black-box-worthy: checkpoints, SDC
  // detections/repairs, rank-death recovery all funnel through here,
  // so one hook covers the postmortem timeline.
  obs::flight_event("resilience", name, detail);
}

void write_framed_file(const std::string& path, std::string_view payload) {
  util::write_framed_file(path, payload, "checkpoint");
}

std::string read_framed_file(const std::string& path) {
  return util::read_framed_file(path, "checkpoint");
}

bool verify_framed_file(const std::string& path) {
  return util::verify_framed_file(path);
}

CheckpointManager::CheckpointManager(CheckpointConfig config)
    : config_(std::move(config)) {
  GAIA_CHECK(config_.keep_last >= 1, "checkpoint keep_last must be >= 1");
  if (enabled()) fs::create_directories(config_.directory);
}

std::string CheckpointManager::write(std::int64_t iteration,
                                     std::string_view payload) {
  GAIA_CHECK(!config_.directory.empty(),
             "checkpoint manager has no directory configured");
  char name[64];
  std::snprintf(name, sizeof(name), "%s.%08lld.ckpt",
                config_.basename.c_str(),
                static_cast<long long>(iteration));
  const std::string path = (fs::path(config_.directory) / name).string();
  {
    obs::ScopedTrace span("checkpoint.write", "resilience");
    span.add_arg({"iteration", static_cast<std::int64_t>(iteration)});
    span.add_arg({"bytes", static_cast<std::uint64_t>(payload.size())});
    write_framed_file(path, payload);
  }
  ++written_;
  note_resilience_event("checkpoint.written", path);
  // The performance observatory's contract: a metrics snapshot is sealed
  // alongside every checkpoint, so a post-mortem of a killed run has
  // counters no staler than its newest checkpoint.
  obs::flush_global_snapshot();
  if (const auto fault = FaultInjector::global().on_checkpoint_write())
    corrupt_file(path, *fault);
  prune();
  return path;
}

std::vector<CheckpointInfo> CheckpointManager::list() const {
  std::vector<CheckpointInfo> found;
  if (config_.directory.empty()) return found;
  std::error_code ec;
  const std::string prefix = config_.basename + ".";
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string filename = entry.path().filename().string();
    if (filename.rfind(prefix, 0) != 0) continue;
    if (entry.path().extension() != ".ckpt") continue;
    const std::string middle = filename.substr(
        prefix.size(), filename.size() - prefix.size() - 5 /*.ckpt*/);
    try {
      found.push_back({entry.path().string(), std::stoll(middle)});
    } catch (const std::exception&) {
      continue;  // unrelated file matching the prefix
    }
  }
  std::sort(found.begin(), found.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.iteration > b.iteration;
            });
  return found;
}

std::optional<CheckpointManager::Loaded>
CheckpointManager::load_newest_valid() const {
  for (const CheckpointInfo& info : list()) {
    try {
      std::string payload = read_framed_file(info.path);
      return Loaded{info, std::move(payload)};
    } catch (const Error& e) {
      std::cerr << "warning: skipping checkpoint " << info.path << ": "
                << e.what() << '\n';
      note_resilience_event("checkpoint.skipped", info.path);
    }
  }
  return std::nullopt;
}

void CheckpointManager::prune() const {
  const auto all = list();
  for (std::size_t i = static_cast<std::size_t>(config_.keep_last);
       i < all.size(); ++i) {
    std::error_code ec;
    fs::remove(all[i].path, ec);
  }
}

}  // namespace gaia::resilience
