#include "resilience/fault_injector.hpp"

#include <cctype>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace gaia::resilience {

namespace {

std::optional<FaultSite> parse_site(std::string_view name) {
  if (name == "kernel") return FaultSite::kKernel;
  if (name == "h2d") return FaultSite::kH2D;
  if (name == "d2h") return FaultSite::kD2H;
  if (name == "rank") return FaultSite::kRank;
  if (name == "ckpt" || name == "checkpoint") return FaultSite::kCheckpoint;
  if (name == "sdc") return FaultSite::kSdc;
  return std::nullopt;
}

/// Uniform [0,1) from (seed, site, event index): one SplitMix64 step.
double event_uniform(std::uint64_t seed, FaultSite site,
                     std::int64_t event) {
  util::SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(site) + 1) *
                                 0x9e3779b97f4a7c15ull ^
                      static_cast<std::uint64_t>(event));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

/// Positioned parse failure: every grammar error names the offending
/// clause *and* its byte offset within the spec, so a typo in a
/// GAIA_FAULTS campaign dies loudly instead of running healthy.
[[noreturn]] void fail_at(std::size_t offset, const std::string& clause_text,
                          const std::string& why) {
  throw Error("fault spec error at offset " + std::to_string(offset) +
              " in clause '" + clause_text + "': " + why);
}

/// Strict full-string numeric parses: "0.5x" or "12abc" are grammar
/// errors, not the silently truncated values std::stod/stoll would give.
double parse_probability(std::size_t offset, const std::string& clause_text,
                         const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size())
    fail_at(offset, clause_text, "malformed probability '" + value + "'");
  if (!(p >= 0 && p <= 1))
    fail_at(offset, clause_text,
            "probability " + value + " out of [0,1]");
  return p;
}

std::int64_t parse_int_field(std::size_t offset,
                             const std::string& clause_text,
                             const std::string& key,
                             const std::string& value) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size())
    fail_at(offset, clause_text,
            "malformed integer '" + value + "' for field '" + key + "'");
  return static_cast<std::int64_t>(v);
}

}  // namespace

std::string to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kKernel:
      return "kernel";
    case FaultSite::kH2D:
      return "h2d";
    case FaultSite::kD2H:
      return "d2h";
    case FaultSite::kRank:
      return "rank";
    case FaultSite::kCheckpoint:
      return "ckpt";
    case FaultSite::kSdc:
      return "sdc";
  }
  return "unknown";
}

FaultSpec parse_fault_spec(std::string_view spec,
                           std::uint64_t default_seed) {
  FaultSpec result;
  result.seed = default_seed;
  // Clauses are walked by offset (not via util::split) so every error
  // can report where in the spec it sits.
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::size_t raw_begin = pos;
    std::string_view raw = spec.substr(pos, end - pos);
    pos = end + 1;

    // Offset of the trimmed clause within the full spec.
    std::size_t lead = 0;
    while (lead < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[lead])))
      ++lead;
    const std::size_t offset = raw_begin + lead;
    const std::string clause_text = util::trim(raw);
    if (clause_text.empty()) continue;

    // Global `seed=N` clause (no site prefix).
    if (clause_text.rfind("seed=", 0) == 0) {
      result.seed = static_cast<std::uint64_t>(parse_int_field(
          offset, clause_text, "seed", clause_text.substr(5)));
      continue;
    }

    const auto colon = clause_text.find(':');
    if (colon == std::string::npos)
      fail_at(offset, clause_text, "missing ':' after the fault site");
    const std::string site_name = util::trim(clause_text.substr(0, colon));
    const auto site = parse_site(site_name);
    if (!site.has_value())
      fail_at(offset, clause_text, "unknown fault site '" + site_name + "'");

    FaultClause clause;
    clause.site = *site;
    // One-shot by default for the targeted clauses: a rank dies once, an
    // SDC flip lands once — replay after a rollback must run clean.
    if (clause.site == FaultSite::kRank || clause.site == FaultSite::kSdc)
      clause.max_count = 1;

    for (const std::string& raw_field :
         util::split(clause_text.substr(colon + 1), ',')) {
      const std::string field = util::trim(raw_field);
      if (field.empty()) continue;
      const auto eq = field.find('=');
      const std::string key =
          eq == std::string::npos ? field : util::trim(field.substr(0, eq));
      const std::string value =
          eq == std::string::npos ? "" : util::trim(field.substr(eq + 1));

      if (key == "p") {
        clause.probability = parse_probability(offset, clause_text, value);
      } else if (key == "backend") {
        clause.backend = value;
      } else if (key == "count") {
        clause.max_count = parse_int_field(offset, clause_text, key, value);
      } else if (key == "nth") {
        clause.nth = parse_int_field(offset, clause_text, key, value);
      } else if (key == "rank") {
        clause.rank = parse_int_field(offset, clause_text, key, value);
      } else if (key == "iter") {
        clause.iteration = parse_int_field(offset, clause_text, key, value);
      } else if (key == "kernel") {
        if (value.empty())
          fail_at(offset, clause_text, "kernel= needs a kernel name");
        clause.kernel = value;
      } else if (key == "bit") {
        const std::int64_t bit =
            parse_int_field(offset, clause_text, key, value);
        if (bit < 0 || bit > 63)
          fail_at(offset, clause_text,
                  "bit " + value + " out of [0,63]");
        clause.bit = static_cast<int>(bit);
      } else if (key == "index") {
        clause.index = parse_int_field(offset, clause_text, key, value);
        if (clause.index < 0)
          fail_at(offset, clause_text, "index must be >= 0");
      } else if (key == "mode") {
        if (value == "fail") {
          clause.transfer_mode = TransferFault::kFail;
        } else if (value == "corrupt") {
          clause.transfer_mode = TransferFault::kCorrupt;
        } else {
          fail_at(offset, clause_text,
                  "unknown transfer mode '" + value + "'");
        }
      } else if (key == "truncate") {
        clause.ckpt_mode = CheckpointFault::kTruncate;
      } else if (key == "bitflip") {
        clause.ckpt_mode = CheckpointFault::kBitflip;
      } else {
        fail_at(offset, clause_text, "unknown field '" + key + "'");
      }
    }

    if (clause.site == FaultSite::kRank &&
        (clause.rank < 0 || clause.iteration < 1))
      fail_at(offset, clause_text, "rank clause needs rank= and iter=");
    if (clause.site == FaultSite::kSdc) {
      if (clause.kernel.empty() || clause.iteration < 1)
        fail_at(offset, clause_text, "sdc clause needs kernel= and iter=");
      if (clause.rank < 0) clause.rank = 0;
    }
    result.clauses.push_back(clause);
  }
  return result;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const FaultSpec& spec) {
  armed_.store(false, std::memory_order_relaxed);
  clauses_.clear();
  seed_ = spec.seed;
  for (const FaultClause& clause : spec.clauses) {
    auto state = std::make_unique<ClauseState>();
    state->clause = clause;
    clauses_.push_back(std::move(state));
  }
  for (auto& count : injected_by_site_)
    count.store(0, std::memory_order_relaxed);
  if (!clauses_.empty()) armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::configure(const std::string& spec, std::uint64_t seed) {
  configure(parse_fault_spec(spec, seed));
}

void FaultInjector::configure_from_env(const std::string& spec_override,
                                       std::uint64_t default_seed) {
  std::uint64_t seed = default_seed;
  if (const char* env_seed = std::getenv(kFaultSeedEnv);
      env_seed != nullptr && *env_seed != '\0') {
    seed = static_cast<std::uint64_t>(std::strtoull(env_seed, nullptr, 10));
  }
  std::string spec = spec_override;
  if (spec.empty()) {
    if (const char* env_spec = std::getenv(kFaultsEnv);
        env_spec != nullptr) {
      spec = env_spec;
    }
  }
  if (spec.empty()) return;
  configure(spec, seed);
}

void FaultInjector::disarm() {
  armed_.store(false, std::memory_order_relaxed);
  clauses_.clear();
}

bool FaultInjector::draw(ClauseState& state) {
  const FaultClause& clause = state.clause;
  const std::int64_t event =
      state.events.fetch_add(1, std::memory_order_relaxed);
  if (clause.max_count >= 0 &&
      state.fired.load(std::memory_order_relaxed) >= clause.max_count)
    return false;
  if (event_uniform(seed_, clause.site, event) >= clause.probability)
    return false;
  if (clause.max_count >= 0 &&
      state.fired.fetch_add(1, std::memory_order_relaxed) >=
          clause.max_count) {
    return false;  // lost the race for the last allowed injection
  }
  if (clause.max_count < 0) state.fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::record_injection(FaultSite site,
                                     const std::string& detail) {
  injected_by_site_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  auto& rec = obs::TraceRecorder::current();
  if (rec.enabled()) {
    rec.instant("fault." + to_string(site), "resilience",
                obs::TraceRecorder::kMainTrack, {{"detail", detail}});
  }
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("resilience.faults." + to_string(site)).add(1);
  }
}

bool FaultInjector::should_fail_kernel(std::string_view kernel,
                                       std::string_view backend) {
  if (!armed()) return false;
  for (auto& state : clauses_) {
    const FaultClause& clause = state->clause;
    if (clause.site != FaultSite::kKernel) continue;
    if (!clause.backend.empty() && clause.backend != backend) continue;
    if (draw(*state)) {
      record_injection(FaultSite::kKernel,
                       std::string(kernel) + " on " + std::string(backend));
      return true;
    }
  }
  return false;
}

TransferFault FaultInjector::on_transfer(FaultSite site) {
  if (!armed()) return TransferFault::kNone;
  for (auto& state : clauses_) {
    const FaultClause& clause = state->clause;
    if (clause.site != site) continue;
    if (draw(*state)) {
      record_injection(site, clause.transfer_mode == TransferFault::kCorrupt
                                 ? "corrupt"
                                 : "fail");
      return clause.transfer_mode;
    }
  }
  return TransferFault::kNone;
}

void FaultInjector::maybe_kill_rank(int rank, std::int64_t iteration) {
  if (!armed()) return;
  for (auto& state : clauses_) {
    const FaultClause& clause = state->clause;
    if (clause.site != FaultSite::kRank) continue;
    if (clause.rank != rank || clause.iteration != iteration) continue;
    if (clause.max_count >= 0 &&
        state->fired.fetch_add(1, std::memory_order_relaxed) >=
            clause.max_count)
      continue;
    record_injection(FaultSite::kRank,
                     "rank " + std::to_string(rank) + " iteration " +
                         std::to_string(iteration));
    throw RankDeath(rank, iteration);
  }
}

std::optional<CheckpointFault> FaultInjector::on_checkpoint_write() {
  if (!armed()) return std::nullopt;
  for (auto& state : clauses_) {
    const FaultClause& clause = state->clause;
    if (clause.site != FaultSite::kCheckpoint) continue;
    const std::int64_t event =
        state->events.fetch_add(1, std::memory_order_relaxed) + 1;
    if (clause.nth >= 0 && event != clause.nth) continue;
    if (clause.max_count >= 0 &&
        state->fired.load(std::memory_order_relaxed) >= clause.max_count)
      continue;
    state->fired.fetch_add(1, std::memory_order_relaxed);
    record_injection(FaultSite::kCheckpoint,
                     clause.ckpt_mode == CheckpointFault::kTruncate
                         ? "truncate"
                         : "bitflip");
    return clause.ckpt_mode;
  }
  return std::nullopt;
}

std::optional<SdcFlip> FaultInjector::on_kernel_output(
    std::string_view kernel, std::int64_t iteration, int rank,
    std::size_t size) {
  if (!armed() || size == 0) return std::nullopt;
  for (auto& state : clauses_) {
    const FaultClause& clause = state->clause;
    if (clause.site != FaultSite::kSdc) continue;
    // `kernel=aprod2` hits the aprod2 output pass; a sub-kernel name
    // like `aprod2_att` also matches its pass (the flip lands in the
    // combined output vector — the finest silent granularity there is).
    const std::string_view wanted = clause.kernel;
    const bool name_match =
        wanted == kernel ||
        (wanted.size() > kernel.size() && wanted.rfind(kernel, 0) == 0 &&
         wanted[kernel.size()] == '_');
    if (!name_match) continue;
    if (clause.iteration != iteration || clause.rank != rank) continue;
    if (clause.max_count >= 0 &&
        state->fired.fetch_add(1, std::memory_order_relaxed) >=
            clause.max_count)
      continue;
    SdcFlip flip;
    flip.bit = clause.bit;
    if (clause.index >= 0) {
      flip.index = static_cast<std::size_t>(clause.index) % size;
    } else {
      // Seeded element draw: deterministic in (seed, iteration, rank).
      util::SplitMix64 sm(seed_ ^
                          (static_cast<std::uint64_t>(iteration) << 16) ^
                          static_cast<std::uint64_t>(rank + 1) *
                              0x9e3779b97f4a7c15ull);
      flip.index = static_cast<std::size_t>(sm.next() % size);
    }
    record_injection(FaultSite::kSdc,
                     std::string(kernel) + "[" + std::to_string(flip.index) +
                         "] bit " + std::to_string(flip.bit) + " rank " +
                         std::to_string(rank) + " iteration " +
                         std::to_string(iteration));
    return flip;
  }
  return std::nullopt;
}

std::uint64_t FaultInjector::injected(FaultSite site) const {
  return injected_by_site_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto& count : injected_by_site_)
    total += count.load(std::memory_order_relaxed);
  return total;
}

}  // namespace gaia::resilience
