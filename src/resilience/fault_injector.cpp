#include "resilience/fault_injector.hpp"

#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace gaia::resilience {

namespace {

std::optional<FaultSite> parse_site(std::string_view name) {
  if (name == "kernel") return FaultSite::kKernel;
  if (name == "h2d") return FaultSite::kH2D;
  if (name == "d2h") return FaultSite::kD2H;
  if (name == "rank") return FaultSite::kRank;
  if (name == "ckpt" || name == "checkpoint") return FaultSite::kCheckpoint;
  return std::nullopt;
}

/// Uniform [0,1) from (seed, site, event index): one SplitMix64 step.
double event_uniform(std::uint64_t seed, FaultSite site,
                     std::int64_t event) {
  util::SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(site) + 1) *
                                 0x9e3779b97f4a7c15ull ^
                      static_cast<std::uint64_t>(event));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

double parse_probability(const std::string& clause_text,
                         const std::string& value) {
  try {
    const double p = std::stod(value);
    GAIA_CHECK(p >= 0 && p <= 1,
               "fault probability out of [0,1] in clause '" + clause_text +
                   "'");
    return p;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("malformed fault probability in clause '" + clause_text +
                "'");
  }
}

std::int64_t parse_int_field(const std::string& clause_text,
                             const std::string& value) {
  try {
    return std::stoll(value);
  } catch (const std::exception&) {
    throw Error("malformed integer field in fault clause '" + clause_text +
                "'");
  }
}

}  // namespace

std::string to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kKernel:
      return "kernel";
    case FaultSite::kH2D:
      return "h2d";
    case FaultSite::kD2H:
      return "d2h";
    case FaultSite::kRank:
      return "rank";
    case FaultSite::kCheckpoint:
      return "ckpt";
  }
  return "unknown";
}

FaultSpec parse_fault_spec(std::string_view spec,
                           std::uint64_t default_seed) {
  FaultSpec result;
  result.seed = default_seed;
  for (const std::string& raw : util::split(spec, ';')) {
    const std::string clause_text = util::trim(raw);
    if (clause_text.empty()) continue;

    // Global `seed=N` clause (no site prefix).
    if (clause_text.rfind("seed=", 0) == 0) {
      result.seed = static_cast<std::uint64_t>(
          parse_int_field(clause_text, clause_text.substr(5)));
      continue;
    }

    const auto colon = clause_text.find(':');
    GAIA_CHECK(colon != std::string::npos,
               "fault clause missing ':' — '" + clause_text + "'");
    const auto site = parse_site(util::trim(clause_text.substr(0, colon)));
    GAIA_CHECK(site.has_value(),
               "unknown fault site in clause '" + clause_text + "'");

    FaultClause clause;
    clause.site = *site;
    if (clause.site == FaultSite::kRank) clause.max_count = 1;

    for (const std::string& raw_field :
         util::split(clause_text.substr(colon + 1), ',')) {
      const std::string field = util::trim(raw_field);
      if (field.empty()) continue;
      const auto eq = field.find('=');
      const std::string key =
          eq == std::string::npos ? field : util::trim(field.substr(0, eq));
      const std::string value =
          eq == std::string::npos ? "" : util::trim(field.substr(eq + 1));

      if (key == "p") {
        clause.probability = parse_probability(clause_text, value);
      } else if (key == "backend") {
        clause.backend = value;
      } else if (key == "count") {
        clause.max_count = parse_int_field(clause_text, value);
      } else if (key == "nth") {
        clause.nth = parse_int_field(clause_text, value);
      } else if (key == "rank") {
        clause.rank = parse_int_field(clause_text, value);
      } else if (key == "iter") {
        clause.iteration = parse_int_field(clause_text, value);
      } else if (key == "mode") {
        if (value == "fail") {
          clause.transfer_mode = TransferFault::kFail;
        } else if (value == "corrupt") {
          clause.transfer_mode = TransferFault::kCorrupt;
        } else {
          throw Error("unknown transfer mode '" + value + "' in clause '" +
                      clause_text + "'");
        }
      } else if (key == "truncate") {
        clause.ckpt_mode = CheckpointFault::kTruncate;
      } else if (key == "bitflip") {
        clause.ckpt_mode = CheckpointFault::kBitflip;
      } else {
        throw Error("unknown field '" + key + "' in fault clause '" +
                    clause_text + "'");
      }
    }

    if (clause.site == FaultSite::kRank) {
      GAIA_CHECK(clause.rank >= 0 && clause.iteration >= 1,
                 "rank clause needs rank= and iter= — '" + clause_text +
                     "'");
    }
    result.clauses.push_back(clause);
  }
  return result;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const FaultSpec& spec) {
  armed_.store(false, std::memory_order_relaxed);
  clauses_.clear();
  seed_ = spec.seed;
  for (const FaultClause& clause : spec.clauses) {
    auto state = std::make_unique<ClauseState>();
    state->clause = clause;
    clauses_.push_back(std::move(state));
  }
  for (auto& count : injected_by_site_)
    count.store(0, std::memory_order_relaxed);
  if (!clauses_.empty()) armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::configure(const std::string& spec, std::uint64_t seed) {
  configure(parse_fault_spec(spec, seed));
}

void FaultInjector::configure_from_env(const std::string& spec_override,
                                       std::uint64_t default_seed) {
  std::uint64_t seed = default_seed;
  if (const char* env_seed = std::getenv(kFaultSeedEnv);
      env_seed != nullptr && *env_seed != '\0') {
    seed = static_cast<std::uint64_t>(std::strtoull(env_seed, nullptr, 10));
  }
  std::string spec = spec_override;
  if (spec.empty()) {
    if (const char* env_spec = std::getenv(kFaultsEnv);
        env_spec != nullptr) {
      spec = env_spec;
    }
  }
  if (spec.empty()) return;
  configure(spec, seed);
}

void FaultInjector::disarm() {
  armed_.store(false, std::memory_order_relaxed);
  clauses_.clear();
}

bool FaultInjector::draw(ClauseState& state) {
  const FaultClause& clause = state.clause;
  const std::int64_t event =
      state.events.fetch_add(1, std::memory_order_relaxed);
  if (clause.max_count >= 0 &&
      state.fired.load(std::memory_order_relaxed) >= clause.max_count)
    return false;
  if (event_uniform(seed_, clause.site, event) >= clause.probability)
    return false;
  if (clause.max_count >= 0 &&
      state.fired.fetch_add(1, std::memory_order_relaxed) >=
          clause.max_count) {
    return false;  // lost the race for the last allowed injection
  }
  if (clause.max_count < 0) state.fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::record_injection(FaultSite site,
                                     const std::string& detail) {
  injected_by_site_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  auto& rec = obs::TraceRecorder::current();
  if (rec.enabled()) {
    rec.instant("fault." + to_string(site), "resilience",
                obs::TraceRecorder::kMainTrack, {{"detail", detail}});
  }
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("resilience.faults." + to_string(site)).add(1);
  }
}

bool FaultInjector::should_fail_kernel(std::string_view kernel,
                                       std::string_view backend) {
  if (!armed()) return false;
  for (auto& state : clauses_) {
    const FaultClause& clause = state->clause;
    if (clause.site != FaultSite::kKernel) continue;
    if (!clause.backend.empty() && clause.backend != backend) continue;
    if (draw(*state)) {
      record_injection(FaultSite::kKernel,
                       std::string(kernel) + " on " + std::string(backend));
      return true;
    }
  }
  return false;
}

TransferFault FaultInjector::on_transfer(FaultSite site) {
  if (!armed()) return TransferFault::kNone;
  for (auto& state : clauses_) {
    const FaultClause& clause = state->clause;
    if (clause.site != site) continue;
    if (draw(*state)) {
      record_injection(site, clause.transfer_mode == TransferFault::kCorrupt
                                 ? "corrupt"
                                 : "fail");
      return clause.transfer_mode;
    }
  }
  return TransferFault::kNone;
}

void FaultInjector::maybe_kill_rank(int rank, std::int64_t iteration) {
  if (!armed()) return;
  for (auto& state : clauses_) {
    const FaultClause& clause = state->clause;
    if (clause.site != FaultSite::kRank) continue;
    if (clause.rank != rank || clause.iteration != iteration) continue;
    if (clause.max_count >= 0 &&
        state->fired.fetch_add(1, std::memory_order_relaxed) >=
            clause.max_count)
      continue;
    record_injection(FaultSite::kRank,
                     "rank " + std::to_string(rank) + " iteration " +
                         std::to_string(iteration));
    throw RankDeath(rank, iteration);
  }
}

std::optional<CheckpointFault> FaultInjector::on_checkpoint_write() {
  if (!armed()) return std::nullopt;
  for (auto& state : clauses_) {
    const FaultClause& clause = state->clause;
    if (clause.site != FaultSite::kCheckpoint) continue;
    const std::int64_t event =
        state->events.fetch_add(1, std::memory_order_relaxed) + 1;
    if (clause.nth >= 0 && event != clause.nth) continue;
    if (clause.max_count >= 0 &&
        state->fired.load(std::memory_order_relaxed) >= clause.max_count)
      continue;
    state->fired.fetch_add(1, std::memory_order_relaxed);
    record_injection(FaultSite::kCheckpoint,
                     clause.ckpt_mode == CheckpointFault::kTruncate
                         ? "truncate"
                         : "bitflip");
    return clause.ckpt_mode;
  }
  return std::nullopt;
}

std::uint64_t FaultInjector::injected(FaultSite site) const {
  return injected_by_site_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto& count : injected_by_site_)
    total += count.load(std::memory_order_relaxed);
  return total;
}

}  // namespace gaia::resilience
