#include "resilience/health_monitor.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "obs/metrics.hpp"
#include "resilience/checkpoint.hpp"

namespace gaia::resilience {

std::string to_string(HealthMode mode) {
  switch (mode) {
    case HealthMode::kOff:
      return "off";
    case HealthMode::kDetect:
      return "detect";
    case HealthMode::kRepair:
      return "repair";
  }
  return "off";
}

std::optional<HealthMode> parse_health_mode(const std::string& name) {
  if (name == "off") return HealthMode::kOff;
  if (name == "detect") return HealthMode::kDetect;
  if (name == "repair") return HealthMode::kRepair;
  return std::nullopt;
}

HealthConfig health_config_from_env(const std::string& mode_override,
                                    std::int64_t every_override) {
  HealthConfig config;
  std::string mode_name = mode_override;
  if (mode_name.empty()) {
    if (const char* env = std::getenv(kHealthEnv);
        env != nullptr && *env != '\0')
      mode_name = env;
  }
  if (!mode_name.empty()) {
    const auto mode = parse_health_mode(mode_name);
    GAIA_CHECK(mode.has_value(),
               "unknown health mode '" + mode_name +
                   "' (expected off|detect|repair)");
    config.mode = *mode;
  }
  if (every_override > 0) {
    config.check_every = every_override;
  } else if (const char* env = std::getenv(kHealthEveryEnv);
             env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long long every = std::strtoll(env, &end, 10);
    GAIA_CHECK(end != env && *end == '\0' && every > 0,
               std::string("bad ") + kHealthEveryEnv + " value '" + env +
                   "'");
    config.check_every = every;
  }
  return config;
}

std::string to_string(HealthInvariant invariant) {
  switch (invariant) {
    case HealthInvariant::kNone:
      return "none";
    case HealthInvariant::kScalarFinite:
      return "scalar-finite";
    case HealthInvariant::kScalarSign:
      return "scalar-sign";
    case HealthInvariant::kRnormDivergence:
      return "rnorm-divergence";
    case HealthInvariant::kSegmentChecksum:
      return "segment-checksum";
    case HealthInvariant::kUnitNorm:
      return "unit-norm";
    case HealthInvariant::kXnormAgreement:
      return "xnorm-agreement";
    case HealthInvariant::kResidualAgreement:
      return "residual-agreement";
    case HealthInvariant::kStateHashDisagreement:
      return "state-hash-disagreement";
    case HealthInvariant::kKernelChecksum:
      return "kernel-checksum";
  }
  return "none";
}

std::string HealthVerdict::describe() const {
  std::ostringstream os;
  os << "invariant '" << to_string(invariant) << "' tripped at iteration "
     << iteration << " on rank " << rank;
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

HealthMonitor::HealthMonitor(HealthConfig config, int rank)
    : config_(config), rank_(rank) {
  if (config_.window > 0)
    window_.reserve(static_cast<std::size_t>(config_.window));
}

HealthVerdict HealthMonitor::check_scalars(std::int64_t iteration,
                                           real alpha, real beta,
                                           real rnorm, real arnorm,
                                           real xnorm) {
  HealthVerdict verdict;
  verdict.iteration = iteration;
  verdict.rank = rank_;
  const struct {
    const char* name;
    real value;
  } scalars[] = {{"alpha", alpha},
                 {"beta", beta},
                 {"rnorm", rnorm},
                 {"arnorm", arnorm},
                 {"xnorm", xnorm}};
  for (const auto& s : scalars) {
    if (!std::isfinite(s.value)) {
      verdict.invariant = HealthInvariant::kScalarFinite;
      std::ostringstream os;
      os << s.name << " = " << s.value;
      verdict.detail = os.str();
      return verdict;
    }
  }
  // alpha and beta are vector norms; a negative value can only come
  // from corrupted scalar state (a restored checkpoint gone bad).
  for (const auto& s : {scalars[0], scalars[1]}) {
    if (s.value < 0) {
      verdict.invariant = HealthInvariant::kScalarSign;
      std::ostringstream os;
      os << s.name << " = " << s.value << " < 0";
      verdict.detail = os.str();
      return verdict;
    }
  }
  return verdict;
}

HealthVerdict HealthMonitor::check_rnorm_window(std::int64_t iteration,
                                                real rnorm) {
  HealthVerdict verdict;
  verdict.iteration = iteration;
  verdict.rank = rank_;
  if (config_.window <= 0 || config_.rnorm_growth_ratio <= 0)
    return verdict;
  if (!window_.empty()) {
    const real window_min = *std::min_element(window_.begin(), window_.end());
    if (window_min > 0 && rnorm > config_.rnorm_growth_ratio * window_min) {
      verdict.invariant = HealthInvariant::kRnormDivergence;
      std::ostringstream os;
      os << "rnorm " << rnorm << " > " << config_.rnorm_growth_ratio
         << " x window min " << window_min;
      verdict.detail = os.str();
      return verdict;
    }
  }
  if (window_.size() >= static_cast<std::size_t>(config_.window))
    window_.erase(window_.begin());
  window_.push_back(rnorm);
  return verdict;
}

HealthVerdict HealthMonitor::check_vector(std::int64_t iteration,
                                          std::string_view name,
                                          std::span<const real> v,
                                          real expected_norm, real rel_tol,
                                          HealthInvariant norm_invariant) {
  HealthVerdict verdict;
  verdict.iteration = iteration;
  verdict.rank = rank_;
  if (v.empty()) return verdict;
  const int n_segments = std::max(
      1, std::min(config_.segments, static_cast<int>(v.size())));
  const std::size_t seg_len =
      (v.size() + static_cast<std::size_t>(n_segments) - 1) /
      static_cast<std::size_t>(n_segments);
  real sum_sq = 0;
  for (int s = 0; s < n_segments; ++s) {
    const std::size_t begin = static_cast<std::size_t>(s) * seg_len;
    const std::size_t end = std::min(v.size(), begin + seg_len);
    real sum = 0, comp = 0;  // Kahan per segment, like vnorm
    for (std::size_t i = begin; i < end; ++i) {
      const real term = v[i] * v[i] - comp;
      const real next = sum + term;
      comp = (next - sum) - term;
      sum = next;
    }
    if (!std::isfinite(sum)) {
      verdict.invariant = HealthInvariant::kSegmentChecksum;
      std::ostringstream os;
      os << name << " segment " << s << "/" << n_segments << " (elements ["
         << begin << ", " << end << ")) is non-finite";
      verdict.detail = os.str();
      return verdict;
    }
    sum_sq += sum;
  }
  if (expected_norm >= 0 && rel_tol > 0) {
    const real norm = std::sqrt(sum_sq);
    const real scale = std::max({std::abs(expected_norm), std::abs(norm),
                                 std::numeric_limits<real>::min()});
    if (std::abs(norm - expected_norm) > rel_tol * scale) {
      verdict.invariant = norm_invariant;
      std::ostringstream os;
      os << "||" << name << "|| = " << norm << " vs expected "
         << expected_norm << " (rel tol " << rel_tol << ")";
      verdict.detail = os.str();
      return verdict;
    }
  }
  return verdict;
}

HealthVerdict HealthMonitor::check_agreement(std::int64_t iteration,
                                             std::string_view name,
                                             real value, real estimate,
                                             real rel_tol,
                                             HealthInvariant invariant) {
  HealthVerdict verdict;
  verdict.iteration = iteration;
  verdict.rank = rank_;
  if (!std::isfinite(value) || !std::isfinite(estimate)) {
    verdict.invariant = invariant;
    std::ostringstream os;
    os << name << " recomputed " << value << " vs estimate " << estimate
       << " (non-finite)";
    verdict.detail = os.str();
    return verdict;
  }
  const real scale = std::max({std::abs(value), std::abs(estimate),
                               std::numeric_limits<real>::min()});
  if (std::abs(value - estimate) > rel_tol * scale) {
    verdict.invariant = invariant;
    std::ostringstream os;
    os << name << " recomputed " << value << " vs estimate " << estimate
       << " (rel mismatch " << std::abs(value - estimate) / scale
       << ", tol " << rel_tol << ")";
    verdict.detail = os.str();
  }
  return verdict;
}

HealthVerdict HealthMonitor::check_kernel_checksum(std::int64_t iteration,
                                                   std::string_view kernel,
                                                   real actual,
                                                   real expected,
                                                   real scale) {
  HealthVerdict verdict;
  verdict.iteration = iteration;
  verdict.rank = rank_;
  const real tol = config_.abft_rel_tol * std::max(scale, real{1});
  if (!std::isfinite(actual) || !std::isfinite(expected) ||
      std::abs(actual - expected) > tol) {
    verdict.invariant = HealthInvariant::kKernelChecksum;
    std::ostringstream os;
    os << kernel << " output checksum " << actual << " vs expected "
       << expected << " (|diff| " << std::abs(actual - expected)
       << ", tol " << tol << ")";
    verdict.detail = os.str();
  }
  return verdict;
}

void HealthMonitor::note_deep_check() {
  ++checks_;
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) reg.counter("resilience.sdc.checks").add(1);
}

void HealthMonitor::record_detection(const HealthVerdict& verdict) {
  ++detections_;
  if (first_detection_ < 0) first_detection_ = verdict.iteration;
  last_diagnosis_ = verdict.describe();
  note_resilience_event("sdc.detected", last_diagnosis_);
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled())
    reg.counter("resilience.sdc.invariant." + to_string(verdict.invariant))
        .add(1);
}

void HealthMonitor::record_repair(std::int64_t iteration,
                                  std::int64_t restored_iteration) {
  ++repairs_;
  note_resilience_event(
      "sdc.repaired", "rolled back from iteration " +
                          std::to_string(iteration) + " to " +
                          std::to_string(restored_iteration));
}

void HealthMonitor::record_unrepaired(const HealthVerdict& verdict) {
  unrepaired_ = true;
  last_diagnosis_ = verdict.describe();
  note_resilience_event("sdc.unrepaired", last_diagnosis_);
}

void HealthMonitor::reset_window() { window_.clear(); }

HealthReport HealthMonitor::report() const {
  HealthReport report;
  report.mode = config_.mode;
  report.checks = checks_;
  report.detections = detections_;
  report.repairs = repairs_;
  report.first_detection_iteration = first_detection_;
  report.last_diagnosis = last_diagnosis_;
  report.unrepaired = unrepaired_;
  return report;
}

std::uint64_t state_hash(
    std::span<const real> scalars,
    std::initializer_list<std::span<const real>> vectors) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  for (real s : scalars)
    mix(std::bit_cast<std::uint64_t>(static_cast<double>(s)));
  for (std::span<const real> v : vectors)
    for (real e : v) mix(std::bit_cast<std::uint64_t>(static_cast<double>(e)));
  return h;
}

double fold_hash_to_real(std::uint64_t hash) {
  const std::uint64_t folded =
      (hash ^ (hash >> 52)) & ((std::uint64_t{1} << 52) - 1);
  return static_cast<double>(folded);
}

}  // namespace gaia::resilience
