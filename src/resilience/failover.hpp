/// \file failover.hpp
/// \brief Backend failover chain for graceful degradation.
///
/// When a kernel launch keeps failing on one backend (a persistent
/// fault surviving the retry budget), the solver does not abort: it
/// steps down a degradation chain and finishes the run on a slower but
/// healthy backend — the paper's portability layer turned into a
/// resilience asset (every backend computes identical results, SV-C,
/// so failover is numerically free).
///
/// Chain: gpusim -> openmp -> serial; pstl -> openmp -> serial.
/// Header-only: the chain logic only needs the BackendKind enum.
#pragma once

#include <optional>

#include "backends/backend.hpp"

namespace gaia::resilience {

/// Next backend to try after `kind` persistently fails; nullopt when the
/// chain is exhausted (serial has no fallback).
[[nodiscard]] inline std::optional<backends::BackendKind> next_backend(
    backends::BackendKind kind) {
  using backends::BackendKind;
  switch (kind) {
    case BackendKind::kGpuSim:
      return BackendKind::kOpenMP;
    case BackendKind::kPstl:
      return BackendKind::kOpenMP;
    case BackendKind::kOpenMP:
      return BackendKind::kSerial;
    case BackendKind::kSerial:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace gaia::resilience
