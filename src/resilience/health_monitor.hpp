/// \file health_monitor.hpp
/// \brief ABFT-style invariant monitoring for silent-data-corruption
/// defense in the LSQR solvers.
///
/// The loud-fault machinery (retry, CRC-framed checkpoints, rank-death
/// restart) cannot see a bit that flips *inside* a kernel's output: the
/// corrupted value flows through the Golub-Kahan recurrences and quietly
/// poisons the astrometric solution. This monitor closes that gap with
/// layered checks, cheapest first:
///
///  * **Scalar invariants** (every iteration, O(1)) — alpha/beta/rnorm/
///    arnorm/xnorm must be finite; alpha/beta are norms and must be
///    non-negative; a windowed rnorm divergence ratio catches estimate
///    blow-ups.
///  * **Kernel-output checksums** (every iteration, O(m + n)) — classic
///    ABFT over the aprod products: with precomputed checksum vectors
///    c = A^T 1 and r = A 1, the identities sum(A v) = c . v and
///    sum(A^T u) = r . u must hold to rounding. This is the detector
///    with *same-iteration* latency: a flip in a product's output that
///    the Golub-Kahan recurrence would otherwise absorb
///    self-consistently (the next basis vector is built *from* the
///    corrupted one, so downstream identities re-close) is caught here
///    before the recurrence consumes it.
///  * **Segment checksums** (every K iterations, O(m + n)) — a Kahan
///    sum-of-squares pass over u/v/x in fixed segments localizes
///    non-finite contamination and yields the vector norm for free,
///    which is cross-checked against the recurrence's own estimates:
///    u and v are unit vectors by construction, and ||x|| must agree
///    with the xnorm recurrence (the ABFT dual computation — the
///    estimate and the recomputation take disjoint arithmetic paths, so
///    a silent flip in either diverges them).
///  * **True-residual agreement** (every K iterations, one extra
///    apply1) — recompute ||b - A x|| and compare with the maintained
///    rnorm estimate; this is the detector a *self-consistent* corrupted
///    trajectory cannot fool, because the recurrence only ever sees the
///    corrupted Krylov basis while the recomputation sees the matrix.
///  * **Cross-rank state agreement** (dist, every K iterations, one
///    scalar allreduce pair) — v/w/x are replicated bit-identically
///    across ranks (reductions in vector_ops.hpp are serial Kahan), so
///    an FNV-1a hash of their bit patterns folded to 52 bits (exactly
///    representable as a double) must allreduce to min == max; a
///    minority rank whose replica diverged is caught within K
///    iterations.
///
/// The monitor only observes and diagnoses; containment/repair policy
/// (rollback to a validated snapshot, bounded replay, diagnosed abort)
/// lives in the solvers, keyed off `HealthMode`.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace gaia::resilience {

/// What to do about corruption: ignore (off), stop with a diagnosis
/// (detect), or roll back and replay (repair).
enum class HealthMode : std::uint8_t { kOff = 0, kDetect, kRepair };

[[nodiscard]] std::string to_string(HealthMode mode);
[[nodiscard]] std::optional<HealthMode> parse_health_mode(
    const std::string& name);

/// Environment knobs honored by `health_config_from_env()`.
inline constexpr const char* kHealthEnv = "GAIA_HEALTH";
inline constexpr const char* kHealthEveryEnv = "GAIA_HEALTH_EVERY";

struct HealthConfig {
  HealthMode mode = HealthMode::kOff;
  /// Deep-check cadence in iterations (segment checksums, residual
  /// recompute, cross-rank hash). The dominant overhead term is the
  /// residual recompute — one apply1 per check, roughly half an
  /// iteration — so the enabled-mode cost is ~0.5/check_every plus
  /// cheap O(m+n) passes (<3% at the default cadence). Detection
  /// latency for silent flips is bounded by this cadence.
  std::int64_t check_every = 25;
  /// Segments per checksum pass (non-finite localization granularity).
  int segments = 16;
  /// Relative disagreement tolerated between the rnorm estimate and the
  /// recomputed true residual. Healthy runs agree to ~1e-10; corrupted
  /// trajectories diverge by orders of magnitude within a few
  /// iterations.
  real residual_rel_tol = 1e-6;
  /// |norm^2 - 1| bound for the normalized Golub-Kahan vectors.
  real unit_norm_tol = 1e-8;
  /// Relative tolerance of the per-iteration ABFT kernel-output
  /// checksums (sum(A v) vs (A^T 1) . v and the adjoint dual): the two
  /// sides take disjoint arithmetic paths, so they agree only to
  /// accumulated rounding — comfortably under 1e-11 of the magnitude
  /// scale — while a single bit flip in the output shifts the sum by
  /// the flip's absolute size. Flips below tol x scale are tolerated;
  /// they perturb the trajectory by less than the solver's own rounding.
  real abft_rel_tol = 1e-9;
  /// Relative disagreement tolerated between ||x|| and the recurrence's
  /// xnorm estimate (degrades with loss of Krylov orthogonality, hence
  /// looser than the residual tolerance).
  real xnorm_rel_tol = 1e-3;
  /// rnorm rising above `ratio x` the window minimum trips divergence.
  real rnorm_growth_ratio = 10.0;
  int window = 16;  ///< rnorm observations kept for the divergence test
  /// Rollback/replay attempts before escalating to a diagnosed abort.
  int max_repairs = 3;

  [[nodiscard]] bool enabled() const { return mode != HealthMode::kOff; }
  [[nodiscard]] bool due(std::int64_t iteration) const {
    return enabled() && check_every > 0 && iteration > 0 &&
           iteration % check_every == 0;
  }
};

/// Config from GAIA_HEALTH / GAIA_HEALTH_EVERY; a non-empty
/// `mode_override` (CLI) wins over the environment, `every_override > 0`
/// likewise. Throws gaia::Error on an unknown mode name.
[[nodiscard]] HealthConfig health_config_from_env(
    const std::string& mode_override = "",
    std::int64_t every_override = 0);

/// Which invariant a detection tripped.
enum class HealthInvariant : std::uint8_t {
  kNone = 0,
  kScalarFinite,           ///< non-finite recurrence scalar
  kScalarSign,             ///< a norm-valued scalar went negative
  kRnormDivergence,        ///< rnorm blew past the windowed minimum
  kSegmentChecksum,        ///< non-finite contamination in a vector
  kUnitNorm,               ///< u/v no longer unit after normalization
  kXnormAgreement,         ///< ||x|| disagrees with the xnorm recurrence
  kResidualAgreement,      ///< true ||b-Ax|| disagrees with the estimate
  kStateHashDisagreement,  ///< replicated state differs across ranks
  kKernelChecksum,         ///< ABFT checksum mismatch on a kernel output
                           ///< (same-iteration detection — catches flips
                           ///< the recurrence would otherwise absorb
                           ///< self-consistently)
};

[[nodiscard]] std::string to_string(HealthInvariant invariant);

/// Diagnosis of one detection: which invariant, where, and the numbers.
struct HealthVerdict {
  HealthInvariant invariant = HealthInvariant::kNone;
  std::int64_t iteration = -1;
  int rank = 0;
  std::string detail;

  [[nodiscard]] bool healthy() const {
    return invariant == HealthInvariant::kNone;
  }
  /// "invariant 'residual-agreement' tripped at iteration 25 on rank 0:
  /// ..." — the string that reaches counters, traces and aborts.
  [[nodiscard]] std::string describe() const;
};

/// Raised when repair is exhausted: the diagnosed abort of the SDC
/// pipeline, carrying which invariant / iteration / rank.
class SdcError : public Error {
 public:
  explicit SdcError(const HealthVerdict& verdict)
      : Error("unrepaired silent data corruption: " + verdict.describe()),
        verdict_(verdict) {}

  [[nodiscard]] const HealthVerdict& verdict() const { return verdict_; }

 private:
  HealthVerdict verdict_;
};

/// Health outcome of one solve, surfaced through the result structs.
struct HealthReport {
  HealthMode mode = HealthMode::kOff;
  std::uint64_t checks = 0;      ///< deep check passes run
  std::uint64_t detections = 0;  ///< invariant trips (incl. re-detections)
  std::uint64_t repairs = 0;     ///< successful rollback/replays
  std::int64_t first_detection_iteration = -1;
  std::string last_diagnosis;    ///< empty = never tripped
  bool unrepaired = false;       ///< true when repair budget ran out
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config, int rank = 0);

  [[nodiscard]] const HealthConfig& config() const { return config_; }

  /// Cheap per-iteration invariants over the recurrence scalars.
  [[nodiscard]] HealthVerdict check_scalars(std::int64_t iteration,
                                            real alpha, real beta,
                                            real rnorm, real arnorm,
                                            real xnorm);

  /// Windowed rnorm divergence (maintains the window internally; call
  /// once per iteration, after check_scalars).
  [[nodiscard]] HealthVerdict check_rnorm_window(std::int64_t iteration,
                                                 real rnorm);

  /// Segment-checksum pass: localizes non-finite contamination to a
  /// segment of `name`, and when `expected_norm >= 0` cross-checks the
  /// recomputed ||v|| against it within `rel_tol`, reporting
  /// `norm_invariant` on mismatch.
  [[nodiscard]] HealthVerdict check_vector(
      std::int64_t iteration, std::string_view name,
      std::span<const real> v, real expected_norm = -1, real rel_tol = 0,
      HealthInvariant norm_invariant = HealthInvariant::kUnitNorm);

  /// Generic ABFT agreement test between a recomputed `value` and the
  /// recurrence's `estimate` (relative to the larger magnitude).
  [[nodiscard]] HealthVerdict check_agreement(std::int64_t iteration,
                                              std::string_view name,
                                              real value, real estimate,
                                              real rel_tol,
                                              HealthInvariant invariant);

  /// Per-iteration ABFT kernel-output checksum: `actual` is the summed
  /// output of `kernel`, `expected` the checksum-vector identity's
  /// prediction, `scale` a magnitude bound of the terms involved (the
  /// tolerance is abft_rel_tol x max(scale, 1) — an explicit scale,
  /// because the two sides can cancel to near zero while their terms
  /// stay large). Non-finite values on either side always trip.
  [[nodiscard]] HealthVerdict check_kernel_checksum(std::int64_t iteration,
                                                    std::string_view kernel,
                                                    real actual,
                                                    real expected,
                                                    real scale);

  /// Bookkeeping. `note_deep_check` counts a completed deep pass;
  /// `record_detection` / `record_repair` / `record_unrepaired` emit the
  /// resilience.sdc.* counters and trace instants and accumulate the
  /// report.
  void note_deep_check();
  void record_detection(const HealthVerdict& verdict);
  void record_repair(std::int64_t iteration,
                     std::int64_t restored_iteration);
  void record_unrepaired(const HealthVerdict& verdict);

  /// Drops the rnorm window (call after a rollback: pre-corruption
  /// observations would re-trip on the replayed trajectory).
  void reset_window();

  [[nodiscard]] HealthReport report() const;
  [[nodiscard]] std::uint64_t detections() const { return detections_; }
  [[nodiscard]] std::uint64_t repairs() const { return repairs_; }

 private:
  HealthConfig config_;
  int rank_ = 0;
  std::vector<real> window_;
  std::uint64_t checks_ = 0, detections_ = 0, repairs_ = 0;
  std::int64_t first_detection_ = -1;
  std::string last_diagnosis_;
  bool unrepaired_ = false;
};

/// Deterministic FNV-1a hash over the bit patterns of the replicated
/// solver state. Ranks on bit-identical trajectories — guaranteed by the
/// serial Kahan reductions — produce identical hashes; one flipped bit
/// anywhere diverges it.
[[nodiscard]] std::uint64_t state_hash(
    std::span<const real> scalars,
    std::initializer_list<std::span<const real>> vectors);

/// Folds a hash to 52 bits so its value survives a double-precision
/// allreduce exactly (the in-process Comm reduces over `real`).
[[nodiscard]] double fold_hash_to_real(std::uint64_t hash);

}  // namespace gaia::resilience
