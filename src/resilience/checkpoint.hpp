/// \file checkpoint.hpp
/// \brief Sealed checkpoint files and rotation-aware orchestration.
///
/// Production solves persist state across job boundaries; a checkpoint
/// that dies with the job (torn write) or rots on disk (bit flip) must
/// never be resumed from silently. Two layers:
///
///  * **Framing** — `write_framed_file` writes payload + CRC32 footer to
///    `<path>.tmp` and renames (atomic on POSIX), `read_framed_file`
///    verifies the footer and rejects truncated/corrupt files with a
///    `gaia::Error` naming the path and reason.
///  * **`CheckpointManager`** — rotates `basename.<iteration>.ckpt`
///    files in a directory, keeps the last K, and on resume returns the
///    newest file that still verifies, skipping corrupt ones with a
///    warning (and an obs event) instead of failing the run.
///
/// The manager is also the injection point for `ckpt:` fault clauses:
/// after each write it asks the global `FaultInjector` whether to
/// truncate or bit-flip the file just written, which is how tests and
/// the CI smoke job manufacture the "latest checkpoint is bad" scenario.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gaia::resilience {

/// Appends the CRC footer and atomically replaces `path`
/// (write `<path>.tmp`, then rename). Throws gaia::Error on I/O failure.
void write_framed_file(const std::string& path, std::string_view payload);

/// Reads and verifies a framed file; returns the payload with the footer
/// stripped. Throws gaia::Error naming `path` and the reason (missing
/// footer magic, length mismatch i.e. truncation, CRC mismatch i.e.
/// bit rot).
[[nodiscard]] std::string read_framed_file(const std::string& path);

/// Verification without the payload copy: true iff the footer checks out.
[[nodiscard]] bool verify_framed_file(const std::string& path);

/// Records a resilience event under both observability sinks: a trace
/// instant `name` (category "resilience") with `detail` attached, and a
/// bump of the `resilience.<name>` counter. No-op when both sinks are
/// disabled. Used for checkpoint lifecycle and recovery milestones
/// (written/skipped/resumed/restart).
void note_resilience_event(const char* name, const std::string& detail);

struct CheckpointConfig {
  std::string directory;        ///< empty = checkpointing disabled
  std::string basename = "gaia";
  std::int64_t every = 0;       ///< checkpoint cadence in iterations; 0 = off
  int keep_last = 3;            ///< retained rotation depth (>= 1)
};

struct CheckpointInfo {
  std::string path;
  std::int64_t iteration = 0;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointConfig config);

  [[nodiscard]] bool enabled() const {
    return config_.every > 0 && !config_.directory.empty();
  }
  /// True when `iteration` is a checkpoint boundary.
  [[nodiscard]] bool due(std::int64_t iteration) const {
    return enabled() && iteration > 0 && iteration % config_.every == 0;
  }

  /// Seals `payload` into `basename.<iteration>.ckpt` (atomic
  /// write+rename), applies any injected corruption, prunes beyond
  /// keep_last, and returns the final path.
  std::string write(std::int64_t iteration, std::string_view payload);

  /// All checkpoints in the directory, newest (highest iteration) first.
  [[nodiscard]] std::vector<CheckpointInfo> list() const;

  struct Loaded {
    CheckpointInfo info;
    std::string payload;
  };
  /// Newest checkpoint that verifies; corrupt files are skipped with a
  /// stderr warning and an obs `checkpoint.skipped` event. nullopt when
  /// none survives.
  [[nodiscard]] std::optional<Loaded> load_newest_valid() const;

  [[nodiscard]] std::uint64_t written() const { return written_; }
  [[nodiscard]] const CheckpointConfig& config() const { return config_; }

 private:
  void prune() const;

  CheckpointConfig config_;
  std::uint64_t written_ = 0;
};

}  // namespace gaia::resilience
