/// \file fault_injector.hpp
/// \brief Deterministic, seeded fault injection for resilience testing.
///
/// A production AVU-GSR solve occupies a large machine for hours; the
/// follow-up exascale papers (arXiv:2308.00778, arXiv:2503.22863) name
/// fault tolerance and checkpointing as prerequisites. This injector
/// makes failure a first-class, reproducible scenario: armed via the
/// `GAIA_FAULTS` environment variable or the `--faults` CLI flag, it can
/// fail kernel launches, fail or corrupt simulated H2D/D2H transfers,
/// kill a rank at a chosen iteration, truncate or bit-flip checkpoint
/// files, and — the silent-data-corruption scenario — flip a single bit
/// in a kernel's output vector with no CRC or exception to announce it.
///
/// Spec grammar (clauses separated by ';', fields by ','):
///
///   kernel:p=0.01                 fail 1% of kernel launches
///   kernel:p=1,backend=gpusim     every gpusim launch fails (failover test)
///   h2d:p=0.005                   fail 0.5% of host-to-device copies
///   d2h:p=0.01,mode=corrupt       bit-flip 1% of device-to-host copies
///   rank:iter=200,rank=1          rank 1 dies entering iteration 200
///   ckpt:truncate,nth=2           truncate the 2nd checkpoint written
///   ckpt:bitflip                  bit-flip every checkpoint written
///   sdc:kernel=aprod2,iter=12     silently flip one bit of the aprod2
///                                 output vector at iteration 12 (rank 0)
///   sdc:kernel=aprod1,iter=30,rank=1,bit=62,index=17
///                                 full form: victim rank, bit position
///                                 (0-63, default 51 = top mantissa bit),
///                                 element index (default: seeded draw)
///   seed=42                       injector RNG seed (default 1746)
///
/// Optional fields: `count=N` caps how many times a clause fires
/// (rank and sdc clauses default to 1, probabilistic clauses to
/// unlimited).
///
/// Malformed specs fail loudly: unknown sites, unknown field keys,
/// out-of-range probabilities/bits and trailing garbage in numeric
/// values all raise a gaia::Error carrying the byte offset of the
/// offending clause within the spec (a typo in a fault campaign must
/// never silently run the healthy configuration).
///
/// Determinism: each clause owns a monotonically increasing event
/// counter; the decision for event k is a pure function of
/// (seed, site, k). For single-threaded launch sequences the faulted
/// events are bit-reproducible; under stream/rank concurrency the
/// *number* of injections over N events is reproducible while the
/// thread interleaving decides which concurrent event draws which
/// counter value.
///
/// Cost contract: while disarmed (default), every query site pays one
/// relaxed atomic load.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace gaia::resilience {

/// Where a fault can be injected.
enum class FaultSite : std::uint8_t {
  kKernel = 0,   ///< kernel launch failure
  kH2D,          ///< host-to-device transfer
  kD2H,          ///< device-to-host transfer
  kRank,         ///< rank death inside a distributed solve
  kCheckpoint,   ///< checkpoint file corruption
  kSdc,          ///< silent bit flip in a kernel output vector
};
inline constexpr std::size_t kNumFaultSites = 6;

[[nodiscard]] std::string to_string(FaultSite site);

/// A retryable injected failure (transfer hiccup, spurious launch
/// failure). `with_retry` absorbs these up to the backoff budget.
class TransientFault : public Error {
 public:
  using Error::Error;
};

/// A fault that survived the retry budget (or is inherently fatal).
class PersistentFault : public Error {
 public:
  using Error::Error;
};

/// Injected rank death. `World` poisons the collectives so every
/// surviving rank rethrows this cleanly instead of deadlocking.
class RankDeath : public Error {
 public:
  RankDeath(int rank, std::int64_t iteration)
      : Error("injected rank death: rank " + std::to_string(rank) +
              " at iteration " + std::to_string(iteration)),
        rank_(rank),
        iteration_(iteration) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::int64_t iteration() const { return iteration_; }

 private:
  int rank_;
  std::int64_t iteration_;
};

/// How an armed transfer clause affects one copy.
enum class TransferFault : std::uint8_t {
  kNone = 0,
  kFail,     ///< the copy throws TransientFault before moving bytes
  kCorrupt,  ///< the copy completes but a bit is flipped (CRC catches it)
};

/// How an armed checkpoint clause corrupts one written file.
enum class CheckpointFault : std::uint8_t { kTruncate, kBitflip };

/// One silent bit flip the caller applies to a kernel output vector.
struct SdcFlip {
  std::size_t index = 0;  ///< element whose bit is flipped
  int bit = 51;           ///< bit position within the IEEE-754 double
};

/// Applies the flip in place — silent by construction: no exception, no
/// CRC, no retry path sees it. Only the health monitor can.
inline void apply_bitflip(std::span<real> v, const SdcFlip& flip) {
  auto bits = std::bit_cast<std::uint64_t>(v[flip.index]);
  bits ^= std::uint64_t{1} << flip.bit;
  v[flip.index] = std::bit_cast<real>(bits);
}

/// One parsed clause of the fault spec.
struct FaultClause {
  FaultSite site = FaultSite::kKernel;
  double probability = 0;            ///< kernel/h2d/d2h clauses
  std::string backend;               ///< optional kernel backend filter
  TransferFault transfer_mode = TransferFault::kFail;
  CheckpointFault ckpt_mode = CheckpointFault::kTruncate;
  std::int64_t nth = -1;             ///< ckpt: corrupt only the nth write
  std::int64_t rank = -1;            ///< rank/sdc clause: victim rank
  std::int64_t iteration = -1;       ///< rank/sdc clause: trigger iteration
  std::string kernel;                ///< sdc clause: kernel-output site
  int bit = 51;                      ///< sdc clause: bit to flip
  std::int64_t index = -1;           ///< sdc clause: element (-1 = seeded)
  std::int64_t max_count = -1;       ///< -1 = unlimited
};

/// Parses the spec grammar above; throws gaia::Error naming the
/// offending clause and its byte offset on malformed input. The returned
/// seed defaults to `default_seed` unless the spec carries a `seed=`
/// clause.
struct FaultSpec {
  std::vector<FaultClause> clauses;
  std::uint64_t seed = 1746;
};
[[nodiscard]] FaultSpec parse_fault_spec(std::string_view spec,
                                         std::uint64_t default_seed = 1746);

/// Environment variables honored by `configure_from_env()`.
inline constexpr const char* kFaultsEnv = "GAIA_FAULTS";
inline constexpr const char* kFaultSeedEnv = "GAIA_FAULT_SEED";

/// Process-wide injector. All query methods are thread-safe.
class FaultInjector {
 public:
  /// Arms the injector with a parsed spec. Resets all event counters.
  void configure(const FaultSpec& spec);
  void configure(const std::string& spec, std::uint64_t seed = 1746);
  /// Reads GAIA_FAULTS / GAIA_FAULT_SEED; an explicit non-empty
  /// `spec_override` wins over the environment. Empty everything leaves
  /// the injector disarmed.
  void configure_from_env(const std::string& spec_override = "",
                          std::uint64_t default_seed = 1746);
  /// Disarms and clears all clauses and counters.
  void disarm();

  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// True when launch `kernel` on `backend` should fail this time.
  /// Records the injection in the trace/metrics when it fires.
  [[nodiscard]] bool should_fail_kernel(std::string_view kernel,
                                        std::string_view backend);

  /// Decision for one transfer (`site` is kH2D or kD2H).
  [[nodiscard]] TransferFault on_transfer(FaultSite site);

  /// Throws RankDeath when a `rank:` clause matches (rank, iteration).
  void maybe_kill_rank(int rank, std::int64_t iteration);

  /// Decision for the checkpoint file just written (call once per
  /// write; advances the write counter).
  [[nodiscard]] std::optional<CheckpointFault> on_checkpoint_write();

  /// Decision for one kernel-output vector of `size` elements: when an
  /// `sdc:` clause matches (`kernel` name or its prefix group, e.g. a
  /// clause naming `aprod2_att` matches the combined `aprod2` output
  /// pass; iteration; rank), returns the bit flip the caller must apply
  /// via `apply_bitflip`. The flip is recorded in the injector's own
  /// counters/trace but nothing on the data path is told — that is the
  /// point.
  [[nodiscard]] std::optional<SdcFlip> on_kernel_output(
      std::string_view kernel, std::int64_t iteration, int rank,
      std::size_t size);

  /// Total faults injected at a site since configure().
  [[nodiscard]] std::uint64_t injected(FaultSite site) const;
  [[nodiscard]] std::uint64_t injected_total() const;

  /// Process-wide injector used by the library's hooks.
  static FaultInjector& global();

 private:
  struct ClauseState {
    FaultClause clause;
    std::atomic<std::int64_t> events{0};   ///< queries seen
    std::atomic<std::int64_t> fired{0};    ///< faults injected
  };

  /// Deterministic per-event Bernoulli draw and count bookkeeping;
  /// returns true when the clause fires for this event.
  bool draw(ClauseState& state);
  void record_injection(FaultSite site, const std::string& detail);

  std::atomic<bool> armed_{false};
  std::uint64_t seed_ = 1746;
  std::vector<std::unique_ptr<ClauseState>> clauses_;
  std::atomic<std::uint64_t> injected_by_site_[kNumFaultSites] = {};
};

}  // namespace gaia::resilience
