#include "tuning/autotuner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace gaia::tuning {

using backends::KernelConfig;
using backends::KernelId;

namespace {

void note_trial() {
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    static obs::Counter& trials = reg.counter("tuning.trials");
    trials.add(1);
  }
}

void note_winner(KernelId id, KernelConfig cfg, double median_s) {
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    static obs::Counter& tuned = reg.counter("tuning.kernels_tuned");
    tuned.add(1);
  }
  auto& rec = obs::TraceRecorder::current();
  if (rec.enabled()) {
    rec.instant("tuning_winner", "tuning", obs::TraceRecorder::kMainTrack,
                {{"kernel", backends::to_string(id)},
                 {"blocks", static_cast<std::int64_t>(cfg.blocks)},
                 {"threads", static_cast<std::int64_t>(cfg.threads)},
                 {"strategy", backends::to_string(cfg.strategy)},
                 {"layout", backends::to_string(cfg.layout)},
                 {"precision", backends::to_string(cfg.precision)},
                 {"median_us", median_s * 1e6}});
  }
}

}  // namespace

Autotuner::Autotuner(backends::BackendKind backend, AutotuneOptions options)
    : backend_(backend),
      options_(std::move(options)),
      enabled_(backends::honors_kernel_config(backend)) {
  GAIA_CHECK(options_.samples_per_config >= 1,
             "autotuner needs at least one sample per config");
  GAIA_CHECK(options_.max_configs_per_kernel >= 1,
             "autotuner needs a positive config budget");
  GAIA_CHECK(!options_.block_grid.empty() && !options_.thread_grid.empty(),
             "autotuner search grid must not be empty");
  for (std::int32_t b : options_.block_grid)
    backends::validate_kernel_config({b, options_.thread_grid.front()},
                                     "autotuner block grid");
  for (std::int32_t t : options_.thread_grid)
    backends::validate_kernel_config({options_.block_grid.front(), t},
                                     "autotuner thread grid");
}

bool Autotuner::active() const {
  if (!enabled_) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(search_.begin(), search_.end(),
                     [](const KernelSearch& s) { return !s.finished; });
}

bool Autotuner::searching(KernelId id) const {
  if (!enabled_) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return !search_[static_cast<std::size_t>(id)].finished;
}

KernelConfig Autotuner::config_of(Candidate c) const {
  return {options_.block_grid[static_cast<std::size_t>(c.bi)],
          options_.thread_grid[static_cast<std::size_t>(c.ti)],
          c.si == 1 ? backends::ScatterStrategy::kPrivatized
                    : backends::ScatterStrategy::kAtomic,
          static_cast<backends::StorageLayout>(c.li),
          static_cast<backends::Precision>(c.pi)};
}

int Autotuner::nearest_index(const std::vector<std::int32_t>& grid,
                             std::int32_t value) const {
  int best = 0;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    if (std::abs(grid[i] - value) < std::abs(grid[best] - value))
      best = static_cast<int>(i);
  }
  return best;
}

void Autotuner::seed_locked(KernelId id, KernelSearch& s) {
  // The paper's prior: atomic scatters want few threads in flight
  // (collision avoidance), gathers want occupancy. The privatized
  // strategy has no collisions, so its arm seeds wide.
  const bool atomic = backends::kernel_uses_atomics(id);
  const auto seed_of = [&](int si, int li, int pi) {
    const bool narrow = atomic && si == 0;
    Candidate c;
    c.bi = nearest_index(options_.block_grid, narrow ? 32 : 128);
    c.ti = nearest_index(options_.thread_grid, narrow ? 32 : 128);
    c.si = si;
    c.li = li;
    c.pi = pi;
    return c;
  };
  // Arm list = strategy axis x layout axis x precision axis. The
  // strategy axis only exists for the atomic scatters; the layout and
  // precision axes exist for every kernel. The first combo descends
  // now, the rest are queued (stack, so they are pushed in reverse).
  std::vector<int> strategy_arms{0};
  if (atomic) {
    if (!options_.scatter.has_value())
      strategy_arms = {0, 1};
    else if (*options_.scatter == backends::ScatterStrategy::kPrivatized)
      strategy_arms = {1};
  }
  std::vector<int> layout_arms;
  if (options_.layout.has_value())
    layout_arms = {static_cast<int>(*options_.layout)};
  else
    for (int li = 0; li < backends::kNumStorageLayouts; ++li)
      layout_arms.push_back(li);
  std::vector<int> precision_arms;
  if (options_.precision.has_value())
    precision_arms = {static_cast<int>(*options_.precision)};
  else
    for (int pi = 0; pi < backends::kNumPrecisions; ++pi)
      precision_arms.push_back(pi);
  std::vector<Candidate> combos;
  for (int si : strategy_arms)
    for (int li : layout_arms)
      for (int pi : precision_arms) combos.push_back(seed_of(si, li, pi));
  for (std::size_t i = combos.size(); i > 1; --i)
    s.arm_seeds.push_back(combos[i - 1]);
  const Candidate start = combos.front();
  s.current = start;
  s.visited.insert({start.si, start.li, start.pi, start.bi, start.ti});
  s.started = true;
}

void Autotuner::push_neighbors_locked(KernelSearch& s, Candidate c) {
  const auto try_push = [&](int bi, int ti) {
    if (bi < 0 || ti < 0 ||
        bi >= static_cast<int>(options_.block_grid.size()) ||
        ti >= static_cast<int>(options_.thread_grid.size()))
      return;
    if (!s.visited.insert({c.si, c.li, c.pi, bi, ti}).second) return;
    s.pending.push_back({bi, ti, c.si, c.li, c.pi});
  };
  // Axis moves only — this is the coordinate-descent step set. Strategy,
  // layout and precision are not descent axes: each arm descends from
  // its own seed.
  try_push(c.bi - 1, c.ti);
  try_push(c.bi + 1, c.ti);
  try_push(c.bi, c.ti - 1);
  try_push(c.bi, c.ti + 1);
}

KernelConfig Autotuner::propose(KernelId id) {
  if (!enabled_) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  KernelSearch& s = search_[static_cast<std::size_t>(id)];
  if (s.finished) return s.scored ? config_of(s.best) : KernelConfig{};
  if (!s.started) seed_locked(id, s);
  return config_of(s.current);
}

bool Autotuner::report(KernelId id, KernelConfig cfg, double seconds) {
  if (!enabled_) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  KernelSearch& s = search_[static_cast<std::size_t>(id)];
  if (s.finished || !s.started) return false;
  if (cfg != config_of(s.current)) return false;  // stale (e.g. failover)
  trials_++;
  note_trial();
  // Trial launches bypass the Aprod sample path (their shapes are search
  // candidates, not production config), but their wall times still
  // belong in the per-kernel latency histograms.
  obs::record_kernel_time(
      backends::to_string(id), backends::to_string(backend_),
      backends::kernel_uses_atomics(id) ? backends::to_string(cfg.strategy)
                                        : "none",
      seconds);
  s.samples.push_back(seconds);
  if (static_cast<int>(s.samples.size()) < options_.samples_per_config)
    return false;

  const double med = util::median(s.samples);
  s.samples.clear();
  s.evaluated++;
  s.arm_evaluated++;
  // The descent is per strategy arm: neighbors expand when the *arm's*
  // best improves (an arm whose seed loses to the other arm still
  // deserves its local search). The overall winner is tracked alongside.
  const auto arm = static_cast<std::size_t>(
      (s.current.si * backends::kNumStorageLayouts + s.current.li) *
          backends::kNumPrecisions +
      s.current.pi);
  if (!s.arm_scored[arm] || med < s.arm_median[arm]) {
    s.arm_best[arm] = s.current;
    s.arm_median[arm] = med;
    s.arm_scored[arm] = true;
    push_neighbors_locked(s, s.current);
  }
  if (!s.scored || med < s.best_median) {
    s.best = s.current;
    s.best_median = med;
    s.scored = true;
  }
  if (s.pending.empty() ||
      s.arm_evaluated >= options_.max_configs_per_kernel) {
    if (!s.arm_seeds.empty()) {
      // This arm is done; start the next (strategy, layout) arm's seed.
      const Candidate seed = s.arm_seeds.back();
      s.arm_seeds.pop_back();
      s.pending.clear();
      s.arm_evaluated = 0;
      s.current = seed;
      s.visited.insert({seed.si, seed.li, seed.pi, seed.bi, seed.ti});
      return false;
    }
    s.finished = true;
    note_winner(id, config_of(s.best), s.best_median);
    return true;
  }
  s.current = s.pending.back();
  s.pending.pop_back();
  return false;
}

KernelConfig Autotuner::best(KernelId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  return s.scored ? config_of(s.best) : KernelConfig{};
}

double Autotuner::best_median_s(KernelId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  return s.scored ? s.best_median : std::numeric_limits<double>::infinity();
}

namespace {

/// Lowest-median arm among those `keep` selects; -1 when none scored.
template <typename Search, typename Keep>
int best_arm(const Search& s, Keep&& keep) {
  int best = -1;
  for (int a = 0; a < Search::kNumArms; ++a) {
    if (!s.arm_scored[static_cast<std::size_t>(a)] || !keep(a)) continue;
    if (best < 0 || s.arm_median[static_cast<std::size_t>(a)] <
                        s.arm_median[static_cast<std::size_t>(best)])
      best = a;
  }
  return best;
}

/// Inverse of the (si * kNumStorageLayouts + li) * kNumPrecisions + pi
/// arm index.
int arm_strategy(int a) {
  return a / (backends::kNumStorageLayouts * backends::kNumPrecisions);
}
int arm_layout(int a) {
  return (a / backends::kNumPrecisions) % backends::kNumStorageLayouts;
}
int arm_precision(int a) { return a % backends::kNumPrecisions; }

}  // namespace

KernelConfig Autotuner::best_for(KernelId id,
                                 backends::ScatterStrategy strategy) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  const int want = static_cast<int>(strategy);
  const int arm = best_arm(s, [&](int a) { return arm_strategy(a) == want; });
  return arm >= 0 ? config_of(s.arm_best[static_cast<std::size_t>(arm)])
                  : KernelConfig{};
}

double Autotuner::best_median_for(KernelId id,
                                  backends::ScatterStrategy strategy) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  const int want = static_cast<int>(strategy);
  const int arm = best_arm(s, [&](int a) { return arm_strategy(a) == want; });
  return arm >= 0 ? s.arm_median[static_cast<std::size_t>(arm)]
                  : std::numeric_limits<double>::infinity();
}

KernelConfig Autotuner::best_for_layout(
    KernelId id, backends::StorageLayout layout) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  const int want = static_cast<int>(layout);
  const int arm = best_arm(s, [&](int a) { return arm_layout(a) == want; });
  return arm >= 0 ? config_of(s.arm_best[static_cast<std::size_t>(arm)])
                  : KernelConfig{};
}

double Autotuner::best_median_for_layout(
    KernelId id, backends::StorageLayout layout) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  const int want = static_cast<int>(layout);
  const int arm = best_arm(s, [&](int a) { return arm_layout(a) == want; });
  return arm >= 0 ? s.arm_median[static_cast<std::size_t>(arm)]
                  : std::numeric_limits<double>::infinity();
}

KernelConfig Autotuner::best_for_precision(
    KernelId id, backends::Precision precision) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  const int want = static_cast<int>(precision);
  const int arm =
      best_arm(s, [&](int a) { return arm_precision(a) == want; });
  return arm >= 0 ? config_of(s.arm_best[static_cast<std::size_t>(arm)])
                  : KernelConfig{};
}

double Autotuner::best_median_for_precision(
    KernelId id, backends::Precision precision) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  const int want = static_cast<int>(precision);
  const int arm =
      best_arm(s, [&](int a) { return arm_precision(a) == want; });
  return arm >= 0 ? s.arm_median[static_cast<std::size_t>(arm)]
                  : std::numeric_limits<double>::infinity();
}

std::uint64_t Autotuner::trials() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trials_;
}

int Autotuner::kernels_tuned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const KernelSearch& s : search_)
    if (s.finished && s.scored) ++n;
  return n;
}

backends::TuningTable Autotuner::apply_winners(
    backends::TuningTable base) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (KernelId id : backends::all_kernels()) {
    const KernelSearch& s = search_[static_cast<std::size_t>(id)];
    if (s.scored) base.set(id, config_of(s.best));
  }
  return base;
}

void Autotuner::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (KernelSearch& s : search_) s.finished = true;
}

std::vector<real> encode_table(const backends::TuningTable& table) {
  std::vector<real> out;
  out.reserve(kEncodedTableSize);
  for (backends::KernelId id : backends::all_kernels()) {
    const KernelConfig cfg = table.get(id);
    out.push_back(static_cast<real>(cfg.blocks));
    out.push_back(static_cast<real>(cfg.threads));
    out.push_back(static_cast<real>(static_cast<int>(cfg.strategy)));
    out.push_back(static_cast<real>(static_cast<int>(cfg.layout)));
    out.push_back(static_cast<real>(static_cast<int>(cfg.precision)));
  }
  return out;
}

backends::TuningTable decode_table(std::span<const real> data) {
  GAIA_CHECK(data.size() == kEncodedTableSize,
             "decode_table: wrong element count");
  backends::TuningTable table;
  std::size_t i = 0;
  for (backends::KernelId id : backends::all_kernels()) {
    const auto strategy = static_cast<int>(data[i + 2]);
    GAIA_CHECK(strategy >= 0 && strategy < backends::kNumScatterStrategies,
               "decode_table: unknown scatter strategy");
    const auto layout = static_cast<int>(data[i + 3]);
    GAIA_CHECK(layout >= 0 && layout < backends::kNumStorageLayouts,
               "decode_table: unknown storage layout");
    const auto precision = static_cast<int>(data[i + 4]);
    GAIA_CHECK(precision >= 0 && precision < backends::kNumPrecisions,
               "decode_table: unknown storage precision");
    KernelConfig cfg{static_cast<std::int32_t>(data[i]),
                     static_cast<std::int32_t>(data[i + 1]),
                     static_cast<backends::ScatterStrategy>(strategy),
                     static_cast<backends::StorageLayout>(layout),
                     static_cast<backends::Precision>(precision)};
    table.set(id, cfg);
    i += 5;
  }
  return table;
}

}  // namespace gaia::tuning
