#include "tuning/autotuner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace gaia::tuning {

using backends::KernelConfig;
using backends::KernelId;

namespace {

void note_trial() {
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    static obs::Counter& trials = reg.counter("tuning.trials");
    trials.add(1);
  }
}

void note_winner(KernelId id, KernelConfig cfg, double median_s) {
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    static obs::Counter& tuned = reg.counter("tuning.kernels_tuned");
    tuned.add(1);
  }
  auto& rec = obs::TraceRecorder::current();
  if (rec.enabled()) {
    rec.instant("tuning_winner", "tuning", obs::TraceRecorder::kMainTrack,
                {{"kernel", backends::to_string(id)},
                 {"blocks", static_cast<std::int64_t>(cfg.blocks)},
                 {"threads", static_cast<std::int64_t>(cfg.threads)},
                 {"strategy", backends::to_string(cfg.strategy)},
                 {"median_us", median_s * 1e6}});
  }
}

}  // namespace

Autotuner::Autotuner(backends::BackendKind backend, AutotuneOptions options)
    : backend_(backend),
      options_(std::move(options)),
      enabled_(backends::honors_kernel_config(backend)) {
  GAIA_CHECK(options_.samples_per_config >= 1,
             "autotuner needs at least one sample per config");
  GAIA_CHECK(options_.max_configs_per_kernel >= 1,
             "autotuner needs a positive config budget");
  GAIA_CHECK(!options_.block_grid.empty() && !options_.thread_grid.empty(),
             "autotuner search grid must not be empty");
  for (std::int32_t b : options_.block_grid)
    backends::validate_kernel_config({b, options_.thread_grid.front()},
                                     "autotuner block grid");
  for (std::int32_t t : options_.thread_grid)
    backends::validate_kernel_config({options_.block_grid.front(), t},
                                     "autotuner thread grid");
}

bool Autotuner::active() const {
  if (!enabled_) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(search_.begin(), search_.end(),
                     [](const KernelSearch& s) { return !s.finished; });
}

bool Autotuner::searching(KernelId id) const {
  if (!enabled_) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return !search_[static_cast<std::size_t>(id)].finished;
}

KernelConfig Autotuner::config_of(Candidate c) const {
  return {options_.block_grid[static_cast<std::size_t>(c.bi)],
          options_.thread_grid[static_cast<std::size_t>(c.ti)],
          c.si == 1 ? backends::ScatterStrategy::kPrivatized
                    : backends::ScatterStrategy::kAtomic};
}

int Autotuner::nearest_index(const std::vector<std::int32_t>& grid,
                             std::int32_t value) const {
  int best = 0;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    if (std::abs(grid[i] - value) < std::abs(grid[best] - value))
      best = static_cast<int>(i);
  }
  return best;
}

void Autotuner::seed_locked(KernelId id, KernelSearch& s) {
  // The paper's prior: atomic scatters want few threads in flight
  // (collision avoidance), gathers want occupancy. The privatized
  // strategy has no collisions, so its arm seeds wide.
  const bool atomic = backends::kernel_uses_atomics(id);
  const auto seed_of = [&](int si) {
    const bool narrow = atomic && si == 0;
    Candidate c;
    c.bi = nearest_index(options_.block_grid, narrow ? 32 : 128);
    c.ti = nearest_index(options_.thread_grid, narrow ? 32 : 128);
    c.si = si;
    return c;
  };
  int first_arm = 0;
  if (atomic) {
    if (!options_.scatter.has_value()) {
      // Strategy axis open: descend the atomic arm first (today's
      // search, narrow seed), then the privatized arm from its own
      // wide seed.
      s.arm_seeds.push_back(seed_of(1));
    } else if (*options_.scatter == backends::ScatterStrategy::kPrivatized) {
      first_arm = 1;
    }
  }
  const Candidate start = seed_of(first_arm);
  s.current = start;
  s.visited.insert({start.si, start.bi, start.ti});
  s.started = true;
}

void Autotuner::push_neighbors_locked(KernelSearch& s, Candidate c) {
  const auto try_push = [&](int bi, int ti) {
    if (bi < 0 || ti < 0 ||
        bi >= static_cast<int>(options_.block_grid.size()) ||
        ti >= static_cast<int>(options_.thread_grid.size()))
      return;
    if (!s.visited.insert({c.si, bi, ti}).second) return;
    s.pending.push_back({bi, ti, c.si});
  };
  // Axis moves only — this is the coordinate-descent step set. Strategy
  // is not a descent axis: each strategy arm descends from its own seed.
  try_push(c.bi - 1, c.ti);
  try_push(c.bi + 1, c.ti);
  try_push(c.bi, c.ti - 1);
  try_push(c.bi, c.ti + 1);
}

KernelConfig Autotuner::propose(KernelId id) {
  if (!enabled_) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  KernelSearch& s = search_[static_cast<std::size_t>(id)];
  if (s.finished) return s.scored ? config_of(s.best) : KernelConfig{};
  if (!s.started) seed_locked(id, s);
  return config_of(s.current);
}

bool Autotuner::report(KernelId id, KernelConfig cfg, double seconds) {
  if (!enabled_) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  KernelSearch& s = search_[static_cast<std::size_t>(id)];
  if (s.finished || !s.started) return false;
  if (cfg != config_of(s.current)) return false;  // stale (e.g. failover)
  trials_++;
  note_trial();
  // Trial launches bypass the Aprod sample path (their shapes are search
  // candidates, not production config), but their wall times still
  // belong in the per-kernel latency histograms.
  obs::record_kernel_time(
      backends::to_string(id), backends::to_string(backend_),
      backends::kernel_uses_atomics(id) ? backends::to_string(cfg.strategy)
                                        : "none",
      seconds);
  s.samples.push_back(seconds);
  if (static_cast<int>(s.samples.size()) < options_.samples_per_config)
    return false;

  const double med = util::median(s.samples);
  s.samples.clear();
  s.evaluated++;
  s.arm_evaluated++;
  // The descent is per strategy arm: neighbors expand when the *arm's*
  // best improves (an arm whose seed loses to the other arm still
  // deserves its local search). The overall winner is tracked alongside.
  const auto si = static_cast<std::size_t>(s.current.si);
  if (!s.strategy_scored[si] || med < s.strategy_median[si]) {
    s.strategy_best[si] = s.current;
    s.strategy_median[si] = med;
    s.strategy_scored[si] = true;
    push_neighbors_locked(s, s.current);
  }
  if (!s.scored || med < s.best_median) {
    s.best = s.current;
    s.best_median = med;
    s.scored = true;
  }
  if (s.pending.empty() ||
      s.arm_evaluated >= options_.max_configs_per_kernel) {
    if (!s.arm_seeds.empty()) {
      // This arm is done; start the next strategy arm from its seed.
      const Candidate seed = s.arm_seeds.back();
      s.arm_seeds.pop_back();
      s.pending.clear();
      s.arm_evaluated = 0;
      s.current = seed;
      s.visited.insert({seed.si, seed.bi, seed.ti});
      return false;
    }
    s.finished = true;
    note_winner(id, config_of(s.best), s.best_median);
    return true;
  }
  s.current = s.pending.back();
  s.pending.pop_back();
  return false;
}

KernelConfig Autotuner::best(KernelId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  return s.scored ? config_of(s.best) : KernelConfig{};
}

double Autotuner::best_median_s(KernelId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  return s.scored ? s.best_median : std::numeric_limits<double>::infinity();
}

KernelConfig Autotuner::best_for(KernelId id,
                                 backends::ScatterStrategy strategy) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  const auto si = static_cast<std::size_t>(strategy);
  return s.strategy_scored[si] ? config_of(s.strategy_best[si])
                               : KernelConfig{};
}

double Autotuner::best_median_for(KernelId id,
                                  backends::ScatterStrategy strategy) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const KernelSearch& s = search_[static_cast<std::size_t>(id)];
  const auto si = static_cast<std::size_t>(strategy);
  return s.strategy_scored[si] ? s.strategy_median[si]
                               : std::numeric_limits<double>::infinity();
}

std::uint64_t Autotuner::trials() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trials_;
}

int Autotuner::kernels_tuned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const KernelSearch& s : search_)
    if (s.finished && s.scored) ++n;
  return n;
}

backends::TuningTable Autotuner::apply_winners(
    backends::TuningTable base) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (KernelId id : backends::all_kernels()) {
    const KernelSearch& s = search_[static_cast<std::size_t>(id)];
    if (s.scored) base.set(id, config_of(s.best));
  }
  return base;
}

void Autotuner::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (KernelSearch& s : search_) s.finished = true;
}

std::vector<real> encode_table(const backends::TuningTable& table) {
  std::vector<real> out;
  out.reserve(kEncodedTableSize);
  for (backends::KernelId id : backends::all_kernels()) {
    const KernelConfig cfg = table.get(id);
    out.push_back(static_cast<real>(cfg.blocks));
    out.push_back(static_cast<real>(cfg.threads));
    out.push_back(static_cast<real>(static_cast<int>(cfg.strategy)));
  }
  return out;
}

backends::TuningTable decode_table(std::span<const real> data) {
  GAIA_CHECK(data.size() == kEncodedTableSize,
             "decode_table: wrong element count");
  backends::TuningTable table;
  std::size_t i = 0;
  for (backends::KernelId id : backends::all_kernels()) {
    const auto strategy = static_cast<int>(data[i + 2]);
    GAIA_CHECK(strategy >= 0 && strategy < backends::kNumScatterStrategies,
               "decode_table: unknown scatter strategy");
    KernelConfig cfg{static_cast<std::int32_t>(data[i]),
                     static_cast<std::int32_t>(data[i + 1]),
                     static_cast<backends::ScatterStrategy>(strategy)};
    table.set(id, cfg);
    i += 3;
  }
  return table;
}

}  // namespace gaia::tuning
