/// \file autotuner.hpp
/// \brief Online (blocks, threads) search over live kernel launches.
///
/// The paper finds the winning launch shapes empirically — nsys sweeps
/// per GPU, with *small* thread counts winning the atomic-heavy aprod2
/// kernels — and its exascale follow-up (Cesare et al. 2023) shows the
/// optimum moves with both the device and the problem size. So the
/// search has to happen at runtime, on the user's actual system: during
/// warm-up launches the `Aprod` driver asks this class to `propose()` a
/// candidate shape, times the launch, and `report()`s the measurement
/// back; the tuner walks a pow-2 grid by greedy coordinate descent and
/// keeps the shape with the lowest *median* launch time (medians resist
/// the scheduler noise of a shared host).
///
/// Atomic kernels (`kernel_uses_atomics`) start the descent at a narrow
/// shape — the paper's core tuning insight is that fewer concurrent
/// threads mean fewer atomic collisions — while gather kernels start
/// wide. Backends whose launch shape is a no-op (serial, PSTL) are
/// never searched: `active()` is false and the solver runs as if no
/// tuner were attached.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <tuple>
#include <vector>

#include "backends/backend.hpp"
#include "util/types.hpp"

namespace gaia::tuning {

struct AutotuneOptions {
  /// Launches timed per candidate shape; the median is the score.
  int samples_per_config = 3;
  /// Budget: candidate shapes evaluated per kernel *per strategy arm*
  /// before that arm is cut off (the greedy descent usually converges
  /// well under this).
  int max_configs_per_kernel = 12;
  /// The pow-2 axes of the search grid.
  std::vector<std::int32_t> block_grid{8, 16, 32, 64, 128, 256};
  std::vector<std::int32_t> thread_grid{32, 64, 128, 256, 512};
  /// The scatter-strategy axis for the atomic aprod2 kernels. Pinned to
  /// kAtomic (the default) the search varies only (blocks, threads) —
  /// today's behaviour. Pinned to kPrivatized every atomic kernel
  /// searches the privatized path only. nullopt searches *both*: the
  /// atomic arm seeds narrow (collision avoidance) and the privatized
  /// arm seeds wide (collisions are gone, bandwidth wants occupancy),
  /// and the lower measured median wins. Gather kernels ignore this.
  std::optional<backends::ScatterStrategy> scatter =
      backends::ScatterStrategy::kAtomic;
  /// The storage-layout axis — every kernel has one, gathers included.
  /// Pinned to kSeedAos (the default) nothing changes; pinned to a
  /// derived layout every kernel searches that layout's bodies only;
  /// nullopt opens the axis: each layout is its own descent arm (the
  /// launch-shape optimum moves with the addressing pattern, so a
  /// layout cannot reuse another's winning shape) and the lowest
  /// measured median across arms wins.
  std::optional<backends::StorageLayout> layout =
      backends::StorageLayout::kSeedAos;
  /// The storage-precision axis. Pinned to kFp64 (the default) nothing
  /// changes; pinned to a reduced precision every kernel searches that
  /// precision's bodies only; nullopt opens the axis: each precision is
  /// its own descent arm (halving the coefficient bytes moves the
  /// bandwidth/occupancy balance, so the winning shape moves with it)
  /// and the lowest measured median across arms wins. Reduced-precision
  /// arms time the reduced *storage* bodies — accumulation stays FP64,
  /// so the arms are numerically comparable.
  std::optional<backends::Precision> precision = backends::Precision::kFp64;
};

/// Per-(backend) search state over all eight kernels. Thread-safe: the
/// stream threads of an overlapped aprod2 could race propose/report (the
/// driver disables overlap while tuning, but the tuner does not rely on
/// it).
class Autotuner {
 public:
  explicit Autotuner(backends::BackendKind backend,
                     AutotuneOptions options = {});

  [[nodiscard]] backends::BackendKind backend() const { return backend_; }

  /// True while at least one kernel's search is still open. Permanently
  /// false on backends that ignore launch shapes.
  [[nodiscard]] bool active() const;
  /// True while `id`'s search is still open.
  [[nodiscard]] bool searching(backends::KernelId id) const;

  /// Candidate shape the next launch of `id` should use. Returns the
  /// best-known shape once the search is closed.
  [[nodiscard]] backends::KernelConfig propose(backends::KernelId id);

  /// Feed back one timed launch of `id` at shape `cfg`. Measurements for
  /// a shape other than the current candidate (failover ran the launch
  /// elsewhere, or the caller used the installed table) are ignored.
  /// Returns true exactly when this report *closes* `id`'s search.
  bool report(backends::KernelId id, backends::KernelConfig cfg,
              double seconds);

  /// Best shape found so far ({0,0} until the first candidate scored).
  /// For atomic kernels the config's `strategy` field records which
  /// scatter strategy won.
  [[nodiscard]] backends::KernelConfig best(backends::KernelId id) const;
  /// Median launch seconds of the best shape (inf until scored).
  [[nodiscard]] double best_median_s(backends::KernelId id) const;

  /// Best shape / median measured *within one strategy arm* — the
  /// atomic-vs-privatized comparison the tuner report and the
  /// experiments table are built from. ({0,0} / inf until that arm
  /// scored a candidate.)
  [[nodiscard]] backends::KernelConfig best_for(
      backends::KernelId id, backends::ScatterStrategy strategy) const;
  [[nodiscard]] double best_median_for(
      backends::KernelId id, backends::ScatterStrategy strategy) const;

  /// Best shape / median measured *within one layout arm* — the
  /// seed-vs-derived-layout comparison the experiments tables and the
  /// layout-smoke CI assertion are built from.
  [[nodiscard]] backends::KernelConfig best_for_layout(
      backends::KernelId id, backends::StorageLayout layout) const;
  [[nodiscard]] double best_median_for_layout(
      backends::KernelId id, backends::StorageLayout layout) const;

  /// Best shape / median measured *within one precision arm* — the
  /// fp64-vs-reduced comparison the experiments tables and the
  /// precision-smoke CI assertion are built from.
  [[nodiscard]] backends::KernelConfig best_for_precision(
      backends::KernelId id, backends::Precision precision) const;
  [[nodiscard]] double best_median_for_precision(
      backends::KernelId id, backends::Precision precision) const;

  /// Timed launches consumed so far (all kernels).
  [[nodiscard]] std::uint64_t trials() const;
  /// Kernels whose search closed with a measured winner.
  [[nodiscard]] int kernels_tuned() const;

  /// `base` with every measured winner installed.
  [[nodiscard]] backends::TuningTable apply_winners(
      backends::TuningTable base) const;

  /// Close every kernel's search (keeps the winners found so far).
  void finish();

 private:
  struct Candidate {
    int bi = 0;  ///< index into options_.block_grid
    int ti = 0;  ///< index into options_.thread_grid
    int si = 0;  ///< strategy arm: 0 = atomic, 1 = privatized
    int li = 0;  ///< layout arm: StorageLayout enum value
    int pi = 0;  ///< precision arm: Precision enum value
  };
  struct KernelSearch {
    bool started = false;
    bool finished = false;
    Candidate current{};
    std::vector<double> samples;   ///< of the current candidate
    std::vector<Candidate> pending;
    std::set<std::tuple<int, int, int, int, int>> visited;
    /// Seeds of (strategy, layout, precision) arms not yet descended (an
    /// arm runs to convergence or budget before the next seed starts, so
    /// every arm is guaranteed its descent).
    std::vector<Candidate> arm_seeds;
    int arm_evaluated = 0;  ///< candidates scored in the current arm
    Candidate best{};
    double best_median = 0;  ///< valid iff scored
    bool scored = false;
    /// Per-(strategy, layout, precision) arm best — the descent
    /// criterion, and the base of the atomic-vs-privatized,
    /// seed-vs-derived and fp64-vs-reduced reports (each a minimum over
    /// the other two axes). Indexed
    /// (si * kNumStorageLayouts + li) * kNumPrecisions + pi.
    static constexpr int kNumArms = backends::kNumScatterStrategies *
                                    backends::kNumStorageLayouts *
                                    backends::kNumPrecisions;
    std::array<Candidate, kNumArms> arm_best{};
    std::array<double, kNumArms> arm_median{};
    std::array<bool, kNumArms> arm_scored{};
    int evaluated = 0;
  };

  [[nodiscard]] backends::KernelConfig config_of(Candidate c) const;
  void seed_locked(backends::KernelId id, KernelSearch& s);
  void push_neighbors_locked(KernelSearch& s, Candidate c);
  [[nodiscard]] int nearest_index(const std::vector<std::int32_t>& grid,
                                  std::int32_t value) const;

  backends::BackendKind backend_;
  AutotuneOptions options_;
  bool enabled_;  ///< honors_kernel_config(backend_)
  mutable std::mutex mutex_;
  std::array<KernelSearch, backends::kNumKernels> search_{};
  std::uint64_t trials_ = 0;
};

/// Flat encoding of a TuningTable as 5*kNumKernels reals (blocks,
/// threads, scatter strategy, storage layout, storage precision per
/// kernel in enum order) — the dist layer broadcasts rank 0's winners to
/// all ranks through the existing Comm::bcast(span<real>) so every rank
/// runs identical shapes, strategies, layouts and precisions.
inline constexpr std::size_t kEncodedTableSize =
    5 * static_cast<std::size_t>(backends::kNumKernels);
[[nodiscard]] std::vector<real> encode_table(
    const backends::TuningTable& table);
[[nodiscard]] backends::TuningTable decode_table(std::span<const real> data);

}  // namespace gaia::tuning
