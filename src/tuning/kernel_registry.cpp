#include "tuning/kernel_registry.hpp"

#include "core/system_view.hpp"
#include "util/error.hpp"

namespace gaia::tuning {

using backends::StorageLayout;

namespace {
/// The layout a launch actually runs with: a derived layout whose
/// arrays are not attached to the view clamps to the seed — a view
/// without descriptors keeps seed semantics instead of faulting on the
/// null pointers (the contract documented on SystemView::has_layout).
StorageLayout effective_layout(const LaunchArgs& args) {
  const StorageLayout layout = args.config.layout;
  if (layout != StorageLayout::kSeedAos && args.view != nullptr &&
      !args.view->has_layout(layout))
    return StorageLayout::kSeedAos;
  return layout;
}
}  // namespace

void KernelRegistry::add(backends::KernelId id,
                         backends::BackendKind backend,
                         KernelLauncher launcher, StorageLayout layout) {
  GAIA_CHECK(launcher != nullptr, "KernelRegistry::add: null launcher");
  table_[index(id, backend, layout)] = std::move(launcher);
}

void KernelRegistry::add_fused(backends::BackendKind backend,
                               KernelLauncher launcher,
                               StorageLayout layout) {
  GAIA_CHECK(launcher != nullptr, "KernelRegistry::add_fused: null launcher");
  fused_[fused_index(backend, layout)] = std::move(launcher);
}

void KernelRegistry::add_privatized(backends::KernelId id,
                                    backends::BackendKind backend,
                                    KernelLauncher launcher,
                                    StorageLayout layout) {
  GAIA_CHECK(launcher != nullptr,
             "KernelRegistry::add_privatized: null launcher");
  GAIA_CHECK(backends::kernel_uses_atomics(id),
             "KernelRegistry::add_privatized: " + backends::to_string(id) +
                 " has no atomic scatter to privatize");
  privatized_[index(id, backend, layout)] = std::move(launcher);
}

bool KernelRegistry::has(backends::KernelId id,
                         backends::BackendKind backend,
                         StorageLayout layout) const {
  return table_[index(id, backend, layout)] != nullptr;
}

bool KernelRegistry::has_fused(backends::BackendKind backend,
                               StorageLayout layout) const {
  return fused_[fused_index(backend, layout)] != nullptr;
}

bool KernelRegistry::has_privatized(backends::KernelId id,
                                    backends::BackendKind backend,
                                    StorageLayout layout) const {
  return privatized_[index(id, backend, layout)] != nullptr;
}

void KernelRegistry::launch(backends::KernelId id,
                            backends::BackendKind backend,
                            const LaunchArgs& args) const {
  const StorageLayout layout = effective_layout(args);
  LaunchArgs run = args;
  run.config.layout = layout;
  if (args.config.strategy == backends::ScatterStrategy::kPrivatized &&
      backends::kernel_uses_atomics(id)) {
    const KernelLauncher* pfn = &privatized_[index(id, backend, layout)];
    if (!*pfn && layout != StorageLayout::kSeedAos)
      pfn = &privatized_[index(id, backend, StorageLayout::kSeedAos)];
    if (!*pfn)
      throw Error(
          "KernelRegistry: no privatized launcher registered for kernel " +
          backends::to_string(id) + " on backend " +
          backends::to_string(backend));
    (*pfn)(run);
    return;
  }
  const KernelLauncher* fn = &table_[index(id, backend, layout)];
  if (!*fn && layout != StorageLayout::kSeedAos)
    fn = &table_[index(id, backend, StorageLayout::kSeedAos)];
  if (!*fn)
    throw Error("KernelRegistry: no launcher registered for kernel " +
                backends::to_string(id) + " on backend " +
                backends::to_string(backend));
  (*fn)(run);
}

void KernelRegistry::launch_fused(backends::BackendKind backend,
                                  const LaunchArgs& args) const {
  const StorageLayout layout = effective_layout(args);
  LaunchArgs run = args;
  run.config.layout = layout;
  const KernelLauncher* fn = &fused_[fused_index(backend, layout)];
  if (!*fn && layout != StorageLayout::kSeedAos)
    fn = &fused_[fused_index(backend, StorageLayout::kSeedAos)];
  if (!*fn)
    throw Error("KernelRegistry: no fused aprod2 launcher registered for "
                "backend " +
                backends::to_string(backend));
  (*fn)(run);
}

std::size_t KernelRegistry::size() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < kPlane; ++i)
    if (table_[i]) ++n;
  return n;
}

KernelRegistry& KernelRegistry::global() {
  static KernelRegistry registry;
  return registry;
}

}  // namespace gaia::tuning
