#include "tuning/kernel_registry.hpp"

#include "core/system_view.hpp"
#include "util/error.hpp"

namespace gaia::tuning {

using backends::Precision;
using backends::StorageLayout;

namespace {
/// The layout a launch actually runs with: a derived layout whose
/// arrays are not attached to the view clamps to the seed — a view
/// without descriptors keeps seed semantics instead of faulting on the
/// null pointers (the contract documented on SystemView::has_layout).
StorageLayout effective_layout(const LaunchArgs& args) {
  const StorageLayout layout = args.config.layout;
  if (layout != StorageLayout::kSeedAos && args.view != nullptr &&
      !args.view->has_layout(layout))
    return StorageLayout::kSeedAos;
  return layout;
}

/// The precision a launch actually runs with: a reduced precision whose
/// converted planes are not attached for the effective layout clamps to
/// fp64 (SystemView::has_precision) — reduced precision degrades to
/// full precision, never to a fault.
Precision effective_precision(const LaunchArgs& args, StorageLayout layout) {
  const Precision p = args.config.precision;
  if (p != Precision::kFp64 && args.view != nullptr &&
      !args.view->has_precision(p, layout))
    return Precision::kFp64;
  return p;
}
}  // namespace

void KernelRegistry::add(backends::KernelId id,
                         backends::BackendKind backend,
                         KernelLauncher launcher, StorageLayout layout,
                         Precision precision) {
  GAIA_CHECK(launcher != nullptr, "KernelRegistry::add: null launcher");
  table_[index(id, backend, layout, precision)] = std::move(launcher);
}

void KernelRegistry::add_fused(backends::BackendKind backend,
                               KernelLauncher launcher, StorageLayout layout,
                               Precision precision) {
  GAIA_CHECK(launcher != nullptr, "KernelRegistry::add_fused: null launcher");
  fused_[fused_index(backend, layout, precision)] = std::move(launcher);
}

void KernelRegistry::add_privatized(backends::KernelId id,
                                    backends::BackendKind backend,
                                    KernelLauncher launcher,
                                    StorageLayout layout,
                                    Precision precision) {
  GAIA_CHECK(launcher != nullptr,
             "KernelRegistry::add_privatized: null launcher");
  GAIA_CHECK(backends::kernel_uses_atomics(id),
             "KernelRegistry::add_privatized: " + backends::to_string(id) +
                 " has no atomic scatter to privatize");
  privatized_[index(id, backend, layout, precision)] = std::move(launcher);
}

bool KernelRegistry::has(backends::KernelId id,
                         backends::BackendKind backend, StorageLayout layout,
                         Precision precision) const {
  return table_[index(id, backend, layout, precision)] != nullptr;
}

bool KernelRegistry::has_fused(backends::BackendKind backend,
                               StorageLayout layout,
                               Precision precision) const {
  return fused_[fused_index(backend, layout, precision)] != nullptr;
}

bool KernelRegistry::has_privatized(backends::KernelId id,
                                    backends::BackendKind backend,
                                    StorageLayout layout,
                                    Precision precision) const {
  return privatized_[index(id, backend, layout, precision)] != nullptr;
}

void KernelRegistry::launch(backends::KernelId id,
                            backends::BackendKind backend,
                            const LaunchArgs& args) const {
  const StorageLayout layout = effective_layout(args);
  Precision precision = effective_precision(args, layout);
  LaunchArgs run = args;
  run.config.layout = layout;
  if (args.config.strategy == backends::ScatterStrategy::kPrivatized &&
      backends::kernel_uses_atomics(id)) {
    const KernelLauncher* pfn =
        &privatized_[index(id, backend, layout, precision)];
    // Empty precision slot clamps to the fp64 plane of the same layout;
    // an empty derived-layout slot then falls back to the seed layout.
    if (!*pfn && precision != Precision::kFp64) {
      precision = Precision::kFp64;
      pfn = &privatized_[index(id, backend, layout, precision)];
    }
    if (!*pfn && layout != StorageLayout::kSeedAos)
      pfn = &privatized_[index(id, backend, StorageLayout::kSeedAos,
                               precision)];
    if (!*pfn)
      throw Error(
          "KernelRegistry: no privatized launcher registered for kernel " +
          backends::to_string(id) + " on backend " +
          backends::to_string(backend));
    run.config.precision = precision;
    (*pfn)(run);
    return;
  }
  const KernelLauncher* fn = &table_[index(id, backend, layout, precision)];
  if (!*fn && precision != Precision::kFp64) {
    precision = Precision::kFp64;
    fn = &table_[index(id, backend, layout, precision)];
  }
  if (!*fn && layout != StorageLayout::kSeedAos)
    fn = &table_[index(id, backend, StorageLayout::kSeedAos, precision)];
  if (!*fn)
    throw Error("KernelRegistry: no launcher registered for kernel " +
                backends::to_string(id) + " on backend " +
                backends::to_string(backend));
  run.config.precision = precision;
  (*fn)(run);
}

void KernelRegistry::launch_fused(backends::BackendKind backend,
                                  const LaunchArgs& args) const {
  const StorageLayout layout = effective_layout(args);
  Precision precision = effective_precision(args, layout);
  LaunchArgs run = args;
  run.config.layout = layout;
  const KernelLauncher* fn = &fused_[fused_index(backend, layout, precision)];
  if (!*fn && precision != Precision::kFp64) {
    precision = Precision::kFp64;
    fn = &fused_[fused_index(backend, layout, precision)];
  }
  if (!*fn && layout != StorageLayout::kSeedAos)
    fn = &fused_[fused_index(backend, StorageLayout::kSeedAos, precision)];
  if (!*fn)
    throw Error("KernelRegistry: no fused aprod2 launcher registered for "
                "backend " +
                backends::to_string(backend));
  run.config.precision = precision;
  (*fn)(run);
}

std::size_t KernelRegistry::size() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < kPlane; ++i)
    if (table_[i]) ++n;
  return n;
}

KernelRegistry& KernelRegistry::global() {
  static KernelRegistry registry;
  return registry;
}

}  // namespace gaia::tuning
