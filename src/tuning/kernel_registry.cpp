#include "tuning/kernel_registry.hpp"

#include "util/error.hpp"

namespace gaia::tuning {

void KernelRegistry::add(backends::KernelId id,
                         backends::BackendKind backend,
                         KernelLauncher launcher) {
  GAIA_CHECK(launcher != nullptr, "KernelRegistry::add: null launcher");
  table_[index(id, backend)] = std::move(launcher);
}

void KernelRegistry::add_fused(backends::BackendKind backend,
                               KernelLauncher launcher) {
  GAIA_CHECK(launcher != nullptr, "KernelRegistry::add_fused: null launcher");
  fused_[static_cast<std::size_t>(backend)] = std::move(launcher);
}

void KernelRegistry::add_privatized(backends::KernelId id,
                                    backends::BackendKind backend,
                                    KernelLauncher launcher) {
  GAIA_CHECK(launcher != nullptr,
             "KernelRegistry::add_privatized: null launcher");
  GAIA_CHECK(backends::kernel_uses_atomics(id),
             "KernelRegistry::add_privatized: " + backends::to_string(id) +
                 " has no atomic scatter to privatize");
  privatized_[index(id, backend)] = std::move(launcher);
}

bool KernelRegistry::has(backends::KernelId id,
                         backends::BackendKind backend) const {
  return table_[index(id, backend)] != nullptr;
}

bool KernelRegistry::has_fused(backends::BackendKind backend) const {
  return fused_[static_cast<std::size_t>(backend)] != nullptr;
}

bool KernelRegistry::has_privatized(backends::KernelId id,
                                    backends::BackendKind backend) const {
  return privatized_[index(id, backend)] != nullptr;
}

void KernelRegistry::launch(backends::KernelId id,
                            backends::BackendKind backend,
                            const LaunchArgs& args) const {
  if (args.config.strategy == backends::ScatterStrategy::kPrivatized &&
      backends::kernel_uses_atomics(id)) {
    const KernelLauncher& pfn = privatized_[index(id, backend)];
    if (!pfn)
      throw Error(
          "KernelRegistry: no privatized launcher registered for kernel " +
          backends::to_string(id) + " on backend " +
          backends::to_string(backend));
    pfn(args);
    return;
  }
  const KernelLauncher& fn = table_[index(id, backend)];
  if (!fn)
    throw Error("KernelRegistry: no launcher registered for kernel " +
                backends::to_string(id) + " on backend " +
                backends::to_string(backend));
  fn(args);
}

void KernelRegistry::launch_fused(backends::BackendKind backend,
                                  const LaunchArgs& args) const {
  const KernelLauncher& fn = fused_[static_cast<std::size_t>(backend)];
  if (!fn)
    throw Error("KernelRegistry: no fused aprod2 launcher registered for "
                "backend " +
                backends::to_string(backend));
  fn(args);
}

std::size_t KernelRegistry::size() const {
  std::size_t n = 0;
  for (const auto& fn : table_)
    if (fn) ++n;
  return n;
}

KernelRegistry& KernelRegistry::global() {
  static KernelRegistry registry;
  return registry;
}

}  // namespace gaia::tuning
