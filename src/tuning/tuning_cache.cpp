#include "tuning/tuning_cache.hpp"

#include <bit>
#include <cctype>
#include <sstream>

#include "obs/metrics.hpp"
#include "resilience/checkpoint.hpp"
#include "util/error.hpp"

namespace gaia::tuning {

using backends::BackendKind;
using backends::KernelConfig;
using backends::KernelId;

ShapeBucket bucket_for(std::int64_t rows, std::int64_t cols) {
  const auto log2_floor = [](std::int64_t v) {
    const auto u = static_cast<std::uint64_t>(v < 1 ? 1 : v);
    return static_cast<std::int32_t>(std::bit_width(u) - 1);
  };
  return {log2_floor(rows), log2_floor(cols)};
}

std::string to_string(const ShapeBucket& bucket) {
  return "2^" + std::to_string(bucket.rows_log2) + " rows x 2^" +
         std::to_string(bucket.cols_log2) + " cols";
}

void TuningCache::put(BackendKind backend, ShapeBucket bucket,
                      KernelId kernel, KernelConfig config) {
  backends::validate_kernel_config(config, "TuningCache::put");
  entries_[make_key(backend, bucket, kernel)] = config;
}

std::optional<KernelConfig> TuningCache::find(BackendKind backend,
                                              ShapeBucket bucket,
                                              KernelId kernel) const {
  const auto it = entries_.find(make_key(backend, bucket, kernel));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

int TuningCache::apply(BackendKind backend, ShapeBucket bucket,
                       backends::TuningTable& table) const {
  int applied = 0;
  for (KernelId id : backends::all_kernels()) {
    if (const auto cfg = find(backend, bucket, id)) {
      table.set(id, *cfg);
      ++applied;
    }
  }
  return applied;
}

bool TuningCache::complete_for(BackendKind backend, ShapeBucket bucket) const {
  for (KernelId id : backends::all_kernels()) {
    if (!find(backend, bucket, id)) return false;
  }
  return true;
}

std::string TuningCache::to_json() const {
  std::ostringstream os;
  os << "{\"version\":" << kSchemaVersion << ",\"entries\":[";
  bool first = true;
  for (const auto& [key, cfg] : entries_) {
    const auto& [backend, rows_log2, cols_log2, kernel] = key;
    if (!first) os << ',';
    first = false;
    os << "{\"backend\":\""
       << backends::to_string(static_cast<BackendKind>(backend))
       << "\",\"rows_log2\":" << rows_log2
       << ",\"cols_log2\":" << cols_log2 << ",\"kernel\":\""
       << backends::to_string(static_cast<KernelId>(kernel))
       << "\",\"blocks\":" << cfg.blocks << ",\"threads\":" << cfg.threads
       << ",\"strategy\":\"" << backends::to_string(cfg.strategy)
       << "\",\"layout\":\"" << backends::to_string(cfg.layout)
       << "\",\"precision\":\"" << backends::to_string(cfg.precision)
       << "\"}";
  }
  os << "]}";
  return os.str();
}

namespace {

/// Minimal strict parser for the cache's own JSON subset: one top-level
/// object, one array of flat objects, values are strings or integers.
/// Any deviation fails the parse (the framing already guarantees the
/// bytes are what we wrote; this guards logical corruption and version
/// skew).
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }
  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_++];
      if (c == '\\' || static_cast<unsigned char>(c) < 0x20) return false;
      out.push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool parse_int(std::int64_t& out) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ == digits) return false;
    out = std::stoll(text_.substr(start, pos_ - start));
    return true;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

struct RawEntry {
  std::string backend;
  std::string kernel;
  std::string strategy = "atomic";
  std::string layout = "seed_aos";
  std::string precision = "fp64";
  std::int64_t rows_log2 = 0;
  std::int64_t cols_log2 = 0;
  std::int64_t blocks = 0;
  std::int64_t threads = 0;
};

bool parse_entry(JsonCursor& cur, RawEntry& entry) {
  if (!cur.consume('{')) return false;
  bool first = true;
  while (!cur.peek('}')) {
    if (!first && !cur.consume(',')) return false;
    first = false;
    std::string key;
    if (!cur.parse_string(key) || !cur.consume(':')) return false;
    if (key == "backend") {
      if (!cur.parse_string(entry.backend)) return false;
    } else if (key == "kernel") {
      if (!cur.parse_string(entry.kernel)) return false;
    } else if (key == "strategy") {
      if (!cur.parse_string(entry.strategy)) return false;
    } else if (key == "layout") {
      if (!cur.parse_string(entry.layout)) return false;
    } else if (key == "precision") {
      if (!cur.parse_string(entry.precision)) return false;
    } else if (key == "rows_log2") {
      if (!cur.parse_int(entry.rows_log2)) return false;
    } else if (key == "cols_log2") {
      if (!cur.parse_int(entry.cols_log2)) return false;
    } else if (key == "blocks") {
      if (!cur.parse_int(entry.blocks)) return false;
    } else if (key == "threads") {
      if (!cur.parse_int(entry.threads)) return false;
    } else {
      return false;  // unknown key: strict
    }
  }
  return cur.consume('}');
}

void note_version_miss() {
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    static obs::Counter& misses = reg.counter("tuning.cache.version_miss");
    misses.add(1);
  }
}

}  // namespace

std::optional<TuningCache> TuningCache::parse_json(const std::string& text,
                                                   ParseStatus* status) {
  const auto fail = [&](ParseStatus why) -> std::optional<TuningCache> {
    if (status) *status = why;
    return std::nullopt;
  };
  JsonCursor cur(text);
  if (!cur.consume('{')) return fail(ParseStatus::kMalformed);
  std::optional<std::int64_t> version;
  bool saw_entries = false;
  TuningCache cache;
  bool first = true;
  while (!cur.peek('}')) {
    if (!first && !cur.consume(',')) return fail(ParseStatus::kMalformed);
    first = false;
    std::string key;
    if (!cur.parse_string(key) || !cur.consume(':'))
      return fail(ParseStatus::kMalformed);
    if (key == "version") {
      std::int64_t v = 0;
      if (!cur.parse_int(v)) return fail(ParseStatus::kMalformed);
      version = v;
      // An honest file of another schema version is a clean miss, not
      // corruption — report it as such without trusting its entries
      // (v1 predates the strategy axis, v2 the layout axis, v3 the
      // precision axis).
      if (v != kSchemaVersion) return fail(ParseStatus::kVersionMismatch);
    } else if (key == "entries") {
      saw_entries = true;
      if (!cur.consume('[')) return fail(ParseStatus::kMalformed);
      bool first_entry = true;
      while (!cur.peek(']')) {
        if (!first_entry && !cur.consume(','))
          return fail(ParseStatus::kMalformed);
        first_entry = false;
        RawEntry raw;
        if (!parse_entry(cur, raw)) return fail(ParseStatus::kMalformed);
        const auto backend = backends::parse_backend(raw.backend);
        const auto kernel = backends::parse_kernel_id(raw.kernel);
        const auto strategy = backends::parse_scatter_strategy(raw.strategy);
        const auto layout = backends::parse_storage_layout(raw.layout);
        const auto precision = backends::parse_precision(raw.precision);
        if (!backend || !kernel || !strategy || !layout || !precision)
          return fail(ParseStatus::kMalformed);
        if (raw.rows_log2 < 0 || raw.rows_log2 > 62 || raw.cols_log2 < 0 ||
            raw.cols_log2 > 62)
          return fail(ParseStatus::kMalformed);
        const KernelConfig cfg{static_cast<std::int32_t>(raw.blocks),
                               static_cast<std::int32_t>(raw.threads),
                               *strategy, *layout, *precision};
        if (!backends::is_valid_kernel_config(cfg))
          return fail(ParseStatus::kMalformed);
        cache.put(*backend,
                  {static_cast<std::int32_t>(raw.rows_log2),
                   static_cast<std::int32_t>(raw.cols_log2)},
                  *kernel, cfg);
      }
      if (!cur.consume(']')) return fail(ParseStatus::kMalformed);
    } else {
      return fail(ParseStatus::kMalformed);
    }
  }
  if (!cur.consume('}') || !cur.at_end())
    return fail(ParseStatus::kMalformed);
  if (version != kSchemaVersion || !saw_entries)
    return fail(ParseStatus::kMalformed);  // both required
  if (status) *status = ParseStatus::kOk;
  return cache;
}

bool TuningCache::load(const std::string& path) {
  entries_.clear();
  std::string payload;
  try {
    payload = resilience::read_framed_file(path);
  } catch (const Error&) {
    return false;  // missing, truncated or corrupt: behave as empty
  }
  ParseStatus status = ParseStatus::kMalformed;
  auto parsed = parse_json(payload, &status);
  if (!parsed) {
    if (status == ParseStatus::kVersionMismatch) note_version_miss();
    return false;
  }
  entries_ = std::move(parsed->entries_);
  return true;
}

void TuningCache::save(const std::string& path) const {
  resilience::write_framed_file(path, to_json());
}

}  // namespace gaia::tuning
