/// \file kernel_registry.hpp
/// \brief Type-erased kernel dispatch:
/// (KernelId, BackendKind, StorageLayout) -> launcher.
///
/// Before this subsystem, every launch site in `core/aprod.cpp` carried
/// its own `switch (id)` over the eight kernels — three copies of the
/// same dispatch, and anything new (the failover re-dispatch, the
/// autotuner's trial launches, benches) grew a fourth. The registry
/// replaces them with one table: each backend registers its templated
/// kernel instantiations once (see `core/kernel_catalog.cpp`), and
/// aprod, failover and bench all launch through `launch()`.
///
/// The storage layout is a third dispatch axis, carried by
/// `args.config.layout` exactly like the scatter strategy: the catalog
/// registers one body per (kernel, backend, layout), and a layout slot
/// left empty falls back to the seed-layout launcher (which reads the
/// always-present seed arrays), so a partially-registered layout can
/// never fault — it just runs unaccelerated.
///
/// Storage precision is the fourth axis, carried by
/// `args.config.precision`: the catalog registers each body's float and
/// bf16s instantiations next to the fp64 one, and an empty precision
/// slot (or a view without the converted planes attached) clamps to the
/// fp64 launcher of the same (kernel, backend, layout) — reduced
/// precision degrades to full precision, never to a fault.
///
/// The launchers are type-erased `std::function`s over a flat argument
/// struct so the registry depends only on forward declarations — the
/// tuning library sits *below* core in the link order (core registers
/// into it, tuning never calls into core).
#pragma once

#include <array>
#include <functional>

#include "backends/backend.hpp"
#include "util/types.hpp"

namespace gaia::core {
struct SystemView;
}
namespace gaia::backends {
class ScratchArena;
}

namespace gaia::tuning {

/// Flat argument pack of one kernel launch. `in`/`out` follow the data
/// flow: for aprod1 kernels in = x (n_cols), out = y (n_rows); for
/// aprod2 kernels in = y, out = x. atomic_mode is ignored by the
/// atomic-free kernels. `arena` is the scratch pool the privatized
/// scatter strategy draws from (null = the backend's process-wide
/// arena); config.strategy selects which launcher variant runs and
/// config.layout which storage layout's body.
struct LaunchArgs {
  const core::SystemView* view = nullptr;
  const real* in = nullptr;
  real* out = nullptr;
  backends::KernelConfig config{};
  backends::AtomicMode atomic_mode = backends::AtomicMode::kNativeRmw;
  backends::ScratchArena* arena = nullptr;
};

using KernelLauncher = std::function<void(const LaunchArgs&)>;

/// Dense (KernelId x BackendKind x StorageLayout) table of launchers
/// plus one fused aprod2 launcher per (backend, layout) — the fused
/// scatter is not a KernelId of its own, it shares kAprod2Att's tuning
/// and fault identity.
///
/// Registration happens once at startup (core::ensure_kernel_catalog());
/// after that the table is read-only, so launches need no locking.
class KernelRegistry {
 public:
  void add(backends::KernelId id, backends::BackendKind backend,
           KernelLauncher launcher,
           backends::StorageLayout layout = backends::StorageLayout::kSeedAos,
           backends::Precision precision = backends::Precision::kFp64);
  void add_fused(
      backends::BackendKind backend, KernelLauncher launcher,
      backends::StorageLayout layout = backends::StorageLayout::kSeedAos,
      backends::Precision precision = backends::Precision::kFp64);
  /// Registers the contention-free variant of an atomic scatter kernel;
  /// `launch()` routes to it when args.config.strategy says so.
  void add_privatized(
      backends::KernelId id, backends::BackendKind backend,
      KernelLauncher launcher,
      backends::StorageLayout layout = backends::StorageLayout::kSeedAos,
      backends::Precision precision = backends::Precision::kFp64);

  [[nodiscard]] bool has(
      backends::KernelId id, backends::BackendKind backend,
      backends::StorageLayout layout = backends::StorageLayout::kSeedAos,
      backends::Precision precision = backends::Precision::kFp64) const;
  [[nodiscard]] bool has_fused(
      backends::BackendKind backend,
      backends::StorageLayout layout = backends::StorageLayout::kSeedAos,
      backends::Precision precision = backends::Precision::kFp64) const;
  [[nodiscard]] bool has_privatized(
      backends::KernelId id, backends::BackendKind backend,
      backends::StorageLayout layout = backends::StorageLayout::kSeedAos,
      backends::Precision precision = backends::Precision::kFp64) const;

  /// Dispatches through the registered launcher; throws gaia::Error
  /// naming the (kernel, backend) pair when nothing is registered —
  /// a registration bug, not a user error. An atomic scatter kernel
  /// whose args carry ScatterStrategy::kPrivatized dispatches through
  /// the privatized variant instead; every other kernel ignores the
  /// strategy (there is nothing to privatize in a gather). The layout
  /// axis picks the body; an unregistered layout slot falls back to
  /// the seed-layout launcher of the same (kernel, backend, variant).
  void launch(backends::KernelId id, backends::BackendKind backend,
              const LaunchArgs& args) const;
  void launch_fused(backends::BackendKind backend,
                    const LaunchArgs& args) const;

  /// Registered (kernel, backend) entries in the seed-layout plane;
  /// fused/privatized/derived-layout slots excluded.
  [[nodiscard]] std::size_t size() const;

  /// Process-wide registry the solver dispatches through.
  static KernelRegistry& global();

 private:
  static constexpr std::size_t kPlane =
      static_cast<std::size_t>(backends::kNumKernels) *
      static_cast<std::size_t>(backends::kNumBackends);
  static constexpr std::size_t kLayoutPlanes =
      static_cast<std::size_t>(backends::kNumStorageLayouts) *
      static_cast<std::size_t>(backends::kNumPrecisions);

  [[nodiscard]] static std::size_t index(backends::KernelId id,
                                         backends::BackendKind backend,
                                         backends::StorageLayout layout,
                                         backends::Precision precision) {
    return (static_cast<std::size_t>(precision) *
                static_cast<std::size_t>(backends::kNumStorageLayouts) +
            static_cast<std::size_t>(layout)) *
               kPlane +
           static_cast<std::size_t>(id) *
               static_cast<std::size_t>(backends::kNumBackends) +
           static_cast<std::size_t>(backend);
  }
  [[nodiscard]] static std::size_t fused_index(
      backends::BackendKind backend, backends::StorageLayout layout,
      backends::Precision precision) {
    return (static_cast<std::size_t>(precision) *
                static_cast<std::size_t>(backends::kNumStorageLayouts) +
            static_cast<std::size_t>(layout)) *
               static_cast<std::size_t>(backends::kNumBackends) +
           static_cast<std::size_t>(backend);
  }

  std::array<KernelLauncher, kPlane * kLayoutPlanes> table_{};
  std::array<KernelLauncher,
             static_cast<std::size_t>(backends::kNumBackends) * kLayoutPlanes>
      fused_{};
  /// Sparse second strategy table: only the atomic scatter kernels have
  /// privatized variants registered.
  std::array<KernelLauncher, kPlane * kLayoutPlanes> privatized_{};
};

}  // namespace gaia::tuning
