/// \file tuning_cache.hpp
/// \brief Persistent autotuning results, sealed like a checkpoint.
///
/// A search that took warm-up iterations to converge should not be paid
/// again on the next run of the same problem class on the same machine.
/// The cache maps (backend, problem-shape bucket, kernel) to the winning
/// launch shape and persists as a CRC32-framed JSON file (the same
/// `resilience::write_framed_file` seal as checkpoints: torn writes and
/// bit rot are detected on load and the file is *ignored*, never
/// half-trusted — the solver falls back to searching).
///
/// Shape bucketing: winners from a 2^k-row problem transfer to problems
/// of the same order of magnitude, so keys use floor(log2(rows)) and
/// floor(log2(cols)) rather than exact dimensions. A different bucket is
/// a cache miss and triggers a fresh search.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>

#include "backends/backend.hpp"

namespace gaia::tuning {

/// Order-of-magnitude problem class of a tuning result.
struct ShapeBucket {
  std::int32_t rows_log2 = 0;
  std::int32_t cols_log2 = 0;
  bool operator==(const ShapeBucket&) const = default;
};

[[nodiscard]] ShapeBucket bucket_for(std::int64_t rows, std::int64_t cols);
[[nodiscard]] std::string to_string(const ShapeBucket& bucket);

class TuningCache {
 public:
  void put(backends::BackendKind backend, ShapeBucket bucket,
           backends::KernelId kernel, backends::KernelConfig config);

  [[nodiscard]] std::optional<backends::KernelConfig> find(
      backends::BackendKind backend, ShapeBucket bucket,
      backends::KernelId kernel) const;

  /// Installs every cached entry for (backend, bucket) into `table`;
  /// returns how many kernels were installed.
  int apply(backends::BackendKind backend, ShapeBucket bucket,
            backends::TuningTable& table) const;

  /// True iff all kNumKernels entries for (backend, bucket) are cached —
  /// the condition under which a run may skip the search entirely.
  [[nodiscard]] bool complete_for(backends::BackendKind backend,
                                  ShapeBucket bucket) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Schema version this build reads and writes. v2 added the per-entry
  /// scatter "strategy"; v3 added the storage "layout"; v4 added the
  /// storage "precision". Files of an older schema are rejected as a
  /// *version miss*, not corruption — a v3 winner was found in a
  /// precision-less search and must not silently pin the new axis to
  /// fp64.
  static constexpr std::int64_t kSchemaVersion = 4;

  /// Why a parse produced no cache (kOk when it did).
  enum class ParseStatus {
    kOk = 0,
    kMalformed,        ///< bad syntax, unknown names, invalid shapes
    kVersionMismatch,  ///< well-formed file of another schema version
  };

  /// JSON document (schema below); stable entry order for diffing.
  /// {"version":4,"entries":[{"backend":"gpusim","rows_log2":8,
  ///   "cols_log2":7,"kernel":"aprod2_att","blocks":32,"threads":32,
  ///   "strategy":"privatized","layout":"soa_tiled","precision":"fp32"}]}
  [[nodiscard]] std::string to_json() const;
  /// Strict parse: any malformed syntax, unknown backend/kernel/strategy
  /// name, invalid launch shape or wrong version yields nullopt (the
  /// caller treats it like a missing cache). `status`, when non-null,
  /// distinguishes a clean version miss from corruption.
  [[nodiscard]] static std::optional<TuningCache> parse_json(
      const std::string& text, ParseStatus* status = nullptr);

  /// Loads a CRC-framed cache file. Returns false (leaving the cache
  /// empty) when the file is missing, truncated, corrupt, or fails to
  /// parse — a cache is an optimization, never a hard dependency. An
  /// old-version file additionally bumps the
  /// `tuning.cache.version_miss` warning counter so schema evolution is
  /// distinguishable from bit rot in the metrics.
  [[nodiscard]] bool load(const std::string& path);
  /// Seals the cache to `path` (atomic write + CRC footer).
  void save(const std::string& path) const;

 private:
  /// (backend, rows_log2, cols_log2, kernel) -> winning shape.
  using Key = std::tuple<int, std::int32_t, std::int32_t, int>;
  static Key make_key(backends::BackendKind backend, ShapeBucket bucket,
                      backends::KernelId kernel) {
    return {static_cast<int>(backend), bucket.rows_log2, bucket.cols_log2,
            static_cast<int>(kernel)};
  }
  std::map<Key, backends::KernelConfig> entries_;
};

}  // namespace gaia::tuning
