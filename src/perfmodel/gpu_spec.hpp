/// \file gpu_spec.hpp
/// \brief Descriptions of the five accelerators of the study.
///
/// This environment has no GPUs, so the paper's platform axis is a
/// calibrated analytical model (see DESIGN.md "Substitutions"). The
/// numbers below are public datasheet values plus two behavioural
/// parameters extracted from the paper's observations:
///  * `spmv_bw_efficiency` — the fraction of peak bandwidth these
///    scattered SpMV kernels achieve (the paper traces the MI250X gap to
///    non-coalescent accesses and reproduces it with the amd-lab-notes
///    SpMV kernels, SV-B);
///  * `preferred_threads` — the threads-per-block sweet spot the paper's
///    tuning found (32 on T4/V100, 256 on A100/H100, small on MI250X).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace gaia::perfmodel {

enum class Vendor : std::uint8_t { kNvidia, kAmd };

enum class Platform : std::uint8_t {
  kT4 = 0,
  kV100,
  kA100,
  kH100,
  kMi250x,
};
inline constexpr int kNumPlatforms = 5;

[[nodiscard]] std::string to_string(Platform p);
[[nodiscard]] std::optional<Platform> parse_platform(const std::string& name);
[[nodiscard]] const std::vector<Platform>& all_platforms();

struct GpuSpec {
  Platform platform;
  std::string name;      ///< marketing name (paper Table IV)
  std::string cluster;   ///< hosting cluster in the paper
  Vendor vendor;
  double mem_capacity_gb;     ///< usable HBM/GDDR capacity
  double peak_bw_gbs;         ///< peak memory bandwidth
  double fp64_tflops;         ///< peak FP64 (vector) throughput
  double launch_overhead_us;  ///< kernel launch latency
  double spmv_bw_efficiency;  ///< achieved/peak bandwidth for these kernels
  std::int32_t preferred_threads;  ///< best threads-per-block (paper SV-B)
  double atomic_rmw_ns;       ///< per-update cost, native FP64 atomic
  double atomic_cas_retry;    ///< extra cost factor of the CAS-loop lowering
  std::int32_t max_concurrent_lanes;  ///< SMs/CUs x resident warps (model)
};

/// Datasheet + calibration record for a platform.
const GpuSpec& gpu_spec(Platform p);

}  // namespace gaia::perfmodel
