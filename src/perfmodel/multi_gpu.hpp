/// \file multi_gpu.hpp
/// \brief Multi-GPU / multi-node scaling model.
///
/// The paper measures single-GPU P and defers bigger problems to
/// "multiple GPUs eventually on multiple nodes" (SV-B, footnote 3); the
/// companion study (Malenza et al. 2024) ran the same solver on up to
/// 256 Leonardo nodes. This module extends the iteration cost model to
/// N ranks: each rank holds rows/N observations, computes its aprod
/// share locally, and the iteration ends with an allreduce of the
/// unknown-space updates plus the scalar reductions:
///
///   t_iter(N) = t_compute(shape / N) + t_allreduce(x bytes, N) + t_scalars
///
/// with a ring allreduce (2 (N-1)/N * bytes over the slowest link) and a
/// latency term per hop. Produces the strong/weak-scaling curves and
/// the communication-bound crossover.
#pragma once

#include "perfmodel/cost_model.hpp"
#include "perfmodel/framework.hpp"

namespace gaia::perfmodel {

struct InterconnectSpec {
  std::string name;
  double bw_gbs;         ///< per-link bandwidth (unidirectional)
  double latency_us;     ///< per-message latency
  /// Ranks per node sharing the fast intra-node fabric; beyond this, the
  /// inter-node network (typically slower) is the bottleneck.
  int ranks_per_node = 4;
  double internode_bw_gbs;
  double internode_latency_us;
};

/// NVLink-class intra-node + InfiniBand-class inter-node (Leonardo-like).
const InterconnectSpec& leonardo_interconnect();
/// Slingshot-class (Setonix-like).
const InterconnectSpec& setonix_interconnect();

struct ScalingPoint {
  int ranks = 1;
  double compute_s = 0;
  double allreduce_s = 0;
  double iteration_s = 0;
  /// Weak scaling: efficiency vs 1 rank at constant per-rank load.
  /// Strong scaling: speedup vs 1 rank at constant total load.
  double efficiency = 0;
};

class MultiGpuModel {
 public:
  MultiGpuModel(const GpuSpec& gpu, InterconnectSpec net)
      : model_(gpu), net_(std::move(net)) {}

  /// Ring-allreduce time for `bytes` over `ranks`.
  [[nodiscard]] double allreduce_seconds(double bytes, int ranks) const;

  /// One distributed LSQR iteration: local compute on rows/ranks plus
  /// the two allreduces (aprod2 result and solver scalars).
  [[nodiscard]] double iteration_seconds(const ProblemShape& total,
                                         const ExecutionPlan& plan,
                                         int ranks) const;

  /// Strong scaling: fixed total problem, 1..max_ranks.
  [[nodiscard]] std::vector<ScalingPoint> strong_scaling(
      const ProblemShape& total, const ExecutionPlan& plan,
      int max_ranks) const;

  /// Weak scaling: fixed per-rank problem, 1..max_ranks.
  [[nodiscard]] std::vector<ScalingPoint> weak_scaling(
      const ProblemShape& per_rank, const ExecutionPlan& plan,
      int max_ranks) const;

  [[nodiscard]] const KernelCostModel& gpu_model() const { return model_; }

 private:
  /// Shape of one rank's slice of a total problem.
  [[nodiscard]] static ProblemShape slice(const ProblemShape& total,
                                          int ranks);
  /// Total problem made of `ranks` copies of a per-rank shape.
  [[nodiscard]] static ProblemShape scale_up(const ProblemShape& per_rank,
                                             int ranks);

  KernelCostModel model_;
  InterconnectSpec net_;
};

}  // namespace gaia::perfmodel
