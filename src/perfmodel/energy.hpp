/// \file energy.hpp
/// \brief Energy-to-solution model.
///
/// The AVU-GSR line of work explicitly tracks "new green computing
/// milestones" (Cesare et al., INAF TR 164): on exascale machines the
/// energy bill of a production solve matters as much as its wall time.
/// This module extends the platform model with a simple power model —
///
///   P(t) = P_idle + (P_tdp - P_idle) * utilization
///
/// where utilization reflects how bandwidth-bound kernels load the
/// device — and derives energy per iteration and energy-to-solution for
/// every framework x platform cell, including an energy-based analog of
/// the Pennycook metric (harmonic mean of energy efficiency).
#pragma once

#include "metrics/efficiency.hpp"
#include "perfmodel/framework.hpp"
#include "perfmodel/simulator.hpp"

namespace gaia::perfmodel {

struct PowerSpec {
  double tdp_w;    ///< board power limit
  double idle_w;   ///< idle draw
  /// Average utilization of a bandwidth-bound solver iteration (memory
  /// systems pull near-TDP power even when ALUs idle).
  double mem_bound_utilization;
};

/// Board power data (public datasheets + the bandwidth-bound utilization
/// calibration).
const PowerSpec& power_spec(Platform p);

struct EnergyResult {
  Framework framework;
  Platform platform;
  bool supported = false;
  double iteration_s = 0;
  double avg_power_w = 0;
  double energy_per_iteration_j = 0;
  /// Energy for the paper's standard 100-iteration measurement run.
  double energy_per_run_j = 0;
};

class EnergyModel {
 public:
  explicit EnergyModel(SimulatorOptions options = {})
      : simulator_(options) {}

  [[nodiscard]] EnergyResult evaluate(Framework f, Platform p,
                                      byte_size footprint) const;

  /// Energy-per-run matrix (joules; negative = unsupported) over a
  /// platform set — feed to metrics::application_efficiency /
  /// pennycook_scores for the energy-portability analog.
  [[nodiscard]] metrics::PerformanceMatrix energy_campaign(
      byte_size footprint, const std::vector<Framework>& frameworks,
      const std::vector<Platform>& platforms) const;

 private:
  PlatformSimulator simulator_;
};

}  // namespace gaia::perfmodel
