#include "perfmodel/gpu_spec.hpp"

#include <array>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace gaia::perfmodel {

std::string to_string(Platform p) {
  switch (p) {
    case Platform::kT4:
      return "T4";
    case Platform::kV100:
      return "V100";
    case Platform::kA100:
      return "A100";
    case Platform::kH100:
      return "H100";
    case Platform::kMi250x:
      return "MI250X";
  }
  return "unknown";
}

std::optional<Platform> parse_platform(const std::string& name) {
  for (Platform p : all_platforms())
    if (util::iequals(name, to_string(p))) return p;
  return std::nullopt;
}

const std::vector<Platform>& all_platforms() {
  static const std::vector<Platform> platforms = {
      Platform::kT4, Platform::kV100, Platform::kA100, Platform::kH100,
      Platform::kMi250x};
  return platforms;
}

const GpuSpec& gpu_spec(Platform p) {
  // Datasheet columns: capacity, peak BW, FP64, launch latency. The last
  // four columns are the behavioural calibration (see header comment).
  static const std::array<GpuSpec, kNumPlatforms> specs = {{
      {Platform::kT4, "NVIDIA Tesla T4", "TeslaT4 (CascadeLake)",
       Vendor::kNvidia,
       /*capacity*/ 15.0, /*bw*/ 320.0, /*fp64*/ 0.25,
       /*launch us*/ 8.0, /*spmv eff*/ 0.72, /*pref threads*/ 32,
       /*rmw ns*/ 4.0, /*cas retry*/ 6.0, /*lanes*/ 40 * 1024},
      {Platform::kV100, "NVIDIA Tesla V100S", "CascadeLake",
       Vendor::kNvidia,
       /*capacity*/ 32.0, /*bw*/ 1134.0, /*fp64*/ 8.2,
       /*launch us*/ 7.0, /*spmv eff*/ 0.70, /*pref threads*/ 32,
       /*rmw ns*/ 3.0, /*cas retry*/ 6.0, /*lanes*/ 80 * 2048},
      {Platform::kA100, "NVIDIA A100", "EpiTo",
       Vendor::kNvidia,
       /*capacity*/ 40.0, /*bw*/ 1555.0, /*fp64*/ 9.7,
       /*launch us*/ 5.0, /*spmv eff*/ 0.78, /*pref threads*/ 256,
       /*rmw ns*/ 2.0, /*cas retry*/ 5.0, /*lanes*/ 108 * 2048},
      {Platform::kH100, "NVIDIA H100", "GraceHopper",
       Vendor::kNvidia,
       /*capacity*/ 96.0, /*bw*/ 3350.0, /*fp64*/ 33.5,
       /*launch us*/ 4.0, /*spmv eff*/ 0.80, /*pref threads*/ 256,
       /*rmw ns*/ 1.5, /*cas retry*/ 5.0, /*lanes*/ 132 * 2048},
      // One MI250X module (two GCDs); the paper's runs see the whole
      // 128 GB. The low SpMV efficiency is the paper's own diagnosis:
      // "noncoalescent memory accesses by threads" reproduced by the
      // amd-lab-notes SpMV kernels (SV-B).
      {Platform::kMi250x, "AMD MI250X", "Setonix",
       Vendor::kAmd,
       /*capacity*/ 128.0, /*bw*/ 3277.0, /*fp64*/ 47.9,
       /*launch us*/ 6.0, /*spmv eff*/ 0.30, /*pref threads*/ 64,
       /*rmw ns*/ 3.5, /*cas retry*/ 10.0, /*lanes*/ 220 * 1024},
  }};
  const auto idx = static_cast<std::size_t>(p);
  GAIA_CHECK(idx < specs.size(), "unknown platform");
  return specs[idx];
}

}  // namespace gaia::perfmodel
