#include "perfmodel/energy.hpp"

#include <array>

#include "util/error.hpp"

namespace gaia::perfmodel {

const PowerSpec& power_spec(Platform p) {
  // TDP/idle from public datasheets; the utilization factor reflects
  // that HBM-bound kernels hold the memory system near its power limit
  // while leaving compute partially idle.
  static const std::array<PowerSpec, kNumPlatforms> specs = {{
      /* T4     */ {70.0, 10.0, 0.85},
      /* V100   */ {250.0, 25.0, 0.80},
      /* A100   */ {400.0, 40.0, 0.78},
      /* H100   */ {700.0, 60.0, 0.75},
      /* MI250X */ {560.0, 90.0, 0.70},
  }};
  const auto idx = static_cast<std::size_t>(p);
  GAIA_CHECK(idx < specs.size(), "unknown platform");
  return specs[idx];
}

EnergyResult EnergyModel::evaluate(Framework f, Platform p,
                                   byte_size footprint) const {
  EnergyResult result;
  result.framework = f;
  result.platform = p;
  if (simulator_.unsupported_reason(f, p, footprint)) return result;

  result.supported = true;
  result.iteration_s = simulator_.model_iteration_seconds(f, p, footprint);
  const PowerSpec& power = power_spec(p);
  result.avg_power_w =
      power.idle_w +
      (power.tdp_w - power.idle_w) * power.mem_bound_utilization;
  result.energy_per_iteration_j = result.avg_power_w * result.iteration_s;
  result.energy_per_run_j =
      result.energy_per_iteration_j * simulator_.options().iterations;
  return result;
}

metrics::PerformanceMatrix EnergyModel::energy_campaign(
    byte_size footprint, const std::vector<Framework>& frameworks,
    const std::vector<Platform>& platforms) const {
  std::vector<std::string> app_names, plat_names;
  for (Framework f : frameworks) app_names.push_back(to_string(f));
  for (Platform p : platforms) plat_names.push_back(to_string(p));
  metrics::PerformanceMatrix m(app_names, plat_names);
  for (std::size_t a = 0; a < frameworks.size(); ++a) {
    for (std::size_t p = 0; p < platforms.size(); ++p) {
      const EnergyResult r =
          evaluate(frameworks[a], platforms[p], footprint);
      if (r.supported) m.set_time(a, p, r.energy_per_run_j);
    }
  }
  return m;
}

}  // namespace gaia::perfmodel
