/// \file cost_model.hpp
/// \brief Roofline-style cost model of one LSQR iteration on a GPU.
///
/// The solver is memory-bandwidth-bound sparse matrix-vector work (paper
/// SVI), so the model prices each of the eight kernels as
///
///   time = max(traffic / effective_bandwidth, flops / peak_fp64)
///        + atomic_serialization + launch_overhead
///
/// with three structural effects the paper's results hinge on:
///  * kernel shape: threads-per-block away from the platform's sweet
///    spot costs bandwidth (the PSTL fixed-256 penalty on T4/V100, and
///    the "up to 40 %" tuning gain, SV-B);
///  * atomics: the aprod2 scatter kernels serialize on shared columns;
///    the CAS-loop lowering pays a retry penalty that grows with the
///    conflict ratio (the MI250X `-munsafe-fp-atomics` story, SV-B);
///  * streams: overlapping the aprod2 kernels hides the shorter ones
///    behind the longest (paper SIV).
///
/// All constants are either datasheet values (GpuSpec) or calibration
/// documented inline; the model reproduces shapes, not testbed numbers.
#pragma once

#include "backends/atomic.hpp"
#include "backends/device_buffer.hpp"
#include "backends/kernel_config.hpp"
#include "perfmodel/gpu_spec.hpp"
#include "perfmodel/problem_shape.hpp"

namespace gaia::perfmodel {

using backends::AtomicMode;
using backends::KernelConfig;
using backends::KernelId;
using backends::TuningTable;

/// How a port executes the iteration on a platform.
struct ExecutionPlan {
  TuningTable tuning;  ///< launch shapes (resolved; {0,0} = model default)
  AtomicMode atomic_mode = AtomicMode::kNativeRmw;
  bool use_streams = true;
  /// Solve the global (PPN gamma) block. Production has not activated it
  /// (paper SV-C), so the default timing model excludes it.
  bool solve_global = false;
  /// Host-visible allocation coherence. The paper forces coarse grain
  /// via hipMemAdvise because "fine-grain coherence led to performance
  /// degradations due to the atomic operations" (SIV-b): fine grain
  /// makes every atomic a cache-bypassing coherent transaction.
  backends::CoherenceMode coherence = backends::CoherenceMode::kCoarseGrain;
};

class KernelCostModel {
 public:
  explicit KernelCostModel(const GpuSpec& spec) : spec_(spec) {}

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }

  /// Bytes a kernel moves through HBM for the given problem.
  [[nodiscard]] double kernel_traffic_bytes(KernelId id,
                                            const ProblemShape& p) const;

  /// Bytes a kernel moves under a given *storage layout*. Unlike
  /// `kernel_traffic_bytes` (which charges exact coefficient bytes),
  /// this charges what the memory system actually fetches: the seed AoS
  /// record is 3 cache lines, so a kernel reading one block of it pays
  /// line-granular overfetch (64 B for a 40 B astro block, the full
  /// 192 B record for the straddling attitude block); SoA streams pay
  /// exact bytes plus the zero-padded tile tail; the sliced instrumental
  /// format pays its lane padding and the int32 column payload but
  /// halves the gather miss factor (slice sorting clusters rows that
  /// touch nearby instrumental columns).
  [[nodiscard]] double layout_traffic_bytes(
      KernelId id, const ProblemShape& p,
      backends::StorageLayout layout) const;

  /// The overfetch-vs-padding crossover: which storage layout the model
  /// predicts fastest for `id` on this problem. All eight kernels are
  /// bandwidth-bound, so the lowest fetched-bytes layout wins; ties go
  /// to the earlier enum value (seed).
  [[nodiscard]] backends::StorageLayout preferred_layout(
      KernelId id, const ProblemShape& p) const;

  /// Bytes a kernel moves under a given *storage precision* on top of a
  /// layout: the coefficient stream (AoS record lines / SoA planes /
  /// sliced payload) shrinks with the storage scalar while the index
  /// arrays and the FP64 x/y vector traffic stay unchanged — reduced
  /// precision is a coefficient-bandwidth lever only. Seed AoS records
  /// stay line-granular: a shrunken record still fetches whole 64 B
  /// lines.
  [[nodiscard]] double precision_traffic_bytes(
      KernelId id, const ProblemShape& p, backends::StorageLayout layout,
      backends::Precision precision) const;

  /// The bandwidth-vs-refinement crossover: which storage precision the
  /// model predicts fastest for `id` on this problem *per converged
  /// solve*. Reduced precision cuts the coefficient traffic of every
  /// iteration but buys outer iterative-refinement corrections (extra
  /// FP64 residual passes plus correction solves); the model charges an
  /// amortized surcharge per precision (calibration documented in the
  /// implementation) and picks the lowest effective bytes, ties to the
  /// earlier enum value (fp64).
  [[nodiscard]] backends::Precision preferred_precision(
      KernelId id, const ProblemShape& p,
      backends::StorageLayout layout) const;

  /// FP operations of a kernel.
  [[nodiscard]] double kernel_flops(KernelId id, const ProblemShape& p) const;

  /// Atomic-update serialization time (non-zero only for the aprod2
  /// att/instr/glob kernels). Zero when `cfg` selects the privatized
  /// scatter strategy — that path executes no atomics at all; its cost
  /// shows up in `privatized_seconds` instead.
  [[nodiscard]] double atomic_seconds(
      KernelId id, const ProblemShape& p, KernelConfig cfg, AtomicMode mode,
      backends::CoherenceMode coherence =
          backends::CoherenceMode::kCoarseGrain) const;

  /// Scratch-reduction overhead of the privatized scatter path (zero for
  /// atomic-free kernels): W private copies of the kernel's column
  /// section cost ~3 streaming passes over W*section doubles (zero-fill,
  /// tree-fold read+write) plus a log2(W)-deep ladder of extra launches.
  [[nodiscard]] double privatized_seconds(KernelId id, const ProblemShape& p,
                                          KernelConfig cfg) const;

  /// The contention-vs-bandwidth crossover: which scatter strategy the
  /// model predicts faster for `id` at shape `cfg`. Atomics win while
  /// the conflict ratio lanes/columns is low; privatization wins when
  /// serialization (or CAS retries) dominates the modest scratch
  /// traffic. Always kAtomic for atomic-free kernels.
  [[nodiscard]] backends::ScatterStrategy preferred_strategy(
      KernelId id, const ProblemShape& p, KernelConfig cfg, AtomicMode mode,
      backends::CoherenceMode coherence =
          backends::CoherenceMode::kCoarseGrain) const;

  /// Wall time of one kernel launch.
  [[nodiscard]] double kernel_seconds(
      KernelId id, const ProblemShape& p, KernelConfig cfg, AtomicMode mode,
      backends::CoherenceMode coherence =
          backends::CoherenceMode::kCoarseGrain) const;

  /// Wall time of one full LSQR iteration (aprod1 pass, aprod2 pass,
  /// BLAS-1 vector work, launch and synchronization overheads).
  [[nodiscard]] double iteration_seconds(const ProblemShape& p,
                                         const ExecutionPlan& plan) const;

  /// Bandwidth efficiency multiplier of a launch shape on this platform
  /// (1 at the preferred threads-per-block; exposed for tests/ablations).
  [[nodiscard]] double shape_efficiency(KernelConfig cfg) const;

  /// Occupancy multiplier: narrow grids cannot saturate HBM.
  [[nodiscard]] double lane_utilization(KernelConfig cfg) const;

  /// The launch shapes a hand-tuned native port uses on this platform
  /// (wide gather kernels, narrow atomic kernels — paper SIV).
  [[nodiscard]] TuningTable tuned_table() const;

  /// Resolve a {0,0} config to the model's default launch shape.
  [[nodiscard]] KernelConfig resolve(KernelId id, KernelConfig cfg) const;

 private:
  GpuSpec spec_;
};

}  // namespace gaia::perfmodel
