/// \file problem_shape.hpp
/// \brief Analytic problem dimensions for a given footprint.
///
/// The performance model prices kernels from the system's dimensions
/// without allocating it (a 60 GB problem must be modellable on a
/// laptop). The shape formulae are the same ones the generator uses
/// (`matrix::config_for_footprint`), so a problem small enough to
/// actually generate has exactly the modelled dimensions.
#pragma once

#include "matrix/generator.hpp"
#include "util/types.hpp"

namespace gaia::perfmodel {

struct ProblemShape {
  byte_size footprint_bytes = 0;
  row_index n_rows = 0;    ///< observation + constraint rows
  row_index n_stars = 0;
  col_index n_astro_params = 0;
  col_index n_att_params = 0;   ///< 3 axes x dof
  col_index n_instr_params = 0;
  col_index n_glob_params = 1;

  [[nodiscard]] col_index n_unknowns() const {
    return n_astro_params + n_att_params + n_instr_params + n_glob_params;
  }
  [[nodiscard]] double gigabytes() const {
    return static_cast<double>(footprint_bytes) / static_cast<double>(kGiB);
  }

  /// Shape of the system `matrix::config_for_footprint(bytes)` generates,
  /// computed without generating it.
  static ProblemShape from_footprint(byte_size bytes);

  /// Shape of an explicit generator configuration (expected rows).
  static ProblemShape from_config(const matrix::GeneratorConfig& cfg);
};

}  // namespace gaia::perfmodel
