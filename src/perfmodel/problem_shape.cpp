#include "perfmodel/problem_shape.hpp"

#include <cmath>

namespace gaia::perfmodel {

ProblemShape ProblemShape::from_config(const matrix::GeneratorConfig& cfg) {
  ProblemShape s;
  s.n_stars = cfg.n_stars;
  const double expected_rows =
      static_cast<double>(cfg.n_stars) * cfg.obs_per_star_mean;
  s.n_rows = static_cast<row_index>(expected_rows) +
             cfg.constraints_per_axis * kAttBlocks;
  s.n_astro_params = cfg.n_stars * kAstroParamsPerStar;
  s.n_att_params = static_cast<col_index>(kAttBlocks) * cfg.att_dof_per_axis;
  s.n_instr_params = cfg.n_instr_params;
  s.n_glob_params = cfg.has_global ? 1 : 0;
  s.footprint_bytes =
      matrix::SystemMatrix::footprint_bytes_for(s.n_rows, s.n_stars);
  return s;
}

ProblemShape ProblemShape::from_footprint(byte_size bytes) {
  return from_config(matrix::config_for_footprint(bytes));
}

}  // namespace gaia::perfmodel
