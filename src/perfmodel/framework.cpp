#include "perfmodel/framework.hpp"

#include <array>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace gaia::perfmodel {

std::string to_string(Framework f) {
  switch (f) {
    case Framework::kCuda:
      return "CUDA";
    case Framework::kHip:
      return "HIP";
    case Framework::kOmpLlvm:
      return "OMP+LLVM";
    case Framework::kOmpVendor:
      return "OMP+V";
    case Framework::kPstlAcpp:
      return "PSTL+ACPP";
    case Framework::kPstlVendor:
      return "PSTL+V";
    case Framework::kSyclAcpp:
      return "SYCL+ACPP";
    case Framework::kSyclDpcpp:
      return "SYCL+DPCPP";
  }
  return "unknown";
}

std::optional<Framework> parse_framework(const std::string& name) {
  for (Framework f : all_frameworks())
    if (util::iequals(name, to_string(f))) return f;
  return std::nullopt;
}

const std::vector<Framework>& all_frameworks() {
  static const std::vector<Framework> frameworks = {
      Framework::kCuda,      Framework::kHip,       Framework::kOmpLlvm,
      Framework::kOmpVendor, Framework::kPstlAcpp,  Framework::kPstlVendor,
      Framework::kSyclAcpp,  Framework::kSyclDpcpp};
  return frameworks;
}

const FrameworkTraits& framework_traits(Framework f) {
  static const std::array<FrameworkTraits, kNumFrameworks> traits = {{
      // framework, label, nvidia, amd, tunable, fixed_threads, streams
      {Framework::kCuda, "CUDA", true, false, true, 0, true},
      {Framework::kHip, "HIP", true, true, true, 0, true},
      {Framework::kOmpLlvm, "OMP+LLVM", true, true, true, 0, true},
      {Framework::kOmpVendor, "OMP+V", true, true, true, 0, true},
      // nsys shows stdpar always launching 256-thread blocks (SV-B), and
      // stdpar has no stream/queue concept.
      {Framework::kPstlAcpp, "PSTL+ACPP", true, true, false, 256, false},
      {Framework::kPstlVendor, "PSTL+V", true, true, false, 256, false},
      {Framework::kSyclAcpp, "SYCL+ACPP", true, true, true, 0, true},
      {Framework::kSyclDpcpp, "SYCL+DPCPP", true, true, true, 0, true},
  }};
  const auto idx = static_cast<std::size_t>(f);
  GAIA_CHECK(idx < traits.size(), "unknown framework");
  return traits[idx];
}

AtomicMode atomic_lowering(Framework f, Vendor v) {
  if (v == Vendor::kNvidia) return AtomicMode::kNativeRmw;
  // On MI250X only compilers honouring -munsafe-fp-atomics emit native
  // RMW; base clang OpenMP and DPC++ fall back to CAS loops (SV-B).
  switch (f) {
    case Framework::kOmpLlvm:
    case Framework::kSyclDpcpp:
      return AtomicMode::kCasLoop;
    default:
      return AtomicMode::kNativeRmw;
  }
}

CompilerInfo compiler_info(Framework f, Vendor v) {
  // Transcription of the paper's Tables I-III.
  const bool nv = v == Vendor::kNvidia;
  switch (f) {
    case Framework::kCuda:
      return {"nvcc", "12.3", "-gencode=arch=compute_XX,code=sm_XX"};
    case Framework::kHip:
      return nv ? CompilerInfo{"hipcc", "5.7.3", "--gpu-architecture=sm_XX"}
                : CompilerInfo{"hipcc", "rocm-5.7.3",
                               "--offload-arch=gfx90a -munsafe-fp-atomics"};
    case Framework::kOmpLlvm:
      return nv ? CompilerInfo{"clang++", "17.0.6",
                               "-fopenmp -fopenmp-targets=nvptx64-nvidia-cuda"
                               " -march=sm_XX"}
                : CompilerInfo{"clang++", "17.0.6",
                               "-fopenmp -fopenmp-targets=amdgcn-amd-amdhsa"
                               " -march=gfx90a"};
    case Framework::kOmpVendor:
      return nv ? CompilerInfo{"nvc++", "24.3", "-mp=gpu -gpu=ccXX,sm_XX"}
                : CompilerInfo{"amdclang++", "rocm-5.7.3",
                               "-fopenmp --offload-arch=gfx90a"
                               " -munsafe-fp-atomics"};
    case Framework::kPstlAcpp:
      return nv ? CompilerInfo{"acpp", "24.06",
                               "--acpp-platform=cuda --acpp-stdpar"
                               " --acpp-stdpar-unconditional-offload"
                               " --acpp-gpu-arch=sm_XX"}
                : CompilerInfo{"acpp", "24.06",
                               "--acpp-platform=rocm --acpp-stdpar"
                               " --acpp-targets=hip:gfx90a"
                               " -munsafe-fp-atomics"};
    case Framework::kPstlVendor:
      return nv ? CompilerInfo{"nvc++", "24.3", "-stdpar=gpu -gpu=ccXX,sm_XX"}
                : CompilerInfo{"clang++", "rocm-stdpar-18.0.0",
                               "--hipstdpar --offload-arch=gfx90a"
                               " -munsafe-fp-atomics"};
    case Framework::kSyclAcpp:
      return nv ? CompilerInfo{"acpp", "24.06",
                               "--acpp-platform=cuda"
                               " --acpp-targets=cuda:sm_XX"}
                : CompilerInfo{"acpp", "24.06",
                               "--acpp-platform=rocm --acpp-targets=generic"
                               " --acpp-gpu-arch=gfx90a"
                               " -munsafe-fp-atomics"};
    case Framework::kSyclDpcpp:
      return nv ? CompilerInfo{"dpc++", "19.0.0",
                               "-fsycl -fsycl-targets=nvptx64-nvidia-cuda"}
                : CompilerInfo{"dpc++", "18.0.0",
                               "-fsycl -fsycl-targets=amdgcn-amd-amdhsa"
                               " --offload-arch=gfx90a"};
  }
  return {"unknown", "", ""};
}

int size_class_of(double gigabytes) {
  if (gigabytes < 20.0) return 0;
  if (gigabytes < 45.0) return 1;
  return 2;
}

double residual_efficiency(Framework f, Platform p, int size_class) {
  GAIA_CHECK(size_class >= 0 && size_class <= 2, "bad size class");
  // Calibration transcribed from the paper's measured application
  // efficiencies (Fig. 5) after the structural terms (kernel shapes,
  // atomic lowering, streams) are factored out. Rows: T4, V100, A100,
  // H100, MI250X. 1.0 = fully explained by the structural model.
  struct Row {
    Framework f;
    double eff[kNumPlatforms];
  };
  static constexpr std::array<Row, kNumFrameworks> base = {{
      {Framework::kCuda, {1.00, 0.95, 1.00, 0.96, 1.00}},
      {Framework::kHip, {0.97, 1.00, 0.98, 1.00, 0.97}},
      {Framework::kOmpLlvm, {0.18, 0.53, 0.60, 0.84, 0.55}},
      {Framework::kOmpVendor, {0.59, 0.66, 0.70, 0.91, 1.00}},
      {Framework::kPstlAcpp, {0.92, 0.95, 0.80, 0.90, 0.62}},
      {Framework::kPstlVendor, {0.85, 0.90, 0.78, 0.88, 0.68}},
      {Framework::kSyclAcpp, {0.88, 0.93, 0.93, 0.95, 0.95}},
      {Framework::kSyclDpcpp, {0.98, 0.80, 0.75, 0.80, 0.85}},
  }};
  double eff = 1.0;
  for (const Row& row : base) {
    if (row.f == f) {
      eff = row.eff[static_cast<std::size_t>(p)];
      break;
    }
  }
  // Size-class deltas (paper Fig. 3b): HIP's efficiency sags on A100 and
  // V100 at 30 GB (its P drops to 0.88 while SYCL+ACPP holds 0.93).
  if (size_class >= 1) {
    if (f == Framework::kHip && p == Platform::kA100) eff *= 0.75;
    if (f == Framework::kHip && p == Platform::kV100) eff *= 0.90;
    if (f == Framework::kCuda && p == Platform::kV100) eff *= 0.99;
  }
  // At 60 GB nvc++ overtakes ACPP for PSTL on H100 (SV-B: PSTL+V reaches
  // 0.79 while ACPP falls behind).
  if (size_class == 2) {
    if (f == Framework::kPstlAcpp && p == Platform::kH100) eff *= 0.84;
    if (f == Framework::kPstlVendor && p == Platform::kH100) eff *= 0.90;
  }
  return eff;
}

ExecutionPlan execution_plan(Framework f, const GpuSpec& spec) {
  const FrameworkTraits& traits = framework_traits(f);
  ExecutionPlan plan;
  plan.atomic_mode = atomic_lowering(f, spec.vendor);
  plan.use_streams = traits.supports_streams;
  if (traits.tunable) {
    plan.tuning = KernelCostModel(spec).tuned_table();
  } else {
    // PSTL: the runtime picks one shape for every kernel; blocks wide
    // enough to cover the device, threads fixed at 256.
    const std::int32_t blocks = static_cast<std::int32_t>(
        std::max<std::int64_t>(
            64, spec.max_concurrent_lanes / traits.fixed_threads));
    plan.tuning = TuningTable::untuned({blocks, traits.fixed_threads});
  }
  return plan;
}

}  // namespace gaia::perfmodel
