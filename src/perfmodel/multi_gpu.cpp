#include "perfmodel/multi_gpu.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace gaia::perfmodel {

const InterconnectSpec& leonardo_interconnect() {
  static const InterconnectSpec spec{
      "NVLink3 + HDR InfiniBand (Leonardo-like)",
      /*intra bw*/ 100.0, /*intra lat*/ 3.0,
      /*ranks per node*/ 4,
      /*inter bw*/ 25.0, /*inter lat*/ 8.0};
  return spec;
}

const InterconnectSpec& setonix_interconnect() {
  static const InterconnectSpec spec{
      "Infinity Fabric + Slingshot (Setonix-like)",
      /*intra bw*/ 72.0, /*intra lat*/ 3.5,
      /*ranks per node*/ 8,
      /*inter bw*/ 25.0, /*inter lat*/ 10.0};
  return spec;
}

double MultiGpuModel::allreduce_seconds(double bytes, int ranks) const {
  GAIA_CHECK(ranks >= 1, "need at least one rank");
  if (ranks == 1) return 0.0;
  // Ring allreduce: 2 (N-1)/N of the payload crosses the slowest link
  // involved; 2 (N-1) latency hops.
  const bool multi_node = ranks > net_.ranks_per_node;
  const double link_bw =
      (multi_node ? net_.internode_bw_gbs : net_.bw_gbs) * 1e9;
  const double latency =
      (multi_node ? net_.internode_latency_us : net_.latency_us) * 1e-6;
  const double n = static_cast<double>(ranks);
  return 2.0 * (n - 1.0) / n * bytes / link_bw +
         2.0 * (n - 1.0) * latency;
}

ProblemShape MultiGpuModel::slice(const ProblemShape& total, int ranks) {
  ProblemShape s = total;
  s.n_rows = std::max<row_index>(1, total.n_rows / ranks);
  s.n_stars = std::max<row_index>(1, total.n_stars / ranks);
  // The unknown space stays global (x is replicated), but the astro
  // scatter each rank performs covers only its own stars; the cost model
  // prices by rows, which is what shrinks.
  s.footprint_bytes = total.footprint_bytes / static_cast<byte_size>(ranks);
  return s;
}

ProblemShape MultiGpuModel::scale_up(const ProblemShape& per_rank,
                                     int ranks) {
  ProblemShape s = per_rank;
  s.n_rows = per_rank.n_rows * ranks;
  s.n_stars = per_rank.n_stars * ranks;
  s.n_astro_params = per_rank.n_astro_params * ranks;
  s.footprint_bytes = per_rank.footprint_bytes * static_cast<byte_size>(ranks);
  return s;
}

double MultiGpuModel::iteration_seconds(const ProblemShape& total,
                                        const ExecutionPlan& plan,
                                        int ranks) const {
  GAIA_CHECK(ranks >= 1, "need at least one rank");
  const ProblemShape local = slice(total, ranks);
  const double compute = model_.iteration_seconds(local, plan);
  // Per iteration the ranks allreduce the aprod2 scatter result over the
  // replicated unknown space (production reduces the shared attitude /
  // instrumental / global sections; the astrometric section is owned
  // rank-locally thanks to the star partition) plus a handful of
  // scalars.
  const double shared_unknowns_bytes =
      static_cast<double>(total.n_att_params + total.n_instr_params +
                          total.n_glob_params) *
      sizeof(real);
  const double scalars_bytes = 4.0 * sizeof(real);
  return compute + allreduce_seconds(shared_unknowns_bytes, ranks) +
         allreduce_seconds(scalars_bytes, ranks);
}

std::vector<ScalingPoint> MultiGpuModel::strong_scaling(
    const ProblemShape& total, const ExecutionPlan& plan,
    int max_ranks) const {
  GAIA_CHECK(max_ranks >= 1, "need at least one rank");
  std::vector<ScalingPoint> points;
  const double t1 = iteration_seconds(total, plan, 1);
  for (int n = 1; n <= max_ranks; n *= 2) {
    ScalingPoint p;
    p.ranks = n;
    p.compute_s = model_.iteration_seconds(slice(total, n), plan);
    p.iteration_s = iteration_seconds(total, plan, n);
    p.allreduce_s = p.iteration_s - p.compute_s;
    p.efficiency = t1 / (p.iteration_s * n);  // parallel efficiency
    points.push_back(p);
  }
  return points;
}

std::vector<ScalingPoint> MultiGpuModel::weak_scaling(
    const ProblemShape& per_rank, const ExecutionPlan& plan,
    int max_ranks) const {
  GAIA_CHECK(max_ranks >= 1, "need at least one rank");
  std::vector<ScalingPoint> points;
  const double t1 = iteration_seconds(per_rank, plan, 1);
  for (int n = 1; n <= max_ranks; n *= 2) {
    ScalingPoint p;
    p.ranks = n;
    const ProblemShape total = scale_up(per_rank, n);
    p.compute_s = model_.iteration_seconds(slice(total, n), plan);
    p.iteration_s = iteration_seconds(total, plan, n);
    p.allreduce_s = p.iteration_s - p.compute_s;
    p.efficiency = t1 / p.iteration_s;  // constant-work efficiency
    points.push_back(p);
  }
  return points;
}

}  // namespace gaia::perfmodel
