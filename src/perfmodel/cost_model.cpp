#include "perfmodel/cost_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "backends/backend.hpp"
#include "matrix/storage_layout.hpp"
#include "util/error.hpp"

namespace gaia::perfmodel {

namespace {

// Cache-miss factor of the x-vector gathers / scatters per block type:
// astrometric accesses are contiguous (block diagonal), attitude hits a
// slowly drifting spline window, instrumental is irregular.
constexpr double kAstroMiss = 0.05;
constexpr double kAttMiss = 0.35;
constexpr double kInstrMiss = 0.90;

// Streaming (non-SpMV) bandwidth efficiency for the BLAS-1 vector work.
constexpr double kStreamEff = 0.90;

// Per-iteration host-side overhead: scalar reductions, stream sync, MPI
// allreduce of the solver scalars.
constexpr double kIterationOverheadS = 30e-6;

// Atomic behaviour calibration (see DESIGN.md):
// native FP64 atomics are warp/wave-aggregated by hardware; a CAS retry
// loop is not, and pays ~4x the uncontended cost (extra load + compare).
constexpr double kRmwAggregation = 32.0;
constexpr double kCasBaseFactor = 4.0;
constexpr double kRmwConflictCoef = 0.02;
constexpr double kRmwConflictCap = 32.0;
constexpr double kCasConflictCap = 64.0;

// Fine-grain coherence penalty: every atomic becomes a coherent,
// cache-bypassing transaction (the paper's hipMemAdvise observation,
// SIV-b), and streaming traffic loses some caching too.
constexpr double kFineGrainAtomicFactor = 6.0;
constexpr double kFineGrainBwFactor = 0.92;

// Lanes needed to saturate HBM (model constant; narrower grids get
// proportionally less bandwidth).
constexpr double kSaturationLanes = 2048.0;

struct KernelShapeInfo {
  double per_row_bytes;    ///< coefficients + indexes + y traffic
  double gather_bytes;     ///< x gathers/scatters before the miss factor
  double miss;             ///< cache-miss factor on the gather traffic
  double flops_per_row;
  double atomic_updates_per_row;  ///< 0 = atomic-free kernel
};

KernelShapeInfo shape_info(KernelId id) {
  using enum KernelId;
  // Sizes: coefficient block + index payload + y read/modify/write for
  // aprod1 (16 B) or y read for aprod2 (8 B).
  switch (id) {
    case kAprod1Astro:
      return {40 + 8 + 16, 40, kAstroMiss, 10, 0};
    case kAprod1Att:
      return {96 + 8 + 16, 96, kAttMiss, 24, 0};
    case kAprod1Instr:
      return {48 + 24 + 16, 48, kInstrMiss, 12, 0};
    case kAprod1Glob:
      return {8 + 16, 0, 0, 2, 0};
    case kAprod2Astro:
      // Star-parallel: x is written once per star (80 B per star folded
      // into gather_bytes via the miss factor approximation).
      return {40 + 8 + 8, 80, kAstroMiss, 10, 0};
    case kAprod2Att:
      return {96 + 8 + 8, 12 * 16, kAttMiss, 24, 12};
    case kAprod2Instr:
      return {48 + 24 + 8, 6 * 16, kInstrMiss, 12, 6};
    case kAprod2Glob:
      return {8 + 8, 0, 0, 2, 1};
  }
  throw Error("unknown kernel id");
}

// Gather miss factor of the instrumental kernels under the sliced
// layout: sigma-window sorting by first instrumental column clusters
// rows that scatter/gather nearby x entries, roughly halving the
// irregular-access miss rate (the SELL-C-sigma effect).
constexpr double kInstrMissSliced = 0.45;

/// Exact coefficient bytes of a kernel's block, and the cache lines the
/// seed AoS record fetch actually touches for it. The 24-double record
/// is 3 lines: [0,8) holds astro + the first att doubles, [8,16) att,
/// [16,24) the att tail + instr + glob. Astro reads line 0 (64 B for
/// 40 B of payload); attitude straddles all three (192 B for 96 B);
/// instrumental and global each sit inside line 2.
struct CoeffBlock {
  double exact;
  double seed_lines;
};

CoeffBlock coeff_block(KernelId id) {
  using enum KernelId;
  switch (id) {
    case kAprod1Astro:
    case kAprod2Astro:
      return {40, 64};
    case kAprod1Att:
    case kAprod2Att:
      return {96, 192};
    case kAprod1Instr:
    case kAprod2Instr:
      return {48, 64};
    case kAprod1Glob:
    case kAprod2Glob:
      return {8, 64};
  }
  throw Error("unknown kernel id");
}

/// Distinct target columns of an atomic kernel.
double distinct_columns(KernelId id, const ProblemShape& p) {
  switch (id) {
    case KernelId::kAprod2Att:
      return static_cast<double>(std::max<col_index>(1, p.n_att_params));
    case KernelId::kAprod2Instr:
      return static_cast<double>(std::max<col_index>(1, p.n_instr_params));
    case KernelId::kAprod2Glob:
      return 1.0;
    default:
      return 1.0;
  }
}

bool kernel_active(KernelId id, const ProblemShape& p,
                   const ExecutionPlan& plan) {
  if (id == KernelId::kAprod1Glob || id == KernelId::kAprod2Glob)
    return plan.solve_global && p.n_glob_params > 0;
  return true;
}

}  // namespace

double KernelCostModel::kernel_traffic_bytes(KernelId id,
                                             const ProblemShape& p) const {
  const KernelShapeInfo info = shape_info(id);
  const double rows = static_cast<double>(p.n_rows);
  return rows * (info.per_row_bytes + info.gather_bytes * info.miss);
}

namespace {

/// Shared body of layout_traffic_bytes / precision_traffic_bytes:
/// `coef_scale` is the storage-scalar size over sizeof(real) (1 for
/// fp64, 1/2 fp32, 1/4 bf16s). Only the coefficient stream scales —
/// indices, permutations and the FP64 x/y gathers are precision-
/// invariant.
double traffic_bytes_impl(KernelId id, const ProblemShape& p,
                          backends::StorageLayout layout,
                          double coef_scale) {
  using backends::StorageLayout;
  const KernelShapeInfo info = shape_info(id);
  const double rows = static_cast<double>(std::max<row_index>(1, p.n_rows));
  const CoeffBlock cb = coeff_block(id);
  // Index payload + y traffic: everything in per_row_bytes that is not
  // the coefficient block itself.
  double idx_y = info.per_row_bytes - cb.exact;
  const bool instr =
      id == KernelId::kAprod1Instr || id == KernelId::kAprod2Instr;
  const auto padded_to = [rows](double granule) {
    return std::ceil(rows / granule) * granule;
  };

  double coeff_total = 0.0;
  double miss = info.miss;
  switch (layout) {
    case StorageLayout::kSeedAos:
      // The shrunken record still fetches line-granular: scale the line
      // coverage but never below one 64 B line per row touched.
      coeff_total = rows * std::max(64.0, cb.seed_lines * coef_scale);
      break;
    case StorageLayout::kSoaTiled:
      coeff_total = padded_to(static_cast<double>(matrix::kSoaTileRows)) *
                    cb.exact * coef_scale;
      break;
    case StorageLayout::kSlicedInstr:
      if (instr) {
        // Lane-major slices: 6 coefficients + 6 int32 columns + the row
        // index per lane, padded lanes included. The int32 payload
        // replaces the seed's 24 B instr_col read, so drop it from
        // idx_y.
        const double lanes =
            padded_to(static_cast<double>(matrix::kSliceHeight));
        coeff_total =
            lanes * (6.0 * (sizeof(real) * coef_scale +
                            sizeof(std::int32_t)) +
                     sizeof(row_index));
        idx_y -= 6.0 * sizeof(std::int32_t);
        miss = kInstrMissSliced;
      } else {
        // Non-instrumental kernels run the SoA streams under this
        // layout (kSlicedInstr implies SoA for the regular blocks).
        coeff_total = padded_to(static_cast<double>(matrix::kSoaTileRows)) *
                      cb.exact * coef_scale;
      }
      break;
  }
  return coeff_total + rows * (idx_y + info.gather_bytes * miss);
}

/// Amortized refinement surcharge of a storage precision: reduced
/// precision perturbs A, so the solve needs outer FP64 residual
/// corrections (each a pair of full-precision aprod passes plus a short
/// correction solve). Spread over the ~100-iteration production solve,
/// fp32's typical 1–2 corrections cost ~5 % extra traffic and bf16s's
/// 3–5 corrections ~15 % — the crossover constants, not testbed
/// numbers.
double refinement_surcharge(backends::Precision precision) {
  switch (precision) {
    case backends::Precision::kFp64:
      return 0.0;
    case backends::Precision::kFp32:
      return 0.05;
    case backends::Precision::kBf16s:
      return 0.15;
  }
  return 0.0;
}

}  // namespace

double KernelCostModel::layout_traffic_bytes(
    KernelId id, const ProblemShape& p,
    backends::StorageLayout layout) const {
  return traffic_bytes_impl(id, p, layout, 1.0);
}

double KernelCostModel::precision_traffic_bytes(
    KernelId id, const ProblemShape& p, backends::StorageLayout layout,
    backends::Precision precision) const {
  const double scale =
      static_cast<double>(matrix::precision_bytes(precision)) /
      static_cast<double>(sizeof(real));
  return traffic_bytes_impl(id, p, layout, scale);
}

backends::Precision KernelCostModel::preferred_precision(
    KernelId id, const ProblemShape& p,
    backends::StorageLayout layout) const {
  auto best = backends::Precision::kFp64;
  double best_bytes = precision_traffic_bytes(id, p, layout, best);
  for (int pr = 1; pr < backends::kNumPrecisions; ++pr) {
    const auto cand = static_cast<backends::Precision>(pr);
    const double bytes = precision_traffic_bytes(id, p, layout, cand) *
                         (1.0 + refinement_surcharge(cand));
    if (bytes < best_bytes) {
      best = cand;
      best_bytes = bytes;
    }
  }
  return best;
}

backends::StorageLayout KernelCostModel::preferred_layout(
    KernelId id, const ProblemShape& p) const {
  auto best = backends::StorageLayout::kSeedAos;
  double best_bytes = layout_traffic_bytes(id, p, best);
  for (int l = 1; l < backends::kNumStorageLayouts; ++l) {
    const auto cand = static_cast<backends::StorageLayout>(l);
    const double bytes = layout_traffic_bytes(id, p, cand);
    if (bytes < best_bytes) {
      best = cand;
      best_bytes = bytes;
    }
  }
  return best;
}

double KernelCostModel::kernel_flops(KernelId id,
                                     const ProblemShape& p) const {
  return static_cast<double>(p.n_rows) * shape_info(id).flops_per_row;
}

double KernelCostModel::shape_efficiency(KernelConfig cfg) const {
  const KernelConfig c = resolve(KernelId::kAprod1Astro, cfg);
  const double t = std::max(1, c.threads);
  const double pref = std::max(1, spec_.preferred_threads);
  const double ratio = std::abs(std::log2(t / pref));
  // Calibrated so 256 threads on a 32-preferring platform gives ~0.67,
  // matching the PSTL efficiency the paper reports on T4/V100.
  return 1.0 / (1.0 + 0.055 * ratio * ratio);
}

double KernelCostModel::lane_utilization(KernelConfig cfg) const {
  const KernelConfig c = resolve(KernelId::kAprod1Astro, cfg);
  const double lanes = static_cast<double>(c.total_threads());
  return std::min(1.0, std::sqrt(lanes / kSaturationLanes));
}

KernelConfig KernelCostModel::resolve(KernelId id, KernelConfig cfg) const {
  if (!cfg.is_default()) return cfg;
  return tuned_table().get(id);
}

TuningTable KernelCostModel::tuned_table() const {
  TuningTable t;
  // Wide gather kernels: enough lanes to saturate HBM at the platform's
  // preferred block size.
  const std::int32_t threads = spec_.preferred_threads;
  const std::int32_t wide_blocks = static_cast<std::int32_t>(
      std::max<std::int64_t>(64, spec_.max_concurrent_lanes / threads));
  const KernelConfig wide{wide_blocks, threads};
  t.set(KernelId::kAprod1Astro, wide);
  t.set(KernelId::kAprod1Att, wide);
  t.set(KernelId::kAprod1Instr, wide);
  t.set(KernelId::kAprod1Glob, wide);
  t.set(KernelId::kAprod2Astro, wide);
  // Atomic kernels run narrower (paper SIV: fewer blocks/threads where
  // atomics collide) but still wide enough to saturate HBM — the tuned
  // sweet spot between bandwidth and collision pressure.
  const std::int32_t narrow_blocks = static_cast<std::int32_t>(
      std::max<std::int64_t>(
          8, static_cast<std::int64_t>(kSaturationLanes) / threads));
  const KernelConfig narrow{narrow_blocks, threads};
  t.set(KernelId::kAprod2Att, narrow);
  t.set(KernelId::kAprod2Instr, narrow);
  // The (inactive in production) global scatter hits a single column:
  // minimal lanes.
  t.set(KernelId::kAprod2Glob, {8, 32});
  return t;
}

double KernelCostModel::atomic_seconds(KernelId id, const ProblemShape& p,
                                       KernelConfig cfg, AtomicMode mode,
                                       backends::CoherenceMode coherence)
    const {
  const KernelShapeInfo info = shape_info(id);
  if (info.atomic_updates_per_row == 0) return 0.0;

  const KernelConfig c = resolve(id, cfg);
  // The privatized path executes no atomics; its scratch-reduction cost
  // is priced by privatized_seconds instead.
  if (c.strategy == backends::ScatterStrategy::kPrivatized) return 0.0;
  const double lanes = static_cast<double>(std::max<std::int64_t>(
      1, std::min<std::int64_t>(c.total_threads(),
                                spec_.max_concurrent_lanes)));
  const double cols = distinct_columns(id, p);
  const double updates =
      static_cast<double>(p.n_rows) * info.atomic_updates_per_row;
  const double conflict = lanes / cols;

  double cost_ns;
  double effective_updates = updates;
  if (mode == AtomicMode::kNativeRmw) {
    cost_ns = spec_.atomic_rmw_ns *
              (1.0 + kRmwConflictCoef * std::min(conflict, kRmwConflictCap));
    effective_updates /= kRmwAggregation;
  } else {
    cost_ns = kCasBaseFactor * spec_.atomic_rmw_ns *
              (1.0 + spec_.atomic_cas_retry *
                         std::min(conflict, kCasConflictCap));
  }
  if (coherence == backends::CoherenceMode::kFineGrain)
    cost_ns *= kFineGrainAtomicFactor;
  const double commit_parallelism = std::max(1.0, std::min(lanes, cols));
  return effective_updates * cost_ns * 1e-9 / commit_parallelism;
}

double KernelCostModel::privatized_seconds(KernelId id, const ProblemShape& p,
                                           KernelConfig cfg) const {
  const KernelShapeInfo info = shape_info(id);
  if (info.atomic_updates_per_row == 0) return 0.0;

  const KernelConfig c = resolve(id, cfg);
  // Worker count mirrors Exec::scatter_workers: one private slice per
  // block, capped so scratch stays bounded.
  const double workers = static_cast<double>(std::clamp<std::int32_t>(
      std::max<std::int32_t>(1, c.blocks), 1, backends::kMaxScatterWorkers));
  const double section = distinct_columns(id, p);
  // Zero-fill (1 write pass) + pairwise tree fold (~1 read + ~1 write
  // pass over the slices in total): ~3 streaming passes over W*section
  // doubles. Contiguous slices stream at full (non-SpMV) efficiency.
  const double scratch_bytes = 3.0 * workers * section * sizeof(real);
  const double scratch_s =
      scratch_bytes / (spec_.peak_bw_gbs * 1e9 * kStreamEff);
  // One launch per fold level plus the final fold-into-x launch.
  const double levels = static_cast<double>(
      std::bit_width(static_cast<std::uint32_t>(workers)) );
  return scratch_s + (levels + 1.0) * spec_.launch_overhead_us * 1e-6;
}

backends::ScatterStrategy KernelCostModel::preferred_strategy(
    KernelId id, const ProblemShape& p, KernelConfig cfg, AtomicMode mode,
    backends::CoherenceMode coherence) const {
  if (!backends::kernel_uses_atomics(id))
    return backends::ScatterStrategy::kAtomic;
  KernelConfig atomic_cfg = resolve(id, cfg);
  atomic_cfg.strategy = backends::ScatterStrategy::kAtomic;
  const double atomic_s = atomic_seconds(id, p, atomic_cfg, mode, coherence);
  const double priv_s = privatized_seconds(id, p, atomic_cfg);
  return priv_s < atomic_s ? backends::ScatterStrategy::kPrivatized
                           : backends::ScatterStrategy::kAtomic;
}

double KernelCostModel::kernel_seconds(KernelId id, const ProblemShape& p,
                                       KernelConfig cfg, AtomicMode mode,
                                       backends::CoherenceMode coherence)
    const {
  const KernelConfig c = resolve(id, cfg);
  const double coherence_bw =
      coherence == backends::CoherenceMode::kFineGrain ? kFineGrainBwFactor
                                                       : 1.0;
  const double bw = spec_.peak_bw_gbs * 1e9 * spec_.spmv_bw_efficiency *
                    shape_efficiency(c) * lane_utilization(c) * coherence_bw;
  const double mem_s = kernel_traffic_bytes(id, p) / bw;
  const double flop_s = kernel_flops(id, p) / (spec_.fp64_tflops * 1e12);
  const double scatter_s =
      c.strategy == backends::ScatterStrategy::kPrivatized
          ? privatized_seconds(id, p, c)
          : atomic_seconds(id, p, c, mode, coherence);
  return std::max(mem_s, flop_s) + scatter_s +
         spec_.launch_overhead_us * 1e-6;
}

double KernelCostModel::iteration_seconds(const ProblemShape& p,
                                          const ExecutionPlan& plan) const {
  using enum KernelId;
  const double launch_s = spec_.launch_overhead_us * 1e-6;

  // aprod1: the four gathers share y and run back to back. They are all
  // bandwidth-bound on the same HBM, so their memory times add.
  double aprod1 = 0.0;
  for (KernelId id : {kAprod1Astro, kAprod1Att, kAprod1Instr, kAprod1Glob}) {
    if (!kernel_active(id, p, plan)) continue;
    aprod1 += kernel_seconds(id, p, plan.tuning.get(id), plan.atomic_mode,
                             plan.coherence);
  }

  // aprod2: the scatters target disjoint sections, so streams may
  // overlap them — but overlapping bandwidth-bound kernels does not buy
  // bandwidth. What streams actually hide is (a) the latency-bound
  // atomic serialization phases, which overlap with the other kernels'
  // memory traffic, and (b) all but one launch gap.
  double mem_sum = 0.0, atomic_sum = 0.0, atomic_max = 0.0;
  int active = 0;
  for (KernelId id : {kAprod2Astro, kAprod2Att, kAprod2Instr, kAprod2Glob}) {
    if (!kernel_active(id, p, plan)) continue;
    ++active;
    const KernelConfig c = resolve(id, plan.tuning.get(id));
    const double coherence_bw =
        plan.coherence == backends::CoherenceMode::kFineGrain
            ? kFineGrainBwFactor
            : 1.0;
    const double bw = spec_.peak_bw_gbs * 1e9 * spec_.spmv_bw_efficiency *
                      shape_efficiency(c) * lane_utilization(c) *
                      coherence_bw;
    const double mem_s = std::max(
        kernel_traffic_bytes(id, p) / bw,
        kernel_flops(id, p) / (spec_.fp64_tflops * 1e12));
    const double atm_s =
        atomic_seconds(id, p, c, plan.atomic_mode, plan.coherence);
    // Privatized scratch traffic is bandwidth, not latency: streams
    // cannot hide it behind the other kernels' memory phases.
    const double priv_s =
        c.strategy == backends::ScatterStrategy::kPrivatized
            ? privatized_seconds(id, p, c)
            : 0.0;
    mem_sum += mem_s + priv_s;
    atomic_sum += atm_s;
    atomic_max = std::max(atomic_max, atm_s);
  }
  const double aprod2 =
      plan.use_streams
          ? std::max(mem_sum, atomic_max) + launch_s
          : mem_sum + atomic_sum + active * launch_s;

  // BLAS-1 vector work of the LSQR recurrences: u is touched ~4x per
  // iteration (scale, accumulate, norm, normalize), v/w/x ~6x.
  const double vec_bytes =
      4.0 * static_cast<double>(p.n_rows) * sizeof(real) +
      6.0 * 3.0 * static_cast<double>(p.n_unknowns()) * sizeof(real);
  const double vec_s =
      vec_bytes / (spec_.peak_bw_gbs * 1e9 * kStreamEff) +
      4.0 * spec_.launch_overhead_us * 1e-6;

  return aprod1 + aprod2 + vec_s + kIterationOverheadS;
}

}  // namespace gaia::perfmodel
