/// \file simulator.hpp
/// \brief Framework x platform x problem-size "measurement" campaign.
///
/// Reproduces the paper's experimental protocol on the analytical
/// platform model: for every framework+compiler combination and every
/// platform, check support (toolchain vendor coverage + device memory
/// capacity), then produce the average LSQR iteration time over N
/// iterations with a small deterministic run-to-run jitter (the paper
/// averages 100 iterations and repeats 3 times).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "metrics/efficiency.hpp"
#include "perfmodel/cost_model.hpp"
#include "perfmodel/framework.hpp"

namespace gaia::perfmodel {

struct SimulationResult {
  Framework framework;
  Platform platform;
  double problem_gb = 0;
  bool supported = false;
  std::string unsupported_reason;
  double mean_iteration_s = 0;
  double stddev_iteration_s = 0;
  std::vector<double> iteration_samples;
};

struct SimulatorOptions {
  int iterations = 100;        ///< paper: 100 LSQR iterations
  int repetitions = 3;         ///< paper: 3 repeats
  double jitter_fraction = 0.01;  ///< run-to-run noise (1 sigma)
  std::uint64_t seed = 0x70337033ull;
  bool solve_global = false;   ///< production leaves gamma out (SV-C)
};

class PlatformSimulator {
 public:
  explicit PlatformSimulator(SimulatorOptions options = {});

  [[nodiscard]] const SimulatorOptions& options() const { return options_; }

  /// Does this framework run this problem on this platform? Returns the
  /// reason when not (vendor toolchain, or device memory).
  [[nodiscard]] std::optional<std::string> unsupported_reason(
      Framework f, Platform p, byte_size footprint) const;

  /// One measurement campaign cell.
  [[nodiscard]] SimulationResult run(Framework f, Platform p,
                                     byte_size footprint) const;

  /// Deterministic noise-free iteration time (model output).
  [[nodiscard]] double model_iteration_seconds(Framework f, Platform p,
                                               byte_size footprint) const;

  /// Full campaign: all frameworks x all platforms at one size, as a
  /// metrics::PerformanceMatrix (unsupported cells marked).
  [[nodiscard]] metrics::PerformanceMatrix measure_campaign(
      byte_size footprint) const;
  [[nodiscard]] metrics::PerformanceMatrix measure_campaign(
      byte_size footprint, const std::vector<Framework>& frameworks,
      const std::vector<Platform>& platforms) const;

  /// Device memory needed for the solver at this footprint (system +
  /// solver vectors), used by the capacity check.
  [[nodiscard]] static byte_size device_bytes_needed(byte_size footprint);

 private:
  SimulatorOptions options_;
};

/// Names of the NVIDIA platforms (the paper's CUDA-only P subset).
[[nodiscard]] std::vector<std::string> nvidia_platform_names();

/// The platform set H for a problem size: every platform whose device
/// memory fits the problem (the paper evaluates each size on exactly
/// this set — 5 platforms at 10 GB, 4 at 30 GB, 2 at 60 GB).
[[nodiscard]] std::vector<Platform> platforms_for_size(byte_size footprint);
[[nodiscard]] std::vector<std::string> platform_names(
    const std::vector<Platform>& platforms);

}  // namespace gaia::perfmodel
