#include "perfmodel/simulator.hpp"

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_utils.hpp"

namespace gaia::perfmodel {

PlatformSimulator::PlatformSimulator(SimulatorOptions options)
    : options_(options) {
  GAIA_CHECK(options_.iterations > 0, "need at least one iteration");
  GAIA_CHECK(options_.repetitions > 0, "need at least one repetition");
}

byte_size PlatformSimulator::device_bytes_needed(byte_size footprint) {
  const ProblemShape shape = ProblemShape::from_footprint(footprint);
  // System data + the five solver vectors (u on rows; v, w, x, var on
  // unknowns).
  const byte_size vectors =
      static_cast<byte_size>(shape.n_rows) * sizeof(real) +
      4ull * static_cast<byte_size>(shape.n_unknowns()) * sizeof(real);
  return shape.footprint_bytes + vectors;
}

std::optional<std::string> PlatformSimulator::unsupported_reason(
    Framework f, Platform p, byte_size footprint) const {
  const GpuSpec& spec = gpu_spec(p);
  const FrameworkTraits& traits = framework_traits(f);
  if (!traits.runs_on(spec.vendor)) {
    return traits.name + " has no " +
           (spec.vendor == Vendor::kAmd ? std::string("AMD")
                                        : std::string("NVIDIA")) +
           " toolchain";
  }
  const byte_size needed = device_bytes_needed(footprint);
  const auto capacity =
      static_cast<byte_size>(spec.mem_capacity_gb * static_cast<double>(kGiB));
  if (needed > capacity) {
    return "problem needs " + util::format_bytes(needed) + " but " +
           spec.name + " has " + util::format_bytes(capacity);
  }
  return std::nullopt;
}

double PlatformSimulator::model_iteration_seconds(
    Framework f, Platform p, byte_size footprint) const {
  const GpuSpec& spec = gpu_spec(p);
  const ProblemShape shape = ProblemShape::from_footprint(footprint);
  ExecutionPlan plan = execution_plan(f, spec);
  plan.solve_global = options_.solve_global;
  const KernelCostModel model(spec);
  const double structural = model.iteration_seconds(shape, plan);
  const double residual =
      residual_efficiency(f, p, size_class_of(shape.gigabytes()));
  return structural / residual;
}

SimulationResult PlatformSimulator::run(Framework f, Platform p,
                                        byte_size footprint) const {
  SimulationResult result;
  result.framework = f;
  result.platform = p;
  result.problem_gb =
      static_cast<double>(footprint) / static_cast<double>(kGiB);

  if (const auto reason = unsupported_reason(f, p, footprint)) {
    result.supported = false;
    result.unsupported_reason = *reason;
    return result;
  }
  result.supported = true;

  const double base = model_iteration_seconds(f, p, footprint);
  // Deterministic per-cell noise stream (seed mixes the campaign seed
  // with the cell coordinates).
  util::Xoshiro256 rng(options_.seed ^
                       (static_cast<std::uint64_t>(f) << 32) ^
                       (static_cast<std::uint64_t>(p) << 40) ^
                       footprint);
  const int total =
      options_.iterations * options_.repetitions;
  result.iteration_samples.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    const double noise = 1.0 + options_.jitter_fraction * rng.normal();
    result.iteration_samples.push_back(base * std::max(0.5, noise));
  }
  result.mean_iteration_s = util::mean(result.iteration_samples);
  result.stddev_iteration_s = util::stddev(result.iteration_samples);
  return result;
}

metrics::PerformanceMatrix PlatformSimulator::measure_campaign(
    byte_size footprint) const {
  return measure_campaign(footprint, all_frameworks(), all_platforms());
}

metrics::PerformanceMatrix PlatformSimulator::measure_campaign(
    byte_size footprint, const std::vector<Framework>& frameworks,
    const std::vector<Platform>& platforms) const {
  std::vector<std::string> app_names, plat_names;
  for (Framework f : frameworks) app_names.push_back(to_string(f));
  for (Platform p : platforms) plat_names.push_back(to_string(p));
  metrics::PerformanceMatrix m(app_names, plat_names);
  for (std::size_t a = 0; a < frameworks.size(); ++a) {
    for (std::size_t p = 0; p < platforms.size(); ++p) {
      const SimulationResult r = run(frameworks[a], platforms[p], footprint);
      if (r.supported) m.set_time(a, p, r.mean_iteration_s);
    }
  }
  return m;
}

std::vector<Platform> platforms_for_size(byte_size footprint) {
  const byte_size needed = PlatformSimulator::device_bytes_needed(footprint);
  std::vector<Platform> fits;
  for (Platform p : all_platforms()) {
    const auto capacity = static_cast<byte_size>(
        gpu_spec(p).mem_capacity_gb * static_cast<double>(kGiB));
    if (needed <= capacity) fits.push_back(p);
  }
  return fits;
}

std::vector<std::string> platform_names(
    const std::vector<Platform>& platforms) {
  std::vector<std::string> names;
  names.reserve(platforms.size());
  for (Platform p : platforms) names.push_back(to_string(p));
  return names;
}

std::vector<std::string> nvidia_platform_names() {
  std::vector<std::string> names;
  for (Platform p : all_platforms())
    if (gpu_spec(p).vendor == Vendor::kNvidia) names.push_back(to_string(p));
  return names;
}

}  // namespace gaia::perfmodel
