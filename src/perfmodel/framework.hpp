/// \file framework.hpp
/// \brief The eight framework + compiler combinations of the study.
///
/// Each combination is modelled by how it *structurally* executes the
/// solver (can it tune launch shapes? what does its compiler lower FP
/// atomics to on each vendor? can it overlap kernels in streams?) plus a
/// residual per-platform efficiency transcribed from the paper's
/// measurements (compiler maturity effects we cannot derive from first
/// principles — e.g. DPC++'s NVPTX code generation quality).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "perfmodel/cost_model.hpp"
#include "perfmodel/gpu_spec.hpp"

namespace gaia::perfmodel {

enum class Framework : std::uint8_t {
  kCuda = 0,
  kHip,
  kOmpLlvm,     ///< OpenMP offload, base clang
  kOmpVendor,   ///< OpenMP offload, nvc++ / amdclang++
  kPstlAcpp,    ///< C++ PSTL, AdaptiveCpp --acpp-stdpar
  kPstlVendor,  ///< C++ PSTL, nvc++ -stdpar / clang++ --hipstdpar
  kSyclAcpp,    ///< SYCL, AdaptiveCpp
  kSyclDpcpp,   ///< SYCL, DPC++
};
inline constexpr int kNumFrameworks = 8;

[[nodiscard]] std::string to_string(Framework f);
[[nodiscard]] std::optional<Framework> parse_framework(
    const std::string& name);
[[nodiscard]] const std::vector<Framework>& all_frameworks();

/// Compiler (name + flags) per vendor — regenerates the paper's Tables
/// I-III provenance info.
struct CompilerInfo {
  std::string compiler;
  std::string version;
  std::string flags;
};

struct FrameworkTraits {
  Framework framework;
  std::string name;          ///< plot label, e.g. "SYCL+ACPP"
  bool runs_on_nvidia;
  bool runs_on_amd;
  /// Launch shapes can be tuned per kernel/platform (CUDA/HIP/SYCL and,
  /// via num_teams/thread_limit, OpenMP — but not C++ PSTL, SIV-e).
  bool tunable;
  /// Fixed threads-per-block when not tunable (nsys showed 256 for
  /// stdpar on every architecture, SV-B).
  std::int32_t fixed_threads;
  /// Can overlap independent kernels (streams / queues); PSTL cannot.
  bool supports_streams;

  [[nodiscard]] bool runs_on(Vendor v) const {
    return v == Vendor::kNvidia ? runs_on_nvidia : runs_on_amd;
  }
};

const FrameworkTraits& framework_traits(Framework f);

/// FP-atomic lowering this framework+compiler emits on a vendor: the
/// paper found clang-based OpenMP and DPC++ unable to emit native RMW on
/// MI250X (`-munsafe-fp-atomics` unsupported), falling back to CAS loops
/// (SV-B). Everything emits native RMW on NVIDIA.
[[nodiscard]] AtomicMode atomic_lowering(Framework f, Vendor v);

/// Compiler provenance (paper Tables I-III).
[[nodiscard]] CompilerInfo compiler_info(Framework f, Vendor v);

/// Residual efficiency factor (0..1] for framework f on platform p at
/// size class s (0: ~10 GB, 1: ~30 GB, 2: ~60 GB) — calibration
/// transcribed from the paper's Fig. 5 after the structural model terms
/// are accounted for. 1.0 = fully explained by structure.
[[nodiscard]] double residual_efficiency(Framework f, Platform p,
                                         int size_class);

/// Size class from a problem footprint.
[[nodiscard]] int size_class_of(double gigabytes);

/// The execution plan framework f uses on platform p (tuned table or
/// fixed shape, atomic lowering, stream capability).
[[nodiscard]] ExecutionPlan execution_plan(Framework f, const GpuSpec& spec);

}  // namespace gaia::perfmodel
