/// \file pennycook.hpp
/// \brief The P performance-portability metric (paper Eq. 1).
///
///   P(a, p, H) = |H| / sum_{i in H} 1/e_i(a, p)   if a runs on all of H
///   P(a, p, H) = 0                                 otherwise
///
/// i.e. the harmonic mean of the application's efficiency over the
/// platform set, zeroed when any platform is unsupported.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "metrics/efficiency.hpp"

namespace gaia::metrics {

/// P from an efficiency row (0 entries mean unsupported -> P = 0).
double pennycook_p(std::span<const double> efficiencies);

/// Per-application P over all platforms of the matrix, using application
/// efficiency (the paper's choice).
std::vector<double> pennycook_scores(const PerformanceMatrix& m);

/// Per-application P over a platform subset (e.g. NVIDIA-only, which the
/// paper reports for CUDA).
std::vector<double> pennycook_scores(
    const PerformanceMatrix& m,
    const std::vector<std::string>& platform_subset);

}  // namespace gaia::metrics
