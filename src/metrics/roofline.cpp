#include "metrics/roofline.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/perf_counters.hpp"

namespace gaia::metrics {

namespace {

/// Accumulates the fields of one (kernel, backend, strategy) series as
/// the snapshot rows stream past.
struct SeriesAccum {
  std::uint64_t launches = 0;
  double bytes = 0;
  double flops = 0;
  double seconds_p50 = 0;
  std::uint64_t timed = 0;  ///< time_seconds histogram count
};

}  // namespace

double ridge_intensity(const RooflineMachine& machine) {
  const double bw = machine.effective_bw_gbs();
  if (bw <= 0) return 0;
  return machine.peak_gflops / bw;  // GFLOP/s over GB/s = FLOP/byte
}

std::vector<RooflinePoint> roofline_points(
    const std::vector<gaia::obs::MetricRow>& rows,
    const RooflineMachine& machine) {
  std::map<std::string, SeriesAccum> series;
  std::map<std::string, gaia::obs::KernelSeriesName> names;
  for (const gaia::obs::MetricRow& row : rows) {
    gaia::obs::KernelSeriesName parsed;
    if (!gaia::obs::parse_kernel_series(row.name, parsed)) continue;
    const std::string key =
        parsed.kernel + '\n' + parsed.backend + '\n' + parsed.strategy;
    SeriesAccum& acc = series[key];
    names.emplace(key, parsed);
    if (parsed.field == "launches")
      acc.launches = row.count;
    else if (parsed.field == "bytes")
      acc.bytes = row.sum;
    else if (parsed.field == "flops")
      acc.flops = row.sum;
    else if (parsed.field == "time_seconds") {
      acc.seconds_p50 = row.p50;
      acc.timed = row.count;
    }
  }

  const double bw_roof_gbs = machine.effective_bw_gbs();
  std::vector<RooflinePoint> points;
  for (const auto& [key, acc] : series) {
    // A placement needs real traffic and a real timing; autotuner-only
    // series (timed trials without counted launches) and untimed
    // series are skipped.
    if (acc.launches == 0 || acc.timed == 0 || acc.seconds_p50 <= 0)
      continue;
    if (acc.bytes <= 0 && acc.flops <= 0) continue;
    const gaia::obs::KernelSeriesName& name = names.at(key);
    RooflinePoint p;
    p.kernel = name.kernel;
    p.backend = name.backend;
    p.strategy = name.strategy;
    p.launches = acc.launches;
    p.bytes_per_launch = acc.bytes / static_cast<double>(acc.launches);
    p.flops_per_launch = acc.flops / static_cast<double>(acc.launches);
    p.intensity =
        p.bytes_per_launch > 0 ? p.flops_per_launch / p.bytes_per_launch : 0;
    p.seconds_p50 = acc.seconds_p50;
    p.achieved_gflops = p.flops_per_launch / acc.seconds_p50 / 1e9;
    p.achieved_gbs = p.bytes_per_launch / acc.seconds_p50 / 1e9;
    const double bw_ceiling = p.intensity * bw_roof_gbs;
    p.ceiling_gflops = machine.peak_gflops > 0
                           ? std::min(machine.peak_gflops, bw_ceiling)
                           : bw_ceiling;
    p.fraction_of_ceiling =
        p.ceiling_gflops > 0 ? p.achieved_gflops / p.ceiling_gflops : 0;
    p.memory_bound = p.intensity < ridge_intensity(machine);
    points.push_back(std::move(p));
  }
  std::sort(points.begin(), points.end(),
            [](const RooflinePoint& a, const RooflinePoint& b) {
              return std::tie(a.kernel, a.backend, a.strategy) <
                     std::tie(b.kernel, b.backend, b.strategy);
            });
  return points;
}

void publish_roofline_gauges(const std::vector<RooflinePoint>& points) {
  auto& reg = gaia::obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  for (const RooflinePoint& p : points) {
    const auto gauge = [&](const char* field, double value) {
      reg.gauge(gaia::obs::kernel_series_name(p.kernel, p.backend, p.strategy,
                                              field))
          .set(value);
    };
    gauge("roofline_intensity", p.intensity);
    gauge("roofline_achieved_gflops", p.achieved_gflops);
    gauge("roofline_achieved_gbs", p.achieved_gbs);
    gauge("roofline_fraction_of_ceiling", p.fraction_of_ceiling);
    gauge("roofline_memory_bound", p.memory_bound ? 1.0 : 0.0);
  }
}

std::string roofline_table(const std::vector<RooflinePoint>& points,
                           const RooflineMachine& machine) {
  if (points.empty()) return "";
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof line,
                "roofline vs %s (bw %.0f GB/s x %.2f, peak %.0f GFLOP/s, "
                "ridge %.3f FLOP/B)\n",
                machine.name.c_str(), machine.peak_bw_gbs,
                machine.bw_efficiency, machine.peak_gflops,
                ridge_intensity(machine));
  os << line;
  std::snprintf(line, sizeof line, "  %-12s %-8s %-10s %9s %10s %10s %8s %s\n",
                "kernel", "backend", "strategy", "I[F/B]", "GFLOP/s", "GB/s",
                "%ceil", "bound");
  os << line;
  for (const RooflinePoint& p : points) {
    std::snprintf(line, sizeof line,
                  "  %-12s %-8s %-10s %9.4f %10.3f %10.3f %7.1f%% %s\n",
                  p.kernel.c_str(), p.backend.c_str(), p.strategy.c_str(),
                  p.intensity, p.achieved_gflops, p.achieved_gbs,
                  100.0 * p.fraction_of_ceiling,
                  p.memory_bound ? "memory" : "compute");
    os << line;
  }
  return std::move(os).str();
}

}  // namespace gaia::metrics
