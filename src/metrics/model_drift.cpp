#include "metrics/model_drift.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace gaia::metrics {

ModelDriftReport::ModelDriftReport(std::vector<KernelDrift> rows) {
  for (const KernelDrift& r : rows) {
    total_predicted_ += r.predicted_s;
    total_measured_ += r.measured_s;
  }
  rows_.reserve(rows.size());
  for (const KernelDrift& r : rows) {
    KernelDriftRow out;
    out.kernel = r.kernel;
    out.predicted_s = r.predicted_s;
    out.measured_s = r.measured_s;
    out.ratio = r.predicted_s > 0 ? r.measured_s / r.predicted_s : 0;
    out.predicted_share =
        total_predicted_ > 0 ? r.predicted_s / total_predicted_ : 0;
    out.measured_share =
        total_measured_ > 0 ? r.measured_s / total_measured_ : 0;
    out.share_drift_pp =
        (out.measured_share - out.predicted_share) * 100.0;
    rows_.push_back(std::move(out));
  }
}

double ModelDriftReport::mean_abs_share_drift_pp() const {
  if (rows_.empty()) return 0;
  double sum = 0;
  for (const auto& r : rows_) sum += std::abs(r.share_drift_pp);
  return sum / static_cast<double>(rows_.size());
}

double ModelDriftReport::max_abs_share_drift_pp() const {
  double worst = 0;
  for (const auto& r : rows_)
    worst = std::max(worst, std::abs(r.share_drift_pp));
  return worst;
}

std::string ModelDriftReport::csv() const {
  std::ostringstream os;
  os << "kernel,predicted_s,measured_s,ratio,predicted_share,"
        "measured_share,share_drift_pp\n";
  os.precision(9);
  for (const auto& r : rows_) {
    os << r.kernel << ',' << r.predicted_s << ',' << r.measured_s << ','
       << r.ratio << ',' << r.predicted_share << ',' << r.measured_share
       << ',' << r.share_drift_pp << '\n';
  }
  return os.str();
}

void ModelDriftReport::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  GAIA_CHECK(f.good(), "cannot open drift report output: " + path);
  f << csv();
  GAIA_CHECK(f.good(), "drift report write failed: " + path);
}

std::string ModelDriftReport::markdown(const std::string& title) const {
  std::ostringstream os;
  if (!title.empty()) os << "### " << title << "\n\n";
  os << "| kernel | predicted (ms) | measured (ms) | ratio | predicted "
        "share | measured share | drift (pp) |\n";
  os << "|---|---|---|---|---|---|---|\n";
  os << std::fixed;
  for (const auto& r : rows_) {
    os << "| " << r.kernel << " | " << std::setprecision(3)
       << r.predicted_s * 1e3 << " | " << r.measured_s * 1e3 << " | "
       << std::setprecision(2) << r.ratio << " | " << std::setprecision(1)
       << r.predicted_share * 100 << " % | " << r.measured_share * 100
       << " % | " << std::showpos << r.share_drift_pp << std::noshowpos
       << " |\n";
  }
  os << "\nmean |share drift| = " << std::setprecision(1)
     << mean_abs_share_drift_pp() << " pp, max = " << max_abs_share_drift_pp()
     << " pp\n";
  return os.str();
}

}  // namespace gaia::metrics
