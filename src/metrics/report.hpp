/// \file report.hpp
/// \brief Self-contained campaign reports (markdown / CSV bundle).
///
/// Renders one measurement campaign — times, application efficiencies,
/// cascades and P scores — as a markdown document, the library analog of
/// the paper's result section for a given problem size. Benches and
/// downstream pipelines persist these next to the raw CSVs.
#pragma once

#include <string>

#include "metrics/cascade.hpp"
#include "metrics/efficiency.hpp"

namespace gaia::metrics {

struct ReportOptions {
  std::string title = "Performance-portability campaign";
  /// Free-form context line (problem size, seed, platform set...).
  std::string subtitle;
  /// Platform subset for the secondary P column (e.g. NVIDIA-only);
  /// empty = omit the column.
  std::vector<std::string> secondary_subset;
  std::string secondary_subset_label = "P (subset)";
};

/// Markdown report: iteration-time table, efficiency table, P summary,
/// and per-application cascade listings.
std::string markdown_report(const PerformanceMatrix& m,
                            const ReportOptions& options = {});

}  // namespace gaia::metrics
