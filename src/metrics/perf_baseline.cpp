#include "metrics/perf_baseline.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace gaia::metrics {

const KernelTiming* PerfBaseline::find(const std::string& kernel,
                                       const std::string& backend,
                                       const std::string& strategy,
                                       const std::string& layout,
                                       const std::string& precision) const {
  for (const KernelTiming& t : kernels)
    if (t.kernel == kernel && t.backend == backend &&
        t.strategy == strategy && t.layout == layout &&
        t.precision == precision)
      return &t;
  return nullptr;
}

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

/// Minimal strict cursor over the baseline grammar (objects, arrays,
/// strings, numbers) — same shape as the tuning-cache reader. Baselines
/// are written by our own tools; anything unexpected is an error, not a
/// guess.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  void consume(char c, const char* what) {
    skip_ws();
    GAIA_CHECK(pos_ < text_.size() && text_[pos_] == c,
               std::string("perf baseline: expected ") + what);
    ++pos_;
  }
  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }
  std::string parse_string() {
    consume('"', "string");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out.push_back(c);
    }
    consume('"', "closing quote");
    return out;
  }
  double parse_number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    GAIA_CHECK(end != start, "perf baseline: expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }
  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

KernelTiming parse_timing(JsonCursor& cur) {
  KernelTiming t;
  cur.consume('{', "'{'");
  bool first = true;
  while (!cur.peek('}')) {
    if (!first) cur.consume(',', "','");
    first = false;
    const std::string key = cur.parse_string();
    cur.consume(':', "':'");
    if (key == "kernel")
      t.kernel = cur.parse_string();
    else if (key == "backend")
      t.backend = cur.parse_string();
    else if (key == "strategy")
      t.strategy = cur.parse_string();
    else if (key == "layout")
      t.layout = cur.parse_string();
    else if (key == "precision")
      t.precision = cur.parse_string();
    else if (key == "median_seconds")
      t.median_seconds = cur.parse_number();
    else if (key == "samples")
      t.samples = static_cast<std::uint64_t>(cur.parse_number());
    else
      GAIA_CHECK(false, "perf baseline: unknown series key '" + key + "'");
  }
  cur.consume('}', "'}'");
  GAIA_CHECK(!t.kernel.empty(), "perf baseline: series without a kernel");
  return t;
}

}  // namespace

std::string PerfBaseline::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"version\": " << kVersion << ",\n  \"name\": ";
  append_escaped(os, name);
  os << ",\n  \"kernels\": [";
  bool first = true;
  for (const KernelTiming& t : kernels) {
    os << (first ? "\n" : ",\n") << "    {\"kernel\": ";
    append_escaped(os, t.kernel);
    os << ", \"backend\": ";
    append_escaped(os, t.backend);
    os << ", \"strategy\": ";
    append_escaped(os, t.strategy);
    os << ", \"layout\": ";
    append_escaped(os, t.layout);
    os << ", \"precision\": ";
    append_escaped(os, t.precision);
    os << ", \"median_seconds\": " << t.median_seconds
       << ", \"samples\": " << t.samples << '}';
    first = false;
  }
  os << "\n  ]\n}\n";
  return os.str();
}

PerfBaseline parse_baseline(const std::string& json) {
  JsonCursor cur(json);
  PerfBaseline out;
  bool saw_version = false;
  cur.consume('{', "'{'");
  bool first = true;
  while (!cur.peek('}')) {
    if (!first) cur.consume(',', "','");
    first = false;
    const std::string key = cur.parse_string();
    cur.consume(':', "':'");
    if (key == "version") {
      const int version = static_cast<int>(cur.parse_number());
      GAIA_CHECK(version == PerfBaseline::kVersion,
                 "perf baseline: unsupported version " +
                     std::to_string(version));
      saw_version = true;
    } else if (key == "name") {
      out.name = cur.parse_string();
    } else if (key == "kernels") {
      cur.consume('[', "'['");
      bool first_item = true;
      while (!cur.peek(']')) {
        if (!first_item) cur.consume(',', "','");
        first_item = false;
        out.kernels.push_back(parse_timing(cur));
      }
      cur.consume(']', "']'");
    } else {
      GAIA_CHECK(false, "perf baseline: unknown key '" + key + "'");
    }
  }
  cur.consume('}', "'}'");
  GAIA_CHECK(cur.at_end(), "perf baseline: trailing content");
  GAIA_CHECK(saw_version, "perf baseline: missing version");
  return out;
}

PerfBaseline load_baseline(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  GAIA_CHECK(f.good(), "cannot open perf baseline: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_baseline(buf.str());
}

void save_baseline(const std::string& path, const PerfBaseline& baseline) {
  std::ofstream f(path, std::ios::trunc);
  GAIA_CHECK(f.good(), "cannot open perf baseline for writing: " + path);
  f << baseline.to_json();
  GAIA_CHECK(f.good(), "perf baseline write failed: " + path);
}

std::string GateReport::to_string() const {
  std::ostringstream os;
  const auto line = [&os](const char* tag, const GateFinding& f) {
    os << "  " << tag << ' ' << f.kernel << '/' << f.backend << '/'
       << f.strategy << '/' << f.layout << '/' << f.precision << ": "
       << f.old_seconds << "s -> " << f.new_seconds << "s";
    if (f.ratio > 0) os << " (x" << f.ratio << ')';
    os << '\n';
  };
  for (const GateFinding& f : regressions) line("REGRESSION", f);
  for (const GateFinding& f : missing) line("MISSING", f);
  for (const GateFinding& f : improvements) line("improvement", f);
  os << (pass ? "PASS" : "FAIL") << ": " << regressions.size()
     << " regression(s), " << missing.size() << " missing, "
     << improvements.size() << " improvement(s)\n";
  return os.str();
}

GateReport perf_gate(const PerfBaseline& base, const PerfBaseline& next,
                     const GateOptions& options) {
  GateReport report;
  for (const KernelTiming& old_t : base.kernels) {
    GateFinding f;
    f.kernel = old_t.kernel;
    f.backend = old_t.backend;
    f.strategy = old_t.strategy;
    f.layout = old_t.layout;
    f.precision = old_t.precision;
    f.old_seconds = old_t.median_seconds;
    const KernelTiming* new_t =
        next.find(old_t.kernel, old_t.backend, old_t.strategy, old_t.layout,
                  old_t.precision);
    if (new_t == nullptr) {
      report.missing.push_back(f);
      if (!options.allow_missing) report.pass = false;
      continue;
    }
    f.new_seconds = new_t->median_seconds;
    if (old_t.median_seconds > 0)
      f.ratio = new_t->median_seconds / old_t.median_seconds;
    if (f.ratio > 1.0 + options.tolerance) {
      report.regressions.push_back(f);
      report.pass = false;
    } else if (f.ratio > 0 && f.ratio < 1.0 / (1.0 + options.tolerance)) {
      report.improvements.push_back(f);
    }
  }
  return report;
}

}  // namespace gaia::metrics
