/// \file efficiency.hpp
/// \brief Performance matrices and efficiency definitions.
///
/// Terminology follows Pennycook et al. (the paper's Eq. 1):
/// * *application efficiency* of application a on platform i = (best
///   observed time by ANY application on i) / (a's time on i) — "how
///   close is this port to the fastest known port on this hardware";
/// * *best-platform efficiency* (used by the paper's cascade x-axis
///   narration) = (a's best time across platforms) / (a's time on i).
///
/// Times are seconds; a negative time means "unsupported" (does not run
/// or does not fit), which zeroes the P score by definition.
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"

namespace gaia::metrics {

/// Application x platform time matrix.
class PerformanceMatrix {
 public:
  PerformanceMatrix(std::vector<std::string> applications,
                    std::vector<std::string> platforms);

  [[nodiscard]] std::size_t n_applications() const { return apps_.size(); }
  [[nodiscard]] std::size_t n_platforms() const { return platforms_.size(); }
  [[nodiscard]] const std::vector<std::string>& applications() const {
    return apps_;
  }
  [[nodiscard]] const std::vector<std::string>& platforms() const {
    return platforms_;
  }

  /// Negative marks unsupported.
  void set_time(std::size_t app, std::size_t platform, double seconds);
  [[nodiscard]] double time(std::size_t app, std::size_t platform) const;
  [[nodiscard]] bool supported(std::size_t app, std::size_t platform) const;

  [[nodiscard]] std::size_t app_index(const std::string& name) const;
  [[nodiscard]] std::size_t platform_index(const std::string& name) const;

  /// Restrict to a subset of platforms (e.g. the paper's NVIDIA-only
  /// CUDA score); names must exist.
  [[nodiscard]] PerformanceMatrix subset_platforms(
      const std::vector<std::string>& platform_names) const;

 private:
  std::vector<std::string> apps_;
  std::vector<std::string> platforms_;
  std::vector<double> times_;  // row-major app x platform; <0 unsupported
};

/// e_i(a) = min_a' t(a', i) / t(a, i); 0 where unsupported. A platform
/// where no application runs yields 0 for everyone.
std::vector<std::vector<double>> application_efficiency(
    const PerformanceMatrix& m);

/// e_i(a) = min_i' t(a, i') / t(a, i); 0 where unsupported.
std::vector<std::vector<double>> best_platform_efficiency(
    const PerformanceMatrix& m);

}  // namespace gaia::metrics
