/// \file perf_baseline.hpp
/// \brief Benchmark baselines and the perf-regression gate.
///
/// A baseline file (`BENCH_<name>.json`, plain human-diffable JSON — no
/// CRC framing, these live in git and get reviewed) records the median
/// launch time of each (kernel, backend, strategy) series a benchmark
/// measured. `perf_gate` compares a new run against a stored baseline
/// and fails when any series slowed down beyond the tolerance — the
/// contract behind the `gaia-perfgate` CLI and the CI perf-gate job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gaia::metrics {

/// One timed series of a benchmark run.
struct KernelTiming {
  std::string kernel;    ///< "aprod1_astro", ... (catalog region name)
  std::string backend;   ///< "serial" | "openmp" | "pstl" | "gpusim"
  std::string strategy;  ///< "atomic" | "privatized" | "none"
  /// "seed_aos" | "soa_tiled" | "sliced_instr". Defaulted on parse so
  /// baselines sealed before the layout axis existed stay loadable —
  /// their series were all measured on the seed layout.
  std::string layout = "seed_aos";
  /// "fp64" | "fp32" | "bf16s". Defaulted the same way: baselines sealed
  /// before the precision axis existed measured full-precision planes.
  std::string precision = "fp64";
  double median_seconds = 0;
  std::uint64_t samples = 0;
};

/// A named set of kernel timings, as stored in BENCH_<name>.json.
struct PerfBaseline {
  static constexpr int kVersion = 1;
  std::string name;
  std::vector<KernelTiming> kernels;

  /// Series lookup by identity; nullptr when absent.
  [[nodiscard]] const KernelTiming* find(
      const std::string& kernel, const std::string& backend,
      const std::string& strategy, const std::string& layout = "seed_aos",
      const std::string& precision = "fp64") const;

  [[nodiscard]] std::string to_json() const;
};

/// Parses a baseline JSON document; throws gaia::Error on malformed
/// input or a version mismatch.
PerfBaseline parse_baseline(const std::string& json);

/// File I/O (throws gaia::Error on open/parse/write failure).
PerfBaseline load_baseline(const std::string& path);
void save_baseline(const std::string& path, const PerfBaseline& baseline);

/// Gate policy: `tolerance` is the allowed fractional slowdown (0.25 =
/// a series may be up to 25 % slower before it counts as a regression).
struct GateOptions {
  double tolerance = 0.25;
  /// Accept series present in the baseline but missing from the new
  /// run (default: a vanished series fails the gate — a benchmark that
  /// silently stopped measuring a kernel must not pass).
  bool allow_missing = false;
};

/// One series-level verdict of the gate.
struct GateFinding {
  std::string kernel, backend, strategy, layout, precision;
  double old_seconds = 0;
  double new_seconds = 0;
  double ratio = 0;  ///< new / old (0 when the series is missing)
};

struct GateReport {
  bool pass = true;
  std::vector<GateFinding> regressions;   ///< ratio > 1 + tolerance
  std::vector<GateFinding> improvements;  ///< ratio < 1 / (1 + tolerance)
  std::vector<GateFinding> missing;       ///< in baseline, not in new run
  /// Human-readable verdict (one line per finding + a summary line).
  [[nodiscard]] std::string to_string() const;
};

/// Compares `next` against `base`. Series only present in `next` are
/// ignored (new kernels are not regressions).
GateReport perf_gate(const PerfBaseline& base, const PerfBaseline& next,
                     const GateOptions& options = {});

}  // namespace gaia::metrics
