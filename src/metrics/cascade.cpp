#include "metrics/cascade.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "metrics/pennycook.hpp"
#include "util/table.hpp"

namespace gaia::metrics {

Cascade build_cascade(const PerformanceMatrix& m) {
  const auto eff = application_efficiency(m);
  Cascade out;
  out.series.reserve(m.n_applications());

  for (std::size_t a = 0; a < m.n_applications(); ++a) {
    CascadeSeries s;
    s.application = m.applications()[a];

    std::vector<std::size_t> order(m.n_platforms());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t i, std::size_t j) {
                       return eff[a][i] > eff[a][j];
                     });

    double inv_sum = 0.0;
    bool dead = false;
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t p = order[k];
      s.platform_order.push_back(m.platforms()[p]);
      s.efficiency.push_back(eff[a][p]);
      if (eff[a][p] <= 0.0) dead = true;
      if (!dead) {
        inv_sum += 1.0 / eff[a][p];
        s.running_p.push_back(static_cast<double>(k + 1) / inv_sum);
      } else {
        s.running_p.push_back(0.0);
      }
    }
    s.final_p = s.running_p.empty() ? 0.0 : s.running_p.back();
    out.series.push_back(std::move(s));
  }
  return out;
}

std::string render_cascade(const Cascade& cascade) {
  std::ostringstream os;
  for (const auto& s : cascade.series) {
    os << s.application << "  (P = " << util::Table::num(s.final_p, 3)
       << ")\n";
    for (std::size_t k = 0; k < s.platform_order.size(); ++k) {
      os << "  " << util::bar(s.platform_order[k], s.efficiency[k], 1.0, 32)
         << "   running-P " << util::Table::num(s.running_p[k], 3) << '\n';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace gaia::metrics
