#include "metrics/report.hpp"

#include <iomanip>
#include <sstream>

#include "metrics/pennycook.hpp"

namespace gaia::metrics {

namespace {

std::string num(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void markdown_row(std::ostringstream& os,
                  const std::vector<std::string>& cells) {
  os << '|';
  for (const auto& c : cells) os << ' ' << c << " |";
  os << '\n';
}

void markdown_rule(std::ostringstream& os, std::size_t columns) {
  os << '|';
  for (std::size_t i = 0; i < columns; ++i) os << "---|";
  os << '\n';
}

}  // namespace

std::string markdown_report(const PerformanceMatrix& m,
                            const ReportOptions& options) {
  std::ostringstream os;
  os << "# " << options.title << "\n\n";
  if (!options.subtitle.empty()) os << options.subtitle << "\n\n";

  // --- iteration times ----------------------------------------------------
  os << "## Average iteration time (ms)\n\n";
  {
    std::vector<std::string> header = {"framework"};
    header.insert(header.end(), m.platforms().begin(), m.platforms().end());
    markdown_row(os, header);
    markdown_rule(os, header.size());
    for (std::size_t a = 0; a < m.n_applications(); ++a) {
      std::vector<std::string> row = {m.applications()[a]};
      for (std::size_t p = 0; p < m.n_platforms(); ++p)
        row.push_back(m.supported(a, p) ? num(m.time(a, p) * 1e3, 1)
                                        : "n/a");
      markdown_row(os, row);
    }
    os << '\n';
  }

  // --- application efficiency ----------------------------------------------
  os << "## Application efficiency\n\n";
  const auto eff = application_efficiency(m);
  {
    std::vector<std::string> header = {"framework"};
    header.insert(header.end(), m.platforms().begin(), m.platforms().end());
    markdown_row(os, header);
    markdown_rule(os, header.size());
    for (std::size_t a = 0; a < m.n_applications(); ++a) {
      std::vector<std::string> row = {m.applications()[a]};
      for (std::size_t p = 0; p < m.n_platforms(); ++p)
        row.push_back(m.supported(a, p) ? num(eff[a][p]) : "0 (n/s)");
      markdown_row(os, row);
    }
    os << '\n';
  }

  // --- P summary -------------------------------------------------------------
  os << "## Pennycook P\n\n";
  const auto p_all = pennycook_scores(m);
  std::vector<double> p_sub;
  const bool has_subset = !options.secondary_subset.empty();
  if (has_subset) p_sub = pennycook_scores(m, options.secondary_subset);
  {
    std::vector<std::string> header = {"framework", "P"};
    if (has_subset) header.push_back(options.secondary_subset_label);
    markdown_row(os, header);
    markdown_rule(os, header.size());
    for (std::size_t a = 0; a < m.n_applications(); ++a) {
      std::vector<std::string> row = {m.applications()[a], num(p_all[a])};
      if (has_subset) row.push_back(num(p_sub[a]));
      markdown_row(os, row);
    }
    os << '\n';
  }

  // --- cascades -------------------------------------------------------------
  os << "## Efficiency cascades (platforms by decreasing efficiency, "
        "running P)\n\n";
  const Cascade cascade = build_cascade(m);
  for (const auto& s : cascade.series) {
    os << "* **" << s.application << "** (P = " << num(s.final_p) << "): ";
    for (std::size_t k = 0; k < s.platform_order.size(); ++k) {
      if (k) os << " → ";
      os << s.platform_order[k] << " " << num(s.efficiency[k], 2);
    }
    os << '\n';
  }
  os << '\n';
  return os.str();
}

}  // namespace gaia::metrics
