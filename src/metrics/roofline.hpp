/// \file roofline.hpp
/// \brief Per-kernel roofline placement from the derived counters.
///
/// The perf-counters layer (obs/perf_counters) already derives bytes,
/// FLOPs and wall time per (kernel, backend, strategy) launch from the
/// cost-model shapes. Against a machine spec those three numbers are a
/// complete roofline analysis:
///
///   intensity I        = flops / bytes              [FLOP/byte]
///   achieved GFLOP/s   = flops / seconds
///   ceiling(I)         = min(peak_gflops, I * effective_bw)
///   fraction           = achieved / ceiling(I)
///   memory-bound       = I < ridge (peak_gflops / effective_bw)
///
/// which is the Pennycook-adjacent "%-of-ceiling" view the paper's
/// portability argument needs per kernel: a kernel at 80% of its
/// bandwidth ceiling is done; one at 20% has headroom no backend swap
/// will explain. Results feed three sinks: `gaia_kernel_roofline_*`
/// OpenMetrics gauges (the CI smoke greps them), the solver summary
/// table, and the postmortem bundle (gauges ride the metrics rows).
///
/// Lives in metrics/ (analysis layer) but takes the machine as plain
/// values (`RooflineMachine`) rather than a `perfmodel::GpuSpec` —
/// perfmodel links *this* library, so the dependency cannot point back.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace gaia::metrics {

/// Machine ceilings, in the units the roofline works in. Callers build
/// one from a `perfmodel::gpu_spec()` (peak_gflops = fp64_tflops*1000)
/// or from measured STREAM-style numbers.
struct RooflineMachine {
  std::string name;
  double peak_bw_gbs = 0;    ///< peak HBM/DRAM bandwidth [GB/s]
  double peak_gflops = 0;    ///< peak FP64 throughput [GFLOP/s]
  /// Fraction of peak bandwidth an SpMV-like irregular kernel can
  /// realistically sustain (the spec's spmv_bw_efficiency); scales the
  /// bandwidth roof so "100%" means "as good as this access pattern
  /// gets", matching the cost model's derived-bandwidth table.
  double bw_efficiency = 1.0;

  [[nodiscard]] double effective_bw_gbs() const {
    return peak_bw_gbs * bw_efficiency;
  }
};

/// The ridge point: arithmetic intensity where the bandwidth roof meets
/// the compute roof [FLOP/byte]. Kernels below it are memory-bound.
[[nodiscard]] double ridge_intensity(const RooflineMachine& machine);

/// One kernel's placement on the roofline.
struct RooflinePoint {
  std::string kernel;
  std::string backend;
  std::string strategy;
  std::uint64_t launches = 0;
  double bytes_per_launch = 0;
  double flops_per_launch = 0;
  double seconds_p50 = 0;        ///< median measured launch wall time
  double intensity = 0;          ///< FLOP/byte
  double achieved_gflops = 0;
  double achieved_gbs = 0;
  double ceiling_gflops = 0;     ///< roof at this intensity
  double fraction_of_ceiling = 0;
  bool memory_bound = true;
};

/// Extracts roofline points from a metrics snapshot: every
/// `kernel.<k>.<b>.<s>.*` series with a non-zero launch count, a byte
/// or FLOP total, and a timed histogram becomes one point. Rows that
/// are not kernel series are ignored. Sorted by (kernel, backend,
/// strategy).
[[nodiscard]] std::vector<RooflinePoint> roofline_points(
    const std::vector<gaia::obs::MetricRow>& rows,
    const RooflineMachine& machine);

/// Publishes each point as registry gauges the OpenMetrics exporter
/// auto-labels (single-token fields keep `parse_kernel_series` happy):
///
///   kernel.<k>.<b>.<s>.roofline_intensity
///   kernel.<k>.<b>.<s>.roofline_achieved_gflops
///   kernel.<k>.<b>.<s>.roofline_achieved_gbs
///   kernel.<k>.<b>.<s>.roofline_fraction_of_ceiling
///   kernel.<k>.<b>.<s>.roofline_memory_bound   (1.0 | 0.0)
///
/// No-op while the registry is disabled.
void publish_roofline_gauges(const std::vector<RooflinePoint>& points);

/// Human-readable table for the solver summary (one line per point,
/// header + machine line included; "" when `points` is empty).
[[nodiscard]] std::string roofline_table(
    const std::vector<RooflinePoint>& points, const RooflineMachine& machine);

}  // namespace gaia::metrics
