#include "metrics/efficiency.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gaia::metrics {

PerformanceMatrix::PerformanceMatrix(std::vector<std::string> applications,
                                     std::vector<std::string> platforms)
    : apps_(std::move(applications)), platforms_(std::move(platforms)) {
  GAIA_CHECK(!apps_.empty() && !platforms_.empty(),
             "performance matrix needs at least one app and platform");
  times_.assign(apps_.size() * platforms_.size(), -1.0);
}

void PerformanceMatrix::set_time(std::size_t app, std::size_t platform,
                                 double seconds) {
  GAIA_CHECK(app < apps_.size() && platform < platforms_.size(),
             "performance matrix index out of range");
  GAIA_CHECK(seconds != 0.0, "zero time is ill-defined; use negative for "
                             "unsupported");
  times_[app * platforms_.size() + platform] = seconds;
}

double PerformanceMatrix::time(std::size_t app, std::size_t platform) const {
  GAIA_CHECK(app < apps_.size() && platform < platforms_.size(),
             "performance matrix index out of range");
  return times_[app * platforms_.size() + platform];
}

bool PerformanceMatrix::supported(std::size_t app,
                                  std::size_t platform) const {
  return time(app, platform) > 0.0;
}

std::size_t PerformanceMatrix::app_index(const std::string& name) const {
  const auto it = std::find(apps_.begin(), apps_.end(), name);
  GAIA_CHECK(it != apps_.end(), "unknown application: " + name);
  return static_cast<std::size_t>(it - apps_.begin());
}

std::size_t PerformanceMatrix::platform_index(const std::string& name) const {
  const auto it = std::find(platforms_.begin(), platforms_.end(), name);
  GAIA_CHECK(it != platforms_.end(), "unknown platform: " + name);
  return static_cast<std::size_t>(it - platforms_.begin());
}

PerformanceMatrix PerformanceMatrix::subset_platforms(
    const std::vector<std::string>& platform_names) const {
  PerformanceMatrix out(apps_, platform_names);
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    for (std::size_t p = 0; p < platform_names.size(); ++p) {
      const std::size_t src = platform_index(platform_names[p]);
      const double t = time(a, src);
      if (t > 0.0) out.set_time(a, p, t);
    }
  }
  return out;
}

std::vector<std::vector<double>> application_efficiency(
    const PerformanceMatrix& m) {
  const std::size_t na = m.n_applications();
  const std::size_t np = m.n_platforms();
  // Best time per platform across applications.
  std::vector<double> best(np, std::numeric_limits<double>::infinity());
  for (std::size_t p = 0; p < np; ++p)
    for (std::size_t a = 0; a < na; ++a)
      if (m.supported(a, p)) best[p] = std::min(best[p], m.time(a, p));

  std::vector<std::vector<double>> eff(na, std::vector<double>(np, 0.0));
  for (std::size_t a = 0; a < na; ++a)
    for (std::size_t p = 0; p < np; ++p)
      if (m.supported(a, p) && std::isfinite(best[p]))
        eff[a][p] = best[p] / m.time(a, p);
  return eff;
}

std::vector<std::vector<double>> best_platform_efficiency(
    const PerformanceMatrix& m) {
  const std::size_t na = m.n_applications();
  const std::size_t np = m.n_platforms();
  std::vector<std::vector<double>> eff(na, std::vector<double>(np, 0.0));
  for (std::size_t a = 0; a < na; ++a) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < np; ++p)
      if (m.supported(a, p)) best = std::min(best, m.time(a, p));
    if (!std::isfinite(best)) continue;
    for (std::size_t p = 0; p < np; ++p)
      if (m.supported(a, p)) eff[a][p] = best / m.time(a, p);
  }
  return eff;
}

}  // namespace gaia::metrics
