/// \file cascade.hpp
/// \brief Cascade-plot data, the p3-analysis-library visualization the
/// paper uses for Figure 3.
///
/// For each application the cascade sorts platforms by decreasing
/// efficiency and tracks the running P as platforms are added: the line
/// starts at the application's best efficiency and decays; an
/// unsupported platform drops the final P to zero.
#pragma once

#include <string>
#include <vector>

#include "metrics/efficiency.hpp"

namespace gaia::metrics {

struct CascadeSeries {
  std::string application;
  /// Platform names in decreasing-efficiency order.
  std::vector<std::string> platform_order;
  /// Efficiency at each step of the order.
  std::vector<double> efficiency;
  /// Harmonic mean of the first k+1 efficiencies (running P).
  std::vector<double> running_p;
  /// Final P over the full platform set (0 if any unsupported).
  double final_p = 0.0;
};

struct Cascade {
  std::vector<CascadeSeries> series;  ///< one per application
};

/// Builds the cascade from application efficiencies.
Cascade build_cascade(const PerformanceMatrix& m);

/// ASCII rendering: one block per application with efficiency bars plus
/// the running-P column (terminal stand-in for the paper's Fig. 3).
std::string render_cascade(const Cascade& cascade);

}  // namespace gaia::metrics
