/// \file model_drift.hpp
/// \brief Predicted-vs-measured kernel time comparison ("model drift").
///
/// The performance model (src/perfmodel) predicts where the iteration
/// time goes; the observability layer (src/obs, util::Profiler) measures
/// where it actually went on the host backends. This report confronts
/// the two: per kernel, the predicted and measured seconds, their ratio,
/// and — the portable signal — the *share* each kernel takes of its
/// campaign's total. Host-measured absolute times cannot match GPU
/// predictions, but the time distribution across kernels must have the
/// same shape (the paper's SV-A claim that aprod1/aprod2 dominate);
/// share drift quantifies how far the model has drifted from the code.
///
/// The report is deliberately plain data + formatting: benches assemble
/// the rows from whatever model/measurement pair they study.
#pragma once

#include <string>
#include <vector>

namespace gaia::metrics {

/// One kernel's predicted-vs-measured entry.
struct KernelDrift {
  std::string kernel;
  double predicted_s = 0;
  double measured_s = 0;
};

/// Derived per-kernel drift statistics.
struct KernelDriftRow {
  std::string kernel;
  double predicted_s = 0;
  double measured_s = 0;
  double ratio = 0;             ///< measured / predicted (0 if no prediction)
  double predicted_share = 0;   ///< share of total predicted time
  double measured_share = 0;    ///< share of total measured time
  double share_drift_pp = 0;    ///< measured_share - predicted_share, in pp
};

class ModelDriftReport {
 public:
  explicit ModelDriftReport(std::vector<KernelDrift> rows);

  [[nodiscard]] const std::vector<KernelDriftRow>& rows() const {
    return rows_;
  }
  [[nodiscard]] double total_predicted_s() const { return total_predicted_; }
  [[nodiscard]] double total_measured_s() const { return total_measured_; }

  /// Mean / max absolute share drift across kernels, in percentage
  /// points — the single-number model-health indicators.
  [[nodiscard]] double mean_abs_share_drift_pp() const;
  [[nodiscard]] double max_abs_share_drift_pp() const;

  /// CSV: kernel,predicted_s,measured_s,ratio,predicted_share,
  /// measured_share,share_drift_pp.
  [[nodiscard]] std::string csv() const;
  void write_csv(const std::string& path) const;

  /// Markdown table with a drift summary line (EXPERIMENTS.md-ready).
  [[nodiscard]] std::string markdown(const std::string& title = "") const;

 private:
  std::vector<KernelDriftRow> rows_;
  double total_predicted_ = 0;
  double total_measured_ = 0;
};

}  // namespace gaia::metrics
