#include "metrics/pennycook.hpp"

#include "util/stats.hpp"

namespace gaia::metrics {

double pennycook_p(std::span<const double> efficiencies) {
  // harmonic_mean already returns 0 when any entry is <= 0 or the set is
  // empty — exactly the P convention.
  return util::harmonic_mean(efficiencies);
}

std::vector<double> pennycook_scores(const PerformanceMatrix& m) {
  const auto eff = application_efficiency(m);
  std::vector<double> p;
  p.reserve(eff.size());
  for (const auto& row : eff) p.push_back(pennycook_p(row));
  return p;
}

std::vector<double> pennycook_scores(
    const PerformanceMatrix& m,
    const std::vector<std::string>& platform_subset) {
  return pennycook_scores(m.subset_platforms(platform_subset));
}

}  // namespace gaia::metrics
