/// \file gaia.hpp
/// \brief Umbrella header: the library's public API in one include.
///
///   #include "gaia.hpp"
///
/// pulls in the dataset generators, the solver stack, the distributed
/// layer, the platform/portability analysis and the validation tools.
/// Fine-grained headers remain available for faster builds.
#pragma once

// Substrate: system representation and synthetic data.
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "matrix/generator.hpp"
#include "matrix/io.hpp"
#include "matrix/layout.hpp"
#include "matrix/scanlaw.hpp"
#include "matrix/system_matrix.hpp"

// Execution backends (the programming-model axis).
#include "backends/backend.hpp"
#include "backends/device_buffer.hpp"
#include "backends/kernel_config.hpp"
#include "backends/stream.hpp"

// The solver.
#include "core/aprod.hpp"
#include "core/derotation.hpp"
#include "core/lsqr.hpp"
#include "core/lsqr_engine.hpp"
#include "core/outer_loop.hpp"
#include "core/preconditioner.hpp"
#include "core/solver.hpp"
#include "core/weights.hpp"

// Distributed execution.
#include "dist/comm.hpp"
#include "dist/dist_lsqr.hpp"
#include "dist/partition.hpp"

// Platform model and portability analysis.
#include "metrics/cascade.hpp"
#include "metrics/efficiency.hpp"
#include "metrics/pennycook.hpp"
#include "metrics/report.hpp"
#include "perfmodel/cost_model.hpp"
#include "perfmodel/energy.hpp"
#include "perfmodel/framework.hpp"
#include "perfmodel/gpu_spec.hpp"
#include "perfmodel/multi_gpu.hpp"
#include "perfmodel/simulator.hpp"

// Validation.
#include "validation/compare.hpp"
#include "validation/cross_backend.hpp"
#include "validation/residual_analysis.hpp"

// Utilities commonly used alongside the API.
#include "util/cli.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
