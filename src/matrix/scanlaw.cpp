#include "matrix/scanlaw.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

namespace gaia::matrix {

namespace {

constexpr real kTwoPi = 6.283185307179586476925286766559;

/// Parallax factor of the along-scan observation: the projection of the
/// Earth's (here: unit, circular) orbital displacement onto the scan
/// direction at time t.
real parallax_factor(real t_years, real scan_angle) {
  const real orbit_phase = kTwoPi * t_years;  // 1-year period
  return std::sin(scan_angle) * std::cos(orbit_phase) +
         std::cos(scan_angle) * std::sin(orbit_phase);
}

/// Draws kInstrNnzPerRow distinct instrumental columns from the focal
/// plane crossing: a deterministic base column from (time, angle) plus
/// jittered neighbours, mirroring how a transit touches one CCD strip's
/// calibration unknowns.
void instrumental_columns(util::Xoshiro256& rng, const Transit& tr,
                          col_index n_instr, std::span<std::int32_t> out) {
  const double frac =
      std::fmod(std::abs(tr.time * 37.0 + tr.scan_angle * 11.0), 1.0);
  const auto base = static_cast<std::int64_t>(
      frac * static_cast<double>(n_instr));
  std::array<std::int32_t, kInstrNnzPerRow> cols{};
  int count = 0;
  std::int64_t candidate = base;
  while (count < kInstrNnzPerRow) {
    candidate = (candidate + 1 + static_cast<std::int64_t>(
                                     rng.uniform_index(3))) %
                n_instr;
    bool dup = false;
    for (int i = 0; i < count; ++i)
      dup |= (cols[i] == static_cast<std::int32_t>(candidate));
    if (!dup) cols[count++] = static_cast<std::int32_t>(candidate);
  }
  std::sort(cols.begin(), cols.end());
  std::copy(cols.begin(), cols.end(), out.begin());
}

}  // namespace

std::vector<Star> make_catalogue(row_index n_stars, std::uint64_t seed) {
  GAIA_CHECK(n_stars > 0, "catalogue needs stars");
  util::Xoshiro256 rng(seed);
  std::vector<Star> stars(static_cast<std::size_t>(n_stars));
  for (auto& s : stars) {
    s.alpha = rng.uniform(0.0, kTwoPi);
    // Uniform on the sphere: delta = asin(u), u ~ U(-1, 1).
    s.delta = std::asin(rng.uniform(-1.0, 1.0));
  }
  return stars;
}

std::vector<Transit> transits_for(const ScanLawConfig& config,
                                  const Star& star, row_index star_index) {
  GAIA_CHECK(config.mission_years > 0, "mission must have duration");
  GAIA_CHECK(config.spin_period_hours > 0 && config.precession_days > 0,
             "scan law needs positive periods");
  // Per-star deterministic stream: a jumped copy of the config stream.
  util::Xoshiro256 rng(config.seed ^
                       (0x9e3779b97f4a7c15ull *
                        (static_cast<std::uint64_t>(star_index) + 1)));

  const auto n = std::max<row_index>(
      config.transits_per_star_min,
      static_cast<row_index>(std::llround(
          config.transits_per_star_mean +
          rng.normal(0.0, config.transits_per_star_mean * 0.25))));

  const real spin_rate =
      kTwoPi / (config.spin_period_hours / (24.0 * 365.25));  // rad/year
  const real precession_rate =
      kTwoPi / (config.precession_days / 365.25);  // rad/year

  std::vector<Transit> transits(static_cast<std::size_t>(n));
  for (row_index k = 0; k < n; ++k) {
    // Visibility windows recur with the precession period; jitter within.
    const real base =
        config.mission_years * (static_cast<real>(k) + real{0.5}) /
        static_cast<real>(n);
    const real t = std::clamp<real>(
        base + rng.normal(0.0, config.mission_years * 0.02), real{0},
        config.mission_years);
    // Scan position angle at the star: spin phase + precession phase +
    // star-dependent geometric offset.
    const real psi = std::fmod(
        spin_rate * t + precession_rate * t * std::sin(star.delta) +
            star.alpha,
        kTwoPi);
    transits[static_cast<std::size_t>(k)] = {t, psi};
  }
  std::sort(transits.begin(), transits.end(),
            [](const Transit& a, const Transit& b) { return a.time < b.time; });
  return transits;
}

ScanLawSystem generate_from_scanlaw(const ScanLawConfig& config) {
  const std::vector<Star> catalogue =
      make_catalogue(config.n_stars, config.seed);

  // Collect all transits first to size the system.
  std::vector<std::vector<Transit>> per_star(
      static_cast<std::size_t>(config.n_stars));
  row_index n_obs = 0;
  for (row_index s = 0; s < config.n_stars; ++s) {
    per_star[static_cast<std::size_t>(s)] =
        transits_for(config, catalogue[static_cast<std::size_t>(s)], s);
    n_obs += static_cast<row_index>(per_star[static_cast<std::size_t>(s)]
                                        .size());
  }

  const ParameterLayout layout(config.n_stars, kAttBlocks,
                               config.att_dof_per_axis,
                               config.n_instr_params, config.has_global);
  const row_index n_constraints = config.constraints_per_axis * kAttBlocks;
  SystemMatrix A(layout, n_obs, n_constraints);

  util::Xoshiro256 rng(config.seed ^ 0xfeedfacecafebeefull);

  // Ground truth: astrometric-scale corrections. The attitude sections
  // are then made consistent with the constraint equations (each
  // constraint window must sum to zero) by removing a per-axis linear
  // ramp — otherwise the constraints contradict the truth and the
  // least-squares solution is pulled away from it.
  std::vector<real> x_true(static_cast<std::size_t>(layout.n_unknowns()));
  for (auto& v : x_true) v = rng.normal();
  if (config.constraints_per_axis >= 2) {
    const col_index dof = layout.att_dof_per_axis();
    const col_index c_span = layout.att_stride() - kAttBlockSize;
    const row_index k_max = config.constraints_per_axis - 1;
    const col_index q1 = 0;
    const col_index q2 = std::clamp<col_index>(
        static_cast<col_index>(k_max * std::max<row_index>(1, c_span) /
                               std::max<row_index>(1, k_max)),
        0, c_span);
    for (int axis = 0; axis < kAttBlocks; ++axis) {
      real* xa = x_true.data() + layout.att_offset() + axis * dof;
      auto window_sums = [&](col_index q) {
        real s = 0, sj = 0;
        for (int i = 0; i < kAttBlockSize; ++i) {
          s += xa[q + i];
          sj += static_cast<real>(q + i);
        }
        return std::pair<real, real>(s, sj);
      };
      const auto [s1, j1] = window_sums(q1);
      const auto [s2, j2] = window_sums(q2);
      // Solve 4a + b*j1 = s1, 4a + b*j2 = s2 and subtract a + b*j.
      const real det = real{4} * (j2 - j1);
      real a = s1 / 4, b_ramp = 0;
      if (std::abs(det) > 1e-12) {
        b_ramp = real{4} * (s2 - s1) / det;
        a = (s1 - b_ramp * j1) / 4;
      }
      for (col_index j = 0; j < dof; ++j)
        xa[j] -= a + b_ramp * static_cast<real>(j);
    }
  }

  ScanLawSystem out{std::move(A), catalogue, std::move(x_true), {}};
  out.row_transits.reserve(static_cast<std::size_t>(n_obs));

  auto starts = out.A.star_row_start();
  auto idx_astro = out.A.matrix_index_astro();
  auto idx_att = out.A.matrix_index_att();
  auto instr = out.A.instr_col();
  auto b = out.A.known_terms();

  const col_index att_span = layout.att_stride() - kAttBlockSize;
  const real t_ref = config.mission_years / 2;  // reference epoch

  row_index row = 0;
  starts[0] = 0;
  for (row_index s = 0; s < config.n_stars; ++s) {
    for (const Transit& tr : per_star[static_cast<std::size_t>(s)]) {
      const auto r = static_cast<std::size_t>(row);
      out.row_transits.push_back(tr);
      idx_astro[r] = s * kAstroParamsPerStar;

      // Attitude knot active at the transit time: the mission maps onto
      // the att_span+1 spline segments so every segment (and therefore
      // every spline coefficient, including the tail ones) receives
      // observation support. The fractional position within the segment
      // drives the B-spline basis weights below.
      const real phase = tr.time / config.mission_years;
      const real knot_pos =
          phase * (static_cast<real>(att_span) + 1) * real{0.999999};
      idx_att[r] = att_span > 0
                       ? std::clamp<col_index>(
                             static_cast<col_index>(std::floor(knot_pos)),
                             0, att_span)
                       : 0;
      const real u = std::clamp<real>(
          knot_pos - static_cast<real>(idx_att[r]), real{0}, real{1});

      instrumental_columns(rng, tr, layout.n_instr_params(),
                           instr.subspan(r * kInstrNnzPerRow,
                                         kInstrNnzPerRow));

      auto rv = out.A.row_values(row);
      // Astrometric partials of the along-scan observation equation.
      const real sp = std::sin(tr.scan_angle);
      const real cp = std::cos(tr.scan_angle);
      const real dt = tr.time - t_ref;
      rv[kAstroCoeffOffset + 0] = sp;                          // d alpha*
      rv[kAstroCoeffOffset + 1] = cp;                          // d delta
      rv[kAstroCoeffOffset + 2] = parallax_factor(tr.time,     // d parallax
                                                  tr.scan_angle);
      rv[kAstroCoeffOffset + 3] = dt * sp;                     // d mu_alpha*
      rv[kAstroCoeffOffset + 4] = dt * cp;                     // d mu_delta
      // Attitude partials: uniform cubic B-spline basis weights at the
      // fractional knot position (they vary continuously row to row,
      // keeping the attitude columns independent), modulated per axis by
      // the scan geometry — the along-scan direction couples differently
      // to the three attitude angles.
      const real u2 = u * u, u3 = u2 * u;
      const real w[kAttBlockSize] = {
          (1 - 3 * u + 3 * u2 - u3) / 6, (4 - 6 * u2 + 3 * u3) / 6,
          (1 + 3 * u + 3 * u2 - 3 * u3) / 6, u3 / 6};
      // Third axis couples through the doubled angle — nonlinear in
      // (cp, sp), so no exact column dependence across rows.
      const real axis_gain[kAttBlocks] = {cp, sp, cp * cp - sp * sp};
      for (int blk = 0; blk < kAttBlocks; ++blk) {
        for (int i = 0; i < kAttBlockSize; ++i) {
          rv[kAttCoeffOffset + blk * kAttBlockSize + i] =
              axis_gain[blk] * w[i];
        }
      }
      // Instrumental partials: unit-scale calibration sensitivities.
      for (int i = 0; i < kInstrNnzPerRow; ++i)
        rv[kInstrCoeffOffset + i] = rng.normal(0.0, 0.5);
      // Global (PPN gamma) partial: light-deflection sensitivity varies
      // slowly with the solar aspect angle ~ orbit phase.
      rv[kGlobCoeffOffset] =
          config.has_global
              ? real{0.1} * std::cos(kTwoPi * tr.time) * sp
              : real{0};
      ++row;
    }
    starts[static_cast<std::size_t>(s) + 1] = row;
  }

  // Attitude nullspace constraints at distinct spline knots: the k-th
  // constraint of each axis pins the coefficient sum of a 4-wide window
  // at a different position, which removes both the constant and the
  // linear (rotation- and spin-like) degeneracies per axis (see
  // ScanLawConfig::constraints_per_axis).
  GAIA_CHECK(config.constraints_per_axis >= 2,
             "scan-law systems need >= 2 constraints per axis");
  for (row_index c = 0; c < n_constraints; ++c, ++row) {
    const auto r = static_cast<std::size_t>(row);
    const int axis = static_cast<int>(c % kAttBlocks);
    const auto k = c / kAttBlocks;
    idx_astro[r] = 0;
    idx_att[r] =
        att_span > 0
            ? std::clamp<col_index>(
                  static_cast<col_index>(
                      k * std::max<row_index>(1, att_span) /
                      std::max<row_index>(1, config.constraints_per_axis - 1)),
                  0, att_span)
            : 0;
    // Valid distinct instrumental columns (coefficients stay zero).
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      instr[r * kInstrNnzPerRow + i] = static_cast<std::int32_t>(i);
    auto rv = out.A.row_values(row);
    for (int i = 0; i < kAttBlockSize; ++i)
      rv[kAttCoeffOffset + axis * kAttBlockSize + i] = real{1};
    b[r] = real{0};
  }

  // Right-hand side from the ground truth (observation rows only).
  {
    const auto& M = out.A;
    const auto vals = M.values();
    const auto ia = M.matrix_index_astro();
    const auto it = M.matrix_index_att();
    const auto ic = M.instr_col();
    for (row_index rr = 0; rr < M.n_obs(); ++rr) {
      const auto r = static_cast<std::size_t>(rr);
      real sum = 0;
      const real* rv = vals.data() + r * kNnzPerRow;
      for (int i = 0; i < kAstroNnzPerRow; ++i)
        sum += rv[kAstroCoeffOffset + i] *
               out.ground_truth[static_cast<std::size_t>(ia[r] + i)];
      for (int blk = 0; blk < kAttBlocks; ++blk)
        for (int i = 0; i < kAttBlockSize; ++i)
          sum += rv[kAttCoeffOffset + blk * kAttBlockSize + i] *
                 out.ground_truth[static_cast<std::size_t>(
                     layout.att_offset() + it[r] +
                     blk * layout.att_stride() + i)];
      for (int i = 0; i < kInstrNnzPerRow; ++i)
        sum += rv[kInstrCoeffOffset + i] *
               out.ground_truth[static_cast<std::size_t>(
                   layout.instr_offset() + ic[r * kInstrNnzPerRow + i])];
      if (layout.has_global())
        sum += rv[kGlobCoeffOffset] *
               out.ground_truth[static_cast<std::size_t>(
                   layout.glob_offset())];
      if (config.noise_sigma > 0) sum += rng.normal(0.0, config.noise_sigma);
      b[r] = sum;
    }
  }
  return out;
}

}  // namespace gaia::matrix
