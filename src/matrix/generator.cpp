#include "matrix/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace gaia::matrix {

namespace {

/// Draws `kInstrNnzPerRow` distinct instrumental columns. The section is
/// small relative to the draw count in tests, so use rejection over a
/// fixed-size set (cheap: at most 6 live values).
void draw_instr_columns(util::Xoshiro256& rng, col_index n_instr,
                        std::span<std::int32_t> out) {
  std::array<std::int32_t, kInstrNnzPerRow> picked{};
  int count = 0;
  while (count < kInstrNnzPerRow) {
    const auto c = static_cast<std::int32_t>(
        rng.uniform_index(static_cast<std::uint64_t>(n_instr)));
    bool duplicate = false;
    for (int i = 0; i < count; ++i) duplicate |= (picked[i] == c);
    if (!duplicate) picked[count++] = c;
  }
  // Sorted columns give the kernels the (mostly) ascending access pattern
  // real calibration tables exhibit.
  std::sort(picked.begin(), picked.end());
  std::copy(picked.begin(), picked.end(), out.begin());
}

}  // namespace

GeneratedSystem generate_system(const GeneratorConfig& config) {
  GAIA_CHECK(config.n_stars > 0, "generator needs stars");
  GAIA_CHECK(config.obs_per_star_min >= 1, "stars need observations");
  GAIA_CHECK(config.obs_per_star_mean >=
                 static_cast<double>(config.obs_per_star_min),
             "mean observations below minimum");

  util::Xoshiro256 rng(config.seed);

  const ParameterLayout layout(config.n_stars, kAttBlocks,
                               config.att_dof_per_axis,
                               config.n_instr_params, config.has_global);

  // --- observation counts per star -------------------------------------
  std::vector<row_index> obs_per_star(
      static_cast<std::size_t>(config.n_stars));
  row_index n_obs = 0;
  for (auto& n : obs_per_star) {
    const double jitter = rng.normal(0.0, config.obs_per_star_mean * 0.25);
    n = std::max<row_index>(
        config.obs_per_star_min,
        static_cast<row_index>(
            std::llround(config.obs_per_star_mean + jitter)));
    n_obs += n;
  }

  const row_index n_constraints =
      config.constraints_per_axis * kAttBlocks;
  SystemMatrix A(layout, n_obs, n_constraints);

  // Star partition (contiguous rows per star).
  {
    auto starts = A.star_row_start();
    starts[0] = 0;
    for (std::size_t s = 0; s < obs_per_star.size(); ++s)
      starts[s + 1] = starts[s] + obs_per_star[s];
  }

  auto values = A.values();
  auto idx_astro = A.matrix_index_astro();
  auto idx_att = A.matrix_index_att();
  auto instr = A.instr_col();
  auto b = A.known_terms();

  // Attitude block starts drift along the spline as observation time
  // advances (the "stride stemming from the measurement campaign"): the
  // row's position in the global observation sequence selects the knot.
  const col_index att_span = layout.att_stride() - kAttBlockSize;  // >= 0

  // --- observation rows --------------------------------------------------
  row_index row = 0;
  for (row_index s = 0; s < config.n_stars; ++s) {
    for (row_index k = 0; k < obs_per_star[static_cast<std::size_t>(s)];
         ++k, ++row) {
      const auto r = static_cast<std::size_t>(row);
      idx_astro[r] = s * kAstroParamsPerStar;

      const double phase =
          n_obs > 1 ? static_cast<double>(row) / static_cast<double>(n_obs - 1)
                    : 0.0;
      col_index t0 = att_span > 0
                         ? static_cast<col_index>(std::llround(
                               phase * static_cast<double>(att_span)))
                         : 0;
      // Small jitter keeps neighbouring rows from all hitting the same
      // knot (it is what makes the aprod2 attitude updates collide).
      if (att_span > 0) {
        const auto j = static_cast<col_index>(rng.uniform_index(3)) - 1;
        t0 = std::clamp<col_index>(t0 + j, 0, att_span);
      }
      idx_att[r] = t0;

      draw_instr_columns(
          rng, layout.n_instr_params(),
          instr.subspan(r * kInstrNnzPerRow, kInstrNnzPerRow));

      auto rv = A.row_values(row);
      for (int i = 0; i < kAstroNnzPerRow; ++i)
        rv[kAstroCoeffOffset + i] = rng.normal();
      for (int i = 0; i < kAttNnzPerRow; ++i)
        rv[kAttCoeffOffset + i] = rng.normal(0.0, 0.5);
      for (int i = 0; i < kInstrNnzPerRow; ++i)
        rv[kInstrCoeffOffset + i] = rng.normal(0.0, 0.5);
      rv[kGlobCoeffOffset] =
          config.has_global ? rng.normal(0.0, 0.1) : real{0};
    }
  }

  // --- constraint rows ----------------------------------------------------
  // One (or more) per attitude axis: sum of that axis' spline coefficients
  // pinned to zero, removing the attitude nullspace. All other blocks are
  // structurally present but zero-valued, keeping the kernels uniform.
  for (row_index c = 0; c < n_constraints; ++c, ++row) {
    const auto r = static_cast<std::size_t>(row);
    const int axis = static_cast<int>(c % kAttBlocks);
    idx_astro[r] = 0;
    idx_att[r] = 0;
    draw_instr_columns(rng, layout.n_instr_params(),
                       instr.subspan(r * kInstrNnzPerRow, kInstrNnzPerRow));
    auto rv = A.row_values(row);
    for (int i = 0; i < kAttBlockSize; ++i)
      rv[kAttCoeffOffset + axis * kAttBlockSize + i] = real{1};
    b[r] = real{0};
  }

  // --- right-hand side -----------------------------------------------------
  GeneratedSystem out{std::move(A), std::nullopt};
  if (config.rhs_mode == RhsMode::kRandomRhs) {
    auto kt = out.A.known_terms();
    for (row_index i = 0; i < out.A.n_obs(); ++i)
      kt[static_cast<std::size_t>(i)] = rng.normal();
  } else {
    std::vector<real> x_true(static_cast<std::size_t>(layout.n_unknowns()));
    for (auto& x : x_true) x = rng.normal();
    // Make the truth consistent with the constraint rows (all pin the
    // first 4-wide window of each axis to zero sum): subtract the
    // offending constant per axis. Otherwise the constraints contradict
    // x* and inject structured residuals into every observation.
    if (n_constraints > 0) {
      for (int axis = 0; axis < kAttBlocks; ++axis) {
        real* xa = x_true.data() + layout.att_offset() +
                   axis * layout.att_stride();
        real sum = 0;
        for (int i = 0; i < kAttBlockSize; ++i) sum += xa[i];
        const real shift = sum / kAttBlockSize;
        for (col_index j = 0; j < layout.att_stride(); ++j) xa[j] -= shift;
      }
    }
    // b = A x* (+ noise) over observation rows; constraint rows keep
    // b = 0, now exactly satisfied by the adjusted truth.
    auto kt = out.A.known_terms();
    const auto& M = out.A;
    const auto vals = M.values();
    const auto ia = M.matrix_index_astro();
    const auto it = M.matrix_index_att();
    const auto ic = M.instr_col();
    const ParameterLayout& lay = M.layout();
    for (row_index rr = 0; rr < M.n_obs(); ++rr) {
      const auto r = static_cast<std::size_t>(rr);
      real sum = 0;
      const real* rv = vals.data() + r * kNnzPerRow;
      for (int i = 0; i < kAstroNnzPerRow; ++i)
        sum += rv[kAstroCoeffOffset + i] *
               x_true[static_cast<std::size_t>(ia[r] + i)];
      for (int blk = 0; blk < kAttBlocks; ++blk)
        for (int i = 0; i < kAttBlockSize; ++i)
          sum += rv[kAttCoeffOffset + blk * kAttBlockSize + i] *
                 x_true[static_cast<std::size_t>(
                     lay.att_offset() + it[r] + blk * lay.att_stride() + i)];
      for (int i = 0; i < kInstrNnzPerRow; ++i)
        sum += rv[kInstrCoeffOffset + i] *
               x_true[static_cast<std::size_t>(
                   lay.instr_offset() + ic[r * kInstrNnzPerRow + i])];
      if (lay.has_global())
        sum += rv[kGlobCoeffOffset] *
               x_true[static_cast<std::size_t>(lay.glob_offset())];
      if (config.noise_sigma > 0) sum += rng.normal(0.0, config.noise_sigma);
      kt[r] = sum;
    }
    out.ground_truth = std::move(x_true);
  }
  return out;
}

GeneratorConfig config_for_footprint(byte_size bytes, std::uint64_t seed) {
  GAIA_CHECK(bytes >= 64 * kKiB, "footprint too small to shape a system");
  GeneratorConfig cfg;
  cfg.seed = seed;

  // Per-row storage cost (see SystemMatrix::footprint_bytes_for).
  constexpr double kBytesPerRow =
      kNnzPerRow * sizeof(real) + 2 * sizeof(col_index) +
      kInstrNnzPerRow * sizeof(std::int32_t) + sizeof(real);
  // Production-like row/unknown ratio: hundreds of observations per star
  // keep the unknown vector (and the solver's per-unknown work vectors)
  // small relative to the matrix, which is what lets the paper run a
  // 30 GB problem on the 32 GB V100.
  cfg.obs_per_star_mean = 50.0;

  const double rows =
      static_cast<double>(bytes) /
      (kBytesPerRow + sizeof(row_index) / cfg.obs_per_star_mean);
  cfg.n_stars = std::max<row_index>(
      8, static_cast<row_index>(rows / cfg.obs_per_star_mean));

  // Secondary sections scale sub-linearly (production: astro ~90 % of the
  // footprint, everything else ~10 %): grow them with rows^(1/3).
  const double scale = std::cbrt(rows / 1024.0);
  cfg.att_dof_per_axis = std::max<col_index>(
      32, static_cast<col_index>(32.0 * scale));
  cfg.n_instr_params = std::max<col_index>(
      24, static_cast<col_index>(24.0 * scale));
  cfg.has_global = true;
  cfg.constraints_per_axis = 1;
  return cfg;
}

}  // namespace gaia::matrix
