#include "matrix/layout.hpp"

namespace gaia::matrix {

ParameterLayout::ParameterLayout(row_index n_stars, int att_axes,
                                 col_index att_dof_per_axis,
                                 col_index n_instr_params, bool has_global)
    : n_stars_(n_stars),
      att_axes_(att_axes),
      att_dof_(att_dof_per_axis),
      n_instr_(n_instr_params),
      has_global_(has_global) {
  GAIA_CHECK(n_stars_ > 0, "layout needs at least one star");
  GAIA_CHECK(att_axes_ == kAttBlocks,
             "AVU-GSR rows touch exactly 3 attitude axes");
  GAIA_CHECK(att_dof_ >= kAttBlockSize,
             "attitude axis must fit one 4-wide block");
  GAIA_CHECK(n_instr_ >= kInstrNnzPerRow,
             "instrumental section must fit 6 distinct columns");
}

}  // namespace gaia::matrix
