/// \file generator.hpp
/// \brief Seeded synthetic Gaia-like dataset generator.
///
/// Mirrors the paper's artifact: "the solver ... randomly generates, given
/// a certain seed, a dataset with the specified size" that is distributed
/// in the system like the real (NDA'd) data:
///
/// * observation rows grouped contiguously by star (block diagonal
///   astrometric part), observation counts per star drawn around a mean;
/// * attitude access follows the measurement-campaign stride: the block
///   start drifts slowly along the attitude spline as observation time
///   advances, identical across the 3 axes of one row;
/// * instrumental columns are irregular (pseudo-random per row);
/// * at most one global (PPN gamma) coefficient per row.
///
/// Two generation modes:
/// * kRandomRhs — b drawn randomly (the paper's P-measurement runs: only
///   iteration time matters, not convergence);
/// * kFromGroundTruth — a ground-truth x* is drawn and b = A x* (+ optional
///   gaussian noise), enabling end-to-end correctness validation.
#pragma once

#include <cstdint>
#include <optional>

#include "matrix/system_matrix.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gaia::matrix {

enum class RhsMode : std::uint8_t {
  kRandomRhs,
  kFromGroundTruth,
};

struct GeneratorConfig {
  std::uint64_t seed = 0x6761696173696dull;  // "gaiasim"
  row_index n_stars = 64;
  /// Mean observations per star (production is O(1e3); tests use small).
  double obs_per_star_mean = 12.0;
  /// Min observations per star; production guarantees >= 5 so the
  /// astrometric sub-block is overdetermined.
  row_index obs_per_star_min = 5;
  col_index att_dof_per_axis = 32;   ///< attitude DoF per axis (3 axes)
  col_index n_instr_params = 24;     ///< instrumental unknowns
  bool has_global = true;            ///< solve PPN gamma
  /// Attitude nullspace constraint rows appended per axis (production
  /// sets constraint equations to make the solution univocal).
  row_index constraints_per_axis = 1;
  RhsMode rhs_mode = RhsMode::kRandomRhs;
  /// Gaussian observation noise added to b in kFromGroundTruth mode.
  real noise_sigma = 0.0;
};

/// A generated problem: the system plus (in kFromGroundTruth mode) the
/// ground truth it was built from.
struct GeneratedSystem {
  SystemMatrix A;
  std::optional<std::vector<real>> ground_truth;  ///< size n_unknowns
};

/// Deterministically generates a system from the configuration: equal
/// seeds produce bit-identical systems.
GeneratedSystem generate_system(const GeneratorConfig& config);

/// Computes a configuration whose generated system occupies approximately
/// `bytes` of memory (the paper's "10 GB / 30 GB / 60 GB problem"),
/// keeping the production proportions: the astrometric unknowns dominate
/// the column space (>99 %) while the attitude/instrumental sections stay
/// small (the per-row coefficient split is fixed by the 5/12/6/1
/// structure). Dimension knobs other than n_stars scale with the cube
/// root of the size so secondary sections grow, but slowly.
GeneratorConfig config_for_footprint(byte_size bytes,
                                     std::uint64_t seed = 0x6761696173696dull);

}  // namespace gaia::matrix
