#include "matrix/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace gaia::matrix {

namespace {

constexpr char kMagic[8] = {'G', 'A', 'I', 'A', 'S', 'Y', 'S', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  GAIA_CHECK(is.good(), "truncated system file");
  return v;
}

template <typename T>
void write_span(std::ostream& os, std::span<const T> s) {
  os.write(reinterpret_cast<const char*>(s.data()),
           static_cast<std::streamsize>(s.size_bytes()));
}

template <typename T>
void read_span(std::istream& is, std::span<T> s) {
  is.read(reinterpret_cast<char*>(s.data()),
          static_cast<std::streamsize>(s.size_bytes()));
  GAIA_CHECK(is.good(), "truncated system file");
}

}  // namespace

void save_system(const SystemMatrix& A, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  const ParameterLayout& lay = A.layout();
  write_pod(os, lay.n_stars());
  write_pod(os, static_cast<std::int64_t>(lay.att_axes()));
  write_pod(os, lay.att_dof_per_axis());
  write_pod(os, lay.n_instr_params());
  write_pod(os, static_cast<std::int64_t>(lay.has_global() ? 1 : 0));
  write_pod(os, A.n_obs());
  write_pod(os, A.n_constraints());
  write_span(os, A.values());
  write_span(os, A.matrix_index_astro());
  write_span(os, A.matrix_index_att());
  write_span(os, A.instr_col());
  write_span(os, A.known_terms());
  write_span(os, A.star_row_start());
  GAIA_CHECK(os.good(), "system write failed");
}

void save_system(const SystemMatrix& A, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  GAIA_CHECK(f.good(), "cannot open for writing: " + path);
  save_system(A, f);
}

SystemMatrix load_system(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  GAIA_CHECK(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
             "not a gaia system file (bad magic)");
  const auto n_stars = read_pod<row_index>(is);
  const auto att_axes = static_cast<int>(read_pod<std::int64_t>(is));
  const auto att_dof = read_pod<col_index>(is);
  const auto n_instr = read_pod<col_index>(is);
  const bool has_global = read_pod<std::int64_t>(is) != 0;
  const auto n_obs = read_pod<row_index>(is);
  const auto n_constraints = read_pod<row_index>(is);

  ParameterLayout layout(n_stars, att_axes, att_dof, n_instr, has_global);
  SystemMatrix A(layout, n_obs, n_constraints);
  read_span(is, A.values());
  read_span(is, A.matrix_index_astro());
  read_span(is, A.matrix_index_att());
  read_span(is, A.instr_col());
  read_span(is, A.known_terms());
  read_span(is, A.star_row_start());
  return A;
}

SystemMatrix load_system(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  GAIA_CHECK(f.good(), "cannot open for reading: " + path);
  return load_system(f);
}

}  // namespace gaia::matrix
