/// \file storage_layout.hpp
/// \brief Pluggable coefficient-storage layouts for the system matrix.
///
/// The aprod kernels are memory-bandwidth-bound (paper §VI), and the
/// seed stores all 24 per-row coefficients in one AoS-ish record: any
/// kernel that needs only its 5/12/6/1-coefficient slice still streams
/// the full 192-byte record through the cache. Layout is therefore a
/// performance axis of its own, next to the launch shape and scatter
/// strategy:
///
///  * `kSeedAos`     — the seed's row-record layout, bit-for-bit. All
///    existing checkpoints, ABFT checksums, and tuning entries keep
///    their meaning.
///  * `kSoaTiled`    — one structure-of-arrays stream per coefficient
///    position, plane-major within cache-blocked row tiles: kernel k
///    streams exactly its own coefficients, contiguously, one tile at
///    a time.
///  * `kSlicedInstr` — SoA-tiled astro/att/glob streams plus a
///    SELL-C-sigma-style sliced format for the irregular instrumental
///    block: rows are sorted by their first instrumental column within
///    a sigma window, grouped into fixed-height slices, and stored
///    lane-major with padded lanes so consecutive workers touch
///    consecutive memory and nearby columns.
///
/// Header-only on purpose: `backends` (KernelConfig) must see the enum
/// but does not link `gaia_matrix`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace gaia::matrix {

enum class StorageLayout : std::uint8_t {
  kSeedAos = 0,
  kSoaTiled,
  kSlicedInstr,
};

inline constexpr int kNumStorageLayouts = 3;

/// Rows per SoA tile. 256 rows x 8 B doubles keeps one coefficient
/// plane of a tile (2 KiB) plus the gather indices comfortably in L1
/// while amortizing the tile-switch bookkeeping.
inline constexpr std::int64_t kSoaTileRows = 256;

/// Lanes per instrumental slice (the C of SELL-C-sigma). 64 matches
/// both a GPU warp pair and a full cache line of row indices.
inline constexpr std::int64_t kSliceHeight = 64;

/// Rows per slice-sorting window (the sigma). Sorting only within a
/// bounded window keeps the build O(n log sigma) and the row->slice
/// permutation local, which bounds the scatter working set.
inline constexpr std::int64_t kSliceSigmaWindow = 4096;

[[nodiscard]] inline std::string to_string(StorageLayout layout) {
  switch (layout) {
    case StorageLayout::kSeedAos:
      return "seed_aos";
    case StorageLayout::kSoaTiled:
      return "soa_tiled";
    case StorageLayout::kSlicedInstr:
      return "sliced_instr";
  }
  return "unknown";
}

/// Accepts the canonical names plus the CLI short forms.
[[nodiscard]] inline std::optional<StorageLayout> parse_storage_layout(
    const std::string& name) {
  if (name == "seed_aos" || name == "seed" || name == "aos")
    return StorageLayout::kSeedAos;
  if (name == "soa_tiled" || name == "soa") return StorageLayout::kSoaTiled;
  if (name == "sliced_instr" || name == "sliced")
    return StorageLayout::kSlicedInstr;
  return std::nullopt;
}

}  // namespace gaia::matrix
