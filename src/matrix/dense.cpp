#include "matrix/dense.hpp"

#include <cmath>

namespace gaia::matrix {

std::vector<real> to_dense(const SystemMatrix& A, byte_size max_bytes) {
  const auto rows = static_cast<byte_size>(A.n_rows());
  const auto cols = static_cast<byte_size>(A.n_cols());
  GAIA_CHECK(rows * cols * sizeof(real) <= max_bytes,
             "dense expansion would exceed the oracle size limit");

  std::vector<real> M(static_cast<std::size_t>(rows * cols), real{0});
  const ParameterLayout& lay = A.layout();
  const auto vals = A.values();
  const auto ia = A.matrix_index_astro();
  const auto it = A.matrix_index_att();
  const auto ic = A.instr_col();

  for (row_index r = 0; r < A.n_rows(); ++r) {
    const auto ri = static_cast<std::size_t>(r);
    real* out = M.data() + ri * static_cast<std::size_t>(A.n_cols());
    const real* rv = vals.data() + ri * kNnzPerRow;
    for (int i = 0; i < kAstroNnzPerRow; ++i)
      out[ia[ri] + i] += rv[kAstroCoeffOffset + i];
    for (int blk = 0; blk < kAttBlocks; ++blk)
      for (int i = 0; i < kAttBlockSize; ++i)
        out[lay.att_offset() + it[ri] + blk * lay.att_stride() + i] +=
            rv[kAttCoeffOffset + blk * kAttBlockSize + i];
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      out[lay.instr_offset() + ic[ri * kInstrNnzPerRow + i]] +=
          rv[kInstrCoeffOffset + i];
    if (lay.has_global()) out[lay.glob_offset()] += rv[kGlobCoeffOffset];
  }
  return M;
}

std::vector<real> dense_matvec(const std::vector<real>& M, row_index rows,
                               col_index cols, std::span<const real> x) {
  GAIA_CHECK(static_cast<col_index>(x.size()) == cols,
             "matvec size mismatch");
  std::vector<real> y(static_cast<std::size_t>(rows), real{0});
  for (row_index r = 0; r < rows; ++r) {
    const real* mr =
        M.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols);
    real sum = 0;
    for (col_index c = 0; c < cols; ++c)
      sum += mr[c] * x[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = sum;
  }
  return y;
}

std::vector<real> dense_rmatvec(const std::vector<real>& M, row_index rows,
                                col_index cols, std::span<const real> x) {
  GAIA_CHECK(static_cast<row_index>(x.size()) == rows,
             "rmatvec size mismatch");
  std::vector<real> y(static_cast<std::size_t>(cols), real{0});
  for (row_index r = 0; r < rows; ++r) {
    const real* mr =
        M.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols);
    const real xr = x[static_cast<std::size_t>(r)];
    for (col_index c = 0; c < cols; ++c)
      y[static_cast<std::size_t>(c)] += mr[c] * xr;
  }
  return y;
}

std::vector<real> dense_least_squares(const std::vector<real>& M,
                                      row_index rows, col_index cols,
                                      std::span<const real> b, real damp) {
  GAIA_CHECK(static_cast<row_index>(b.size()) == rows,
             "least-squares rhs size mismatch");
  const auto n = static_cast<std::size_t>(cols);

  // Normal matrix N = M^T M + damp^2 I and rhs g = M^T b.
  std::vector<real> N(n * n, real{0});
  for (row_index r = 0; r < rows; ++r) {
    const real* mr = M.data() + static_cast<std::size_t>(r) * n;
    for (std::size_t i = 0; i < n; ++i) {
      if (mr[i] == real{0}) continue;
      for (std::size_t j = i; j < n; ++j) N[i * n + j] += mr[i] * mr[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    N[i * n + i] += damp * damp;
    for (std::size_t j = 0; j < i; ++j) N[i * n + j] = N[j * n + i];
  }
  std::vector<real> g = dense_rmatvec(M, rows, cols, b);

  // Cholesky N = L L^T (N is SPD when M has full column rank or damp > 0).
  std::vector<real> L(n * n, real{0});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      real sum = N[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= L[i * n + k] * L[j * n + k];
      if (i == j) {
        GAIA_CHECK(sum > real{0},
                   "normal matrix not positive definite (rank deficient "
                   "system; add constraints or damping)");
        L[i * n + i] = std::sqrt(sum);
      } else {
        L[i * n + j] = sum / L[j * n + j];
      }
    }
  }

  // Forward/backward substitution.
  std::vector<real> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    real sum = g[i];
    for (std::size_t k = 0; k < i; ++k) sum -= L[i * n + k] * y[k];
    y[i] = sum / L[i * n + i];
  }
  std::vector<real> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    real sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= L[k * n + ii] * x[k];
    x[ii] = sum / L[ii * n + ii];
  }
  return x;
}

}  // namespace gaia::matrix
