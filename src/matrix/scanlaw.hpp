/// \file scanlaw.hpp
/// \brief Simplified Gaia nominal scanning law and astrometric system
/// generation from it — the pipeline's "System Generation" stage
/// (paper Fig. 1).
///
/// The plain generator (`generator.hpp`) draws coefficients randomly;
/// this module builds them the way the real pre-processor does: a star
/// catalogue, a scanning law that determines *when* and *at which scan
/// angle* each star is observed, and the standard linearized astrometric
/// observation equation whose partial derivatives become the row's five
/// astrometric coefficients:
///
///   along-scan abscissa residual =
///       sin(psi) * d(alpha*) + cos(psi) * d(delta)
///     + f_parallax(t, psi) * d(parallax)
///     + (t - t_ref) * sin(psi) * d(mu_alpha*)
///     + (t - t_ref) * cos(psi) * d(mu_delta)
///
/// where psi is the scan position angle at transit time t. The attitude
/// block start follows directly from the transit time (the spline knot
/// active at t), reproducing the "stride stemming from the measurement
/// campaign" structurally instead of statistically.
///
/// The model is deliberately simplified (circular scan-angle evolution,
/// uniform sky coverage) — it exercises the same code paths and produces
/// the same sparsity structure; it is not a flight-dynamics simulator.
#pragma once

#include <vector>

#include "matrix/generator.hpp"
#include "matrix/system_matrix.hpp"
#include "util/rng.hpp"

namespace gaia::matrix {

/// A catalogue star: ICRS-like position (radians) used by the scan law
/// and the de-rotation stage.
struct Star {
  real alpha = 0;  ///< right ascension [0, 2pi)
  real delta = 0;  ///< declination (-pi/2, pi/2)
};

/// One transit of a star across the focal plane.
struct Transit {
  real time = 0;        ///< years since mission reference epoch
  real scan_angle = 0;  ///< scan position angle psi (radians)
};

struct ScanLawConfig {
  std::uint64_t seed = 0x5343414eull;  // "SCAN"
  row_index n_stars = 64;
  /// Mission duration in years (nominal: 5, extended: ~10).
  real mission_years = 5.0;
  /// Satellite spin period (hours) -> scan-angle evolution rate.
  real spin_period_hours = 6.0;
  /// Precession period of the spin axis (days).
  real precession_days = 63.0;
  /// Mean transits per star over the mission (production ~70-100; keep
  /// small for tests).
  double transits_per_star_mean = 12.0;
  row_index transits_per_star_min = 5;
  /// Attitude spline degrees of freedom per axis over the mission.
  col_index att_dof_per_axis = 32;
  col_index n_instr_params = 24;
  bool has_global = true;
  /// Constraint rows per attitude axis, placed at distinct spline knots.
  /// Must be >= 2: the B-spline basis reproduces constants *and* linear
  /// ramps, so each axis carries a two-dimensional sphere-attitude
  /// degeneracy (against the delta/mu_delta and alpha*/mu_alpha* star
  /// columns) that a single constraint cannot pin — this is the rigid
  /// rotation + spin indeterminacy the pipeline's constraint equations
  /// and de-rotation stage exist for.
  row_index constraints_per_axis = 2;
  /// Observation noise on the synthetic along-scan abscissae.
  real noise_sigma = 0.0;
};

/// Deterministic synthetic star catalogue, uniform on the sphere.
std::vector<Star> make_catalogue(row_index n_stars, std::uint64_t seed);

/// Transit times and scan angles for one star under the nominal law.
/// Deterministic in (config, star, star_index).
std::vector<Transit> transits_for(const ScanLawConfig& config,
                                  const Star& star, row_index star_index);

/// Result of scan-law generation: the system, the catalogue, the ground
/// truth the right-hand side was built from, and each observation row's
/// transit (for diagnostics / de-rotation weighting).
struct ScanLawSystem {
  SystemMatrix A;
  std::vector<Star> catalogue;
  std::vector<real> ground_truth;  ///< size n_unknowns
  std::vector<Transit> row_transits;  ///< size n_obs
};

/// Builds the full AVU-GSR system from the scan law: astrometric
/// coefficients from the observation-equation partials, attitude block
/// start from the transit time, instrumental columns from the (time,
/// angle)-dependent focal-plane crossing, b = A x_true + noise.
ScanLawSystem generate_from_scanlaw(const ScanLawConfig& config);

}  // namespace gaia::matrix
