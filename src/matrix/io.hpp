/// \file io.hpp
/// \brief Binary (de)serialization of generated systems.
///
/// Lets the validation experiments persist the reference dataset once and
/// replay it against every backend, mirroring how the paper's validation
/// replays the production datasets.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/system_matrix.hpp"

namespace gaia::matrix {

/// Writes the system in a versioned little-endian binary format.
void save_system(const SystemMatrix& A, std::ostream& os);
void save_system(const SystemMatrix& A, const std::string& path);

/// Reads a system back; throws gaia::Error on format/version mismatch or
/// truncated input.
SystemMatrix load_system(std::istream& is);
SystemMatrix load_system(const std::string& path);

}  // namespace gaia::matrix
