#include "matrix/system_matrix.hpp"

#include <algorithm>
#include <array>
#include <string>

namespace gaia::matrix {

SystemMatrix::SystemMatrix(ParameterLayout layout, row_index n_obs,
                           row_index n_constraints)
    : layout_(layout), n_obs_(n_obs), n_constraints_(n_constraints) {
  GAIA_CHECK(n_obs_ > 0, "system needs at least one observation row");
  GAIA_CHECK(n_constraints_ >= 0, "negative constraint count");
  const auto rows = static_cast<std::size_t>(n_rows());
  values_.assign(rows * kNnzPerRow, real{0});
  matrix_index_astro_.assign(rows, 0);
  matrix_index_att_.assign(rows, 0);
  instr_col_.assign(rows * kInstrNnzPerRow, 0);
  known_terms_.assign(rows, real{0});
  star_row_start_.assign(static_cast<std::size_t>(layout_.n_stars()) + 1, 0);
}

byte_size SystemMatrix::footprint_bytes() const {
  return footprint_bytes_for(n_rows(), layout_.n_stars());
}

byte_size SystemMatrix::footprint_bytes_for(row_index n_rows,
                                            row_index n_stars) {
  const auto rows = static_cast<byte_size>(n_rows);
  byte_size bytes = 0;
  bytes += rows * kNnzPerRow * sizeof(real);          // coefficients
  bytes += rows * sizeof(col_index);                  // matrixIndexAstro
  bytes += rows * sizeof(col_index);                  // matrixIndexAtt
  bytes += rows * kInstrNnzPerRow * sizeof(std::int32_t);  // instrCol
  bytes += rows * sizeof(real);                       // known terms
  bytes += (static_cast<byte_size>(n_stars) + 1) * sizeof(row_index);
  return bytes;
}

void SystemMatrix::validate_structure() const {
  const col_index n_astro = layout_.n_astro_params();
  const col_index n_att = layout_.n_att_params();
  const col_index n_instr = layout_.n_instr_params();
  const col_index stride = layout_.att_stride();

  for (row_index r = 0; r < n_rows(); ++r) {
    const col_index a0 = matrix_index_astro_[static_cast<std::size_t>(r)];
    GAIA_CHECK(a0 >= 0 && a0 + kAstroNnzPerRow <= n_astro,
               "astrometric index out of range at row " + std::to_string(r));
    GAIA_CHECK(a0 % kAstroParamsPerStar == 0,
               "astrometric index not star-aligned at row " +
                   std::to_string(r));

    const col_index t0 = matrix_index_att_[static_cast<std::size_t>(r)];
    GAIA_CHECK(t0 >= 0, "negative attitude index");
    // The three axis blocks must each stay inside their own axis range.
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      const col_index start = t0 + blk * stride;
      GAIA_CHECK(start + kAttBlockSize <= n_att,
                 "attitude block out of range at row " + std::to_string(r));
      GAIA_CHECK(start / stride == blk,
                 "attitude block crosses axis boundary at row " +
                     std::to_string(r));
      GAIA_CHECK(start % stride + kAttBlockSize <= stride,
                 "attitude block wraps axis at row " + std::to_string(r));
    }

    std::array<std::int32_t, kInstrNnzPerRow> cols{};
    for (int k = 0; k < kInstrNnzPerRow; ++k) {
      const std::int32_t c =
          instr_col_[static_cast<std::size_t>(r) * kInstrNnzPerRow + k];
      GAIA_CHECK(c >= 0 && c < n_instr,
                 "instrumental column out of range at row " +
                     std::to_string(r));
      cols[static_cast<std::size_t>(k)] = c;
    }
    std::sort(cols.begin(), cols.end());
    GAIA_CHECK(std::adjacent_find(cols.begin(), cols.end()) == cols.end(),
               "duplicate instrumental column at row " + std::to_string(r));
  }

  // Constraint rows are outside the star partition, so the atomic-free
  // star-parallel aprod2 astrometric kernel never visits them; they must
  // therefore carry no astrometric contribution.
  for (row_index r = n_obs_; r < n_rows(); ++r) {
    const real* rv = values_.data() +
                     static_cast<std::size_t>(r) * kNnzPerRow +
                     kAstroCoeffOffset;
    for (int i = 0; i < kAstroNnzPerRow; ++i) {
      GAIA_CHECK(rv[i] == real{0},
                 "constraint row " + std::to_string(r) +
                     " has a non-zero astrometric coefficient");
    }
  }

  // Star partition must cover exactly the observation rows, monotonically.
  GAIA_CHECK(star_row_start_.front() == 0, "star partition must start at 0");
  GAIA_CHECK(star_row_start_.back() == n_obs_,
             "star partition must end at n_obs");
  for (std::size_t s = 0; s + 1 < star_row_start_.size(); ++s) {
    GAIA_CHECK(star_row_start_[s] <= star_row_start_[s + 1],
               "star partition not monotone at star " + std::to_string(s));
  }
  // Every observation row's astro index must match its owning star.
  for (row_index s = 0; s < layout_.n_stars(); ++s) {
    for (row_index r = star_row_start_[static_cast<std::size_t>(s)];
         r < star_row_start_[static_cast<std::size_t>(s) + 1]; ++r) {
      GAIA_CHECK(matrix_index_astro_[static_cast<std::size_t>(r)] ==
                     s * kAstroParamsPerStar,
                 "row " + std::to_string(r) + " astro index disagrees with "
                 "owning star " + std::to_string(s));
    }
  }
}

}  // namespace gaia::matrix
