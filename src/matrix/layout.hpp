/// \file layout.hpp
/// \brief Layout of the unknown vector x of the AVU-GSR system.
///
/// The unknowns are partitioned into four contiguous sections (paper Fig 2):
///
///   [ astrometric | attitude | instrumental | global ]
///
/// * astrometric: 5 parameters per primary star (block diagonal part);
/// * attitude: the satellite attitude splines — 3 axes, each with a number
///   of degrees of freedom; a row touches 3 blocks of 4 consecutive
///   coefficients, one block per axis, separated by a fixed stride;
/// * instrumental: calibration unknowns with an irregular access pattern;
/// * global: at most one parameter (the PPN gamma), optional.
#pragma once

#include "util/error.hpp"
#include "util/types.hpp"

namespace gaia::matrix {

/// Immutable description of the unknown space. All cross-section offsets
/// derive from it, so every module (kernels, generator, validation)
/// agrees on where each parameter block lives.
class ParameterLayout {
 public:
  ParameterLayout() = default;

  /// \param n_stars        number of primary stars (5 unknowns each)
  /// \param att_axes       number of attitude axes (3 in production)
  /// \param att_dof_per_axis degrees of freedom per attitude axis; must be
  ///                       >= kAttBlockSize so a 4-wide block fits
  /// \param n_instr_params number of instrumental unknowns (>= 6 so a
  ///                       row's 6 irregular columns can be distinct)
  /// \param has_global     whether the PPN-gamma global unknown is solved
  ParameterLayout(row_index n_stars, int att_axes, col_index att_dof_per_axis,
                  col_index n_instr_params, bool has_global);

  [[nodiscard]] row_index n_stars() const { return n_stars_; }
  [[nodiscard]] int att_axes() const { return att_axes_; }
  [[nodiscard]] col_index att_dof_per_axis() const { return att_dof_; }
  [[nodiscard]] bool has_global() const { return has_global_; }

  /// Stride between the start of consecutive per-axis attitude blocks in a
  /// row: exactly the per-axis degree-of-freedom count, so axis k of the
  /// attitude section occupies [k*stride, (k+1)*stride).
  [[nodiscard]] col_index att_stride() const { return att_dof_; }

  [[nodiscard]] col_index n_astro_params() const {
    return n_stars_ * kAstroParamsPerStar;
  }
  [[nodiscard]] col_index n_att_params() const {
    return static_cast<col_index>(att_axes_) * att_dof_;
  }
  [[nodiscard]] col_index n_instr_params() const { return n_instr_; }
  [[nodiscard]] col_index n_glob_params() const { return has_global_ ? 1 : 0; }

  /// Section offsets within the global unknown vector.
  [[nodiscard]] col_index astro_offset() const { return 0; }
  [[nodiscard]] col_index att_offset() const { return n_astro_params(); }
  [[nodiscard]] col_index instr_offset() const {
    return att_offset() + n_att_params();
  }
  [[nodiscard]] col_index glob_offset() const {
    return instr_offset() + n_instr_params();
  }

  /// Total number of unknowns.
  [[nodiscard]] col_index n_unknowns() const {
    return glob_offset() + n_glob_params();
  }

  bool operator==(const ParameterLayout&) const = default;

 private:
  row_index n_stars_ = 0;
  int att_axes_ = 0;
  col_index att_dof_ = 0;
  col_index n_instr_ = 0;
  bool has_global_ = false;
};

}  // namespace gaia::matrix
