/// \file system_matrix.hpp
/// \brief Compressed storage of the reduced coefficient matrix A'.
///
/// Saving only the non-zeros reduces the problem by seven orders of
/// magnitude (paper SIII-B). Each observation row carries exactly 24
/// coefficients, stored row-major as
///
///   [ 5 astrometric | 12 attitude | 6 instrumental | 1 global ]
///
/// plus the index arrays of the production code:
///   * matrixIndexAstro[row]: first astrometric column (== star_id * 5,
///     global column space — the astrometric section starts at offset 0);
///   * matrixIndexAtt[row]: first attitude coefficient within the
///     attitude section (axis blocks at +0, +stride, +2*stride);
///   * instrCol[row*6 + k]: instrumental columns within the instrumental
///     section (irregular, stored explicitly);
///   * the global parameter, when present, is always column 0 of the
///     global section, so it needs no index array.
///
/// Constraint rows (needed to make the overdetermined system univocal,
/// paper SIII-B) are appended after the observation rows; they use the
/// same 24-non-zero structure with zeroed coefficients for the blocks
/// they do not constrain, so every kernel treats all rows uniformly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "matrix/layout.hpp"
#include "util/types.hpp"

namespace gaia::matrix {

/// Offsets of the four blocks inside a row's 24-coefficient record.
inline constexpr int kAstroCoeffOffset = 0;
inline constexpr int kAttCoeffOffset = kAstroNnzPerRow;             // 5
inline constexpr int kInstrCoeffOffset =
    kAttCoeffOffset + kAttNnzPerRow;                                // 17
inline constexpr int kGlobCoeffOffset =
    kInstrCoeffOffset + kInstrNnzPerRow;                            // 23

/// The reduced system A' x = b (one MPI-rank's share in production; the
/// whole system here).
class SystemMatrix {
 public:
  SystemMatrix() = default;

  /// Allocates storage for `n_obs` observation rows plus `n_constraints`
  /// constraint rows over the given unknown layout. Coefficients start
  /// zeroed; index arrays start at 0 and must be filled by the caller
  /// (normally the generator).
  SystemMatrix(ParameterLayout layout, row_index n_obs,
               row_index n_constraints);

  [[nodiscard]] const ParameterLayout& layout() const { return layout_; }

  /// Observation rows (excludes constraints).
  [[nodiscard]] row_index n_obs() const { return n_obs_; }
  /// Appended constraint rows.
  [[nodiscard]] row_index n_constraints() const { return n_constraints_; }
  /// Total rows processed by the kernels.
  [[nodiscard]] row_index n_rows() const { return n_obs_ + n_constraints_; }
  [[nodiscard]] col_index n_cols() const { return layout_.n_unknowns(); }

  /// Row-major coefficient records, `n_rows() * kNnzPerRow` doubles.
  [[nodiscard]] std::span<real> values() { return values_; }
  [[nodiscard]] std::span<const real> values() const { return values_; }

  /// First astrometric column per row (global column space).
  [[nodiscard]] std::span<col_index> matrix_index_astro() {
    return matrix_index_astro_;
  }
  [[nodiscard]] std::span<const col_index> matrix_index_astro() const {
    return matrix_index_astro_;
  }

  /// First attitude coefficient per row (attitude-section-local).
  [[nodiscard]] std::span<col_index> matrix_index_att() {
    return matrix_index_att_;
  }
  [[nodiscard]] std::span<const col_index> matrix_index_att() const {
    return matrix_index_att_;
  }

  /// Instrumental columns, `n_rows() * kInstrNnzPerRow` int32s
  /// (instrumental-section-local; the section is < 2^31 wide even at
  /// production scale, and the narrower type matters for the memory
  /// footprint the study sizes against).
  [[nodiscard]] std::span<std::int32_t> instr_col() { return instr_col_; }
  [[nodiscard]] std::span<const std::int32_t> instr_col() const {
    return instr_col_;
  }

  /// Known terms b, one per row (constraint rows typically carry 0).
  [[nodiscard]] std::span<real> known_terms() { return known_terms_; }
  [[nodiscard]] std::span<const real> known_terms() const {
    return known_terms_;
  }

  /// Row ranges per star: observation rows of star s are
  /// [star_row_start()[s], star_row_start()[s+1]). Enables the
  /// atomic-free aprod2 astrometric kernel (block-diagonal structure).
  [[nodiscard]] std::span<row_index> star_row_start() {
    return star_row_start_;
  }
  [[nodiscard]] std::span<const row_index> star_row_start() const {
    return star_row_start_;
  }

  /// Coefficient record of one row.
  [[nodiscard]] std::span<real, kNnzPerRow> row_values(row_index r) {
    return std::span<real, kNnzPerRow>(values_.data() + r * kNnzPerRow,
                                       kNnzPerRow);
  }
  [[nodiscard]] std::span<const real, kNnzPerRow> row_values(
      row_index r) const {
    return std::span<const real, kNnzPerRow>(values_.data() + r * kNnzPerRow,
                                             kNnzPerRow);
  }

  /// Memory footprint of the system data (matrix + indexes + known
  /// terms), the quantity the paper sizes problems by ("10 GB problem").
  [[nodiscard]] byte_size footprint_bytes() const;

  /// Footprint a system with these dimensions would occupy, without
  /// allocating it. Shared with the generator's inverse sizing and the
  /// performance model's capacity checks.
  static byte_size footprint_bytes_for(row_index n_rows, row_index n_stars);

  /// Structural sanity check: every index in range, attitude blocks
  /// within their axis, instrumental columns distinct per row. Throws
  /// gaia::Error describing the first violation.
  void validate_structure() const;

 private:
  ParameterLayout layout_{};
  row_index n_obs_ = 0;
  row_index n_constraints_ = 0;
  std::vector<real> values_;
  std::vector<col_index> matrix_index_astro_;
  std::vector<col_index> matrix_index_att_;
  std::vector<std::int32_t> instr_col_;
  std::vector<real> known_terms_;
  std::vector<row_index> star_row_start_;
};

}  // namespace gaia::matrix
