/// \file layouted_system.hpp
/// \brief Derived coefficient layouts built once from a SystemMatrix.
///
/// `LayoutedSystem` owns the alternative storage layouts of one system:
/// the seed's row-record arrays stay the source of truth (checkpoints,
/// I/O, and the generator all speak it), and the SoA-tiled streams and
/// the sliced instrumental format are derived views built on demand.
/// Kernels never see this class — they read raw pointers + scalars via
/// the layout descriptors `SystemView` carries — so the device/GPU
/// story stays pointer-based.
///
/// Build is serial and deterministic: same matrix, same derived bytes,
/// bit for bit. Determinism matters because the sliced format fixes the
/// lane->row permutation that the instrumental kernels iterate in, and
/// fixed-config runs must be bit-identical across repeats.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/storage_layout.hpp"
#include "matrix/system_matrix.hpp"
#include "util/types.hpp"

namespace gaia::matrix {

/// Structure-of-arrays coefficient streams, plane-major within row
/// tiles of `kSoaTileRows`: coefficient i of row r lives at
///
///   stream[(tile(r) * planes + i) * kSoaTileRows + (r % kSoaTileRows)]
///
/// so a kernel sweeping one tile touches `planes` contiguous 2 KiB
/// plane segments instead of striding through 192 B AoS records. The
/// final partial tile is zero-padded to the full tile height; padded
/// rows carry zero coefficients and are never indexed by kernels (they
/// iterate r < n_rows), but the padding keeps every plane segment
/// aligned and the addressing branch-free.
struct SoaStreams {
  std::vector<real> astro;  ///< kAstroNnzPerRow planes
  std::vector<real> att;    ///< kAttNnzPerRow planes
  std::vector<real> instr;  ///< kInstrNnzPerRow planes
  std::vector<real> glob;   ///< 1 plane
  row_index n_rows = 0;
  row_index padded_rows = 0;  ///< n_tiles * kSoaTileRows

  [[nodiscard]] bool built() const { return padded_rows > 0; }
  [[nodiscard]] byte_size bytes() const {
    return (astro.size() + att.size() + instr.size() + glob.size()) *
           sizeof(real);
  }
};

/// SELL-C-sigma-style storage of the irregular instrumental block.
///
/// Rows are stable-sorted by their first instrumental column within
/// sigma windows of `kSliceSigmaWindow` rows, then grouped into slices
/// of `kSliceHeight` lanes. Values and columns are stored lane-major,
///
///   slice_values[(s * kInstrNnzPerRow + j) * kSliceHeight + lane]
///
/// so `kSliceHeight` consecutive workers read consecutive memory and —
/// thanks to the sort — gather/scatter nearby instrumental columns,
/// which is what turns the block's ~90 % miss rate into cache reuse.
/// Padded lanes carry row -1 and zeroed values/columns.
struct SlicedInstr {
  std::vector<real> slice_values;        ///< n_slices * 6 * kSliceHeight
  std::vector<std::int32_t> slice_cols;  ///< same shape, section-local
  std::vector<row_index> slice_rows;     ///< n_slices * kSliceHeight, -1 pad
  /// Inverse permutation: row r occupies flat lane slot `row_slot[r]`
  /// (= slice * kSliceHeight + lane). Lets the privatized scatter keep
  /// iterating rows in ascending order — the fold stays bit-identical
  /// to the seed layout's worker partitioning.
  std::vector<row_index> row_slot;
  row_index n_rows = 0;
  row_index n_slices = 0;

  [[nodiscard]] bool built() const { return n_slices > 0; }
  [[nodiscard]] byte_size bytes() const {
    return slice_values.size() * sizeof(real) +
           slice_cols.size() * sizeof(std::int32_t) +
           (slice_rows.size() + row_slot.size()) * sizeof(row_index);
  }
};

/// Owner of the derived layouts of one system. Holds a reference to the
/// source matrix; the matrix must outlive it and must not be resized
/// while layouts are attached to views.
class LayoutedSystem {
 public:
  explicit LayoutedSystem(const SystemMatrix& A) : A_(&A) {}

  /// Builds the derived arrays a layout needs (idempotent; `kSeedAos`
  /// is a no-op). `kSlicedInstr` implies the SoA streams too: it uses
  /// them for the regular astro/att/glob blocks.
  void build(StorageLayout layout);

  /// True when every array `layout` needs has been built.
  [[nodiscard]] bool has(StorageLayout layout) const;

  [[nodiscard]] const SystemMatrix& matrix() const { return *A_; }
  [[nodiscard]] const SoaStreams& soa() const { return soa_; }
  [[nodiscard]] const SlicedInstr& sliced() const { return sliced_; }

  /// Bytes the derived arrays occupy on top of the seed storage.
  [[nodiscard]] byte_size derived_bytes() const {
    return soa_.bytes() + sliced_.bytes();
  }

  /// Coefficient bytes a full sweep of `layout` streams, padding
  /// included; the seed layout charges the whole 24-wide record.
  [[nodiscard]] byte_size padded_coefficient_bytes(StorageLayout layout) const;

  /// Coefficient bytes actually carrying information (n_rows * 24
  /// doubles) — identical for every layout; the padded/compacted ratio
  /// is the price of the regularized addressing.
  [[nodiscard]] byte_size compacted_coefficient_bytes() const;

 private:
  void build_soa();
  void build_sliced();

  const SystemMatrix* A_;
  SoaStreams soa_{};
  SlicedInstr sliced_{};
};

}  // namespace gaia::matrix
