/// \file layouted_system.hpp
/// \brief Derived coefficient layouts built once from a SystemMatrix.
///
/// `LayoutedSystem` owns the alternative storage layouts of one system:
/// the seed's row-record arrays stay the source of truth (checkpoints,
/// I/O, and the generator all speak it), and the SoA-tiled streams and
/// the sliced instrumental format are derived views built on demand.
/// Kernels never see this class — they read raw pointers + scalars via
/// the layout descriptors `SystemView` carries — so the device/GPU
/// story stays pointer-based.
///
/// Build is serial and deterministic: same matrix, same derived bytes,
/// bit for bit. Determinism matters because the sliced format fixes the
/// lane->row permutation that the instrumental kernels iterate in, and
/// fixed-config runs must be bit-identical across repeats.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/precision.hpp"
#include "matrix/storage_layout.hpp"
#include "matrix/system_matrix.hpp"
#include "util/types.hpp"

namespace gaia::matrix {

/// Structure-of-arrays coefficient streams, plane-major within row
/// tiles of `kSoaTileRows`: coefficient i of row r lives at
///
///   stream[(tile(r) * planes + i) * kSoaTileRows + (r % kSoaTileRows)]
///
/// so a kernel sweeping one tile touches `planes` contiguous 2 KiB
/// plane segments instead of striding through 192 B AoS records. The
/// final partial tile is zero-padded to the full tile height; padded
/// rows carry zero coefficients and are never indexed by kernels (they
/// iterate r < n_rows), but the padding keeps every plane segment
/// aligned and the addressing branch-free.
struct SoaStreams {
  std::vector<real> astro;  ///< kAstroNnzPerRow planes
  std::vector<real> att;    ///< kAttNnzPerRow planes
  std::vector<real> instr;  ///< kInstrNnzPerRow planes
  std::vector<real> glob;   ///< 1 plane
  row_index n_rows = 0;
  row_index padded_rows = 0;  ///< n_tiles * kSoaTileRows

  [[nodiscard]] bool built() const { return padded_rows > 0; }
  [[nodiscard]] byte_size bytes() const {
    return (astro.size() + att.size() + instr.size() + glob.size()) *
           sizeof(real);
  }
};

/// SELL-C-sigma-style storage of the irregular instrumental block.
///
/// Rows are stable-sorted by their first instrumental column within
/// sigma windows of `kSliceSigmaWindow` rows, then grouped into slices
/// of `kSliceHeight` lanes. Values and columns are stored lane-major,
///
///   slice_values[(s * kInstrNnzPerRow + j) * kSliceHeight + lane]
///
/// so `kSliceHeight` consecutive workers read consecutive memory and —
/// thanks to the sort — gather/scatter nearby instrumental columns,
/// which is what turns the block's ~90 % miss rate into cache reuse.
/// Padded lanes carry row -1 and zeroed values/columns.
struct SlicedInstr {
  std::vector<real> slice_values;        ///< n_slices * 6 * kSliceHeight
  std::vector<std::int32_t> slice_cols;  ///< same shape, section-local
  std::vector<row_index> slice_rows;     ///< n_slices * kSliceHeight, -1 pad
  /// Inverse permutation: row r occupies flat lane slot `row_slot[r]`
  /// (= slice * kSliceHeight + lane). Lets the privatized scatter keep
  /// iterating rows in ascending order — the fold stays bit-identical
  /// to the seed layout's worker partitioning.
  std::vector<row_index> row_slot;
  row_index n_rows = 0;
  row_index n_slices = 0;

  [[nodiscard]] bool built() const { return n_slices > 0; }
  [[nodiscard]] byte_size bytes() const {
    return slice_values.size() * sizeof(real) +
           slice_cols.size() * sizeof(std::int32_t) +
           (slice_rows.size() + row_slot.size()) * sizeof(row_index);
  }
};

/// Reduced-precision copies of the coefficient streams, one instance
/// per storage scalar (float / bf16s). Indices are shared with the
/// FP64 arrays — only the coefficient payloads shrink. Down-conversion
/// happens once at build time and is deterministic (round-to-nearest
/// for float, truncate-FP32 for bf16s; see matrix/precision.hpp), so
/// repeated builds are bit-identical.
template <typename T>
struct PrecisionStore {
  std::vector<T> values;  ///< seed AoS records, n_rows * kNnzPerRow
  std::vector<T> soa_astro, soa_att, soa_instr, soa_glob;  ///< SoA planes
  std::vector<T> slice_values;  ///< sliced instrumental payload

  [[nodiscard]] bool built() const { return !values.empty(); }
  [[nodiscard]] byte_size bytes() const {
    return (values.size() + soa_astro.size() + soa_att.size() +
            soa_instr.size() + soa_glob.size() + slice_values.size()) *
           sizeof(T);
  }
};

/// Owner of the derived layouts of one system. Holds a reference to the
/// source matrix; the matrix must outlive it and must not be resized
/// while layouts are attached to views.
class LayoutedSystem {
 public:
  explicit LayoutedSystem(const SystemMatrix& A) : A_(&A) {}

  /// Builds the derived arrays a layout needs (idempotent; `kSeedAos`
  /// is a no-op). `kSlicedInstr` implies the SoA streams too: it uses
  /// them for the regular astro/att/glob blocks.
  void build(StorageLayout layout);

  /// True when every array `layout` needs has been built.
  [[nodiscard]] bool has(StorageLayout layout) const;

  /// Down-converts every *currently built* coefficient stream (the seed
  /// AoS records always; SoA planes / sliced payload when built) into
  /// the store for `p`. Idempotent per stream and safe to call again
  /// after building a new layout — only streams whose conversion is
  /// missing or stale are (re)converted. `kFp64` is a no-op.
  void build_precision(Precision p);

  /// True when every stream `layout` reads has a `p` conversion.
  [[nodiscard]] bool has_precision(
      Precision p, StorageLayout layout = StorageLayout::kSeedAos) const;

  [[nodiscard]] const SystemMatrix& matrix() const { return *A_; }
  [[nodiscard]] const SoaStreams& soa() const { return soa_; }
  [[nodiscard]] const SlicedInstr& sliced() const { return sliced_; }
  [[nodiscard]] const PrecisionStore<float>& f32() const { return f32_; }
  [[nodiscard]] const PrecisionStore<bf16s>& b16() const { return b16_; }

  /// Bytes the derived arrays occupy on top of the seed storage.
  [[nodiscard]] byte_size derived_bytes() const {
    return soa_.bytes() + sliced_.bytes() + f32_.bytes() + b16_.bytes();
  }

  /// Coefficient bytes a full sweep of `layout` streams, padding
  /// included; the seed layout charges the whole 24-wide record.
  [[nodiscard]] byte_size padded_coefficient_bytes(StorageLayout layout) const;

  /// Coefficient bytes actually carrying information (n_rows * 24
  /// doubles) — identical for every layout; the padded/compacted ratio
  /// is the price of the regularized addressing.
  [[nodiscard]] byte_size compacted_coefficient_bytes() const;

 private:
  void build_soa();
  void build_sliced();
  template <typename T>
  void convert_into(PrecisionStore<T>& store);
  template <typename T>
  [[nodiscard]] bool store_has(const PrecisionStore<T>& store,
                               StorageLayout layout) const;

  const SystemMatrix* A_;
  SoaStreams soa_{};
  SlicedInstr sliced_{};
  PrecisionStore<float> f32_{};
  PrecisionStore<bf16s> b16_{};
};

}  // namespace gaia::matrix
