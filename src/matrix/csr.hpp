/// \file csr.hpp
/// \brief Interop with the generic CSR sparse format.
///
/// The AVU-GSR storage is *structure-exploiting*: one coefficient array
/// plus two indices and the instrumental column list per row (paper
/// SIII-B). Generic CSR needs an explicit column index per non-zero.
/// This module converts between the two so that
///  * downstream users can hand the system to standard sparse libraries,
///  * tests can cross-check the custom kernels against a canonical SpMV,
///  * the storage ablation (`bench/ablation_storage`) can quantify what
///    the custom layout saves (the column-index payload and the implied
///    bandwidth).
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/system_matrix.hpp"

namespace gaia::matrix {

/// Standard CSR: row_ptr has n_rows+1 entries; col_idx/values hold the
/// nnz entries of each row sorted by column.
struct CsrMatrix {
  row_index n_rows = 0;
  col_index n_cols = 0;
  std::vector<std::int64_t> row_ptr;
  std::vector<col_index> col_idx;
  std::vector<real> values;

  [[nodiscard]] std::int64_t nnz() const {
    return static_cast<std::int64_t>(values.size());
  }
  /// Memory footprint of the CSR arrays.
  [[nodiscard]] byte_size bytes() const {
    return row_ptr.size() * sizeof(std::int64_t) +
           col_idx.size() * sizeof(col_index) +
           values.size() * sizeof(real);
  }
};

/// Expands the structure-exploiting storage into CSR. Entries within a
/// row come out sorted by column index.
CsrMatrix to_csr(const SystemMatrix& A);

/// y += M x (canonical CSR SpMV; serial reference).
void csr_matvec(const CsrMatrix& M, std::span<const real> x,
                std::span<real> y);

/// x += M^T y (canonical CSR transposed SpMV; serial reference).
void csr_rmatvec(const CsrMatrix& M, std::span<const real> y,
                 std::span<real> x);

}  // namespace gaia::matrix
